//! Integration checks over the whole reproduced bug study: registry
//! completeness against Tables 1/2, the Figure 6 subset, and the headline
//! manifestation claims for every case.

use nodefz::Mode;
use nodefz_apps::common::{RaceType, RunCfg, Variant};

#[test]
fn registry_matches_the_paper_inventory() {
    let registry = nodefz_apps::registry();
    // 12 studied bugs + SIO/KUE/FPS novel + the KUE 2014 timer bug.
    assert_eq!(registry.len(), 16);
    let abbrs: Vec<&str> = registry.iter().map(|c| c.info().abbr).collect();
    for expected in [
        "EPL", "GHO", "FPS", "CLF", "NES", "AKA", "WPT", "SIO", "MKD", "KUE", "RST", "MGS", "SIO*",
        "KUE*", "FPS*", "KUEt",
    ] {
        assert!(abbrs.contains(&expected), "missing {expected}");
    }
    let mut unique = abbrs.clone();
    unique.sort();
    unique.dedup();
    assert_eq!(unique.len(), registry.len(), "abbreviations must be unique");
}

#[test]
fn race_type_census_matches_table_2() {
    let registry = nodefz_apps::registry();
    let count = |race: RaceType| {
        registry
            .iter()
            .filter(|c| c.info().race == race && !c.info().novel)
            .count()
    };
    // The 12 studied bugs: 9 AVs, 1 OV, 2 COVs (§3.2).
    assert_eq!(count(RaceType::Av), 9);
    assert_eq!(count(RaceType::Ov), 1);
    assert_eq!(count(RaceType::Cov), 2);
}

#[test]
fn fig6_set_excludes_epl_wpt_rst() {
    // §5.1.1: EPL (browser-driven), WPT (CoffeeScript) and RST (manifests
    // frequently on vanilla) are excluded from the Figure 6 experiment.
    for case in nodefz_apps::registry() {
        let info = case.info();
        let expected_excluded = matches!(info.abbr, "EPL" | "WPT" | "RST");
        assert_eq!(
            !info.in_fig6, expected_excluded,
            "{} in_fig6 flag is wrong",
            info.abbr
        );
    }
}

#[test]
fn every_bug_has_nonempty_metadata() {
    for case in nodefz_apps::registry() {
        let info = case.info();
        assert!(!info.name.is_empty());
        assert!(!info.bug_ref.is_empty());
        assert!(!info.racing_events.is_empty());
        assert!(!info.race_on.is_empty());
        assert!(!info.impact.is_empty());
        assert!(!info.fix.is_empty());
    }
}

#[test]
fn every_buggy_case_manifests_under_some_fuzz_seed() {
    for case in nodefz_apps::registry() {
        let info = case.info();
        // The timer-precision bug needs the guided parameterization to
        // manifest reliably (§5.2.3); everything else uses the standard one.
        let mode = if info.abbr == "KUEt" {
            Mode::Guided
        } else {
            Mode::Fuzz
        };
        let manifested = (0..80).any(|seed| {
            case.run(&RunCfg::new(mode.clone(), seed), Variant::Buggy)
                .manifested
        });
        assert!(manifested, "{} never manifested in 80 fuzz runs", info.abbr);
    }
}

#[test]
fn every_fixed_case_survives_fuzzing() {
    for case in nodefz_apps::registry() {
        for seed in 0..10 {
            let out = case.run(&RunCfg::new(Mode::Fuzz, seed), Variant::Fixed);
            assert!(
                !out.manifested,
                "{} fixed variant manifested at seed {seed}: {}",
                case.info().abbr,
                out.detail
            );
        }
    }
}

#[test]
fn suites_produce_substantial_schedules() {
    for case in nodefz_apps::registry() {
        let report = case.suite(&RunCfg::new(Mode::Fuzz, 3));
        assert!(
            report.schedule.len() >= 50,
            "{} suite recorded only {} callbacks",
            case.info().abbr,
            report.schedule.len()
        );
    }
}

#[test]
fn bug_runs_are_deterministic_per_seed() {
    for case in nodefz_apps::registry().into_iter().take(4) {
        let cfg = RunCfg::new(Mode::Fuzz, 11);
        let a = case.run(&cfg, Variant::Buggy);
        let b = case.run(&cfg, Variant::Buggy);
        assert_eq!(
            a.manifested,
            b.manifested,
            "{} oracle must be deterministic",
            case.info().abbr
        );
        assert_eq!(a.report.schedule, b.report.schedule);
        assert_eq!(a.report.end_time, b.report.end_time);
    }
}

#[test]
fn impacts_cover_the_papers_severity_classes() {
    // §3.3.3: impacts range from incorrect responses to crashes.
    let registry = nodefz_apps::registry();
    let impacts: Vec<String> = registry
        .iter()
        .map(|c| c.info().impact.to_lowercase())
        .collect();
    assert!(impacts.iter().any(|i| i.contains("crash")));
    assert!(impacts.iter().any(|i| i.contains("hang")));
    assert!(impacts.iter().any(|i| i.contains("incorrect response")));
    assert!(impacts.iter().any(|i| i.contains("more than once")));
}
