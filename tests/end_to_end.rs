//! End-to-end smoke tests over the experiment harness: the figure
//! generators run, produce sane values, and reproduce the paper's headline
//! *shapes* at reduced run counts.

use nodefz_bench::{fig6, fig7, fig8, table2_evidence};

#[test]
fn fig6_runs_and_rates_are_probabilities() {
    let rows = fig6(5);
    assert_eq!(rows.len(), 13, "the Figure 6 set has 13 bars");
    for row in &rows {
        for rate in [row.vanilla, row.nofuzz, row.fuzz, row.guided] {
            assert!((0.0..=1.0).contains(&rate), "{row:?}");
        }
    }
}

#[test]
fn fig6_fuzz_beats_vanilla_in_aggregate() {
    let rows = fig6(10);
    let mean =
        |f: fn(&nodefz_bench::Fig6Row) -> f64| rows.iter().map(f).sum::<f64>() / rows.len() as f64;
    let vanilla = mean(|r| r.vanilla);
    let fuzz = mean(|r| r.fuzz);
    assert!(
        fuzz > vanilla + 0.1,
        "nodeFZ ({fuzz:.2}) must clearly beat nodeV ({vanilla:.2})"
    );
    // Most bugs are exposed ONLY by the fuzzer.
    let only_fuzz = rows
        .iter()
        .filter(|r| r.vanilla == 0.0 && r.fuzz > 0.0)
        .count();
    assert!(
        only_fuzz * 2 >= rows.len(),
        "at least half the bugs should need nodeFZ, got {only_fuzz}/{}",
        rows.len()
    );
}

#[test]
fn fig7_fuzz_expands_the_schedule_space() {
    let rows = fig7(4, 5_000);
    for row in &rows {
        assert!((0.0..=1.0).contains(&row.nofuzz_ld));
        assert!((0.0..=1.0).contains(&row.fuzz_ld));
    }
    let increased = rows.iter().filter(|r| r.fuzz_ld > r.nofuzz_ld).count();
    assert!(
        increased * 4 >= rows.len() * 3,
        "nodeFZ should increase LD for (nearly) every suite: {increased}/{}",
        rows.len()
    );
}

#[test]
fn fig8_overheads_are_moderate() {
    let rows = fig8(3);
    for row in &rows {
        assert!(row.vanilla_s > 0.0);
        assert!(
            row.fuzz_rel < 25.0,
            "{}: implausible overhead {:.1}x",
            row.abbr,
            row.fuzz_rel
        );
    }
}

#[test]
fn table2_finds_evidence_for_most_bugs() {
    let evidence = table2_evidence(60);
    let found = evidence.iter().filter(|e| e.first_seed.is_some()).count();
    assert!(
        found >= evidence.len() - 1,
        "evidence found for only {found}/{} bugs",
        evidence.len()
    );
}
