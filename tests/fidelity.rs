//! Node.fz fidelity (§4.4 of the paper): the fuzzer makes only *legal*
//! scheduling decisions, so correct programs compute correct results under
//! it — including under an intentionally extreme parameterization — and
//! documented platform guarantees survive. Also reproduces the EMFILE
//! incident the paper hit when de-multiplexing a 10 240-task test.

use std::cell::RefCell;
use std::rc::Rc;

use nodefz::{FuzzParams, Mode};
use nodefz_kv::Kv;
use nodefz_net::{Client, SimNet};
use nodefz_rt::{Barrier, Emitter, LoopConfig, Termination, VDur, VTime};

fn modes_under_test() -> Vec<Mode> {
    vec![
        Mode::Vanilla,
        Mode::NoFuzz,
        Mode::Fuzz,
        Mode::Guided,
        Mode::Custom(FuzzParams::aggressive()),
    ]
}

#[test]
fn echo_server_answers_everything_under_every_mode() {
    for mode in modes_under_test() {
        for seed in 0..10 {
            let mut el = mode.build_loop(LoopConfig::seeded(seed), seed ^ 55);
            let net = SimNet::new();
            let n = net.clone();
            el.enter(move |cx| {
                n.listen(cx, 80, |_cx, conn| {
                    conn.on_data(|cx, conn, msg| {
                        let _ = conn.write(cx, msg.clone());
                    });
                })
                .unwrap();
            });
            let clients = el.enter(|cx| {
                let mut clients = Vec::new();
                for c in 0..3 {
                    let client = Client::connect_after(cx, &net, 80, VDur::micros(c * 100));
                    for i in 0..5u8 {
                        client.send_after(cx, VDur::micros(i as u64 * 400), vec![i]);
                    }
                    client.close_after(cx, VDur::millis(60));
                    clients.push(client);
                }
                net.close_all_listeners_after(cx, VDur::millis(80));
                clients
            });
            let report = el.run();
            assert!(
                !report.crashed(),
                "{} seed {seed}: {:?}",
                mode.label(),
                report.errors
            );
            for (i, client) in clients.iter().enumerate() {
                // Every message echoed, in per-connection FIFO order: the
                // guarantee §4.2.1 says fuzzing must not break.
                let got = client.received();
                assert_eq!(
                    got,
                    (0..5u8).map(|i| vec![i]).collect::<Vec<_>>(),
                    "{} seed {seed} client {i}",
                    mode.label()
                );
            }
        }
    }
}

#[test]
fn timers_never_fire_early_under_fuzz() {
    for seed in 0..20 {
        let mut el =
            Mode::Custom(FuzzParams::aggressive()).build_loop(LoopConfig::seeded(seed), seed);
        let violations = Rc::new(RefCell::new(0u32));
        let v = violations.clone();
        el.enter(move |cx| {
            for ms in [1u64, 3, 7, 12] {
                let deadline = cx.now() + VDur::millis(ms);
                let v = v.clone();
                cx.set_timeout(VDur::millis(ms), move |cx| {
                    if cx.now() < deadline {
                        *v.borrow_mut() += 1;
                    }
                });
            }
        });
        el.run();
        assert_eq!(*violations.borrow(), 0, "seed {seed}: a timer fired early");
    }
}

#[test]
fn done_callback_always_after_task_body() {
    // §4.4 guarantee 4: a completion callback is invoked only after its
    // corresponding task has completed.
    for seed in 0..20 {
        let mut el = Mode::Fuzz.build_loop(LoopConfig::seeded(seed), seed);
        let order: Rc<RefCell<Vec<(u32, &'static str)>>> = Rc::new(RefCell::new(Vec::new()));
        let o = order.clone();
        el.enter(move |cx| {
            for task in 0..8u32 {
                let o1 = o.clone();
                let o2 = o.clone();
                cx.submit_work(
                    VDur::micros(100 + task as u64 * 37),
                    move |_| {
                        o1.borrow_mut().push((task, "work"));
                        task
                    },
                    move |_, t| {
                        o2.borrow_mut().push((t, "done"));
                    },
                )
                .unwrap();
            }
        });
        el.run();
        let order = order.borrow();
        for task in 0..8u32 {
            let work_pos = order.iter().position(|&e| e == (task, "work"));
            let done_pos = order.iter().position(|&e| e == (task, "done"));
            let (Some(w), Some(d)) = (work_pos, done_pos) else {
                panic!("seed {seed}: task {task} incomplete: {order:?}");
            };
            assert!(w < d, "seed {seed}: done before work for task {task}");
        }
    }
}

#[test]
fn emitter_listener_order_survives_fuzzing() {
    // §4.3.1: EventEmitter listeners run successively, synchronously, in
    // registration order — multiplexing the fuzzer must NOT break.
    for seed in 0..10 {
        let mut el =
            Mode::Custom(FuzzParams::aggressive()).build_loop(LoopConfig::seeded(seed), seed);
        let order = Rc::new(RefCell::new(Vec::new()));
        let o = order.clone();
        el.enter(move |cx| {
            let em: Emitter<u32> = Emitter::new();
            for tag in 0..6u32 {
                let o = o.clone();
                em.on("evt", move |_, payload| {
                    o.borrow_mut().push((tag, *payload))
                });
            }
            let em2 = em.clone();
            cx.set_timeout(VDur::millis(2), move |cx| {
                em2.emit(cx, "evt", &99);
            });
        });
        el.run();
        assert_eq!(
            *order.borrow(),
            (0..6).map(|t| (t, 99)).collect::<Vec<_>>(),
            "seed {seed}"
        );
    }
}

#[test]
fn ordered_combinators_hold_under_fuzz() {
    for seed in 0..10 {
        let mut el = Mode::Fuzz.build_loop(LoopConfig::seeded(seed), seed + 1);
        let events = Rc::new(RefCell::new(Vec::new()));
        let e = events.clone();
        el.enter(move |cx| {
            let e2 = e.clone();
            let barrier = Barrier::new(4, move |_cx| e2.borrow_mut().push("all-done"));
            for i in 0..4u64 {
                let b = barrier.clone();
                let e3 = e.clone();
                cx.submit_work(
                    VDur::micros(200 + i * 91),
                    |_| (),
                    move |cx, ()| {
                        e3.borrow_mut().push("arrived");
                        b.arrive(cx);
                    },
                )
                .unwrap();
            }
        });
        el.run();
        let events = events.borrow();
        assert_eq!(events.len(), 5, "seed {seed}: {events:?}");
        assert_eq!(events[4], "all-done", "barrier fired last");
    }
}

#[test]
fn kv_single_connection_replies_stay_fifo_under_fuzz() {
    for seed in 0..10 {
        let mut el =
            Mode::Custom(FuzzParams::aggressive()).build_loop(LoopConfig::seeded(seed), seed);
        let order = Rc::new(RefCell::new(Vec::new()));
        let kv = el.enter(|cx| Kv::connect(cx, 1).unwrap());
        let k = kv.clone();
        let o = order.clone();
        el.enter(move |cx| {
            for i in 0..12u32 {
                let o = o.clone();
                k.set(cx, &format!("k{i}"), "v", move |_cx, ()| {
                    o.borrow_mut().push(i);
                });
            }
        });
        el.run();
        assert_eq!(
            *order.borrow(),
            (0..12).collect::<Vec<_>>(),
            "seed {seed}: single-connection replies reordered"
        );
    }
}

#[test]
fn demux_reproduces_the_emfile_incident() {
    // The paper's test-fs-sir-writes-alot story (§4.4): a burst of pool
    // submissions under the de-multiplexed done queue consumes one
    // descriptor per task. With a low descriptor limit, submissions fail
    // with EMFILE; raising the limit (ulimit) fixes it; the multiplexed
    // vanilla pool never needed the descriptors.
    let submit_burst = |mode: Mode, fd_limit: usize| -> usize {
        let cfg = LoopConfig {
            fd_limit,
            ..LoopConfig::seeded(5)
        };
        let mut el = mode.build_loop(cfg, 9);
        let failures = el.enter(|cx| {
            let mut failures = 0;
            for _ in 0..256 {
                if cx
                    .submit_work(VDur::micros(50), |_| (), |_, ()| {})
                    .is_err()
                {
                    failures += 1;
                }
            }
            failures
        });
        el.run();
        failures
    };
    assert!(
        submit_burst(Mode::Fuzz, 64) > 0,
        "demux must hit EMFILE at a low limit"
    );
    assert_eq!(
        submit_burst(Mode::Fuzz, 1_024),
        0,
        "raising the limit (ulimit) resolves it"
    );
    assert_eq!(
        submit_burst(Mode::Vanilla, 64),
        0,
        "the multiplexed pool does not consume per-task descriptors"
    );
}

#[test]
fn fuzzed_runs_are_reproducible() {
    let run = || {
        let mut el = Mode::Fuzz.build_loop(LoopConfig::seeded(77), 88);
        let net = SimNet::new();
        let n = net.clone();
        el.enter(move |cx| {
            n.listen(cx, 80, |_cx, conn| {
                conn.on_data(|cx, conn, msg| {
                    let _ = conn.write(cx, msg.clone());
                });
            })
            .unwrap();
        });
        el.enter(|cx| {
            for i in 0..4 {
                let c = Client::connect_after(cx, &net, 80, VDur::micros(i * 150));
                c.send(cx, vec![i as u8]);
                c.close_after(cx, VDur::millis(30));
            }
            net.close_all_listeners_after(cx, VDur::millis(40));
        });
        el.run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.schedule, b.schedule, "same seeds must replay identically");
    assert_eq!(a.end_time, b.end_time);
    assert_eq!(a.dispatched, b.dispatched);
}

#[test]
fn quiescent_termination_is_preserved_by_fuzzing() {
    // A program that terminates cleanly under vanilla also terminates
    // cleanly under fuzzing (no lost wakeups).
    for seed in 0..10 {
        for mode in [Mode::Vanilla, Mode::Fuzz] {
            let mut el = mode.build_loop(LoopConfig::seeded(seed), seed);
            el.enter(|cx| {
                cx.set_timeout(VDur::millis(3), |cx| {
                    cx.submit_work(
                        VDur::millis(1),
                        |_| (),
                        |cx, ()| {
                            cx.set_immediate(|_| {});
                        },
                    )
                    .unwrap();
                });
            });
            let report = el.run();
            assert_eq!(
                report.termination,
                Termination::Quiescent,
                "{} seed {seed}",
                mode.label()
            );
            assert!(report.end_time > VTime::ZERO);
        }
    }
}
