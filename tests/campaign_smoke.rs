//! End-to-end campaign smoke test: a small-budget, 2-thread campaign over
//! three planted bugs must find each, dedup to one report per bug, shrink
//! without growing any trace, and persist a corpus whose entries replay
//! deterministically.

use std::time::{Duration, Instant};

use nodefz_campaign::{run, verify_entry, CampaignConfig, Corpus};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("nodefz-smoke-{tag}-{}", std::process::id()))
}

#[test]
fn small_campaign_finds_dedups_shrinks_and_persists() {
    let corpus_dir = temp_dir("corpus");
    let _ = std::fs::remove_dir_all(&corpus_dir);
    let cfg = CampaignConfig {
        threads: 2,
        budget: 60,
        apps: vec!["KUE".into(), "MKD".into(), "GHO".into()],
        corpus_dir: Some(corpus_dir.clone()),
        base_seed: 3,
        ..CampaignConfig::default()
    };

    let start = Instant::now();
    let report = run(&cfg).expect("campaign runs");
    assert!(
        start.elapsed() < Duration::from_secs(120),
        "smoke campaign exceeded its timeout: {:?}",
        start.elapsed()
    );

    assert_eq!(report.runs, 60, "the whole budget is spent");
    // Each planted bug is found and dedups to exactly one report.
    assert_eq!(report.unique_bugs(), 3, "bugs: {:#?}", report.bugs);
    let mut apps: Vec<&str> = report.bugs.iter().map(|b| b.app.as_str()).collect();
    apps.sort_unstable();
    assert_eq!(apps, ["GHO", "KUE", "MKD"]);
    for bug in &report.bugs {
        assert!(
            bug.shrunk_len <= bug.original_len,
            "{}: shrink grew the trace ({} -> {})",
            bug.app,
            bug.original_len,
            bug.shrunk_len
        );
        assert_eq!(
            bug.replays_ok, cfg.replay_checks,
            "{}: shrunk repro must re-manifest in every acceptance replay",
            bug.app
        );
    }

    // The persisted corpus replays deterministically.
    let corpus = Corpus::open(&corpus_dir).unwrap();
    let entries = corpus.load_all().unwrap();
    assert_eq!(entries.len(), 3);
    for entry in &entries {
        verify_entry(entry).expect("corpus entry re-manifests its bug");
        // Twice: replay must be deterministic, not merely likely.
        verify_entry(entry).expect("corpus entry re-manifests on a second replay");
    }
    std::fs::remove_dir_all(&corpus_dir).unwrap();
}

/// Only in instrumented builds: worker loop-phase profiling lands in the
/// metrics document and `--trace-out` emits a chrome://tracing timeline.
#[test]
#[cfg(feature = "obs")]
fn instrumented_campaign_profiles_phases_and_exports_a_trace() {
    let metrics_path = temp_dir("obs-metrics").with_extension("json");
    let trace_path = temp_dir("obs-trace").with_extension("json");
    let cfg = CampaignConfig {
        threads: 2,
        budget: 20,
        apps: vec!["GHO".into()],
        base_seed: 9,
        shrink: false,
        replay_checks: 1,
        metrics_out: Some(metrics_path.clone()),
        trace_out: Some(trace_path.clone()),
        obs_level: nodefz_obs::ObsLevel::Counters,
        ..CampaignConfig::default()
    };
    run(&cfg).expect("campaign runs");

    let doc = std::fs::read_to_string(&metrics_path).unwrap();
    assert!(
        doc.contains("\"phase\": \"timers\", \"entries\": "),
        "phase rows must be populated: {doc}"
    );
    assert!(
        !doc.contains("\"phase\": \"timers\", \"entries\": 0,"),
        "timer phase must have been profiled: {doc}"
    );
    assert!(
        doc.contains("\"kind\": \"timer\""),
        "per-kind dispatch counts must be present: {doc}"
    );

    let trace = std::fs::read_to_string(&trace_path).unwrap();
    assert!(trace.contains("\"traceEvents\": ["), "{trace}");
    assert!(
        trace.contains("\"ph\": \"X\"") && trace.contains("\"cat\": \"phase\""),
        "complete events with phase spans expected: {trace}"
    );
    std::fs::remove_file(&metrics_path).unwrap();
    std::fs::remove_file(&trace_path).unwrap();
}

#[test]
fn deadline_drains_gracefully() {
    let cfg = CampaignConfig {
        threads: 2,
        budget: 1_000_000,
        apps: vec!["GHO".into()],
        deadline: Some(Duration::from_millis(200)),
        shrink: false,
        replay_checks: 1,
        ..CampaignConfig::default()
    };
    let start = Instant::now();
    let report = run(&cfg).expect("campaign runs");
    assert!(report.hit_deadline, "deadline must trip");
    assert!(report.runs < cfg.budget, "budget cannot complete in 200ms");
    assert!(
        start.elapsed() < Duration::from_secs(30),
        "drain must be prompt, took {:?}",
        start.elapsed()
    );
}

#[test]
fn metrics_snapshot_is_written_and_telemetry_does_not_perturb_findings() {
    let metrics_path = temp_dir("metrics").with_extension("json");
    let run_once = |metrics_out: Option<std::path::PathBuf>| {
        let cfg = CampaignConfig {
            threads: 2,
            budget: 40,
            apps: vec!["KUE".into(), "GHO".into()],
            base_seed: 5,
            shrink: false,
            replay_checks: 1,
            metrics_out,
            ..CampaignConfig::default()
        };
        let report = run(&cfg).expect("campaign runs");
        let mut sigs: Vec<(String, String)> = report
            .bugs
            .iter()
            .map(|b| (b.app.clone(), b.site.clone()))
            .collect();
        sigs.sort();
        sigs
    };

    let observed = run_once(Some(metrics_path.clone()));
    let bare = run_once(None);
    assert_eq!(observed, bare, "telemetry must not change what is found");
    assert!(!observed.is_empty(), "the planted bugs must be found");

    let doc = std::fs::read_to_string(&metrics_path).expect("snapshot written");
    for needle in [
        "\"schema\": \"nodefz-metrics-v1\"",
        "\"finished\": true",
        "\"runs\": 40",
        "\"arms\": [",
        "\"discovery\": [",
        "\"first_exec\":",
        "\"truncation\": 20000",
        "\"run_dispatched\":",
    ] {
        assert!(doc.contains(needle), "snapshot missing {needle}: {doc}");
    }
    // Loop-phase rows exist only in instrumented builds at above-off
    // levels; this campaign ran at the default level, so either way the
    // array must be present (and the default build keeps it empty).
    assert!(doc.contains("\"phases\": ["));
    std::fs::remove_file(&metrics_path).unwrap();
}

#[test]
fn campaigns_with_the_same_seed_find_the_same_bugs() {
    let run_once = || {
        let cfg = CampaignConfig {
            threads: 2,
            budget: 30,
            apps: vec!["MKD".into(), "GHO".into()],
            base_seed: 7,
            shrink: false,
            replay_checks: 1,
            ..CampaignConfig::default()
        };
        let report = run(&cfg).expect("campaign runs");
        let mut sigs: Vec<(String, String)> = report
            .bugs
            .iter()
            .map(|b| (b.app.clone(), b.site.clone()))
            .collect();
        sigs.sort();
        sigs
    };
    assert_eq!(run_once(), run_once(), "finding set is seed-determined");
}

#[test]
fn conform_arm_runs_clean_in_a_campaign() {
    // The CONFORM arm fuzzes the runtime itself: generated programs
    // judged against the ordering oracle. On a correct runtime a
    // campaign over it must spend its whole budget without a finding —
    // any finding here would be a runtime bug, not an application bug.
    let cfg = CampaignConfig {
        threads: 2,
        budget: 40,
        apps: vec!["CONFORM".into()],
        base_seed: 11,
        replay_checks: 1,
        ..CampaignConfig::default()
    };
    let report = run(&cfg).expect("campaign runs");
    assert_eq!(report.runs, 40, "the whole budget is spent");
    assert_eq!(
        report.unique_bugs(),
        0,
        "the runtime violated its own ordering oracle: {:#?}",
        report.bugs
    );
}
