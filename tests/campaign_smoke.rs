//! End-to-end campaign smoke test: a small-budget, 2-thread campaign over
//! three planted bugs must find each, dedup to one report per bug, shrink
//! without growing any trace, and persist a corpus whose entries replay
//! deterministically.

use std::time::{Duration, Instant};

use nodefz_campaign::{run, verify_entry, CampaignConfig, Corpus};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("nodefz-smoke-{tag}-{}", std::process::id()))
}

#[test]
fn small_campaign_finds_dedups_shrinks_and_persists() {
    let corpus_dir = temp_dir("corpus");
    let _ = std::fs::remove_dir_all(&corpus_dir);
    let cfg = CampaignConfig {
        threads: 2,
        budget: 60,
        apps: vec!["KUE".into(), "MKD".into(), "GHO".into()],
        corpus_dir: Some(corpus_dir.clone()),
        base_seed: 3,
        ..CampaignConfig::default()
    };

    let start = Instant::now();
    let report = run(&cfg).expect("campaign runs");
    assert!(
        start.elapsed() < Duration::from_secs(120),
        "smoke campaign exceeded its timeout: {:?}",
        start.elapsed()
    );

    assert_eq!(report.runs, 60, "the whole budget is spent");
    // Each planted bug is found and dedups to exactly one report.
    assert_eq!(report.unique_bugs(), 3, "bugs: {:#?}", report.bugs);
    let mut apps: Vec<&str> = report.bugs.iter().map(|b| b.app.as_str()).collect();
    apps.sort_unstable();
    assert_eq!(apps, ["GHO", "KUE", "MKD"]);
    for bug in &report.bugs {
        assert!(
            bug.shrunk_len <= bug.original_len,
            "{}: shrink grew the trace ({} -> {})",
            bug.app,
            bug.original_len,
            bug.shrunk_len
        );
        assert_eq!(
            bug.replays_ok, cfg.replay_checks,
            "{}: shrunk repro must re-manifest in every acceptance replay",
            bug.app
        );
    }

    // The persisted corpus replays deterministically.
    let corpus = Corpus::open(&corpus_dir).unwrap();
    let entries = corpus.load_all().unwrap();
    assert_eq!(entries.len(), 3);
    for entry in &entries {
        verify_entry(entry).expect("corpus entry re-manifests its bug");
        // Twice: replay must be deterministic, not merely likely.
        verify_entry(entry).expect("corpus entry re-manifests on a second replay");
    }
    std::fs::remove_dir_all(&corpus_dir).unwrap();
}

#[test]
fn deadline_drains_gracefully() {
    let cfg = CampaignConfig {
        threads: 2,
        budget: 1_000_000,
        apps: vec!["GHO".into()],
        deadline: Some(Duration::from_millis(200)),
        shrink: false,
        replay_checks: 1,
        ..CampaignConfig::default()
    };
    let start = Instant::now();
    let report = run(&cfg).expect("campaign runs");
    assert!(report.hit_deadline, "deadline must trip");
    assert!(report.runs < cfg.budget, "budget cannot complete in 200ms");
    assert!(
        start.elapsed() < Duration::from_secs(30),
        "drain must be prompt, took {:?}",
        start.elapsed()
    );
}

#[test]
fn campaigns_with_the_same_seed_find_the_same_bugs() {
    let run_once = || {
        let cfg = CampaignConfig {
            threads: 2,
            budget: 30,
            apps: vec!["MKD".into(), "GHO".into()],
            base_seed: 7,
            shrink: false,
            replay_checks: 1,
            ..CampaignConfig::default()
        };
        let report = run(&cfg).expect("campaign runs");
        let mut sigs: Vec<(String, String)> = report
            .bugs
            .iter()
            .map(|b| (b.app.clone(), b.site.clone()))
            .collect();
        sigs.sort();
        sigs
    };
    assert_eq!(run_once(), run_once(), "finding set is seed-determined");
}
