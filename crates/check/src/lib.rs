//! # nodefz-check — a minimal seeded property-testing harness
//!
//! The workspace's property tests originally used `proptest`; this crate is
//! a small, dependency-free replacement so the whole repository builds and
//! tests offline. It keeps the two properties that matter for a determinism
//! testbed:
//!
//! * **Reproducibility** — every case derives its generator seed from the
//!   property name and the case index, so a failure report names the exact
//!   seed, and `NFZ_CHECK_SEED=<seed>` re-runs just that case.
//! * **Coverage** — [`Gen`] provides the generator vocabulary the old
//!   strategies used (integers, floats, choices, byte vectors, collection
//!   sizes), all drawn from a splitmix64 stream.
//!
//! [`forall`] does no automatic shrinking: generators here are used with
//! small size bounds, so a failing case is already near-minimal, and the
//! printed seed makes it trivially replayable under a debugger. Harnesses
//! that *do* want minimization (the conformance tester shrinks whole
//! generated programs) can reach for the element-agnostic [`ddmin`] in
//! [`shrink`].
//!
//! ```
//! use nodefz_check::forall;
//!
//! forall("addition_commutes", 64, |g| {
//!     let (a, b) = (g.below(1000), g.below(1000));
//!     assert_eq!(a + b, b + a);
//! });
//! ```

// `deny` rather than `forbid`: the `alloc` module implements `GlobalAlloc`
// (inherently unsafe) and opts out locally; everything else stays checked.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod shrink;

pub use alloc::{AllocStats, CountingAlloc};
pub use shrink::{ddmin, DdminResult};

use std::panic::{catch_unwind, AssertUnwindSafe};

/// A deterministic splitmix64 generator handed to each property case.
#[derive(Clone, Debug)]
pub struct Gen {
    state: u64,
}

impl Gen {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Gen {
        Gen { state: seed }
    }

    /// Returns the next 64 random bits.
    pub fn u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "Gen::below requires a positive bound");
        // Multiply-shift; the slight bias is irrelevant for test generation.
        ((self.u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Returns a uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "Gen::range requires lo < hi");
        lo + self.below(hi - lo)
    }

    /// Returns a uniform `usize` in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range(lo as u64, hi as u64) as usize
    }

    /// Returns a uniform value in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform value in `[lo, hi)`.
    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.unit() * (hi - lo)
    }

    /// Returns `true` with probability 1/2.
    pub fn bool(&mut self) -> bool {
        self.u64() & 1 == 1
    }

    /// Returns a uniform byte.
    pub fn byte(&mut self) -> u8 {
        self.u64() as u8
    }

    /// Picks a uniform element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "Gen::pick requires a non-empty slice");
        &items[self.below(items.len() as u64) as usize]
    }

    /// Builds a vector with a uniform length in `[min_len, max_len)` whose
    /// elements come from `f`.
    pub fn vec_with<T>(
        &mut self,
        min_len: usize,
        max_len: usize,
        mut f: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let len = self.range_usize(min_len, max_len);
        (0..len).map(|_| f(self)).collect()
    }

    /// Builds a byte vector with a uniform length in `[min_len, max_len)`.
    pub fn bytes(&mut self, min_len: usize, max_len: usize) -> Vec<u8> {
        self.vec_with(min_len, max_len, |g| g.byte())
    }

    /// Builds a lowercase ASCII string with length in `[min_len, max_len)`.
    pub fn lowercase(&mut self, min_len: usize, max_len: usize) -> String {
        self.vec_with(min_len, max_len, |g| (b'a' + g.below(26) as u8) as char)
            .into_iter()
            .collect()
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs `body` against `cases` generated inputs.
///
/// Each case gets a [`Gen`] seeded from the property `name` and the case
/// index. On failure the panic message is re-raised with the property name
/// and the case seed appended; setting `NFZ_CHECK_SEED=<seed>` re-runs only
/// that case (useful under a debugger).
///
/// # Panics
///
/// Re-raises the first failing case's panic, annotated with its seed.
pub fn forall(name: &str, cases: u32, body: impl Fn(&mut Gen)) {
    let base = fnv1a(name.as_bytes());
    if let Some(seed) = std::env::var("NFZ_CHECK_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    {
        let mut g = Gen::new(seed);
        body(&mut g);
        return;
    }
    for case in 0..cases {
        let seed = base.wrapping_add((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut g = Gen::new(seed);
        let result = catch_unwind(AssertUnwindSafe(|| body(&mut g)));
        if let Err(payload) = result {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            panic!(
                "property '{name}' failed at case {case}/{cases} \
                 (replay with NFZ_CHECK_SEED={seed}): {msg}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Gen::new(7);
        let mut b = Gen::new(7);
        for _ in 0..64 {
            assert_eq!(a.u64(), b.u64());
        }
    }

    #[test]
    fn below_in_range_and_covering() {
        let mut g = Gen::new(1);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let v = g.below(5);
            assert!(v < 5);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn vec_with_respects_length_bounds() {
        let mut g = Gen::new(2);
        for _ in 0..200 {
            let v = g.vec_with(2, 9, |g| g.byte());
            assert!((2..9).contains(&v.len()));
        }
    }

    #[test]
    fn forall_passes_trivial_property() {
        forall("trivial", 16, |g| {
            let x = g.below(10);
            assert!(x < 10);
        });
    }

    #[test]
    fn forall_reports_seed_on_failure() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            forall("always_fails", 4, |_| panic!("boom"));
        }));
        let payload = result.expect_err("property must fail");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("always_fails"), "{msg}");
        assert!(msg.contains("NFZ_CHECK_SEED="), "{msg}");
        assert!(msg.contains("boom"), "{msg}");
    }

    #[test]
    fn lowercase_is_lowercase() {
        let mut g = Gen::new(3);
        for _ in 0..100 {
            let s = g.lowercase(1, 10);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }
}
