//! Generic delta-debugging list minimization.
//!
//! The campaign crate ships a `DecisionTrace`-specific shrinker; this
//! module is the element-agnostic core of the same algorithm, so other
//! harnesses (notably `nodefz-conform`, which shrinks generated *programs*
//! rather than decision traces) can ddmin over their own element type
//! without re-deriving the chunk schedule.
//!
//! The oracle is "interesting": it must return `true` for any candidate
//! that still exhibits the behaviour being minimized (a failure, a bug
//! signature, an oracle violation). The input slice is assumed
//! interesting; the result is the shortest interesting sublist found by
//! removing ever-smaller chunks, preserving relative element order.

/// Outcome of a [`ddmin`] run.
#[derive(Clone, Debug)]
pub struct DdminResult<T> {
    /// The minimized list (never longer than the input, order preserved).
    pub items: Vec<T>,
    /// Elements in the original input.
    pub original_len: usize,
    /// Oracle invocations spent.
    pub runs: u64,
}

/// Minimizes `items` with respect to `interesting`: the oracle must
/// return `true` iff the candidate sublist still exhibits the behaviour
/// being minimized.
///
/// Removes chunks of halving size while the oracle keeps passing; a
/// removal that breaks the property is undone and the next chunk tried.
/// Terminates after a full pass at chunk size 1 removes nothing. The
/// oracle is never called on the original input (assumed interesting) and
/// may be called on the empty list.
pub fn ddmin<T, F>(items: &[T], mut interesting: F) -> DdminResult<T>
where
    T: Clone,
    F: FnMut(&[T]) -> bool,
{
    let original_len = items.len();
    let mut runs = 0u64;
    let mut current: Vec<T> = items.to_vec();

    let mut chunk = current.len().div_ceil(2).max(1);
    while chunk >= 1 && !current.is_empty() {
        let mut start = 0;
        let mut removed_any = false;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            let mut candidate = current.clone();
            candidate.drain(start..end);
            runs += 1;
            if interesting(&candidate) {
                current = candidate;
                removed_any = true;
                // Same start now addresses the next chunk.
            } else {
                start = end;
            }
        }
        if chunk == 1 && !removed_any {
            break;
        }
        if !removed_any {
            chunk /= 2;
        }
    }

    DdminResult {
        items: current,
        original_len,
        runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_is_removed_and_essentials_survive() {
        let mut input: Vec<u32> = (0..60).collect();
        input[17] = 1000;
        input[41] = 2000;
        let interesting = |c: &[u32]| c.contains(&1000) && c.contains(&2000);
        let result = ddmin(&input, interesting);
        assert_eq!(result.items, vec![1000, 2000], "order preserved too");
        assert_eq!(result.original_len, 60);
        assert!(result.runs > 0);
    }

    #[test]
    fn empty_result_when_nothing_is_needed() {
        let input = vec![1u8, 2, 3, 4];
        let result = ddmin(&input, |_| true);
        assert!(result.items.is_empty());
    }

    #[test]
    fn unshrinkable_input_comes_back_unchanged() {
        let input = vec![7u8, 8];
        let result = ddmin(&input, |c| c == input);
        assert_eq!(result.items, input);
    }

    #[test]
    fn order_dependent_property_keeps_relative_order() {
        // Interesting iff a 3 appears before a 9 somewhere.
        let input = vec![5u8, 3, 5, 5, 9, 5];
        let result = ddmin(&input, |c| {
            c.iter()
                .position(|&x| x == 3)
                .zip(c.iter().position(|&x| x == 9))
                .is_some_and(|(a, b)| a < b)
        });
        assert_eq!(result.items, vec![3, 9]);
    }
}
