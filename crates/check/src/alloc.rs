//! A counting global allocator for hot-path allocation budgets.
//!
//! The fuzzer's throughput currency is executions per second, and heap
//! traffic on the per-event hot path is the main way that erodes silently.
//! [`CountingAlloc`] wraps the system allocator and counts every
//! allocation, so a test binary can install it as its `#[global_allocator]`
//! and assert a per-run or per-event allocation budget:
//!
//! ```ignore
//! use nodefz_check::CountingAlloc;
//!
//! #[global_allocator]
//! static ALLOC: CountingAlloc = CountingAlloc::new();
//!
//! let before = ALLOC.stats();
//! run_workload();
//! let during = ALLOC.stats().since(&before);
//! assert!(during.allocs < BUDGET);
//! ```
//!
//! Counters are relaxed atomics: cheap enough to keep enabled, and exact
//! in the single-threaded measurements the guard tests perform.
//!
//! This is the one module in the workspace that needs `unsafe` —
//! implementing [`GlobalAlloc`] requires it; both methods simply delegate
//! to [`System`] after bumping a counter.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// A snapshot of allocator traffic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Number of allocations.
    pub allocs: u64,
    /// Number of deallocations.
    pub frees: u64,
    /// Total bytes requested across all allocations.
    pub bytes: u64,
}

impl AllocStats {
    /// Traffic between an earlier snapshot and this one.
    pub fn since(&self, earlier: &AllocStats) -> AllocStats {
        AllocStats {
            allocs: self.allocs.wrapping_sub(earlier.allocs),
            frees: self.frees.wrapping_sub(earlier.frees),
            bytes: self.bytes.wrapping_sub(earlier.bytes),
        }
    }
}

/// A [`System`]-delegating allocator that counts allocations.
#[derive(Debug, Default)]
pub struct CountingAlloc {
    allocs: AtomicU64,
    frees: AtomicU64,
    bytes: AtomicU64,
}

impl CountingAlloc {
    /// Creates an allocator with zeroed counters (usable in `static`s).
    pub const fn new() -> CountingAlloc {
        CountingAlloc {
            allocs: AtomicU64::new(0),
            frees: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// Reads the current counters.
    pub fn stats(&self) -> AllocStats {
        AllocStats {
            allocs: self.allocs.load(Ordering::Relaxed),
            frees: self.frees.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
        }
    }
}

// SAFETY: both methods delegate the actual memory management to `System`
// unchanged; the only added behavior is relaxed counter bumps.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        self.bytes
            .fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        self.frees.fetch_add(1, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow-in-place still hits the allocator: count it as one
        // allocation so Vec growth on the hot path is visible.
        self.allocs.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(
            new_size.saturating_sub(layout.size()) as u64,
            Ordering::Relaxed,
        );
        System.realloc(ptr, layout, new_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Not installed as the global allocator here (the test harness would
    // pollute the counts); exercised through direct calls instead. The
    // campaign crate's alloc-guard test installs it for real.
    #[test]
    fn counts_alloc_and_free() {
        let a = CountingAlloc::new();
        let layout = Layout::from_size_align(64, 8).unwrap();
        let p = unsafe { a.alloc(layout) };
        assert!(!p.is_null());
        unsafe { a.dealloc(p, layout) };
        let s = a.stats();
        assert_eq!(s.allocs, 1);
        assert_eq!(s.frees, 1);
        assert_eq!(s.bytes, 64);
    }

    #[test]
    fn since_subtracts() {
        let a = AllocStats {
            allocs: 10,
            frees: 4,
            bytes: 100,
        };
        let b = AllocStats {
            allocs: 25,
            frees: 9,
            bytes: 260,
        };
        let d = b.since(&a);
        assert_eq!(
            d,
            AllocStats {
                allocs: 15,
                frees: 5,
                bytes: 160
            }
        );
    }
}
