//! Property tests for the HTTP wire codec.

use nodefz_check::{forall, Gen};

use nodefz_http::{
    decode_request, decode_response, encode_request, encode_response, Method, Response,
};

fn gen_method(g: &mut Gen) -> Method {
    *g.pick(&[Method::Get, Method::Post, Method::Put, Method::Delete])
}

/// One to four segments of `/[a-z0-9:_-]{1,8}`.
fn gen_path(g: &mut Gen) -> String {
    let alphabet: Vec<char> = ('a'..='z')
        .chain('0'..='9')
        .chain([':', '_', '-'])
        .collect();
    let segments = g.range_usize(1, 5);
    let mut path = String::new();
    for _ in 0..segments {
        path.push('/');
        for _ in 0..g.range_usize(1, 9) {
            path.push(*g.pick(&alphabet));
        }
    }
    path
}

#[test]
fn request_roundtrip() {
    forall("request_roundtrip", 96, |g| {
        let method = gen_method(g);
        let path = gen_path(g);
        let body = g.bytes(0, 64);
        let wire = encode_request(method, &path, &body);
        let (m, p, b) = decode_request(&wire).expect("self-encoded requests decode");
        assert_eq!(m, method);
        assert_eq!(p, path);
        assert_eq!(b, body);
    });
}

#[test]
fn response_roundtrip() {
    forall("response_roundtrip", 96, |g| {
        let status = g.range(100, 600) as u16;
        let body = g.bytes(0, 64);
        let r = Response { status, body };
        let decoded = decode_response(&encode_response(&r)).expect("self-encoded responses decode");
        assert_eq!(decoded, r);
    });
}

#[test]
fn decoder_never_panics_on_garbage() {
    forall("decoder_never_panics_on_garbage", 128, |g| {
        let bytes = g.bytes(0, 128);
        let _ = decode_request(&bytes);
        let _ = decode_response(&bytes);
    });
}
