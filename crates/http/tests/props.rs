//! Property tests for the HTTP wire codec.

use proptest::prelude::*;

use nodefz_http::{
    decode_request, decode_response, encode_request, encode_response, Method, Response,
};

fn method_strategy() -> impl Strategy<Value = Method> {
    prop::sample::select(vec![Method::Get, Method::Post, Method::Put, Method::Delete])
}

fn path_strategy() -> impl Strategy<Value = String> {
    "(/[a-z0-9:_-]{1,8}){1,4}".prop_map(|s| s)
}

proptest! {
    #[test]
    fn request_roundtrip(
        method in method_strategy(),
        path in path_strategy(),
        body in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let wire = encode_request(method, &path, &body);
        let (m, p, b) = decode_request(&wire).expect("self-encoded requests decode");
        prop_assert_eq!(m, method);
        prop_assert_eq!(p, path);
        prop_assert_eq!(b, body);
    }

    #[test]
    fn response_roundtrip(status in 100u16..600, body in prop::collection::vec(any::<u8>(), 0..64)) {
        let r = Response { status, body };
        let decoded = decode_response(&encode_response(&r)).expect("self-encoded responses decode");
        prop_assert_eq!(decoded, r);
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        let _ = decode_request(&bytes);
        let _ = decode_response(&bytes);
    }
}
