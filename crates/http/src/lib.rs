//! # nodefz-http — an HTTP-style layer over the simulated network
//!
//! The paper's motivating domain is web servers. This crate provides the
//! request/response framing and routing a Node.js-style application uses,
//! on top of `nodefz-net`: a [`Router`] with `:param` path captures, an
//! [`HttpServer`], and a scripted [`HttpClient`].
//!
//! The wire format is a deliberately simple text framing (one message per
//! request/response); what matters for schedule fuzzing is the event
//! structure, which is identical to real HTTP-over-TCP at the granularity
//! the fuzzer perturbs.
//!
//! ## Example
//!
//! ```
//! use nodefz_http::{HttpClient, HttpServer, Method, Response, Router};
//! use nodefz_net::SimNet;
//! use nodefz_rt::{EventLoop, LoopConfig, VDur};
//!
//! let mut el = EventLoop::new(LoopConfig::seeded(4));
//! let net = SimNet::new();
//! let mut router = Router::new();
//! router.get("/hello/:name", |_cx, req, responder| {
//!     let name = req.param("name").unwrap_or("world").to_string();
//!     responder.send(_cx, Response::ok(format!("hi {name}")));
//! });
//! let n = net.clone();
//! el.enter(move |cx| {
//!     HttpServer::listen(cx, &n, 80, router).unwrap();
//! });
//! let client = el.enter(|cx| {
//!     let c = HttpClient::connect(cx, &net, 80);
//!     c.get(cx, "/hello/ada");
//!     c.close_after(cx, VDur::millis(50));
//!     c
//! });
//! el.enter(|cx| net.close_all_listeners_after(cx, VDur::millis(60)));
//! el.run();
//! let responses = client.responses();
//! assert_eq!(responses[0].status, 200);
//! assert_eq!(responses[0].body, b"hi ada");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;
use std::rc::Rc;

use nodefz_net::{Client, Connection, SimNet};
use nodefz_rt::{Ctx, Errno, VDur};

/// HTTP request methods (the subset the study's servers use).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Method {
    /// Fetch a resource.
    Get,
    /// Create/submit.
    Post,
    /// Replace.
    Put,
    /// Remove.
    Delete,
}

impl Method {
    /// Upper-case wire name.
    pub fn name(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Put => "PUT",
            Method::Delete => "DELETE",
        }
    }

    /// Parses a wire name.
    pub fn parse(s: &str) -> Option<Method> {
        match s {
            "GET" => Some(Method::Get),
            "POST" => Some(Method::Post),
            "PUT" => Some(Method::Put),
            "DELETE" => Some(Method::Delete),
            _ => None,
        }
    }
}

/// A parsed request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Request path (no query strings in this model).
    pub path: String,
    /// Request body.
    pub body: Vec<u8>,
    /// Path parameters captured by the matched route (`:name` segments).
    pub params: Vec<(String, String)>,
}

impl Request {
    /// Returns a captured path parameter.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// 200 with a body.
    pub fn ok(body: impl Into<Vec<u8>>) -> Response {
        Response {
            status: 200,
            body: body.into(),
        }
    }

    /// Arbitrary status with an empty body.
    pub fn status(status: u16) -> Response {
        Response {
            status,
            body: Vec::new(),
        }
    }

    /// Replaces the body.
    pub fn with_body(mut self, body: impl Into<Vec<u8>>) -> Response {
        self.body = body.into();
        self
    }
}

/// Encodes a request into a wire message.
pub fn encode_request(method: Method, path: &str, body: &[u8]) -> Vec<u8> {
    let mut out = format!("{} {}\n", method.name(), path).into_bytes();
    out.extend_from_slice(body);
    out
}

/// Parses a wire message into (method, path, body).
pub fn decode_request(msg: &[u8]) -> Option<(Method, String, Vec<u8>)> {
    let split = msg.iter().position(|&b| b == b'\n')?;
    let head = std::str::from_utf8(&msg[..split]).ok()?;
    let (method, path) = head.split_once(' ')?;
    let method = Method::parse(method)?;
    if path.is_empty() || !path.starts_with('/') {
        return None;
    }
    Some((method, path.to_string(), msg[split + 1..].to_vec()))
}

/// Encodes a response into a wire message.
pub fn encode_response(response: &Response) -> Vec<u8> {
    let mut out = format!("HTTP {}\n", response.status).into_bytes();
    out.extend_from_slice(&response.body);
    out
}

/// Parses a wire message into a response.
pub fn decode_response(msg: &[u8]) -> Option<Response> {
    let split = msg.iter().position(|&b| b == b'\n')?;
    let head = std::str::from_utf8(&msg[..split]).ok()?;
    let status = head.strip_prefix("HTTP ")?.parse().ok()?;
    Some(Response {
        status,
        body: msg[split + 1..].to_vec(),
    })
}

/// One-shot handle for answering a request.
pub struct Responder {
    conn: Connection,
    responded: Rc<RefCell<bool>>,
}

impl Responder {
    /// Sends the response. Later calls on clones of the same responder are
    /// ignored (a response goes out once).
    pub fn send(&self, cx: &mut Ctx<'_>, response: Response) {
        let mut sent = self.responded.borrow_mut();
        if *sent {
            return;
        }
        *sent = true;
        let _ = self.conn.write(cx, encode_response(&response));
    }

    /// Whether a response was already sent.
    pub fn responded(&self) -> bool {
        *self.responded.borrow()
    }
}

impl Clone for Responder {
    fn clone(&self) -> Responder {
        Responder {
            conn: self.conn.clone(),
            responded: self.responded.clone(),
        }
    }
}

type Handler = Rc<RefCell<dyn FnMut(&mut Ctx<'_>, Request, Responder)>>;

struct Route {
    method: Method,
    segments: Vec<String>,
    handler: Handler,
}

/// Routes requests by method and path pattern.
///
/// Patterns are `/`-separated; a `:name` segment captures that path
/// component into [`Request::params`]. The first matching route wins;
/// unmatched requests get a 404.
#[derive(Default)]
pub struct Router {
    routes: Vec<Route>,
}

impl Router {
    /// An empty router (every request 404s).
    pub fn new() -> Router {
        Router::default()
    }

    /// Adds a route.
    pub fn route(
        &mut self,
        method: Method,
        pattern: &str,
        handler: impl FnMut(&mut Ctx<'_>, Request, Responder) + 'static,
    ) -> &mut Router {
        self.routes.push(Route {
            method,
            segments: pattern
                .split('/')
                .filter(|s| !s.is_empty())
                .map(str::to_string)
                .collect(),
            handler: Rc::new(RefCell::new(handler)),
        });
        self
    }

    /// Adds a GET route.
    pub fn get(
        &mut self,
        pattern: &str,
        handler: impl FnMut(&mut Ctx<'_>, Request, Responder) + 'static,
    ) -> &mut Router {
        self.route(Method::Get, pattern, handler)
    }

    /// Adds a POST route.
    pub fn post(
        &mut self,
        pattern: &str,
        handler: impl FnMut(&mut Ctx<'_>, Request, Responder) + 'static,
    ) -> &mut Router {
        self.route(Method::Post, pattern, handler)
    }

    /// Number of registered routes.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// Whether the router has no routes.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    fn match_route(&self, method: Method, path: &str) -> Option<(Handler, Vec<(String, String)>)> {
        let parts: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
        'routes: for route in &self.routes {
            if route.method != method || route.segments.len() != parts.len() {
                continue;
            }
            let mut params = Vec::new();
            for (pattern, got) in route.segments.iter().zip(&parts) {
                if let Some(name) = pattern.strip_prefix(':') {
                    params.push((name.to_string(), (*got).to_string()));
                } else if pattern != got {
                    continue 'routes;
                }
            }
            return Some((route.handler.clone(), params));
        }
        None
    }
}

/// An HTTP server bound to a port.
pub struct HttpServer {
    inner: nodefz_net::Server,
}

impl HttpServer {
    /// Starts serving `router` on `port`.
    ///
    /// # Errors
    ///
    /// `EADDRINUSE` / `EMFILE` from the network layer.
    pub fn listen(
        cx: &mut Ctx<'_>,
        net: &SimNet,
        port: u16,
        router: Router,
    ) -> Result<HttpServer, Errno> {
        let router = Rc::new(router);
        let inner = net.listen(cx, port, move |_cx, conn| {
            let router = router.clone();
            conn.on_data(move |cx, conn, msg| {
                let Some((method, path, body)) = decode_request(msg) else {
                    let _ = conn.write(cx, encode_response(&Response::status(400)));
                    return;
                };
                let responder = Responder {
                    conn: conn.clone(),
                    responded: Rc::new(RefCell::new(false)),
                };
                match router.match_route(method, &path) {
                    Some((handler, params)) => {
                        let request = Request {
                            method,
                            path,
                            body,
                            params,
                        };
                        (handler.borrow_mut())(cx, request, responder);
                    }
                    None => responder.send(cx, Response::status(404)),
                }
            });
        })?;
        Ok(HttpServer { inner })
    }

    /// Stops accepting connections.
    pub fn close(&self, cx: &mut Ctx<'_>) {
        self.inner.close(cx);
    }
}

/// A scripted HTTP client over one keep-alive connection.
#[derive(Clone)]
pub struct HttpClient {
    client: Client,
}

impl HttpClient {
    /// Connects to `port`.
    pub fn connect(cx: &mut Ctx<'_>, net: &SimNet, port: u16) -> HttpClient {
        HttpClient {
            client: Client::connect(cx, net, port),
        }
    }

    /// Connects after a delay.
    pub fn connect_after(cx: &mut Ctx<'_>, net: &SimNet, port: u16, delay: VDur) -> HttpClient {
        HttpClient {
            client: Client::connect_after(cx, net, port, delay),
        }
    }

    /// Issues a request now.
    pub fn request(&self, cx: &mut Ctx<'_>, method: Method, path: &str, body: &[u8]) {
        self.client.send(cx, encode_request(method, path, body));
    }

    /// Issues a request after a delay.
    pub fn request_after(
        &self,
        cx: &mut Ctx<'_>,
        delay: VDur,
        method: Method,
        path: &str,
        body: &[u8],
    ) {
        self.client
            .send_after(cx, delay, encode_request(method, path, body));
    }

    /// Issues a GET now.
    pub fn get(&self, cx: &mut Ctx<'_>, path: &str) {
        self.request(cx, Method::Get, path, b"");
    }

    /// Issues a POST now.
    pub fn post(&self, cx: &mut Ctx<'_>, path: &str, body: &[u8]) {
        self.request(cx, Method::Post, path, body);
    }

    /// Closes the connection after a delay.
    pub fn close_after(&self, cx: &mut Ctx<'_>, delay: VDur) {
        self.client.close_after(cx, delay);
    }

    /// Responses received so far, in arrival order (undecodable messages
    /// are skipped).
    pub fn responses(&self) -> Vec<Response> {
        self.client
            .received()
            .iter()
            .filter_map(|m| decode_response(m))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodefz_rt::{EventLoop, LoopConfig};

    #[test]
    fn request_codec_roundtrip() {
        let wire = encode_request(Method::Post, "/users", b"alice");
        let (method, path, body) = decode_request(&wire).unwrap();
        assert_eq!(method, Method::Post);
        assert_eq!(path, "/users");
        assert_eq!(body, b"alice");
    }

    #[test]
    fn response_codec_roundtrip() {
        let r = Response::ok("hello").with_body("payload");
        let wire = encode_response(&r);
        assert_eq!(decode_response(&wire).unwrap(), r);
        assert_eq!(
            decode_response(&encode_response(&Response::status(503)))
                .unwrap()
                .status,
            503
        );
    }

    #[test]
    fn malformed_wire_is_rejected() {
        assert!(decode_request(b"").is_none());
        assert!(decode_request(b"GET\n").is_none());
        assert!(decode_request(b"YEET /x\n").is_none());
        assert!(decode_request(b"GET relative\n").is_none());
        assert!(decode_response(b"nonsense").is_none());
        assert!(decode_response(b"HTTP abc\n").is_none());
    }

    #[test]
    fn method_names_roundtrip() {
        for m in [Method::Get, Method::Post, Method::Put, Method::Delete] {
            assert_eq!(Method::parse(m.name()), Some(m));
        }
        assert_eq!(Method::parse("PATCH"), None);
    }

    fn serve(seed: u64, router: Router) -> (EventLoop, SimNet) {
        let mut el = EventLoop::new(LoopConfig::seeded(seed));
        let net = SimNet::new();
        let n = net.clone();
        el.enter(move |cx| {
            HttpServer::listen(cx, &n, 80, router).unwrap();
        });
        (el, net)
    }

    #[test]
    fn exact_route_is_served() {
        let mut router = Router::new();
        router.get("/ping", |cx, _req, responder| {
            responder.send(cx, Response::ok("pong"));
        });
        let (mut el, net) = serve(1, router);
        let client = el.enter(|cx| {
            let c = HttpClient::connect(cx, &net, 80);
            c.get(cx, "/ping");
            c.close_after(cx, VDur::millis(40));
            c
        });
        el.enter(|cx| net.close_all_listeners_after(cx, VDur::millis(50)));
        el.run();
        let responses = client.responses();
        assert_eq!(responses.len(), 1);
        assert_eq!(responses[0], Response::ok("pong"));
    }

    #[test]
    fn params_are_captured() {
        let mut router = Router::new();
        router.get("/users/:id/posts/:post", |cx, req, responder| {
            let reply = format!(
                "{}-{}",
                req.param("id").unwrap(),
                req.param("post").unwrap()
            );
            responder.send(cx, Response::ok(reply));
        });
        let (mut el, net) = serve(2, router);
        let client = el.enter(|cx| {
            let c = HttpClient::connect(cx, &net, 80);
            c.get(cx, "/users/42/posts/7");
            c.close_after(cx, VDur::millis(40));
            c
        });
        el.enter(|cx| net.close_all_listeners_after(cx, VDur::millis(50)));
        el.run();
        assert_eq!(client.responses()[0].body, b"42-7");
    }

    #[test]
    fn unmatched_requests_get_404() {
        let mut router = Router::new();
        router.get("/known", |cx, _req, r| r.send(cx, Response::ok("")));
        let (mut el, net) = serve(3, router);
        let client = el.enter(|cx| {
            let c = HttpClient::connect(cx, &net, 80);
            c.get(cx, "/unknown");
            c.post(cx, "/known", b""); // Wrong method.
            c.close_after(cx, VDur::millis(40));
            c
        });
        el.enter(|cx| net.close_all_listeners_after(cx, VDur::millis(50)));
        el.run();
        let statuses: Vec<u16> = client.responses().iter().map(|r| r.status).collect();
        assert_eq!(statuses, vec![404, 404]);
    }

    #[test]
    fn malformed_request_gets_400() {
        let router = Router::new();
        let (mut el, net) = serve(4, router);
        let client = el.enter(|cx| {
            let c = Client::connect(cx, &net, 80);
            c.send(cx, b"garbage without a frame".to_vec());
            c.close_after(cx, VDur::millis(40));
            c
        });
        el.enter(|cx| net.close_all_listeners_after(cx, VDur::millis(50)));
        el.run();
        let got = client.received();
        assert_eq!(decode_response(&got[0]).unwrap().status, 400);
    }

    #[test]
    fn responder_sends_once() {
        let mut router = Router::new();
        router.get("/double", |cx, _req, responder| {
            responder.send(cx, Response::ok("first"));
            assert!(responder.responded());
            responder.send(cx, Response::ok("second")); // Ignored.
        });
        let (mut el, net) = serve(5, router);
        let client = el.enter(|cx| {
            let c = HttpClient::connect(cx, &net, 80);
            c.get(cx, "/double");
            c.close_after(cx, VDur::millis(40));
            c
        });
        el.enter(|cx| net.close_all_listeners_after(cx, VDur::millis(50)));
        el.run();
        let responses = client.responses();
        assert_eq!(responses.len(), 1);
        assert_eq!(responses[0].body, b"first");
    }

    #[test]
    fn async_handlers_can_respond_later() {
        let mut router = Router::new();
        router.get("/slow", |cx, _req, responder| {
            cx.set_timeout(VDur::millis(3), move |cx| {
                responder.send(cx, Response::ok("eventually"));
            });
        });
        let (mut el, net) = serve(6, router);
        let client = el.enter(|cx| {
            let c = HttpClient::connect(cx, &net, 80);
            c.get(cx, "/slow");
            c.close_after(cx, VDur::millis(40));
            c
        });
        el.enter(|cx| net.close_all_listeners_after(cx, VDur::millis(50)));
        el.run();
        assert_eq!(client.responses()[0].body, b"eventually");
    }

    #[test]
    fn pipelined_requests_answered_in_order() {
        let mut router = Router::new();
        router.get("/echo/:n", |cx, req, responder| {
            let n = req.param("n").unwrap().to_string();
            responder.send(cx, Response::ok(n));
        });
        let (mut el, net) = serve(7, router);
        let client = el.enter(|cx| {
            let c = HttpClient::connect(cx, &net, 80);
            for n in 0..6 {
                c.get(cx, &format!("/echo/{n}"));
            }
            c.close_after(cx, VDur::millis(60));
            c
        });
        el.enter(|cx| net.close_all_listeners_after(cx, VDur::millis(70)));
        el.run();
        let bodies: Vec<Vec<u8>> = client.responses().into_iter().map(|r| r.body).collect();
        assert_eq!(
            bodies,
            (0..6)
                .map(|n| n.to_string().into_bytes())
                .collect::<Vec<_>>()
        );
    }
}
