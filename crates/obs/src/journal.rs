//! Campaign flight recorder: a bounded, single-writer ring-buffer
//! journal of structured campaign events with a `nodefz-journal-v1`
//! JSON-lines codec.
//!
//! A long campaign produces far more decisions than anyone can keep —
//! the journal keeps the most recent `cap` of them, counting what it
//! sheds, so a post-mortem always has the tail that led to the outcome.
//! The writer is the single owning thread (the campaign driver or the
//! orchestrator main loop); there is no interior locking or shared
//! mutability anywhere on the push path, and every push is O(1) with no
//! allocation beyond the event payload itself.
//!
//! On disk the journal is JSON lines: a header object
//! (`{"schema": "nodefz-journal-v1", ...}`) followed by one object per
//! retained event. Sequence numbers are global and monotone, so a gap
//! after the header's `dropped` count is visible evidence of shedding,
//! not corruption. Documents are persisted with [`crate::write_atomic`]
//! so a concurrent reader (the orchestrator scraping worker journals)
//! never sees a torn file.

use std::collections::VecDeque;
use std::io;
use std::path::Path;
use std::time::Instant;

use crate::{write_atomic, JsonValue, JsonWriter};

/// Schema identifier written in the journal header line.
pub const JOURNAL_SCHEMA: &str = "nodefz-journal-v1";

/// Default ring capacity used by campaign and orchestrator journals.
pub const JOURNAL_CAP: usize = 4096;

/// Outcome of classifying one completed run against the seen-class set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PruneOutcome {
    /// First time this HB-equivalence class was executed.
    Distinct,
    /// The class had already been executed; the run was redundant.
    Redundant,
    /// The class was dispositioned by a prefix-snapshot fork without a
    /// full execution.
    Forked,
    /// The per-environment outcome memo disagreed with this run — the
    /// soundness tripwire.
    Mismatch,
}

impl PruneOutcome {
    /// The on-disk spelling of this verdict.
    pub fn label(&self) -> &'static str {
        match self {
            PruneOutcome::Distinct => "distinct",
            PruneOutcome::Redundant => "redundant",
            PruneOutcome::Forked => "forked",
            PruneOutcome::Mismatch => "mismatch",
        }
    }

    /// Parses the on-disk spelling.
    pub fn parse(s: &str) -> Option<PruneOutcome> {
        match s {
            "distinct" => Some(PruneOutcome::Distinct),
            "redundant" => Some(PruneOutcome::Redundant),
            "forked" => Some(PruneOutcome::Forked),
            "mismatch" => Some(PruneOutcome::Mismatch),
            _ => None,
        }
    }
}

/// A worker process lifecycle transition, recorded by the orchestrator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkerState {
    /// The worker process was spawned.
    Spawned,
    /// The worker exited and was reaped (reason carries the outcome).
    Reaped,
    /// The worker's arm was quarantined (reason carries why).
    Quarantined,
}

impl WorkerState {
    /// The on-disk spelling of this state.
    pub fn label(&self) -> &'static str {
        match self {
            WorkerState::Spawned => "spawned",
            WorkerState::Reaped => "reaped",
            WorkerState::Quarantined => "quarantined",
        }
    }

    /// Parses the on-disk spelling.
    pub fn parse(s: &str) -> Option<WorkerState> {
        match s {
            "spawned" => Some(WorkerState::Spawned),
            "reaped" => Some(WorkerState::Reaped),
            "quarantined" => Some(WorkerState::Quarantined),
            _ => None,
        }
    }
}

/// One structured campaign event.
///
/// `exec` fields are completed-execution indices at the moment the event
/// was recorded, so events from one journal totally order against the
/// discovery curve in the matching `nodefz-metrics-v1` snapshot.
#[derive(Clone, Debug, PartialEq)]
pub enum JournalEvent {
    /// A bandit arm selection, with the decision-time posterior state.
    ///
    /// The campaign driver's UCB bandit fills `mean_reward`/`ucb`; the
    /// orchestrator's Thompson scheduler fills `successes`/`failures`.
    ArmPull {
        /// Completed executions when the pull was made.
        exec: u64,
        /// Arm label (`"GHO/aggressive"`, `"KUE/directed"`, ...).
        arm: String,
        /// Pulls of this arm so far, including this one.
        pulls: u64,
        /// Mean observed reward of the arm at decision time.
        mean_reward: f64,
        /// UCB bound at decision time (None before every arm has a pull,
        /// or under a posterior-sampling scheduler).
        ucb: Option<f64>,
        /// Beta-posterior success pseudo-count (Thompson scheduler).
        successes: Option<f64>,
        /// Beta-posterior failure pseudo-count (Thompson scheduler).
        failures: Option<f64>,
    },
    /// The Pruner's verdict for one classified run.
    Prune {
        /// Completed executions when the run was classified.
        exec: u64,
        /// The verdict.
        verdict: PruneOutcome,
    },
    /// A worker process lifecycle transition (orchestrator journals).
    Worker {
        /// Global work-item index.
        index: u64,
        /// Arm label the worker is running.
        arm: String,
        /// The transition.
        state: WorkerState,
        /// Outcome or quarantine reason (`"ok"`, `"crashed"`, ...).
        reason: Option<String>,
    },
    /// A unique-bug discovery, keyed by completed-execution index.
    Discovery {
        /// Completed executions when the bug first manifested.
        exec: u64,
        /// App abbreviation.
        app: String,
        /// Failure-signature site (the deduplication key's site part).
        site: String,
    },
}

impl JournalEvent {
    /// The `kind` discriminator written on the event's JSON line.
    pub fn kind(&self) -> &'static str {
        match self {
            JournalEvent::ArmPull { .. } => "arm_pull",
            JournalEvent::Prune { .. } => "prune",
            JournalEvent::Worker { .. } => "worker",
            JournalEvent::Discovery { .. } => "discovery",
        }
    }
}

/// One retained journal entry: the event plus its stamps.
#[derive(Clone, Debug, PartialEq)]
pub struct JournalEntry {
    /// Global monotone sequence number (gaps = shed events).
    pub seq: u64,
    /// Milliseconds since the journal was created.
    pub t_ms: u64,
    /// The event payload.
    pub event: JournalEvent,
}

/// Errors from [`Journal::decode`].
#[derive(Debug)]
pub struct JournalDecodeError {
    /// 1-based line the error was found on.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JournalDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "journal line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for JournalDecodeError {}

/// The bounded single-writer flight recorder.
pub struct Journal {
    cap: usize,
    start: Instant,
    buf: VecDeque<JournalEntry>,
    next_seq: u64,
    dropped: u64,
}

impl Journal {
    /// A new journal retaining at most `cap` events (`cap` ≥ 1).
    pub fn new(cap: usize) -> Journal {
        Journal {
            cap: cap.max(1),
            start: Instant::now(),
            buf: VecDeque::new(),
            next_seq: 0,
            dropped: 0,
        }
    }

    /// Records an event, stamped with the elapsed wall time since the
    /// journal was created. Sheds the oldest retained event when full.
    pub fn push(&mut self, event: JournalEvent) {
        let t_ms = self.start.elapsed().as_millis() as u64;
        self.push_at(t_ms, event);
    }

    /// Records an event with an explicit timestamp (deterministic tests,
    /// replaying a decoded journal).
    pub fn push_at(&mut self, t_ms: u64, event: JournalEvent) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(JournalEntry {
            seq: self.next_seq,
            t_ms,
            event,
        });
        self.next_seq += 1;
    }

    /// Retained entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &JournalEntry> {
        self.buf.iter()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Events shed because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Renders the `nodefz-journal-v1` JSON-lines document.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("schema", JOURNAL_SCHEMA);
        w.field_u64("cap", self.cap as u64);
        w.field_u64("dropped", self.dropped);
        w.field_u64("events", self.buf.len() as u64);
        w.end_object();
        out.push_str(&w.finish());
        out.push('\n');
        for entry in &self.buf {
            out.push_str(&encode_entry(entry));
            out.push('\n');
        }
        out
    }

    /// Parses a `nodefz-journal-v1` document back into a journal.
    ///
    /// The reconstructed journal preserves capacity, dropped count,
    /// sequence numbers, and timestamps; pushing into it continues the
    /// sequence.
    pub fn decode(text: &str) -> Result<Journal, JournalDecodeError> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines.next().ok_or(JournalDecodeError {
            line: 1,
            message: "empty document".into(),
        })?;
        let header = JsonValue::parse(header).map_err(|e| JournalDecodeError {
            line: 1,
            message: e.to_string(),
        })?;
        crate::schema::expect_schema(&header, JOURNAL_SCHEMA).map_err(|e| JournalDecodeError {
            line: 1,
            message: e.to_string(),
        })?;
        let cap = field_u64(&header, "cap", 1)? as usize;
        let dropped = field_u64(&header, "dropped", 1)?;
        let mut journal = Journal::new(cap);
        journal.dropped = dropped;
        journal.next_seq = dropped;
        for (idx, line) in lines {
            if line.is_empty() {
                continue;
            }
            let entry = decode_entry(line, idx + 1)?;
            if journal.buf.len() == journal.cap {
                return Err(JournalDecodeError {
                    line: idx + 1,
                    message: format!("more than cap={} events retained", journal.cap),
                });
            }
            if entry.seq < journal.next_seq {
                return Err(JournalDecodeError {
                    line: idx + 1,
                    message: format!("seq {} not monotone (next {})", entry.seq, journal.next_seq),
                });
            }
            journal.next_seq = entry.seq + 1;
            journal.buf.push_back(entry);
        }
        Ok(journal)
    }

    /// Atomically persists the document (temp file + rename).
    pub fn write(&self, path: &Path) -> io::Result<()> {
        write_atomic(path, &self.encode())
    }
}

/// Renders one entry as its JSON line (no trailing newline).
pub fn encode_entry(entry: &JournalEntry) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_u64("seq", entry.seq);
    w.field_u64("t_ms", entry.t_ms);
    w.field_str("kind", entry.event.kind());
    match &entry.event {
        JournalEvent::ArmPull {
            exec,
            arm,
            pulls,
            mean_reward,
            ucb,
            successes,
            failures,
        } => {
            w.field_u64("exec", *exec);
            w.field_str("arm", arm);
            w.field_u64("pulls", *pulls);
            w.field_f64("mean_reward", *mean_reward, 6);
            opt_f64(&mut w, "ucb", *ucb);
            opt_f64(&mut w, "successes", *successes);
            opt_f64(&mut w, "failures", *failures);
        }
        JournalEvent::Prune { exec, verdict } => {
            w.field_u64("exec", *exec);
            w.field_str("verdict", verdict.label());
        }
        JournalEvent::Worker {
            index,
            arm,
            state,
            reason,
        } => {
            w.field_u64("index", *index);
            w.field_str("arm", arm);
            w.field_str("state", state.label());
            match reason {
                Some(r) => w.field_str("reason", r),
                None => {
                    w.key("reason");
                    w.null();
                }
            }
        }
        JournalEvent::Discovery { exec, app, site } => {
            w.field_u64("exec", *exec);
            w.field_str("app", app);
            w.field_str("site", site);
        }
    }
    w.end_object();
    w.finish()
}

/// Parses one event line (1-based `line` for error reporting).
pub fn decode_entry(text: &str, line: usize) -> Result<JournalEntry, JournalDecodeError> {
    let err = |message: String| JournalDecodeError { line, message };
    let v = JsonValue::parse(text).map_err(|e| err(e.to_string()))?;
    let seq = field_u64(&v, "seq", line)?;
    let t_ms = field_u64(&v, "t_ms", line)?;
    let kind = v
        .get("kind")
        .and_then(|k| k.as_str())
        .ok_or_else(|| err("missing kind".into()))?;
    let event = match kind {
        "arm_pull" => JournalEvent::ArmPull {
            exec: field_u64(&v, "exec", line)?,
            arm: field_str(&v, "arm", line)?,
            pulls: field_u64(&v, "pulls", line)?,
            mean_reward: field_f64(&v, "mean_reward", line)?,
            ucb: opt_field_f64(&v, "ucb"),
            successes: opt_field_f64(&v, "successes"),
            failures: opt_field_f64(&v, "failures"),
        },
        "prune" => {
            let verdict = field_str(&v, "verdict", line)?;
            JournalEvent::Prune {
                exec: field_u64(&v, "exec", line)?,
                verdict: PruneOutcome::parse(&verdict)
                    .ok_or_else(|| err(format!("bad prune verdict {verdict:?}")))?,
            }
        }
        "worker" => {
            let state = field_str(&v, "state", line)?;
            JournalEvent::Worker {
                index: field_u64(&v, "index", line)?,
                arm: field_str(&v, "arm", line)?,
                state: WorkerState::parse(&state)
                    .ok_or_else(|| err(format!("bad worker state {state:?}")))?,
                reason: v
                    .get("reason")
                    .and_then(|r| r.as_str())
                    .map(|s| s.to_string()),
            }
        }
        "discovery" => JournalEvent::Discovery {
            exec: field_u64(&v, "exec", line)?,
            app: field_str(&v, "app", line)?,
            site: field_str(&v, "site", line)?,
        },
        other => return Err(err(format!("unknown event kind {other:?}"))),
    };
    Ok(JournalEntry { seq, t_ms, event })
}

fn opt_f64(w: &mut JsonWriter, key: &str, v: Option<f64>) {
    match v {
        Some(x) => w.field_f64(key, x, 6),
        None => {
            w.key(key);
            w.null();
        }
    }
}

fn field_u64(v: &JsonValue, key: &str, line: usize) -> Result<u64, JournalDecodeError> {
    v.get(key)
        .and_then(|x| x.as_u64())
        .ok_or_else(|| JournalDecodeError {
            line,
            message: format!("missing or non-integer field {key:?}"),
        })
}

fn field_f64(v: &JsonValue, key: &str, line: usize) -> Result<f64, JournalDecodeError> {
    v.get(key)
        .and_then(|x| x.as_f64())
        .ok_or_else(|| JournalDecodeError {
            line,
            message: format!("missing or non-number field {key:?}"),
        })
}

fn field_str(v: &JsonValue, key: &str, line: usize) -> Result<String, JournalDecodeError> {
    v.get(key)
        .and_then(|x| x.as_str())
        .map(|s| s.to_string())
        .ok_or_else(|| JournalDecodeError {
            line,
            message: format!("missing or non-string field {key:?}"),
        })
}

fn opt_field_f64(v: &JsonValue, key: &str) -> Option<f64> {
    v.get(key).and_then(|x| x.as_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pull(exec: u64) -> JournalEvent {
        JournalEvent::ArmPull {
            exec,
            arm: "GHO/aggressive".into(),
            pulls: exec + 1,
            mean_reward: 0.25,
            ucb: Some(1.5),
            successes: None,
            failures: None,
        }
    }

    #[test]
    fn ring_sheds_oldest_and_counts_drops() {
        let mut j = Journal::new(3);
        for i in 0..5 {
            j.push_at(i, pull(i));
        }
        assert_eq!(j.len(), 3);
        assert_eq!(j.dropped(), 2);
        let seqs: Vec<u64> = j.entries().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
    }

    #[test]
    fn document_round_trips_byte_identically() {
        let mut j = Journal::new(8);
        j.push_at(0, pull(0));
        j.push_at(
            3,
            JournalEvent::Prune {
                exec: 1,
                verdict: PruneOutcome::Redundant,
            },
        );
        j.push_at(
            5,
            JournalEvent::Worker {
                index: 2,
                arm: "KUE/directed".into(),
                state: WorkerState::Quarantined,
                reason: Some("crashed".into()),
            },
        );
        j.push_at(
            9,
            JournalEvent::Discovery {
                exec: 7,
                app: "GHO".into(),
                site: "gho:user-row".into(),
            },
        );
        let text = j.encode();
        let back = Journal::decode(&text).expect("decodes");
        assert_eq!(back.encode(), text);
        assert_eq!(back.len(), 4);
        assert_eq!(back.dropped(), 0);
    }

    #[test]
    fn decode_continues_the_sequence_after_drops() {
        let mut j = Journal::new(2);
        for i in 0..4 {
            j.push_at(i, pull(i));
        }
        let mut back = Journal::decode(&j.encode()).expect("decodes");
        back.push_at(10, pull(99));
        assert_eq!(back.entries().last().expect("entry").seq, 4);
    }

    #[test]
    fn rejects_torn_and_malformed_documents() {
        assert!(Journal::decode("").is_err());
        assert!(Journal::decode("{\"schema\": \"wrong\"}\n").is_err());
        let mut j = Journal::new(4);
        j.push_at(0, pull(0));
        let text = j.encode();
        let torn = &text[..text.len() - 3];
        assert!(Journal::decode(torn).is_err());
    }
}
