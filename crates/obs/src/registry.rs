//! Lock-free sharded metrics registry.
//!
//! Layout is frozen by a [`RegistryBuilder`] before any worker starts;
//! each worker then owns a [`ShardHandle`] onto its private shard of
//! pre-allocated `AtomicU64` slots. Hot-path writes are single relaxed
//! atomic adds — no locks, no heap, no cross-shard traffic. Shards are
//! folded together only when [`Registry::snapshot`] runs on the
//! controller thread.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Identifies a counter registered with [`RegistryBuilder::counter`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterId(usize);

/// Identifies a histogram registered with [`RegistryBuilder::histogram`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramId(usize);

struct HistMeta {
    name: String,
    /// Strictly increasing upper bounds; bucket `i` counts observations
    /// `v <= bounds[i]`, with one extra overflow bucket past the end.
    bounds: Vec<u64>,
    /// Offset of this histogram's first slot in a shard's histogram
    /// slab. Slots are `bounds.len() + 1` buckets, then count, then sum.
    offset: usize,
}

impl HistMeta {
    fn slots(&self) -> usize {
        self.bounds.len() + 3
    }
}

struct Layout {
    counters: Vec<String>,
    hists: Vec<HistMeta>,
    hist_slots: usize,
}

struct ShardData {
    counters: Box<[AtomicU64]>,
    hist: Box<[AtomicU64]>,
}

impl ShardData {
    fn zeroed(layout: &Layout) -> ShardData {
        let zeros = |n: usize| (0..n).map(|_| AtomicU64::new(0)).collect();
        ShardData {
            counters: zeros(layout.counters.len()),
            hist: zeros(layout.hist_slots),
        }
    }
}

/// Declares the metric layout before the registry is built.
///
/// Registration is only possible here, not on the live registry: freezing
/// the layout up front is what lets [`ShardHandle`] index slots without
/// any synchronization.
#[derive(Default)]
pub struct RegistryBuilder {
    counters: Vec<String>,
    hists: Vec<(String, Vec<u64>)>,
}

impl RegistryBuilder {
    /// Starts an empty layout.
    pub fn new() -> RegistryBuilder {
        RegistryBuilder::default()
    }

    /// Registers a monotonically increasing counter.
    pub fn counter(&mut self, name: &str) -> CounterId {
        let id = CounterId(self.counters.len());
        self.counters.push(name.to_string());
        id
    }

    /// Registers a fixed-bucket histogram.
    ///
    /// `bounds` are inclusive upper bounds and must be strictly
    /// increasing; an implicit overflow bucket captures anything above
    /// the last bound.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn histogram(&mut self, name: &str, bounds: &[u64]) -> HistogramId {
        assert!(!bounds.is_empty(), "histogram {name:?} needs >= 1 bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram {name:?} bounds must be strictly increasing"
        );
        let id = HistogramId(self.hists.len());
        self.hists.push((name.to_string(), bounds.to_vec()));
        id
    }

    /// Freezes the layout and allocates `shards` independent shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn build(self, shards: usize) -> Registry {
        assert!(shards > 0, "registry needs >= 1 shard");
        let mut offset = 0;
        let hists: Vec<HistMeta> = self
            .hists
            .into_iter()
            .map(|(name, bounds)| {
                let meta = HistMeta {
                    name,
                    bounds,
                    offset,
                };
                offset += meta.slots();
                meta
            })
            .collect();
        let layout = Arc::new(Layout {
            counters: self.counters,
            hists,
            hist_slots: offset,
        });
        let shards = (0..shards)
            .map(|_| Arc::new(ShardData::zeroed(&layout)))
            .collect();
        Registry { layout, shards }
    }
}

/// The frozen registry: owns every shard, aggregates at scrape time.
pub struct Registry {
    layout: Arc<Layout>,
    shards: Vec<Arc<ShardData>>,
}

impl Registry {
    /// The number of shards this registry was built with.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The write handle for shard `i`. Handles are cheap `Arc` clones and
    /// `Send`, so each worker thread takes exactly one.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn shard(&self, i: usize) -> ShardHandle {
        ShardHandle {
            layout: Arc::clone(&self.layout),
            data: Arc::clone(&self.shards[i]),
        }
    }

    /// The current cross-shard total of one counter, without a full
    /// snapshot.
    pub fn counter_total(&self, id: CounterId) -> u64 {
        self.shards
            .iter()
            .map(|s| s.counters[id.0].load(Ordering::Relaxed))
            .sum()
    }

    /// Folds every shard into a point-in-time aggregate.
    ///
    /// Reads are relaxed: a snapshot taken while workers are writing is a
    /// consistent-enough monotone view, not a linearizable cut — exactly
    /// what periodic scraping needs.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let counters = self
            .layout
            .counters
            .iter()
            .enumerate()
            .map(|(i, name)| CounterSnapshot {
                name: name.clone(),
                value: self.counter_total(CounterId(i)),
            })
            .collect();
        let histograms = self
            .layout
            .hists
            .iter()
            .map(|meta| {
                let fold = |slot: usize| -> u64 {
                    self.shards
                        .iter()
                        .map(|s| s.hist[meta.offset + slot].load(Ordering::Relaxed))
                        .sum()
                };
                let nbuckets = meta.bounds.len() + 1;
                HistogramSnapshot {
                    name: meta.name.clone(),
                    bounds: meta.bounds.clone(),
                    buckets: (0..nbuckets).map(fold).collect(),
                    count: fold(nbuckets),
                    sum: fold(nbuckets + 1),
                }
            })
            .collect();
        RegistrySnapshot {
            counters,
            histograms,
        }
    }
}

/// A worker's private write handle onto one shard.
#[derive(Clone)]
pub struct ShardHandle {
    layout: Arc<Layout>,
    data: Arc<ShardData>,
}

impl ShardHandle {
    /// Adds `n` to a counter. One relaxed atomic add.
    #[inline]
    pub fn add(&self, id: CounterId, n: u64) {
        self.data.counters[id.0].fetch_add(n, Ordering::Relaxed);
    }

    /// Increments a counter by one.
    #[inline]
    pub fn inc(&self, id: CounterId) {
        self.add(id, 1);
    }

    /// Records one observation in a histogram: three relaxed atomic adds
    /// (bucket, count, sum), no heap.
    #[inline]
    pub fn observe(&self, id: HistogramId, v: u64) {
        let meta = &self.layout.hists[id.0];
        let bucket = meta.bounds.partition_point(|b| v > *b);
        let nbuckets = meta.bounds.len() + 1;
        self.data.hist[meta.offset + bucket].fetch_add(1, Ordering::Relaxed);
        self.data.hist[meta.offset + nbuckets].fetch_add(1, Ordering::Relaxed);
        self.data.hist[meta.offset + nbuckets + 1].fetch_add(v, Ordering::Relaxed);
    }
}

/// One counter's aggregated value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// The name given at registration.
    pub name: String,
    /// Sum across all shards.
    pub value: u64,
}

/// One histogram's aggregated buckets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// The name given at registration.
    pub name: String,
    /// Inclusive upper bounds, as registered.
    pub bounds: Vec<u64>,
    /// `bounds.len() + 1` bucket counts; the last is the overflow bucket.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Mean observed value, or 0.0 with no observations.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A point-in-time aggregate of every registered metric.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegistrySnapshot {
    /// Every counter, in registration order.
    pub counters: Vec<CounterSnapshot>,
    /// Every histogram, in registration order.
    pub histograms: Vec<HistogramSnapshot>,
}

impl RegistrySnapshot {
    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counters_aggregate_across_shards() {
        let mut b = RegistryBuilder::new();
        let execs = b.counter("execs");
        let bugs = b.counter("bugs");
        let reg = b.build(3);
        reg.shard(0).add(execs, 5);
        reg.shard(1).add(execs, 7);
        reg.shard(2).inc(execs);
        reg.shard(1).inc(bugs);
        assert_eq!(reg.counter_total(execs), 13);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("execs"), Some(13));
        assert_eq!(snap.counter("bugs"), Some(1));
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn histogram_buckets_partition_on_inclusive_upper_bounds() {
        let mut b = RegistryBuilder::new();
        let h = b.histogram("lat", &[10, 100, 1000]);
        let reg = b.build(2);
        for (shard, v) in [(0, 3), (1, 10), (0, 11), (1, 100), (0, 5000)] {
            reg.shard(shard).observe(h, v);
        }
        let snap = reg.snapshot();
        let hist = snap.histogram("lat").unwrap();
        assert_eq!(hist.buckets, vec![2, 2, 0, 1]);
        assert_eq!(hist.count, 5);
        assert_eq!(hist.sum, 3 + 10 + 11 + 100 + 5000);
        assert!((hist.mean() - hist.sum as f64 / 5.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_mean_is_zero() {
        let mut b = RegistryBuilder::new();
        b.histogram("lat", &[1]);
        let snap = b.build(1).snapshot();
        assert_eq!(snap.histogram("lat").unwrap().mean(), 0.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_monotone_bounds_are_rejected() {
        RegistryBuilder::new().histogram("bad", &[5, 5]);
    }

    #[test]
    #[should_panic(expected = ">= 1 shard")]
    fn zero_shards_are_rejected() {
        RegistryBuilder::new().build(0);
    }

    #[test]
    fn snapshot_preserves_registration_order() {
        let mut b = RegistryBuilder::new();
        b.counter("z");
        b.counter("a");
        let snap = b.build(1).snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["z", "a"]);
    }

    /// Satellite: sharded aggregation equals a sequential oracle under
    /// genuinely concurrent increments.
    #[test]
    fn concurrent_sharded_increments_match_sequential_oracle() {
        nodefz_check::forall("registry_concurrent_oracle", 40, |g| {
            let shards = 1 + g.below(4) as usize;
            let mut b = RegistryBuilder::new();
            let c = b.counter("c");
            let h = b.histogram("h", &[4, 16, 64]);
            let reg = b.build(shards);

            // Per-shard scripts drawn up front so the oracle can replay
            // them sequentially.
            let scripts: Vec<Vec<(u64, u64)>> = (0..shards)
                .map(|_| {
                    let ops = g.below(200) as usize;
                    (0..ops).map(|_| (g.below(5), g.below(100))).collect()
                })
                .collect();

            thread::scope(|scope| {
                for (i, script) in scripts.iter().enumerate() {
                    let handle = reg.shard(i);
                    scope.spawn(move || {
                        for &(add, val) in script {
                            handle.add(c, add);
                            handle.observe(h, val);
                        }
                    });
                }
            });

            let mut oracle_count = 0u64;
            let mut oracle_sum = 0u64;
            let mut oracle_buckets = [0u64; 4];
            for &(add, val) in scripts.iter().flatten() {
                oracle_count += add;
                oracle_sum += val;
                let idx = [4u64, 16, 64].iter().filter(|b| val > **b).count();
                oracle_buckets[idx] += 1;
            }

            let snap = reg.snapshot();
            assert_eq!(snap.counter("c"), Some(oracle_count));
            let hist = snap.histogram("h").unwrap();
            assert_eq!(hist.buckets, oracle_buckets.to_vec());
            assert_eq!(
                hist.count,
                scripts.iter().map(Vec::len).sum::<usize>() as u64
            );
            assert_eq!(hist.sum, oracle_sum);
        });
    }
}
