//! A dependency-free JSON emitter.
//!
//! The workspace cannot pull serde in an offline build, and before this
//! crate each report hand-rolled its own `format!` JSON (the bench
//! report, the repro corpus). [`JsonWriter`] centralizes the structural
//! bookkeeping — comma placement, nesting, string escaping — while the
//! callers keep full control over field order, so existing report shapes
//! are preserved byte-for-byte where tests pin them.

/// An append-only JSON writer with automatic comma placement.
///
/// Values are written depth-first: open a container, write fields or
/// elements, close it. Output uses `": "` after keys and `", "` between
/// siblings, with no newlines — compact but still grep-friendly.
///
/// ```
/// use nodefz_obs::JsonWriter;
/// let mut w = JsonWriter::new();
/// w.begin_object();
/// w.field_str("schema", "nodefz-metrics-v1");
/// w.key("runs");
/// w.u64(42);
/// w.end_object();
/// assert_eq!(w.finish(), r#"{"schema": "nodefz-metrics-v1", "runs": 42}"#);
/// ```
#[derive(Default)]
pub struct JsonWriter {
    out: String,
    /// One entry per open container: whether it already has a child (so
    /// the next sibling needs a comma).
    stack: Vec<bool>,
}

impl JsonWriter {
    /// Starts an empty document.
    pub fn new() -> JsonWriter {
        JsonWriter::default()
    }

    /// Consumes the writer and returns the document.
    ///
    /// # Panics
    ///
    /// Panics if any container is still open.
    pub fn finish(self) -> String {
        assert!(self.stack.is_empty(), "unclosed JSON container");
        self.out
    }

    fn before_value(&mut self) {
        if let Some(has_child) = self.stack.last_mut() {
            if *has_child {
                self.out.push_str(", ");
            }
            *has_child = true;
        }
    }

    /// Opens an object (`{`), as a field value or array element.
    pub fn begin_object(&mut self) {
        self.before_value();
        self.out.push('{');
        self.stack.push(false);
    }

    /// Closes the innermost object.
    pub fn end_object(&mut self) {
        assert!(self.stack.pop().is_some(), "end_object with nothing open");
        self.out.push('}');
    }

    /// Opens an array (`[`), as a field value or array element.
    pub fn begin_array(&mut self) {
        self.before_value();
        self.out.push('[');
        self.stack.push(false);
    }

    /// Closes the innermost array.
    pub fn end_array(&mut self) {
        assert!(self.stack.pop().is_some(), "end_array with nothing open");
        self.out.push(']');
    }

    /// Writes an object key. The next write supplies its value.
    pub fn key(&mut self, name: &str) {
        self.before_value();
        self.write_escaped(name);
        self.out.push_str(": ");
        // The value that follows is this key's payload, not a sibling.
        if let Some(has_child) = self.stack.last_mut() {
            *has_child = false;
        }
    }

    /// Writes a string value.
    pub fn str(&mut self, v: &str) {
        self.before_value();
        self.write_escaped(v);
    }

    /// Writes an unsigned integer value.
    pub fn u64(&mut self, v: u64) {
        self.before_value();
        self.out.push_str(&v.to_string());
    }

    /// Writes a float with `decimals` digits after the point.
    ///
    /// Non-finite values (which JSON cannot represent) are written as
    /// `null`.
    pub fn f64(&mut self, v: f64, decimals: usize) {
        self.before_value();
        if v.is_finite() {
            self.out.push_str(&format!("{v:.decimals$}"));
        } else {
            self.out.push_str("null");
        }
    }

    /// Writes a boolean value.
    pub fn bool(&mut self, v: bool) {
        self.before_value();
        self.out.push_str(if v { "true" } else { "false" });
    }

    /// Writes `null`.
    pub fn null(&mut self) {
        self.before_value();
        self.out.push_str("null");
    }

    /// Embeds a pre-serialized JSON value verbatim, as a field value or
    /// array element. The caller guarantees `json` is one complete JSON
    /// value; the writer only handles comma placement around it. This is
    /// how one document (e.g. `nodefz-apicov-v1`) nests inside another
    /// without re-walking its structure.
    pub fn raw(&mut self, json: &str) {
        self.before_value();
        self.out.push_str(json.trim());
    }

    /// `key` + [`str`](JsonWriter::str).
    pub fn field_str(&mut self, name: &str, v: &str) {
        self.key(name);
        self.str(v);
    }

    /// `key` + [`u64`](JsonWriter::u64).
    pub fn field_u64(&mut self, name: &str, v: u64) {
        self.key(name);
        self.u64(v);
    }

    /// `key` + [`f64`](JsonWriter::f64).
    pub fn field_f64(&mut self, name: &str, v: f64, decimals: usize) {
        self.key(name);
        self.f64(v, decimals);
    }

    /// `key` + [`bool`](JsonWriter::bool).
    pub fn field_bool(&mut self, name: &str, v: bool) {
        self.key(name);
        self.bool(v);
    }

    fn write_escaped(&mut self, s: &str) {
        self.out.push('"');
        for c in s.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_structures_place_commas_correctly() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("schema", "test-v1");
        w.key("arms");
        w.begin_array();
        for i in 0..2u64 {
            w.begin_object();
            w.field_u64("id", i);
            w.field_f64("score", 0.5, 3);
            w.end_object();
        }
        w.end_array();
        w.field_bool("done", true);
        w.end_object();
        assert_eq!(
            w.finish(),
            r#"{"schema": "test-v1", "arms": [{"id": 0, "score": 0.500}, {"id": 1, "score": 0.500}], "done": true}"#
        );
    }

    #[test]
    fn strings_escape_specials_and_control_chars() {
        let mut w = JsonWriter::new();
        w.str("a\"b\\c\nd\te\u{1}");
        assert_eq!(w.finish(), r#""a\"b\\c\nd\te\u0001""#);
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut w = JsonWriter::new();
        w.begin_array();
        w.f64(f64::NAN, 2);
        w.f64(f64::INFINITY, 2);
        w.f64(1.5, 2);
        w.end_array();
        assert_eq!(w.finish(), "[null, null, 1.50]");
    }

    #[test]
    fn empty_containers() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("a");
        w.begin_array();
        w.end_array();
        w.key("b");
        w.begin_object();
        w.end_object();
        w.key("c");
        w.null();
        w.end_object();
        assert_eq!(w.finish(), r#"{"a": [], "b": {}, "c": null}"#);
    }

    #[test]
    fn raw_embeds_a_value_with_sibling_commas() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_u64("n", 1);
        w.key("inner");
        w.raw(r#"{"schema":"nodefz-apicov-v1","programs":3}"#);
        w.field_bool("done", true);
        w.end_object();
        assert_eq!(
            w.finish(),
            r#"{"n": 1, "inner": {"schema":"nodefz-apicov-v1","programs":3}, "done": true}"#
        );
    }

    #[test]
    #[should_panic(expected = "unclosed")]
    fn finish_rejects_open_containers() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.finish();
    }
}
