//! Shared schema-version validation for persisted documents.
//!
//! Every persisted artifact in this workspace is versioned — JSON
//! documents carry a `"schema"` field (`nodefz-metrics-v1`,
//! `nodefz-throughput-v2`, …), text formats a first-line header
//! (`nodefz-trace v1`, `nodefz-repro v1`). Before this module each
//! reader hand-rolled the check, and the hand-rolled copies drifted:
//! some returned strings, some typed errors, and some silently treated a
//! wrong version as a missing file. These helpers are the one shared
//! implementation, with a typed error that always distinguishes "no
//! version at all" from "a version this build does not understand" —
//! the latter is the signal that data from a newer tool reached an older
//! reader, which must never be mistaken for absence.

use std::fmt;

use crate::parse::JsonValue;

/// Why a document failed schema validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SchemaError {
    /// The document carries no schema/version marker at all.
    Missing {
        /// The marker the reader expected.
        expected: String,
    },
    /// The document names a schema this reader does not understand.
    Mismatch {
        /// The marker the reader expected.
        expected: String,
        /// The marker the document actually carries.
        found: String,
    },
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::Missing { expected } => {
                write!(f, "missing schema marker (expected '{expected}')")
            }
            SchemaError::Mismatch { expected, found } => {
                write!(f, "unsupported schema '{found}' (expected '{expected}')")
            }
        }
    }
}

impl std::error::Error for SchemaError {}

/// Checks that a parsed JSON document's `"schema"` field equals
/// `expected`.
///
/// # Errors
///
/// [`SchemaError::Missing`] when the field is absent or not a string,
/// [`SchemaError::Mismatch`] when it names a different schema.
pub fn expect_schema(doc: &JsonValue, expected: &str) -> Result<(), SchemaError> {
    expect_schema_any(doc, &[expected]).map(|_| ())
}

/// Checks a parsed JSON document's `"schema"` field against a set of
/// accepted schemas (a reader spanning a v1 → v2 migration) and returns
/// the one that matched.
///
/// # Errors
///
/// As [`expect_schema`]; the error's `expected` joins the accepted set
/// with `|`.
pub fn expect_schema_any<'a>(
    doc: &JsonValue,
    accepted: &[&'a str],
) -> Result<&'a str, SchemaError> {
    let expected = || accepted.join("|");
    match doc.get("schema").and_then(|s| s.as_str()) {
        None => Err(SchemaError::Missing {
            expected: expected(),
        }),
        Some(found) => accepted
            .iter()
            .find(|s| **s == found)
            .copied()
            .ok_or_else(|| SchemaError::Mismatch {
                expected: expected(),
                found: found.to_string(),
            }),
    }
}

/// Checks a text document's version header line against `expected`
/// (e.g. `"nodefz-trace v1"`). A line that names the same format family
/// — same text up to the last space — but a different version reports
/// [`SchemaError::Mismatch`]; anything else reports
/// [`SchemaError::Missing`].
///
/// # Errors
///
/// See above.
pub fn expect_header(line: &str, expected: &str) -> Result<(), SchemaError> {
    let line = line.trim();
    if line == expected {
        return Ok(());
    }
    let family = expected.rsplit_once(' ').map_or(expected, |(f, _)| f);
    if line.starts_with(family) {
        Err(SchemaError::Mismatch {
            expected: expected.to_string(),
            found: line.to_string(),
        })
    } else {
        Err(SchemaError::Missing {
            expected: expected.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_schema_checks_distinguish_missing_from_mismatch() {
        let good = JsonValue::parse("{\"schema\": \"nodefz-x-v1\"}").unwrap();
        assert_eq!(expect_schema(&good, "nodefz-x-v1"), Ok(()));
        let newer = JsonValue::parse("{\"schema\": \"nodefz-x-v9\"}").unwrap();
        assert!(matches!(
            expect_schema(&newer, "nodefz-x-v1"),
            Err(SchemaError::Mismatch { found, .. }) if found == "nodefz-x-v9"
        ));
        let absent = JsonValue::parse("{\"runs\": 3}").unwrap();
        assert!(matches!(
            expect_schema(&absent, "nodefz-x-v1"),
            Err(SchemaError::Missing { .. })
        ));
    }

    #[test]
    fn schema_any_returns_the_matched_version() {
        let v2 = JsonValue::parse("{\"schema\": \"nodefz-x-v2\"}").unwrap();
        assert_eq!(
            expect_schema_any(&v2, &["nodefz-x-v1", "nodefz-x-v2"]),
            Ok("nodefz-x-v2")
        );
        let v3 = JsonValue::parse("{\"schema\": \"nodefz-x-v3\"}").unwrap();
        let err = expect_schema_any(&v3, &["nodefz-x-v1", "nodefz-x-v2"]).unwrap_err();
        assert!(err.to_string().contains("nodefz-x-v1|nodefz-x-v2"));
    }

    #[test]
    fn header_checks_distinguish_wrong_version_from_garbage() {
        assert_eq!(expect_header("nodefz-trace v1", "nodefz-trace v1"), Ok(()));
        assert_eq!(
            expect_header("  nodefz-trace v1  ", "nodefz-trace v1"),
            Ok(())
        );
        assert!(matches!(
            expect_header("nodefz-trace v7", "nodefz-trace v1"),
            Err(SchemaError::Mismatch { found, .. }) if found == "nodefz-trace v7"
        ));
        assert!(matches!(
            expect_header("pool concurrent 4", "nodefz-trace v1"),
            Err(SchemaError::Missing { .. })
        ));
    }
}
