//! chrome://tracing exporter (feature `rt`).
//!
//! Collects the loop's [`TraceEvent`]s and renders them as a Chrome
//! Trace Event Format document — an object with a `traceEvents` array of
//! complete (`"ph": "X"`) events — which loads directly in Perfetto or
//! `chrome://tracing`. Timestamps are the run's *virtual* microseconds,
//! so traces of the same seed line up exactly; the measured wall time of
//! each span rides along in `args.wall_ns`.

use nodefz_rt::{TraceEvent, TraceEventSink};

use crate::JsonWriter;

struct Span {
    name: &'static str,
    cat: &'static str,
    ts_ns: u64,
    dur_ns: u64,
    wall_ns: u64,
}

/// A [`TraceEventSink`] that buffers spans and serializes them to
/// chrome-trace JSON.
///
/// Wrap it in `Rc<RefCell<...>>`, hand it to `ObsHandle::with_sink`, run
/// the loop, then call [`ChromeTrace::to_json`].
pub struct ChromeTrace {
    spans: Vec<Span>,
    pid: u64,
    tid: u64,
    process_name: Option<String>,
    thread_name: Option<String>,
}

impl Default for ChromeTrace {
    fn default() -> ChromeTrace {
        ChromeTrace {
            spans: Vec::new(),
            pid: 1,
            tid: 1,
            process_name: None,
            thread_name: None,
        }
    }
}

impl ChromeTrace {
    /// An empty trace.
    pub fn new() -> ChromeTrace {
        ChromeTrace::default()
    }

    /// Names the process/thread this trace's spans belong to.
    ///
    /// When set, [`ChromeTrace::to_json`] leads the event array with
    /// `"ph": "M"` `process_name`/`thread_name` metadata events and puts
    /// every span on `pid`, so merging several workers' traces into one
    /// document yields labeled tracks in Perfetto instead of bare pids.
    pub fn set_identity(&mut self, pid: u64, process_name: &str, thread_name: &str) {
        self.pid = pid;
        self.tid = 1;
        self.process_name = Some(process_name.to_string());
        self.thread_name = Some(thread_name.to_string());
    }

    /// How many spans were collected.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether no spans were collected.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Renders the chrome-trace document.
    ///
    /// `ts`/`dur` are virtual microseconds (fractional, since the loop
    /// tracks nanoseconds); every event lives on `pid` 1 / `tid` 1 so
    /// nesting (demux inside poll, callbacks inside phases) renders as a
    /// flame graph on one track.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("displayTimeUnit", "ms");
        w.key("traceEvents");
        w.begin_array();
        if let Some(name) = &self.process_name {
            metadata_event(&mut w, "process_name", self.pid, self.tid, name);
        }
        if let Some(name) = &self.thread_name {
            metadata_event(&mut w, "thread_name", self.pid, self.tid, name);
        }
        for s in &self.spans {
            w.begin_object();
            w.field_str("name", s.name);
            w.field_str("cat", s.cat);
            w.field_str("ph", "X");
            w.field_u64("pid", self.pid);
            w.field_u64("tid", self.tid);
            w.field_f64("ts", s.ts_ns as f64 / 1_000.0, 3);
            w.field_f64("dur", s.dur_ns as f64 / 1_000.0, 3);
            w.key("args");
            w.begin_object();
            w.field_u64("wall_ns", s.wall_ns);
            w.end_object();
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }
}

impl TraceEventSink for ChromeTrace {
    fn event(&mut self, ev: &TraceEvent<'_>) {
        // Loop span names are all 'static labels; the borrow in the event
        // is shortened by the trait signature, so match them back to the
        // static set rather than allocating per span.
        let name = static_name(ev.name);
        self.spans.push(Span {
            name,
            cat: ev.cat,
            ts_ns: ev.start.as_nanos(),
            dur_ns: ev.dur.as_nanos(),
            wall_ns: ev.wall_ns,
        });
    }
}

/// Emits one `"ph": "M"` metadata event naming a process or thread.
fn metadata_event(w: &mut JsonWriter, kind: &str, pid: u64, tid: u64, name: &str) {
    w.begin_object();
    w.field_str("name", kind);
    w.field_str("ph", "M");
    w.field_u64("pid", pid);
    w.field_u64("tid", tid);
    w.key("args");
    w.begin_object();
    w.field_str("name", name);
    w.end_object();
    w.end_object();
}

/// Maps a span name back to its `'static` label.
///
/// Every name the loop emits is a [`nodefz_rt::obs::Phase::label`] or a
/// [`nodefz_rt::CbKind::label`]; anything else (a future custom span)
/// falls back to a generic label rather than allocating in the hot path.
fn static_name(name: &str) -> &'static str {
    for p in nodefz_rt::obs::Phase::all() {
        if p.label() == name {
            return p.label();
        }
    }
    for k in nodefz_rt::CbKind::all() {
        if k.label() == name {
            return k.label();
        }
    }
    "span"
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodefz_rt::{VDur, VTime};

    fn ev(name: &'static str, cat: &'static str, start: u64, dur: u64) -> TraceEvent<'static> {
        TraceEvent {
            name,
            cat,
            start: VTime(start),
            dur: VDur(dur),
            wall_ns: 42,
        }
    }

    #[test]
    fn collects_and_serializes_complete_events() {
        let mut t = ChromeTrace::new();
        assert!(t.is_empty());
        t.event(&ev("poll", "phase", 1_000, 2_500));
        t.event(&ev("timer", "callback", 1_500, 500));
        assert_eq!(t.len(), 2);
        let json = t.to_json();
        assert!(json.starts_with(r#"{"displayTimeUnit": "ms", "traceEvents": ["#));
        assert!(json.contains(r#""name": "poll""#), "{json}");
        assert!(json.contains(r#""ph": "X""#), "{json}");
        // 1000 ns -> 1.000 us, 2500 ns -> 2.500 us.
        assert!(json.contains(r#""ts": 1.000, "dur": 2.500"#), "{json}");
        assert!(json.contains(r#""args": {"wall_ns": 42}"#), "{json}");
    }

    #[test]
    fn identity_emits_metadata_events_and_moves_spans_to_the_pid() {
        let mut t = ChromeTrace::new();
        t.set_identity(7, "worker: GHO/aggressive", "loop");
        t.event(&ev("poll", "phase", 0, 1_000));
        let json = t.to_json();
        assert!(
            json.contains(
                r#"{"name": "process_name", "ph": "M", "pid": 7, "tid": 1, "args": {"name": "worker: GHO/aggressive"}}"#
            ),
            "{json}"
        );
        assert!(
            json.contains(r#"{"name": "thread_name", "ph": "M", "pid": 7, "tid": 1, "args": {"name": "loop"}}"#),
            "{json}"
        );
        assert!(json.contains(r#""ph": "X", "pid": 7, "tid": 1"#), "{json}");
    }

    #[test]
    fn unknown_names_fall_back_without_breaking_the_document() {
        let mut t = ChromeTrace::new();
        t.event(&ev("bespoke", "phase", 0, 1));
        assert!(t.to_json().contains(r#""name": "span""#));
    }

    #[test]
    fn loop_labels_round_trip() {
        assert_eq!(static_name("poll"), "poll");
        assert_eq!(static_name("pool-done"), "pool-done");
    }
}
