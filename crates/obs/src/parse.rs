//! A dependency-free JSON reader, the counterpart of [`JsonWriter`].
//!
//! The orchestrator consumes documents other processes wrote — worker
//! `nodefz-metrics-v1` snapshots, `--list --json` arm enumerations — and
//! the workspace cannot pull serde in an offline build, so this module
//! provides the minimal recursive-descent parser those consumers need:
//! every value becomes a [`JsonValue`] tree with path-style accessors.
//!
//! Numbers are held as `f64` (every producer in this workspace emits
//! either small integers or fixed-point floats, both exact in a double's
//! 53-bit mantissa). Parsing is strict about structure — a torn or
//! truncated document fails with the byte offset — which is exactly what
//! a crash-robust reader wants: a half-written snapshot must be an error,
//! never a silently short document.
//!
//! [`JsonWriter`]: crate::JsonWriter

use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in document order (keys are not deduplicated).
    Obj(Vec<(String, JsonValue)>),
}

/// Why a document failed to parse: a message and the byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonParseError {
    /// What was expected or found.
    pub message: String,
    /// Byte offset into the input where parsing stopped.
    pub offset: usize,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonParseError {}

impl JsonValue {
    /// Parses one complete JSON document; trailing garbage is an error.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonParseError`] naming the first malformed byte.
    pub fn parse(text: &str) -> Result<JsonValue, JsonParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing data after document"));
        }
        Ok(value)
    }

    /// Object field lookup (first occurrence); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an unsigned integer (must be whole and
    /// in range).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        (n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64).then_some(n as u64)
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonParseError {
        JsonParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonParseError> {
        self.eat(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonParseError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy unescaped runs in one shot.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs: only the BMP escapes our
                            // writer emits need to round-trip, but accept
                            // pairs for completeness.
                            let ch = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((u32::from(code) - 0xD800) << 10)
                                        + (u32::from(low) - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(u32::from(code))
                            };
                            out.push(ch.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonParseError> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let code = u16::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII span");
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| JsonParseError {
                message: format!("bad number '{text}'"),
                offset: start,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::JsonWriter;

    #[test]
    fn parses_the_shapes_our_writers_emit() {
        let doc = r#"{"schema": "nodefz-metrics-v1", "runs": 42, "execs_per_sec": 17.5, "finished": true, "arms": [{"app": "KUE", "ucb_bound": null}], "empty": []}"#;
        let v = JsonValue::parse(doc).unwrap();
        assert_eq!(v.get("schema").unwrap().as_str(), Some("nodefz-metrics-v1"));
        assert_eq!(v.get("runs").unwrap().as_u64(), Some(42));
        assert_eq!(v.get("execs_per_sec").unwrap().as_f64(), Some(17.5));
        assert_eq!(v.get("finished").unwrap().as_bool(), Some(true));
        let arms = v.get("arms").unwrap().as_array().unwrap();
        assert_eq!(arms[0].get("app").unwrap().as_str(), Some("KUE"));
        assert_eq!(arms[0].get("ucb_bound"), Some(&JsonValue::Null));
        assert_eq!(v.get("empty").unwrap().as_array(), Some(&[][..]));
    }

    #[test]
    fn round_trips_writer_output_with_escapes() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("site", "lost \"3\" of\n12\tjobs\\x\u{1}");
        w.field_f64("score", -0.125, 3);
        w.key("nested");
        w.begin_array();
        w.u64(u64::from(u32::MAX));
        w.bool(false);
        w.null();
        w.end_array();
        w.end_object();
        let v = JsonValue::parse(&w.finish()).unwrap();
        assert_eq!(
            v.get("site").unwrap().as_str(),
            Some("lost \"3\" of\n12\tjobs\\x\u{1}")
        );
        assert_eq!(v.get("score").unwrap().as_f64(), Some(-0.125));
        let nested = v.get("nested").unwrap().as_array().unwrap();
        assert_eq!(nested[0].as_u64(), Some(u64::from(u32::MAX)));
        assert_eq!(nested[1].as_bool(), Some(false));
        assert_eq!(nested[2], JsonValue::Null);
    }

    #[test]
    fn torn_documents_are_errors_not_short_values() {
        // A truncated snapshot (the crash-robustness case) must fail.
        for torn in [
            r#"{"schema": "nodefz-metrics-v1", "runs": 4"#,
            r#"{"arms": [{"app": "KUE"}"#,
            r#"{"s": "unterminat"#,
            "",
            "{} trailing",
            r#"{"a" 1}"#,
            r#"[1, 2,"#,
        ] {
            assert!(JsonValue::parse(torn).is_err(), "accepted torn: {torn:?}");
        }
    }

    #[test]
    fn numbers_and_unicode_edge_cases() {
        let v = JsonValue::parse(r#"[-3, 2.5e2, 0, "é😀"]"#).unwrap();
        let items = v.as_array().unwrap();
        assert_eq!(items[0].as_f64(), Some(-3.0));
        assert_eq!(items[0].as_u64(), None, "negative is not u64");
        assert_eq!(items[1].as_f64(), Some(250.0));
        assert_eq!(items[2].as_u64(), Some(0));
        assert_eq!(items[3].as_str(), Some("é😀"));
        assert!(JsonValue::parse("[1.5.5]").is_err());
        assert!(JsonValue::parse(r#""\ud800""#).is_err(), "lone surrogate");
    }

    #[test]
    fn errors_carry_a_useful_offset() {
        let err = JsonValue::parse(r#"{"a": }"#).unwrap_err();
        assert_eq!(err.offset, 6);
        assert!(err.to_string().contains("byte 6"), "{err}");
    }
}
