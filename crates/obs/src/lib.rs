//! nodefz-obs: zero-overhead-when-off telemetry for Node.fz campaigns.
//!
//! The paper's evaluation is built on observables — bug manifestation
//! rates (Fig. 6), schedule diversity (Fig. 7), and runtime overhead
//! (§5.4) — and a long-running fuzzing campaign needs the same signals
//! continuously, not just in a post-mortem summary. This crate provides
//! the shared substrate:
//!
//! * [`Registry`] / [`ShardHandle`] — a lock-free metrics registry of
//!   per-worker sharded counters and fixed-bucket histograms. All hot-path
//!   operations are relaxed `AtomicU64` adds on pre-allocated slots; the
//!   sharded values are only folded together at scrape time.
//! * [`ObsLevel`] — the runtime knob layered on top of the compile-time
//!   `obs` cargo features downstream crates define. The default build
//!   compiles none of the loop instrumentation at all.
//! * [`JsonWriter`] — a dependency-free JSON emitter shared by the
//!   `nodefz-metrics-v1` snapshot writer, the `nodefz-throughput-v1`
//!   bench report, and the chrome-trace exporter.
//! * [`JsonValue`] — the matching reader: a strict recursive-descent
//!   parser for consumers of those documents in *other* processes (the
//!   campaign orchestrator reading worker snapshots).
//! * [`expect_schema`] / [`expect_header`] — the shared schema-version
//!   gate every persisted-document reader goes through, with a typed
//!   [`SchemaError`] that distinguishes a missing version marker from a
//!   version this build does not understand.
//! * [`write_atomic`] — temp-file-plus-rename snapshot persistence, so a
//!   concurrent reader never observes a torn document.
//! * [`Journal`] — the campaign flight recorder: a bounded single-writer
//!   ring of structured events (arm pulls with bandit state, prune
//!   verdicts, worker lifecycle, discoveries) with the
//!   `nodefz-journal-v1` JSON-lines codec.
//! * [`ChromeTrace`] (feature `rt`) — a `TraceEventSink` that collects a
//!   single run's loop-phase and callback timeline in chrome://tracing
//!   format, loadable in Perfetto.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod fsio;
mod journal;
mod json;
mod parse;
mod registry;
mod schema;

#[cfg(feature = "rt")]
mod chrome;

pub use fsio::write_atomic;
pub use journal::{
    decode_entry, encode_entry, Journal, JournalDecodeError, JournalEntry, JournalEvent,
    PruneOutcome, WorkerState, JOURNAL_CAP, JOURNAL_SCHEMA,
};
pub use json::JsonWriter;
pub use parse::{JsonParseError, JsonValue};
pub use registry::{
    CounterId, CounterSnapshot, HistogramId, HistogramSnapshot, Registry, RegistryBuilder,
    RegistrySnapshot, ShardHandle,
};
pub use schema::{expect_header, expect_schema, expect_schema_any, SchemaError};

#[cfg(feature = "rt")]
pub use chrome::ChromeTrace;

/// How much telemetry an observed run should collect.
///
/// The compile-time `obs` features decide whether instrumentation code
/// exists at all; `ObsLevel` is the runtime dial on top of it. A binary
/// built with telemetry compiled in still defaults to [`ObsLevel::Off`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum ObsLevel {
    /// No telemetry: no registry writes, no phase timing, no trace events.
    #[default]
    Off,
    /// Counters and histograms only (phase timings, dispatch counts,
    /// campaign gauges). No per-event trace collection.
    Counters,
    /// Everything in [`ObsLevel::Counters`] plus per-event chrome-trace
    /// collection where a sink is attached.
    Full,
}

impl ObsLevel {
    /// Parses the CLI spelling (`off` | `counters` | `full`).
    pub fn parse(s: &str) -> Option<ObsLevel> {
        match s {
            "off" => Some(ObsLevel::Off),
            "counters" => Some(ObsLevel::Counters),
            "full" => Some(ObsLevel::Full),
            _ => None,
        }
    }

    /// The CLI spelling of this level.
    pub fn label(&self) -> &'static str {
        match self {
            ObsLevel::Off => "off",
            ObsLevel::Counters => "counters",
            ObsLevel::Full => "full",
        }
    }

    /// True when no telemetry should be collected at all.
    pub fn is_off(&self) -> bool {
        matches!(self, ObsLevel::Off)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_round_trip_through_their_labels() {
        for level in [ObsLevel::Off, ObsLevel::Counters, ObsLevel::Full] {
            assert_eq!(ObsLevel::parse(level.label()), Some(level));
        }
        assert_eq!(ObsLevel::parse("verbose"), None);
    }

    #[test]
    fn default_is_off_and_levels_are_ordered() {
        assert!(ObsLevel::default().is_off());
        assert!(ObsLevel::Off < ObsLevel::Counters);
        assert!(ObsLevel::Counters < ObsLevel::Full);
    }
}
