//! Atomic snapshot persistence.
//!
//! Telemetry snapshots are rewritten in place every few hundred
//! milliseconds while *other processes* read them — the orchestrator polls
//! worker `--metrics-out` files live. A plain `fs::write` truncates then
//! fills, so a reader can observe a torn document. [`write_atomic`] gives
//! writers the standard fix: write a sibling temp file, then `rename` it
//! over the destination. On POSIX the rename is atomic, so readers see
//! either the old complete document or the new one, never a prefix.

use std::io;
use std::path::Path;

/// Writes `contents` to `path` atomically (temp file + rename).
///
/// The temp file lives next to the destination (`.<name>.tmp`) so the
/// rename never crosses a filesystem boundary.
///
/// # Errors
///
/// Propagates the underlying write or rename failure; the temp file is
/// removed on a failed rename.
pub fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let mut tmp_name = std::ffi::OsString::from(".");
    tmp_name.push(file_name);
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("nodefz-fsio-{tag}-{}", std::process::id()))
    }

    #[test]
    fn writes_and_replaces_without_leaving_temp_files() {
        let dir = temp_path("dir");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot.json");
        write_atomic(&path, "{\"v\": 1}\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"v\": 1}\n");
        write_atomic(&path, "{\"v\": 2}\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"v\": 2}\n");
        // No `.tmp` residue: the only entry is the destination itself.
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["snapshot.json".to_string()], "{names:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rejects_pathless_destinations() {
        assert!(write_atomic(Path::new("/"), "x").is_err());
    }
}
