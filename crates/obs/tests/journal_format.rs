//! Persisted-format tests for the `nodefz-journal-v1` flight recorder:
//! whatever mix of events the ring retained, `encode` → `decode` →
//! `encode` must be byte-identical and preserve the ring's accounting —
//! and a document frozen from the first build that shipped the schema
//! must keep parsing forever.

use nodefz_check::{forall, Gen};
use nodefz_obs::{Journal, JournalEvent, PruneOutcome, WorkerState};

fn arbitrary_event(g: &mut Gen) -> JournalEvent {
    match g.below(4) {
        0 => JournalEvent::ArmPull {
            exec: g.u64() % 1_000_000,
            arm: g.lowercase(1, 12),
            pulls: g.u64() % 10_000,
            mean_reward: g.unit(),
            ucb: g.bool().then(|| g.f64_range(0.0, 8.0)),
            successes: g.bool().then(|| g.f64_range(0.0, 500.0)),
            failures: g.bool().then(|| g.f64_range(0.0, 500.0)),
        },
        1 => JournalEvent::Prune {
            exec: g.u64() % 1_000_000,
            verdict: *g.pick(&[
                PruneOutcome::Distinct,
                PruneOutcome::Redundant,
                PruneOutcome::Forked,
                PruneOutcome::Mismatch,
            ]),
        },
        2 => JournalEvent::Worker {
            index: g.u64() % 64,
            arm: g.lowercase(1, 12),
            state: *g.pick(&[
                WorkerState::Spawned,
                WorkerState::Reaped,
                WorkerState::Quarantined,
            ]),
            reason: g.bool().then(|| g.lowercase(1, 16)),
        },
        _ => JournalEvent::Discovery {
            exec: g.u64() % 1_000_000,
            app: g.lowercase(3, 4).to_uppercase(),
            site: format!("{}:{}", g.lowercase(2, 5), g.lowercase(2, 8)),
        },
    }
}

#[test]
fn journal_documents_round_trip_byte_identically() {
    forall("journal_roundtrip", 200, |g| {
        let cap = g.range_usize(1, 8);
        let pushes = g.range_usize(0, 20);
        let mut j = Journal::new(cap);
        let mut t_ms = 0;
        for _ in 0..pushes {
            t_ms += g.u64() % 50;
            let event = arbitrary_event(g);
            j.push_at(t_ms, event);
        }
        let text = j.encode();
        let back = Journal::decode(&text).expect("encoded journal decodes");

        // Byte-identical re-encode is the format contract.
        assert_eq!(back.encode(), text);

        // Ring accounting survives the trip: retained entries, shed
        // count, and the *continuation point* of the sequence.
        assert_eq!(back.len(), j.len());
        assert_eq!(back.len(), pushes.min(cap));
        assert_eq!(back.dropped(), (pushes.saturating_sub(cap)) as u64);
        let seqs: Vec<u64> = back.entries().map(|e| e.seq).collect();
        let expected: Vec<u64> = (back.dropped()..pushes as u64).collect();
        assert_eq!(seqs, expected);

        // Pushing into the decoded journal continues where the writer
        // left off — no seq reuse after a scrape-and-resume.
        let mut resumed = back;
        resumed.push_at(t_ms + 1, arbitrary_event(g));
        assert_eq!(resumed.entries().last().expect("entry").seq, pushes as u64);
    });
}

/// A `nodefz-journal-v1` document exactly as the first flight-recorder
/// build wrote it: header with shed count, then one line per retained
/// event, covering every event kind and both null and present optionals.
/// Frozen copy of the on-disk format — do not regenerate from code.
const LEGACY_JOURNAL: &str = "{\"schema\": \"nodefz-journal-v1\", \"cap\": 4, \"dropped\": 2, \"events\": 4}\n\
{\"seq\": 2, \"t_ms\": 10, \"kind\": \"arm_pull\", \"exec\": 40, \"arm\": \"GHO/aggressive\", \"pulls\": 7, \"mean_reward\": 0.125000, \"ucb\": 0.750000, \"successes\": null, \"failures\": null}\n\
{\"seq\": 3, \"t_ms\": 12, \"kind\": \"prune\", \"exec\": 41, \"verdict\": \"forked\"}\n\
{\"seq\": 4, \"t_ms\": 20, \"kind\": \"worker\", \"index\": 3, \"arm\": \"KUE/directed\", \"state\": \"reaped\", \"reason\": \"ok\"}\n\
{\"seq\": 5, \"t_ms\": 31, \"kind\": \"discovery\", \"exec\": 55, \"app\": \"GHO\", \"site\": \"gho:user-row\"}\n";

#[test]
fn legacy_journal_document_round_trips_byte_identically() {
    let j = Journal::decode(LEGACY_JOURNAL).expect("v1 journal parses");
    assert_eq!(j.capacity(), 4);
    assert_eq!(j.dropped(), 2);
    assert_eq!(j.len(), 4);

    let entries: Vec<_> = j.entries().collect();
    assert_eq!(entries[0].seq, 2);
    assert_eq!(
        entries[0].event,
        JournalEvent::ArmPull {
            exec: 40,
            arm: "GHO/aggressive".into(),
            pulls: 7,
            mean_reward: 0.125,
            ucb: Some(0.75),
            successes: None,
            failures: None,
        }
    );
    assert_eq!(
        entries[1].event,
        JournalEvent::Prune {
            exec: 41,
            verdict: PruneOutcome::Forked,
        }
    );
    assert_eq!(
        entries[2].event,
        JournalEvent::Worker {
            index: 3,
            arm: "KUE/directed".into(),
            state: WorkerState::Reaped,
            reason: Some("ok".into()),
        }
    );
    assert_eq!(
        entries[3].event,
        JournalEvent::Discovery {
            exec: 55,
            app: "GHO".into(),
            site: "gho:user-row".into(),
        }
    );

    assert_eq!(j.encode(), LEGACY_JOURNAL);
}
