//! # nodefz-hb — happens-before race analysis over recorded traces
//!
//! Node.fz (§5) finds races *dynamically*: run the program under many
//! perturbed schedules and wait for an oracle to trip. This crate adds the
//! complementary *predictive* pass: from **one** recorded run it
//! reconstructs the dispatch-provenance event log, builds the
//! happens-before relation every legal schedule preserves
//! ([`HbGraph`]), and reports unordered callback pairs that touch the
//! same instrumented shared site as candidate races, classified
//! AV / OV / (C)OV per the paper's §3.2 taxonomy ([`find_races`]).
//!
//! Each predicted pair carries a *cut* — the decision-trace prefix that
//! reproduces the run up to the earlier racing event — which is exactly
//! the input `nodefz::DirectedSpec` needs to replay the prefix and force
//! the flipped order, turning a static prediction into a dynamically
//! confirmed, replayable repro.
//!
//! ## Pipeline
//!
//! ```text
//! record_vanilla ──▶ nodefz-trace v1 text ──▶ analyze_recorded
//!     (nodeNFZ posture, one run)                  │
//!                                                 ├─ decode + validate (typed errors)
//!                                                 ├─ replay with event-log recording
//!                                                 ├─ HbGraph transitive closure
//!                                                 └─ find_races → AV/OV/COV + cut
//! races_report ──▶ nodefz-races-v1 JSON
//! ```
//!
//! ```
//! use nodefz_hb::{analyze_app, races_report, RaceClass};
//!
//! let app = nodefz_apps::by_abbr("GHO").unwrap();
//! let analysis = analyze_app(app.as_ref(), 11).unwrap();
//! assert!(analysis
//!     .races
//!     .iter()
//!     .any(|r| r.site == "gho:user-row" && r.class == RaceClass::Av));
//! let json = races_report(&[analysis]);
//! assert!(json.starts_with("{\"schema\": \"nodefz-races-v1\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analyze;
mod canon;
mod graph;
mod races;
mod report;

pub use analyze::{
    analyze_app, analyze_recorded, causal_chain, chain_cuts, races_with_cuts, record_vanilla,
    AnalyzeError, AppAnalysis, EventRef, RaceInfo,
};
pub use canon::{canon_key, CanonBuilder, CanonKey, SeenSet};
pub use graph::HbGraph;
pub use races::{find_races, find_races_with, RaceClass, RacePair};
pub use report::races_report;
