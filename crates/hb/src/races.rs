//! Candidate-race detection and §3.2 classification.
//!
//! A *candidate race* is a pair of concurrent events (per [`HbGraph`])
//! that both access the same instrumented shared site, at least one of
//! them write-ish. The paper's taxonomy splits these into:
//!
//! * **AV** (atomicity violation) — the pair intrudes on a logical
//!   transaction: some happens-before-ordered pair of accesses to the
//!   site forms a region one racing event belongs to, and the other
//!   racing event can land inside that region (it is not ordered after
//!   the region's end nor before its start).
//! * **(C)OV** (commutative ordering violation) — every access either
//!   side makes is a commutative update (`touch_update`), so any order
//!   converges and only a *count* of completed updates can be observed
//!   early.
//! * **OV** (ordering violation) — the rest: the program assumed one
//!   order of two logically independent operations.

use nodefz_rt::{AccessKind, CbId, EventLog};

use crate::graph::HbGraph;

/// The §3.2 classification of a candidate race.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RaceClass {
    /// Atomicity violation.
    Av,
    /// Ordering violation.
    Ov,
    /// Commutative ordering violation.
    Cov,
}

impl RaceClass {
    /// The label used in Table 2 and the `nodefz-races-v1` report.
    pub fn label(self) -> &'static str {
        match self {
            RaceClass::Av => "AV",
            RaceClass::Ov => "OV",
            RaceClass::Cov => "COV",
        }
    }
}

/// One predicted racing pair at one shared site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RacePair {
    /// Index into [`EventLog::sites`].
    pub site: u32,
    /// The racing event dispatched earlier in the recorded run.
    pub a: CbId,
    /// The racing event dispatched later in the recorded run.
    pub b: CbId,
    /// Predicted classification.
    pub class: RaceClass,
    /// The earlier event's decision stamp: replaying the recorded trace's
    /// first `cut` decisions reproduces the run up to (but not including)
    /// the dispatch of `a` — the point where a directed scheduler flips.
    pub cut: u64,
}

/// Per-(site, event) aggregate of access kinds.
struct SiteEvent {
    event: CbId,
    read: bool,
    write: bool,
    update: bool,
}

impl SiteEvent {
    fn writeish(&self) -> bool {
        self.write || self.update
    }

    /// Only commutative updates — the (C)OV signature.
    fn update_only(&self) -> bool {
        self.update && !self.write && !self.read
    }
}

/// Finds every candidate race in a recorded log, classified per §3.2.
///
/// Pairs are reported in (site, a, b) order; the same event pair can
/// appear once per shared site it races on.
pub fn find_races(log: &EventLog) -> Vec<RacePair> {
    let graph = HbGraph::from_log(log);
    find_races_with(log, &graph)
}

/// [`find_races`] against a caller-built graph (lets one closure serve
/// both race detection and other queries).
pub fn find_races_with(log: &EventLog, graph: &HbGraph) -> Vec<RacePair> {
    // Aggregate accesses into per-site, per-event flag records, keeping
    // first-touch order so output is deterministic.
    let mut per_site: Vec<Vec<SiteEvent>> = Vec::new();
    per_site.resize_with(log.sites.len(), Vec::new);
    for acc in &log.accesses {
        let evs = &mut per_site[acc.site as usize];
        let se = match evs.iter_mut().find(|se| se.event == acc.event) {
            Some(se) => se,
            None => {
                evs.push(SiteEvent {
                    event: acc.event,
                    read: false,
                    write: false,
                    update: false,
                });
                evs.last_mut().expect("just pushed")
            }
        };
        match acc.kind {
            AccessKind::Read => se.read = true,
            AccessKind::Write => se.write = true,
            AccessKind::Update => se.update = true,
        }
    }

    let mut races = Vec::new();
    for (site, evs) in per_site.iter().enumerate() {
        for i in 0..evs.len() {
            for j in i + 1..evs.len() {
                let (x, y) = (&evs[i], &evs[j]);
                if !x.writeish() && !y.writeish() {
                    continue;
                }
                if !graph.concurrent(x.event, y.event) {
                    continue;
                }
                let (a, b) = if x.event < y.event { (x, y) } else { (y, x) };
                let class = classify(graph, evs, a, b);
                races.push(RacePair {
                    site: site as u32,
                    a: a.event,
                    b: b.event,
                    class,
                    cut: log.events[a.event.0 as usize].decisions,
                });
            }
        }
    }
    races.sort_by_key(|r| (r.site, r.a, r.b));
    races
}

fn classify(graph: &HbGraph, evs: &[SiteEvent], a: &SiteEvent, b: &SiteEvent) -> RaceClass {
    if a.update_only() && b.update_only() {
        return RaceClass::Cov;
    }
    if intrudes(graph, evs, a.event, b.event) || intrudes(graph, evs, b.event, a.event) {
        return RaceClass::Av;
    }
    RaceClass::Ov
}

/// Whether `intruder` can land inside a happens-before-ordered region of
/// site accesses that `owner` belongs to: accesses X ≤HB Y with
/// `owner ∈ {X, Y}` where `intruder` is neither ordered after Y nor
/// before X.
fn intrudes(graph: &HbGraph, evs: &[SiteEvent], owner: CbId, intruder: CbId) -> bool {
    for x in evs {
        for y in evs {
            if x.event == y.event || (owner != x.event && owner != y.event) {
                continue;
            }
            if !graph.leq(x.event, y.event) {
                continue;
            }
            if !graph.leq(y.event, intruder) && !graph.leq(intruder, x.event) {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodefz_rt::{EventLoop, LoopConfig, VDur};

    fn races_of(f: impl FnOnce(&mut nodefz_rt::Ctx<'_>) + 'static) -> (EventLog, Vec<RacePair>) {
        let handle = nodefz_rt::EventLogHandle::fresh();
        let mut el = EventLoop::new(LoopConfig::seeded(2));
        el.set_event_log(&handle);
        el.enter(f);
        el.run();
        let log = handle.snapshot();
        let races = find_races(&log);
        (log, races)
    }

    #[test]
    fn ordered_accesses_do_not_race() {
        let (_, races) = races_of(|cx| {
            cx.touch_write("s");
            cx.set_timeout(VDur::millis(1), |cx| cx.touch_write("s"));
        });
        assert!(races.is_empty(), "cause-ordered writes are not a race");
    }

    #[test]
    fn concurrent_write_read_is_an_av_when_a_region_exists() {
        // Two pool completions from one parent: completion 1 reads then
        // (via a chained timer) writes; completion 2 writes. The chained
        // pair forms a region the other completion intrudes on.
        let (_, races) = races_of(|cx| {
            cx.submit_work(
                VDur::millis(1),
                |_| (),
                |cx, ()| {
                    cx.touch_read("s");
                    cx.set_timeout(VDur::millis(1), |cx| cx.touch_write("s"));
                },
            )
            .unwrap();
            cx.submit_work(VDur::millis(2), |_| (), |cx, ()| cx.touch_write("s"))
                .unwrap();
        });
        assert!(races.iter().any(|r| r.class == RaceClass::Av), "{races:?}");
    }

    #[test]
    fn concurrent_writes_with_no_region_are_an_ov() {
        let (_, races) = races_of(|cx| {
            cx.submit_work(VDur::millis(1), |_| (), |cx, ()| cx.touch_write("s"))
                .unwrap();
            cx.submit_work(VDur::millis(2), |_| (), |cx, ()| cx.touch_write("s"))
                .unwrap();
        });
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].class, RaceClass::Ov);
        assert!(races[0].a < races[0].b);
    }

    #[test]
    fn concurrent_updates_are_a_cov() {
        let (_, races) = races_of(|cx| {
            for d in [1u64, 2] {
                cx.submit_work(VDur::millis(d), |_| (), |cx, ()| cx.touch_update("n"))
                    .unwrap();
            }
        });
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].class, RaceClass::Cov);
    }

    #[test]
    fn cut_is_the_earlier_events_decision_stamp() {
        let (log, races) = races_of(|cx| {
            cx.submit_work(VDur::millis(1), |_| (), |cx, ()| cx.touch_write("s"))
                .unwrap();
            cx.submit_work(VDur::millis(2), |_| (), |cx, ()| cx.touch_write("s"))
                .unwrap();
        });
        let r = races[0];
        assert_eq!(r.cut, log.events[r.a.0 as usize].decisions);
    }

    #[test]
    fn reads_alone_never_race() {
        let (_, races) = races_of(|cx| {
            for d in [1u64, 2] {
                cx.submit_work(VDur::millis(d), |_| (), |cx, ()| cx.touch_read("r"))
                    .unwrap();
            }
        });
        assert!(races.is_empty());
    }
}
