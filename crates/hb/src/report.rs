//! The `nodefz-races-v1` JSON report.
//!
//! Layout:
//!
//! ```json
//! {
//!   "schema": "nodefz-races-v1",
//!   "sites": ["gho:user-row", "..."],
//!   "apps": [
//!     {
//!       "app": "GHO", "env_seed": 11,
//!       "events": 64, "accesses": 5, "decisions": 120,
//!       "races": [
//!         {
//!           "site": 0, "class": "AV",
//!           "a": {"event": 12, "kind": "kv-reply", "decisions": 31},
//!           "b": {"event": 19, "kind": "kv-reply", "decisions": 55},
//!           "cut": 31
//!         }
//!       ]
//!     }
//!   ]
//! }
//! ```
//!
//! Site names are interned once, report-wide, through the trace crate's
//! [`SiteInterner`]; races refer to sites by table index.

use nodefz_obs::JsonWriter;
use nodefz_trace::{SiteId, SiteInterner};

use crate::analyze::{AppAnalysis, EventRef};

/// Renders analyses of one or more apps as a `nodefz-races-v1` document.
pub fn races_report(analyses: &[AppAnalysis]) -> String {
    let mut sites = SiteInterner::new();
    for analysis in analyses {
        for race in &analysis.races {
            sites.intern(&race.site);
        }
    }
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("schema", "nodefz-races-v1");
    w.key("sites");
    w.begin_array();
    for i in 0..sites.len() {
        w.str(sites.resolve(SiteId(i as u32)));
    }
    w.end_array();
    w.key("apps");
    w.begin_array();
    for analysis in analyses {
        w.begin_object();
        w.field_str("app", &analysis.app);
        w.field_u64("env_seed", analysis.env_seed);
        w.field_u64("events", analysis.events as u64);
        w.field_u64("accesses", analysis.accesses as u64);
        w.field_u64("decisions", analysis.trace.len() as u64);
        w.key("races");
        w.begin_array();
        for race in &analysis.races {
            let site = sites.lookup(&race.site).expect("interned above");
            w.begin_object();
            w.field_u64("site", u64::from(site.0));
            w.field_str("class", race.class.label());
            event_ref(&mut w, "a", &race.a);
            event_ref(&mut w, "b", &race.b);
            w.field_u64("cut", race.cut);
            w.field_u64("chain_cut", race.chain_cut);
            w.key("flip_cuts");
            w.begin_array();
            for &c in &race.flip_cuts {
                w.u64(c);
            }
            w.end_array();
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}

fn event_ref(w: &mut JsonWriter, name: &str, e: &EventRef) {
    w.key(name);
    w.begin_object();
    w.field_u64("event", u64::from(e.event));
    w.field_str("kind", &e.kind);
    w.field_u64("decisions", e.decisions);
    w.end_object();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::races::RaceClass;
    use nodefz::DecisionTrace;

    fn sample() -> AppAnalysis {
        AppAnalysis {
            app: "GHO".into(),
            env_seed: 11,
            trace: DecisionTrace {
                pool_mode: nodefz_rt::PoolMode::Concurrent { workers: 4 },
                demux_done: false,
                decisions: Vec::new(),
            },
            events: 3,
            accesses: 2,
            sites: vec!["gho:user-row".into()],
            races: vec![crate::analyze::RaceInfo {
                site: "gho:user-row".into(),
                class: RaceClass::Av,
                a: EventRef {
                    event: 1,
                    kind: "kv-reply".into(),
                    decisions: 4,
                },
                b: EventRef {
                    event: 2,
                    kind: "kv-reply".into(),
                    decisions: 7,
                },
                cut: 4,
                chain_cut: 2,
                flip_cuts: vec![2, 3],
            }],
        }
    }

    #[test]
    fn report_has_schema_site_table_and_race_fields() {
        let doc = races_report(&[sample()]);
        assert!(doc.contains("\"schema\": \"nodefz-races-v1\""));
        assert!(doc.contains("\"sites\": [\"gho:user-row\"]"));
        assert!(doc.contains("\"class\": \"AV\""));
        assert!(doc.contains("\"cut\": 4"));
        assert!(doc.contains("\"flip_cuts\": [2, 3]"));
        assert!(doc.contains("\"kind\": \"kv-reply\""));
        assert_eq!(
            doc.matches("\"gho:user-row\"").count(),
            1,
            "site interned once"
        );
    }

    #[test]
    fn empty_report_is_well_formed() {
        let doc = races_report(&[]);
        assert_eq!(
            doc,
            "{\"schema\": \"nodefz-races-v1\", \"sites\": [], \"apps\": []}"
        );
    }
}
