//! Canonical schedule keys: online happens-before equivalence dedup.
//!
//! Two executions whose dispatches differ only in the order of *commuting*
//! events — no happens-before edge between them, disjoint shared-site
//! footprints — manifest exactly the same races (the Mazurkiewicz-trace
//! insight behind DPOR and sleep sets). Executing both is pure waste, so a
//! campaign's real throughput is *distinct equivalence classes per second*,
//! not runs per second.
//!
//! This module folds a recorded [`EventLog`] into a 128-bit [`CanonKey`]
//! that is invariant under every such commuting reorder, **by
//! construction** rather than by sorting: each event gets a *causal name*
//! derived only from schedule-invariant inputs — its kind, the names of
//! its causes, its position in the (schedule-invariant) timer chain, and a
//! commutative fold of its shared-site footprint — and the run key is a
//! commutative fold of all event names. Nothing order-dependent (dispatch
//! index, raw ids, virtual times, decision counts) ever enters the hash,
//! so two HB-equivalent interleavings of the same program produce the same
//! key without ever materializing a normal form.
//!
//! The fold is incremental: [`CanonBuilder::push`] consumes events one at
//! a time and [`CanonBuilder::key`] is valid after any prefix, which is
//! what prefix-memoizing explorers key their snapshot tables on.
//!
//! [`SeenSet`] is the companion membership structure: an interned,
//! splitmix-hashed, capacity-capped set of keys with LRU eviction, sized
//! for millions of inserts per second.

use std::collections::VecDeque;

use nodefz_rt::{AccessKind, EvDetail, EvKind, EventLog, EventRecord};

/// A 128-bit canonical key for one schedule's HB-equivalence class.
///
/// Two runs of the same program with the same environment seed that are
/// happens-before equivalent map to the same key. Distinct classes
/// collide only with ordinary 128-bit hash probability.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CanonKey(pub u128);

impl CanonKey {
    /// The key of the empty schedule (no events).
    pub const EMPTY: CanonKey = CanonKey(0);

    /// Renders the key as 32 hex digits (stable across platforms).
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }
}

/// splitmix64 finalizer: the avalanche mix behind every hash here.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Combines two words order-sensitively (for causal chains).
#[inline]
fn chain(a: u64, b: u64) -> u64 {
    mix(a ^ b.rotate_left(17).wrapping_mul(0xA24B_AED4_963E_E407))
}

/// FNV-1a over a byte string; seeds site-name hashes so access footprints
/// are independent of the log's (schedule-dependent) interning order.
#[inline]
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn kind_tag(kind: EvKind) -> u64 {
    match kind {
        EvKind::Setup => 1,
        EvKind::Env => 2,
        EvKind::Cb(k) => 3 + k.index() as u64,
    }
}

fn access_tag(kind: AccessKind) -> u64 {
    match kind {
        AccessKind::Read => 0x52,
        AccessKind::Write => 0x57,
        AccessKind::Update => 0x55,
    }
}

/// Incremental canonical-key builder.
///
/// Feed it a log's events in dispatch order (any interleaving of the same
/// HB class yields the same result); read [`CanonBuilder::key`] after any
/// prefix. One builder is reusable across runs via [`CanonBuilder::reset`]
/// — all scratch capacity is retained, so steady-state keying allocates
/// nothing.
#[derive(Clone, Debug, Default)]
pub struct CanonBuilder {
    /// Causal name per event id pushed so far.
    names: Vec<u64>,
    /// Name of the most recent timer dispatch (timer chain predecessor).
    last_timer: Option<u64>,
    /// Two independent commutative folds of the event names. Wrapping
    /// sums (not xor) so multiplicity counts: two copies of a name must
    /// not cancel.
    acc: [u64; 2],
    /// Events folded so far.
    len: u64,
    /// Hashed site names, indexed like the source log's site table (the
    /// indices themselves are schedule-dependent; the *hashes* are not).
    site_hashes: Vec<u64>,
}

impl CanonBuilder {
    /// Creates an empty builder.
    pub fn new() -> CanonBuilder {
        CanonBuilder::default()
    }

    /// Clears the builder for a new run, keeping allocated capacity.
    pub fn reset(&mut self) {
        self.names.clear();
        self.last_timer = None;
        self.acc = [0; 2];
        self.len = 0;
        self.site_hashes.clear();
    }

    /// Number of events folded so far.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether no events have been folded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Folds one event. `footprint` is the commutative hash of the event's
    /// shared-site accesses (see [`CanonBuilder::fold_accesses`]); pass 0
    /// for events with no instrumented accesses.
    pub fn push(&mut self, ev: &EventRecord, footprint: u64) {
        let mut name = mix(kind_tag(ev.kind) ^ 0x6E66_7A63_616E_6F6E); // "nfzcanon"
        if let Some(c) = ev.cause {
            let cn = self.names.get(c.0 as usize).copied().unwrap_or(0);
            name = chain(name, cn ^ 0x01);
        }
        if let Some(c) = ev.cause2 {
            let cn = self.names.get(c.0 as usize).copied().unwrap_or(0);
            name = chain(name, cn ^ 0x02);
        }
        if matches!(ev.detail, EvDetail::Timer { .. }) {
            // Relative timer order is invariant across legal schedules
            // (deferral short-circuits the phase), so the chain position
            // is a legitimate part of a timer's identity.
            if let Some(prev) = self.last_timer {
                name = chain(name, prev ^ 0x03);
            }
            self.last_timer = Some(name);
        }
        if footprint != 0 {
            name = chain(name, footprint);
        }
        // Grow the name table to the event's id so sparse pushes (tests,
        // filtered logs) still resolve causes by id.
        let idx = ev.id.0 as usize;
        if self.names.len() <= idx {
            self.names.resize(idx + 1, 0);
        }
        self.names[idx] = name;
        self.acc[0] = self.acc[0].wrapping_add(mix(name ^ 0x9049_4E45_5F30_3030));
        self.acc[1] = self.acc[1].wrapping_add(mix(name ^ 0x104E_4F44_455F_465A));
        self.len += 1;
    }

    /// The canonical key of everything pushed so far.
    pub fn key(&self) -> CanonKey {
        if self.len == 0 {
            return CanonKey::EMPTY;
        }
        let hi = mix(self.acc[0] ^ self.len);
        let lo = mix(self.acc[1] ^ self.len.rotate_left(32));
        CanonKey((u128::from(hi) << 64) | u128::from(lo))
    }

    /// Computes per-event access footprints for `log` into `out`
    /// (indexed by event id): a commutative fold of
    /// `mix(site_name_hash ^ access_kind)` over the event's accesses.
    ///
    /// Site *names* are hashed, not site indices — interning order differs
    /// between interleavings, the strings do not.
    pub fn fold_accesses(&mut self, log: &EventLog, out: &mut Vec<u64>) {
        out.clear();
        out.resize(log.events.len(), 0);
        self.site_hashes.clear();
        self.site_hashes
            .extend(log.sites.iter().map(|s| fnv1a(s.as_bytes())));
        for a in &log.accesses {
            let site = self.site_hashes.get(a.site as usize).copied().unwrap_or(0);
            if let Some(slot) = out.get_mut(a.event.0 as usize) {
                *slot = slot.wrapping_add(mix(site ^ access_tag(a.kind)));
            }
        }
    }

    /// Folds an entire recorded log, reusing `scratch` for the access
    /// footprints. Resets the builder first.
    pub fn build(&mut self, log: &EventLog, scratch: &mut Vec<u64>) -> CanonKey {
        self.reset();
        // Split-borrow dance: fold_accesses needs &mut self for the site
        // hash cache, so compute footprints before pushing events.
        let mut fp = std::mem::take(scratch);
        self.fold_accesses(log, &mut fp);
        for ev in &log.events {
            let footprint = fp.get(ev.id.0 as usize).copied().unwrap_or(0);
            self.push(ev, footprint);
        }
        *scratch = fp;
        self.key()
    }
}

/// One-shot canonical key of a recorded log.
///
/// Campaign hot paths keep a [`CanonBuilder`] and scratch buffer alive
/// across runs instead; this allocates fresh ones.
pub fn canon_key(log: &EventLog) -> CanonKey {
    CanonBuilder::new().build(log, &mut Vec::new())
}

/// Identity hasher for [`SeenSet`]'s map: canon keys are already
/// splitmix-mixed, so rehashing them through SipHash would be pure waste.
#[derive(Clone, Copy, Default)]
struct KeyHasher(u64);

impl std::hash::Hasher for KeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        // Only u128 keys are ever hashed; fold their bytes cheaply.
        for c in bytes.chunks(8) {
            let mut w = [0u8; 8];
            w[..c.len()].copy_from_slice(c);
            self.0 ^= u64::from_le_bytes(w);
        }
    }
}

#[derive(Clone, Copy, Default)]
struct BuildKeyHasher;

impl std::hash::BuildHasher for BuildKeyHasher {
    type Hasher = KeyHasher;
    fn build_hasher(&self) -> KeyHasher {
        KeyHasher::default()
    }
}

/// A capacity-capped set of [`CanonKey`]s with least-recently-*inserted*
/// eviction.
///
/// The campaign driver asks one question per run — "have we already
/// executed this equivalence class?" — millions of times, so membership
/// is a single identity-hashed map probe. When the cap is reached the
/// oldest key is evicted (a bounded window of remembered classes: an
/// evicted class re-executing once is redundancy, not unsoundness —
/// pruning only ever skips *extra* work).
#[derive(Debug)]
pub struct SeenSet {
    map: std::collections::HashMap<CanonKey, (), BuildKeyHasher>,
    /// Insertion order, oldest first, for eviction.
    order: VecDeque<CanonKey>,
    cap: usize,
    /// Total inserts that found the key already present.
    hits: u64,
    /// Keys evicted to stay under the cap.
    evicted: u64,
}

impl SeenSet {
    /// Creates a set that remembers at most `cap` keys (`cap` ≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn new(cap: usize) -> SeenSet {
        assert!(cap > 0, "SeenSet capacity must be at least 1");
        SeenSet {
            map: std::collections::HashMap::with_capacity_and_hasher(
                cap.min(1 << 20),
                BuildKeyHasher,
            ),
            order: VecDeque::with_capacity(cap.min(1 << 20)),
            cap,
            hits: 0,
            evicted: 0,
        }
    }

    /// Inserts `key`, returning `true` if it was **new** (not seen in the
    /// remembered window). Evicts the oldest key when over capacity.
    pub fn insert(&mut self, key: CanonKey) -> bool {
        if self.map.contains_key(&key) {
            self.hits += 1;
            return false;
        }
        if self.map.len() >= self.cap {
            if let Some(old) = self.order.pop_front() {
                self.map.remove(&old);
                self.evicted += 1;
            }
        }
        self.map.insert(key, ());
        self.order.push_back(key);
        true
    }

    /// Whether `key` is in the remembered window (no side effects).
    pub fn contains(&self, key: CanonKey) -> bool {
        self.map.contains_key(&key)
    }

    /// Distinct keys currently remembered.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Inserts that found their key already present.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Keys evicted to stay under the capacity cap.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodefz_rt::{AccessKind, CbId};

    /// Test-side intern + append (the runtime's `touch` is crate-private).
    fn touch(log: &mut EventLog, event: CbId, site: &str, kind: AccessKind) {
        let site = match log.sites.iter().position(|s| s == site) {
            Some(i) => i as u32,
            None => {
                log.sites.push(site.to_string());
                (log.sites.len() - 1) as u32
            }
        };
        log.accesses.push(nodefz_rt::Access { event, site, kind });
    }

    fn ev(id: u32, kind: EvKind, cause: Option<u32>, cause2: Option<u32>) -> EventRecord {
        EventRecord {
            id: CbId(id),
            kind,
            cause: cause.map(CbId),
            cause2: cause2.map(CbId),
            decisions: id as u64 * 7 + 3, // schedule-dependent noise
            iter: id as u64,              // schedule-dependent noise
            detail: EvDetail::None,
        }
    }

    fn key_of(events: &[EventRecord]) -> CanonKey {
        let mut log = EventLog::default();
        log.events = events.to_vec();
        canon_key(&log)
    }

    #[test]
    fn empty_log_is_the_empty_key() {
        assert_eq!(canon_key(&EventLog::default()), CanonKey::EMPTY);
        assert_eq!(CanonKey::EMPTY.to_hex(), "0".repeat(32));
    }

    #[test]
    fn commuting_independent_events_share_a_key() {
        use nodefz_rt::CbKind;
        // Setup spawns two independent pool-done callbacks; the two
        // dispatch orders are HB-equivalent and must collide.
        let setup = ev(0, EvKind::Setup, None, None);
        let a = |id| ev(id, EvKind::Cb(CbKind::PoolDone), Some(0), None);
        let b = |id| ev(id, EvKind::Cb(CbKind::FsDone), Some(0), None);
        let ab = key_of(&[setup, a(1), b(2)]);
        let ba = key_of(&[setup, b(1), a(2)]);
        assert_eq!(ab, ba, "independent dispatches must commute");
    }

    #[test]
    fn causal_order_is_part_of_the_key() {
        use nodefz_rt::CbKind;
        let setup = ev(0, EvKind::Setup, None, None);
        // a caused by setup, b caused by a — versus both caused by setup.
        let chained = key_of(&[
            setup,
            ev(1, EvKind::Cb(CbKind::PoolDone), Some(0), None),
            ev(2, EvKind::Cb(CbKind::PoolDone), Some(1), None),
        ]);
        let fanned = key_of(&[
            setup,
            ev(1, EvKind::Cb(CbKind::PoolDone), Some(0), None),
            ev(2, EvKind::Cb(CbKind::PoolDone), Some(0), None),
        ]);
        assert_ne!(chained, fanned, "cause structure must distinguish keys");
    }

    #[test]
    fn schedule_dependent_fields_do_not_matter() {
        use nodefz_rt::CbKind;
        let mut x = ev(1, EvKind::Cb(CbKind::NetRead), Some(0), None);
        let mut y = x;
        y.decisions = 999;
        y.iter = 42;
        let setup = ev(0, EvKind::Setup, None, None);
        assert_eq!(key_of(&[setup, x]), key_of(&[setup, y]));
        // But the kind does matter.
        x.kind = EvKind::Cb(CbKind::NetClose);
        assert_ne!(key_of(&[setup, x]), key_of(&[setup, y]));
    }

    #[test]
    fn timer_chain_orders_timers() {
        use nodefz_rt::CbKind;
        let setup = ev(0, EvKind::Setup, None, None);
        let timer = |id, deadline| EventRecord {
            detail: EvDetail::Timer {
                deadline: nodefz_rt::VTime(deadline),
                seq: deadline, // schedule-dependent: ignored by canon
            },
            ..ev(id, EvKind::Cb(CbKind::Timer), Some(0), None)
        };
        let t_then_n = key_of(&[
            setup,
            timer(1, 5),
            ev(2, EvKind::Cb(CbKind::NetRead), Some(0), None),
        ]);
        let n_then_t = key_of(&[
            setup,
            ev(1, EvKind::Cb(CbKind::NetRead), Some(0), None),
            timer(2, 5),
        ]);
        // Timer vs independent net read commute (no HB edge).
        assert_eq!(t_then_n, n_then_t);
        // Two timers do NOT commute with each other: the chain gives the
        // first a different name than the second.
        let two_a = key_of(&[setup, timer(1, 5), timer(2, 9)]);
        let two_b = key_of(&[setup, timer(1, 9), timer(2, 5)]);
        assert_eq!(
            two_a, two_b,
            "timer identity is chain position, not deadline"
        );
    }

    #[test]
    fn footprints_distinguish_and_interning_order_does_not() {
        use nodefz_rt::CbKind;
        let mk = |sites: [&str; 2]| {
            let mut log = EventLog::default();
            log.events = vec![
                ev(0, EvKind::Setup, None, None),
                ev(1, EvKind::Cb(CbKind::PoolDone), Some(0), None),
                ev(2, EvKind::Cb(CbKind::FsDone), Some(0), None),
            ];
            // Event 1 touches sites[0], event 2 touches sites[1]; the
            // interning order follows the argument order.
            touch(&mut log, CbId(1), sites[0], AccessKind::Write);
            touch(&mut log, CbId(2), sites[1], AccessKind::Write);
            canon_key(&log)
        };
        // Same footprints, opposite interning order: keys must match
        // because event 1 always touches "alpha" and event 2 "beta"...
        let a = mk(["alpha", "beta"]);
        // ...whereas swapping which *event* touches which site differs.
        let b = mk(["beta", "alpha"]);
        assert_ne!(a, b, "footprints are part of event identity");
        // Interning order independence: same association, reversed
        // interning, via a log where accesses arrive in opposite order.
        let mut log = EventLog::default();
        log.events = vec![
            ev(0, EvKind::Setup, None, None),
            ev(1, EvKind::Cb(CbKind::PoolDone), Some(0), None),
            ev(2, EvKind::Cb(CbKind::FsDone), Some(0), None),
        ];
        touch(&mut log, CbId(2), "beta", AccessKind::Write);
        touch(&mut log, CbId(1), "alpha", AccessKind::Write);
        assert_eq!(canon_key(&log), a, "interning order must not matter");
    }

    #[test]
    fn access_kind_matters_but_access_order_does_not() {
        use nodefz_rt::CbKind;
        let mk = |kinds: [AccessKind; 2]| {
            let mut log = EventLog::default();
            log.events = vec![
                ev(0, EvKind::Setup, None, None),
                ev(1, EvKind::Cb(CbKind::KvReply), Some(0), None),
            ];
            touch(&mut log, CbId(1), "x", kinds[0]);
            touch(&mut log, CbId(1), "y", kinds[1]);
            canon_key(&log)
        };
        assert_ne!(
            mk([AccessKind::Read, AccessKind::Read]),
            mk([AccessKind::Write, AccessKind::Write])
        );
        // x:Read + y:Write == (recorded in either program order).
        let mut log = EventLog::default();
        log.events = vec![
            ev(0, EvKind::Setup, None, None),
            ev(1, EvKind::Cb(CbKind::KvReply), Some(0), None),
        ];
        touch(&mut log, CbId(1), "y", AccessKind::Write);
        touch(&mut log, CbId(1), "x", AccessKind::Read);
        let mut log2 = EventLog::default();
        log2.events = log.events.clone();
        touch(&mut log2, CbId(1), "x", AccessKind::Read);
        touch(&mut log2, CbId(1), "y", AccessKind::Write);
        assert_eq!(canon_key(&log), canon_key(&log2));
    }

    #[test]
    fn prefix_keys_are_incremental() {
        use nodefz_rt::CbKind;
        let events = vec![
            ev(0, EvKind::Setup, None, None),
            ev(1, EvKind::Cb(CbKind::Timer), Some(0), None),
            ev(2, EvKind::Cb(CbKind::Check), Some(1), None),
        ];
        let mut b = CanonBuilder::new();
        let mut prefix_keys = Vec::new();
        for e in &events {
            b.push(e, 0);
            prefix_keys.push(b.key());
        }
        // Each prefix key equals the one-shot key of that prefix.
        for (i, &pk) in prefix_keys.iter().enumerate() {
            assert_eq!(pk, key_of(&events[..=i]), "prefix {i}");
        }
        assert_eq!(prefix_keys.len(), 3);
        assert_ne!(prefix_keys[0], prefix_keys[1]);
        assert_ne!(prefix_keys[1], prefix_keys[2]);
    }

    #[test]
    fn builder_reset_reproduces() {
        use nodefz_rt::CbKind;
        let events = [
            ev(0, EvKind::Setup, None, None),
            ev(1, EvKind::Cb(CbKind::Timer), Some(0), None),
        ];
        let mut b = CanonBuilder::new();
        for e in &events {
            b.push(e, 7);
        }
        let first = b.key();
        b.reset();
        assert!(b.is_empty());
        for e in &events {
            b.push(e, 7);
        }
        assert_eq!(b.len(), 2);
        assert_eq!(b.key(), first);
    }

    #[test]
    fn seen_set_dedups_and_evicts_lru() {
        let mut s = SeenSet::new(2);
        let k = |i: u128| CanonKey(i);
        assert!(s.insert(k(1)));
        assert!(!s.insert(k(1)), "duplicate must not be new");
        assert_eq!(s.hits(), 1);
        assert!(s.insert(k(2)));
        assert!(s.insert(k(3)), "evicts 1");
        assert_eq!(s.evicted(), 1);
        assert!(!s.contains(k(1)), "oldest evicted");
        assert!(s.contains(k(2)));
        assert!(s.contains(k(3)));
        assert_eq!(s.len(), 2);
        assert!(s.insert(k(1)), "evicted key reads as new again");
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_capacity_rejected() {
        let _ = SeenSet::new(0);
    }
}
