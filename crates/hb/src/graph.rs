//! The happens-before graph over one run's dispatched callbacks.
//!
//! Nodes are the [`EventRecord`]s of a recorded [`EventLog`], identified by
//! their dense [`CbId`]. Edges are the orderings *every* legal schedule of
//! this runtime preserves:
//!
//! * **registration → dispatch** — [`EventRecord::cause`]: the callback
//!   that registered a timer, submitted a pool task, issued an I/O
//!   operation or produced readiness happens before the dispatch it
//!   caused. Microtasks are absorbed into their parent event, so promise
//!   chains collapse into this edge too.
//! * **watcher registration → dispatch** — [`EventRecord::cause2`]: an fd
//!   event cannot fire before the callback that registered its watcher.
//! * **timer chaining** — timer dispatches are chained in dispatch order.
//!   The fuzzer's timer deferral short-circuits the timer phase
//!   (preserving the `{timeout, registration}` order real suites rely on,
//!   §4.4 of the paper), so relative timer order is treated as invariant.
//!
//! Readiness entries for *different* fds — and, under shuffling, even the
//! same fd — carry no edge: the epoll shuffle may legally reorder them, so
//! they stay concurrent. Because every edge points from a lower id to a
//! higher one, the graph is a DAG by construction and one forward pass
//! computes the full transitive closure into per-node bitset clocks.

use nodefz_rt::{CbId, EvDetail, EventLog};

/// Transitive-closure happens-before relation for one recorded run.
///
/// `O(n²/64)` space; queries are single-bit probes.
pub struct HbGraph {
    n: usize,
    /// Words per clock row.
    words: usize,
    /// Row-major bitsets: bit `a` of row `b` means `a ≤HB b`. Every row
    /// includes its own bit, so `leq` is reflexive.
    clocks: Vec<u64>,
}

impl HbGraph {
    /// Builds the happens-before closure of a recorded log.
    ///
    /// Cause edges that would point backwards (possible only in synthetic
    /// logs; the runtime always dispatches effects after their cause) are
    /// ignored rather than trusted, keeping the relation a DAG.
    pub fn from_log(log: &EventLog) -> HbGraph {
        let n = log.events.len();
        let words = n.div_ceil(64);
        let mut clocks = vec![0u64; n * words];
        let mut last_timer: Option<usize> = None;
        for (i, ev) in log.events.iter().enumerate() {
            let mut preds = [
                ev.cause.map(|c| c.0 as usize),
                ev.cause2.map(|c| c.0 as usize),
                None,
            ];
            if matches!(ev.detail, EvDetail::Timer { .. }) {
                preds[2] = last_timer;
                last_timer = Some(i);
            }
            for p in preds.into_iter().flatten() {
                if p < i {
                    let (done, rest) = clocks.split_at_mut(i * words);
                    let src = &done[p * words..p * words + words];
                    for (dst, s) in rest[..words].iter_mut().zip(src) {
                        *dst |= s;
                    }
                }
            }
            clocks[i * words + i / 64] |= 1 << (i % 64);
        }
        HbGraph { n, words, clocks }
    }

    /// Number of events in the graph.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the graph has no events.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Whether `a` happens before (or is) `b`. Reflexive; `false` for
    /// out-of-range ids.
    pub fn leq(&self, a: CbId, b: CbId) -> bool {
        let (a, b) = (a.0 as usize, b.0 as usize);
        a < self.n && b < self.n && self.clocks[b * self.words + a / 64] & (1 << (a % 64)) != 0
    }

    /// Whether `a` and `b` are unordered — neither happens before the
    /// other. Distinct concurrent events are exactly the candidate racing
    /// pairs.
    pub fn concurrent(&self, a: CbId, b: CbId) -> bool {
        a != b && !self.leq(a, b) && !self.leq(b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodefz_rt::{EventLoop, LoopConfig, VDur};

    fn logged_run(f: impl FnOnce(&mut nodefz_rt::Ctx<'_>) + 'static) -> EventLog {
        let handle = nodefz_rt::EventLogHandle::fresh();
        let mut el = EventLoop::new(LoopConfig::seeded(1));
        el.set_event_log(&handle);
        el.enter(f);
        el.run();
        handle.snapshot()
    }

    #[test]
    fn cause_edges_are_transitive() {
        let log = logged_run(|cx| {
            cx.set_timeout(VDur::millis(1), |cx| {
                cx.set_timeout(VDur::millis(1), |_| {});
            });
        });
        let g = HbGraph::from_log(&log);
        // Setup -> first timer -> second timer, all transitively ordered.
        assert!(g.leq(CbId(0), CbId(0)), "reflexive");
        let timers: Vec<CbId> = log
            .events
            .iter()
            .filter(|e| matches!(e.detail, EvDetail::Timer { .. }))
            .map(|e| e.id)
            .collect();
        assert_eq!(timers.len(), 2);
        assert!(g.leq(CbId(0), timers[1]));
        assert!(g.leq(timers[0], timers[1]));
        assert!(!g.leq(timers[1], timers[0]), "antisymmetric");
        assert!(!g.concurrent(timers[0], timers[1]));
    }

    #[test]
    fn pool_completions_from_one_parent_are_concurrent() {
        let log = logged_run(|cx| {
            for _ in 0..2 {
                cx.submit_work(VDur::millis(1), |_| (), |_, ()| {}).unwrap();
            }
        });
        let g = HbGraph::from_log(&log);
        let dones: Vec<CbId> = log
            .events
            .iter()
            .filter(|e| e.kind == nodefz_rt::EvKind::Cb(nodefz_rt::CbKind::PoolDone))
            .map(|e| e.id)
            .collect();
        assert_eq!(dones.len(), 2);
        // Two independent submissions: their pool events are unordered.
        assert!(g.concurrent(dones[0], dones[1]));
        // But both are after the submitting Setup event.
        assert!(g.leq(CbId(0), dones[0]));
        assert!(g.leq(CbId(0), dones[1]));
    }

    #[test]
    fn out_of_range_ids_are_unrelated() {
        let g = HbGraph::from_log(&EventLog::default());
        assert!(g.is_empty());
        assert_eq!(g.len(), 0);
        assert!(!g.leq(CbId(0), CbId(1)));
    }
}
