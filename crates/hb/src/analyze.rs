//! The record → replay → predict pipeline for one application.
//!
//! [`record_vanilla`] runs an app's buggy variant once under
//! `nodeFZ(record)` with the no-fuzz parameterization — the `nodeNFZ`
//! posture of §5.1 — and returns the `nodefz-trace` v1 text. That text is
//! the *only* input [`analyze_recorded`] needs: it decodes and validates
//! the trace, replays it decision-for-decision with dispatch-provenance
//! recording switched on, checks the replay was faithful, and runs the
//! happens-before race analysis over the reconstructed [`EventLog`].
//!
//! Ingestion is hardened: truncated or corrupt trace text surfaces as a
//! typed [`AnalyzeError`] (never a panic), so a campaign can skip a bad
//! corpus entry and keep going.

use std::fmt;

use nodefz::{
    decode_trace, encode_trace, DecisionTrace, FuzzParams, Mode, ReplayError, ReplayStatusHandle,
    TraceDecodeError, TraceFormatError, TraceHandle,
};
use nodefz_apps::common::{BugCase, RunCfg, Variant};
use nodefz_rt::{EvKind, EventLogHandle};

use crate::races::{find_races, RaceClass};

/// Why a recorded trace could not be analyzed.
#[derive(Clone, Debug, PartialEq)]
pub enum AnalyzeError {
    /// The trace text failed to parse (truncated, bad header, bad line).
    Decode(TraceDecodeError),
    /// The trace parsed but is structurally invalid (corrupt shuffle,
    /// zero lookahead).
    Format(TraceFormatError),
    /// The trace replayed against the app but diverged, so the
    /// reconstructed event log does not describe the recorded run.
    Replay(ReplayError),
}

impl fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyzeError::Decode(e) => write!(f, "trace decode failed: {e}"),
            AnalyzeError::Format(e) => write!(f, "trace invalid: {e}"),
            AnalyzeError::Replay(e) => write!(f, "trace replay diverged: {e}"),
        }
    }
}

impl std::error::Error for AnalyzeError {}

impl From<TraceDecodeError> for AnalyzeError {
    fn from(e: TraceDecodeError) -> AnalyzeError {
        AnalyzeError::Decode(e)
    }
}

impl From<TraceFormatError> for AnalyzeError {
    fn from(e: TraceFormatError) -> AnalyzeError {
        AnalyzeError::Format(e)
    }
}

impl From<ReplayError> for AnalyzeError {
    fn from(e: ReplayError) -> AnalyzeError {
        AnalyzeError::Replay(e)
    }
}

/// One racing event's identity in a report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EventRef {
    /// Dense event id within the run.
    pub event: u32,
    /// Callback-kind label ("timer", "net-read", "pool-done", …).
    pub kind: String,
    /// Scheduler consultations made before this event dispatched.
    pub decisions: u64,
}

/// One predicted race, resolved to names for reporting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RaceInfo {
    /// Shared-site name.
    pub site: String,
    /// Predicted classification.
    pub class: RaceClass,
    /// The earlier racing event.
    pub a: EventRef,
    /// The later racing event.
    pub b: EventRef,
    /// Decision-trace prefix length for a directed flip at this race
    /// (just before `a` dispatches).
    pub cut: u64,
    /// The most order-inverting flip point: just before the dispatch of
    /// the *earliest* scheduler-visible callback on `a`'s causal chain
    /// (an accept, a read, a timer — anything the scheduler consults
    /// about). By the time `a` itself dispatches, its side effects are
    /// often already in flight through environment hops the scheduler
    /// cannot touch; deferring the chain's root shifts the whole chain
    /// in virtual time. Equals `cut - 1` when the chain has no earlier
    /// schedulable ancestor.
    pub chain_cut: u64,
    /// All candidate flip points for this race, ascending: one per
    /// schedulable (callback) ancestor on `a`'s causal chain, each the
    /// decision count *just before* that ancestor's dispatch consult.
    /// `chain_cut` is the first entry.
    pub flip_cuts: Vec<u64>,
}

impl RaceInfo {
    /// The flip-cut ladder every directed confirmer climbs: at most `max`
    /// chain flip cuts (root-most first), falling back to "just before
    /// `a` dispatches" when the chain offered none. This is the one
    /// shared definition of the cut list — the campaign analyzer, the
    /// explainers, and the static analyzer's ranking all consume it
    /// instead of re-deriving the walk.
    pub fn ladder(&self, max: usize) -> Vec<u64> {
        let mut cuts = self.flip_cuts.to_vec();
        if cuts.is_empty() {
            cuts.push(self.cut.saturating_sub(1));
        }
        cuts.truncate(max);
        cuts
    }
}

/// The full analysis of one recorded app run.
#[derive(Clone, Debug)]
pub struct AppAnalysis {
    /// App abbreviation ("GHO", "SIO*", …).
    pub app: String,
    /// Environment seed of the recorded run.
    pub env_seed: u64,
    /// The decoded decision trace (the directed scheduler's prefix).
    pub trace: DecisionTrace,
    /// Events dispatched in the recorded run.
    pub events: usize,
    /// Instrumented accesses observed.
    pub accesses: usize,
    /// Shared-site names, in the log's interning order.
    pub sites: Vec<String>,
    /// Predicted races, in (site, a, b) order.
    pub races: Vec<RaceInfo>,
}

/// Records one vanilla-posture (`nodeNFZ`, no fuzzing decisions) run of
/// the app's buggy variant and returns the `nodefz-trace` v1 text.
pub fn record_vanilla(app: &dyn BugCase, env_seed: u64) -> String {
    let handle = TraceHandle::fresh();
    let cfg = RunCfg::new(Mode::Record(FuzzParams::none(), handle.clone()), env_seed);
    app.run(&cfg, Variant::Buggy);
    encode_trace(&handle.snapshot())
}

/// Replays `trace_text` against the app and predicts its races.
///
/// The prediction consumes *one* recorded schedule; §5's fuzzing
/// campaigns need hundreds of schedules to manifest the same bugs.
pub fn analyze_recorded(
    app: &dyn BugCase,
    env_seed: u64,
    trace_text: &str,
) -> Result<AppAnalysis, AnalyzeError> {
    let trace = decode_trace(trace_text)?;
    trace.validate()?;
    let status = ReplayStatusHandle::fresh();
    let events = EventLogHandle::fresh();
    let cfg = RunCfg::new(Mode::Replay(trace.clone(), status.clone()), env_seed).events(&events);
    app.run(&cfg, Variant::Buggy);
    status.verdict()?;
    let log = events.snapshot();
    let races = races_with_cuts(&log);
    Ok(AppAnalysis {
        app: app.info().abbr.to_string(),
        env_seed,
        trace,
        events: log.events.len(),
        accesses: log.accesses.len(),
        sites: log.sites.clone(),
        races,
    })
}

/// Records one vanilla-posture run and analyzes it — the full text
/// round-trip (encode → decode → replay → predict).
pub fn analyze_app(app: &dyn BugCase, env_seed: u64) -> Result<AppAnalysis, AnalyzeError> {
    let text = record_vanilla(app, env_seed);
    analyze_recorded(app, env_seed, &text)
}

/// Predicts races over any dispatch-provenance log and resolves each to
/// a reporting-ready [`RaceInfo`] (named site, kind labels, and the full
/// ladder of directed flip cuts). This is the log-level core of
/// [`analyze_recorded`], exposed so harnesses that build their own logs
/// — e.g. the `nodefz-conform` differential harness — can feed
/// predictions straight into a directed scheduler.
pub fn races_with_cuts(log: &nodefz_rt::EventLog) -> Vec<RaceInfo> {
    find_races(log)
        .into_iter()
        .map(|r| {
            let evref = |id: nodefz_rt::CbId| {
                let ev = &log.events[id.0 as usize];
                EventRef {
                    event: id.0,
                    kind: kind_label(ev.kind).to_string(),
                    decisions: ev.decisions,
                }
            };
            let flip_cuts = chain_flip_cuts(log, r.a);
            let chain_cut = flip_cuts
                .first()
                .copied()
                .unwrap_or_else(|| r.cut.saturating_sub(1));
            RaceInfo {
                site: log.sites[r.site as usize].clone(),
                class: r.class,
                a: evref(r.a),
                b: evref(r.b),
                cut: r.cut,
                chain_cut,
                flip_cuts,
            }
        })
        .collect()
}

/// The full causal chain of `event`, the event itself first, walking
/// `cause` links back to the scheduler-visible root. Every hop is
/// resolved to a reporting-ready [`EventRef`] — this is the raw material
/// of an explainable race report: the minimal "why did this dispatch"
/// story for one racing access, environment hops included. Returns an
/// empty chain for an out-of-range event id rather than panicking, so
/// explainers can feed it unvalidated report data.
pub fn causal_chain(log: &nodefz_rt::EventLog, event: u32) -> Vec<EventRef> {
    let mut chain = Vec::new();
    let mut cur = Some(event);
    while let Some(id) = cur {
        let Some(ev) = log.events.get(id as usize) else {
            break;
        };
        chain.push(EventRef {
            event: id,
            kind: kind_label(ev.kind).to_string(),
            decisions: ev.decisions,
        });
        // Causes point strictly backwards in dispatch order; a malformed
        // log must not loop us.
        cur = ev.cause.map(|c| c.0).filter(|c| *c < id);
    }
    chain
}

/// Candidate flip points for deferring the chain that leads to `event`:
/// walks the causal chain back to the scheduler-visible root (the same
/// walk as [`causal_chain`]) and, for every schedulable callback on it,
/// records the decision count just before that callback's dispatch
/// consult. Ascending, so the chain's root — the flip with the most
/// virtual time still ahead of it to absorb a deferral — comes first.
/// Returns an empty list for an out-of-range event id.
pub fn chain_cuts(log: &nodefz_rt::EventLog, event: u32) -> Vec<u64> {
    if log.events.get(event as usize).is_none() {
        return Vec::new();
    }
    chain_flip_cuts(log, nodefz_rt::CbId(event))
}

/// Candidate flip points for deferring the chain that leads to `a`:
/// walks `a`'s causal chain back to the root and, for every
/// scheduler-visible callback on it (environment hops and setup are not
/// consulted about, so they cannot be deferred), records the decision
/// count just before that callback's dispatch consult. Ascending, so the
/// chain's root — the flip with the most virtual time still ahead of it
/// to absorb a deferral — comes first.
fn chain_flip_cuts(log: &nodefz_rt::EventLog, a: nodefz_rt::CbId) -> Vec<u64> {
    let mut cuts = Vec::new();
    let mut cur = Some(a);
    while let Some(id) = cur {
        let ev = &log.events[id.0 as usize];
        if matches!(ev.kind, EvKind::Cb(_)) {
            cuts.push(ev.decisions.saturating_sub(1));
        }
        // Causes point strictly backwards in dispatch order; a malformed
        // log must not loop us.
        cur = ev.cause.filter(|c| c.0 < id.0);
    }
    cuts.sort_unstable();
    cuts.dedup();
    cuts
}

/// Human label for an event kind, matching the runtime's schedule traces.
fn kind_label(kind: EvKind) -> &'static str {
    match kind {
        EvKind::Setup => "setup",
        EvKind::Env => "env",
        EvKind::Cb(k) => k.label(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyze_app_round_trips_and_finds_the_planted_race() {
        let app = nodefz_apps::by_abbr("GHO").expect("registry");
        let analysis = analyze_app(app.as_ref(), 11).expect("analyzable");
        assert_eq!(analysis.app, "GHO");
        assert!(analysis.events > 0);
        assert!(analysis.accesses > 0);
        assert!(
            analysis
                .races
                .iter()
                .any(|r| r.site == "gho:user-row" && r.class == RaceClass::Av),
            "races: {:?}",
            analysis.races
        );
        for r in &analysis.races {
            assert!(r.a.event < r.b.event);
            assert_eq!(r.cut, r.a.decisions);
        }
    }

    #[test]
    fn truncated_trace_is_a_typed_decode_error() {
        let app = nodefz_apps::by_abbr("GHO").expect("registry");
        let text = record_vanilla(app.as_ref(), 11);
        let truncated = &text[..text.len() - 5];
        match analyze_recorded(app.as_ref(), 11, truncated) {
            Err(AnalyzeError::Decode(_)) => {}
            other => panic!("expected decode error, got {other:?}"),
        }
    }
}
