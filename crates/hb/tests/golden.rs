//! Golden predictions: for every planted Figure 6 bug, the analyzer must
//! predict the planted racing pair — site and §3.2 class — from **one**
//! vanilla-posture recorded trace, without ever manifesting the bug.
//!
//! KUEt is excluded: it is the §5.2.3 "race against time", which is not a
//! happens-before race (no shared-site access pair; the oracle is a
//! deadline), so predictive analysis has nothing to find.

use nodefz_hb::{analyze_app, AppAnalysis, RaceClass};

/// (app abbreviation, planted site, expected class).
const GOLDEN: &[(&str, &str, RaceClass)] = &[
    ("SIO", "sio:manager", RaceClass::Av),
    ("FPS", "fps:inflight", RaceClass::Av),
    ("GHO", "gho:user-row", RaceClass::Av),
    ("MKD", "mkd:fs-tree", RaceClass::Av),
    ("CLF", "clf:current-file", RaceClass::Av),
    ("NES", "nes:socket", RaceClass::Av),
    ("AKA", "aka:agent-state", RaceClass::Av),
    ("KUE", "kue:job-state", RaceClass::Ov),
    ("MGS", "mgs:filled", RaceClass::Cov),
    ("SIO*", "sio*:slot", RaceClass::Av),
    ("KUE*", "kue*:active-job", RaceClass::Av),
    ("FPS*", "fps*:completed", RaceClass::Cov),
];

const ENV_SEED: u64 = 11;

fn analysis_of(abbr: &str) -> AppAnalysis {
    let app = nodefz_apps::by_abbr(abbr).expect("registry has the app");
    analyze_app(app.as_ref(), ENV_SEED).expect("vanilla trace analyzes")
}

#[test]
fn every_planted_fig6_race_is_predicted_from_one_vanilla_trace() {
    let mut missed = Vec::new();
    for &(abbr, site, class) in GOLDEN {
        let analysis = analysis_of(abbr);
        let hit = analysis
            .races
            .iter()
            .any(|r| r.site == site && r.class == class);
        if !hit {
            missed.push(format!(
                "{abbr}: wanted ({site}, {}), got {:?}",
                class.label(),
                analysis
                    .races
                    .iter()
                    .map(|r| (r.site.as_str(), r.class.label()))
                    .collect::<Vec<_>>()
            ));
        }
    }
    assert!(
        missed.is_empty(),
        "missed predictions:\n{}",
        missed.join("\n")
    );
}

#[test]
fn golden_set_is_exactly_the_fig6_apps() {
    let fig6: Vec<String> = nodefz_apps::registry()
        .iter()
        .filter(|app| app.info().in_fig6)
        .map(|app| app.info().abbr.to_string())
        .collect();
    // KUEt is in Figure 6 but is a race against time, not an HB race.
    let expected: Vec<&str> = GOLDEN.iter().map(|&(a, ..)| a).collect();
    for abbr in &fig6 {
        assert!(
            expected.contains(&abbr.as_str()) || abbr == "KUEt",
            "fig6 app {abbr} missing from the golden set"
        );
    }
    assert_eq!(expected.len() + 1, fig6.len(), "golden set covers fig6");
}

#[test]
fn predictions_carry_usable_cuts() {
    for &(abbr, site, _) in &GOLDEN[..3] {
        let analysis = analysis_of(abbr);
        for r in analysis.races.iter().filter(|r| r.site == site) {
            assert_eq!(r.cut, r.a.decisions, "{abbr}: cut is a's stamp");
            assert!(
                r.cut <= analysis.trace.len() as u64,
                "{abbr}: cut {} exceeds trace length {}",
                r.cut,
                analysis.trace.len()
            );
            assert!(r.a.event < r.b.event, "{abbr}: pair ordered by dispatch");
        }
    }
}

#[test]
fn analysis_is_deterministic() {
    let a = analysis_of("GHO");
    let b = analysis_of("GHO");
    assert_eq!(a.races, b.races);
    assert_eq!(a.events, b.events);
}
