//! Hardened trace ingestion: truncated, corrupt, or diverging traces must
//! surface as typed [`AnalyzeError`]s — never a panic, never a silently
//! wrong analysis.

use nodefz::{
    decode_trace, encode_trace, Decision, DecisionTrace, Perm, ReplayScheduler, TraceDecodeError,
    TraceFormatError,
};
use nodefz_hb::{analyze_recorded, record_vanilla, AnalyzeError};
use nodefz_rt::{PoolMode, VDur};

const ENV_SEED: u64 = 11;

fn gho() -> Box<dyn nodefz_apps::common::BugCase> {
    nodefz_apps::by_abbr("GHO").expect("registry")
}

#[test]
fn empty_input_is_a_missing_header() {
    let app = gho();
    match analyze_recorded(app.as_ref(), ENV_SEED, "") {
        Err(AnalyzeError::Decode(TraceDecodeError::MissingHeader)) => {}
        other => panic!("expected MissingHeader, got {other:?}"),
    }
}

#[test]
fn truncation_anywhere_is_a_typed_error() {
    let app = gho();
    let text = record_vanilla(app.as_ref(), ENV_SEED);
    // Cut the trace at several byte lengths; every prefix must fail with
    // a typed decode error (the full text must not).
    for keep in [0, 1, text.len() / 4, text.len() / 2, text.len() - 2] {
        let prefix: String = text.chars().take(keep).collect();
        match analyze_recorded(app.as_ref(), ENV_SEED, &prefix) {
            Err(AnalyzeError::Decode(_)) => {}
            other => panic!("prefix of {keep} bytes: expected decode error, got {other:?}"),
        }
    }
    assert!(analyze_recorded(app.as_ref(), ENV_SEED, &text).is_ok());
}

#[test]
fn garbage_decision_line_is_a_bad_decision() {
    let app = gho();
    let text = record_vanilla(app.as_ref(), ENV_SEED);
    let corrupt = text.replacen("end", "z 1 2 3\nend", 1);
    match analyze_recorded(app.as_ref(), ENV_SEED, &corrupt) {
        Err(AnalyzeError::Decode(TraceDecodeError::BadDecision(..))) => {}
        other => panic!("expected BadDecision, got {other:?}"),
    }
}

#[test]
fn non_permutation_shuffle_is_a_format_error() {
    let trace = DecisionTrace {
        pool_mode: PoolMode::Concurrent { workers: 4 },
        demux_done: false,
        decisions: vec![Decision::Shuffle(Perm::from(vec![0, 0]))],
    };
    let text = encode_trace(&trace);
    // The text is syntactically fine — decode accepts it...
    assert!(decode_trace(&text).is_ok());
    // ...but analysis rejects it before replaying anything.
    let app = gho();
    match analyze_recorded(app.as_ref(), ENV_SEED, &text) {
        Err(AnalyzeError::Format(TraceFormatError::BadShuffle { at: 0 })) => {}
        other => panic!("expected BadShuffle, got {other:?}"),
    }
}

#[test]
fn zero_lookahead_is_a_format_error_everywhere() {
    let trace = DecisionTrace {
        pool_mode: PoolMode::Serialized {
            lookahead: 0,
            max_delay: VDur::millis(1),
        },
        demux_done: true,
        decisions: vec![],
    };
    assert_eq!(trace.validate(), Err(TraceFormatError::ZeroLookahead));
    // The replay constructor enforces the same contract...
    assert!(ReplayScheduler::try_new(trace.clone()).is_err());
    // ...and so does the analyzer, via the text round trip.
    let text = encode_trace(&trace);
    let app = gho();
    match analyze_recorded(app.as_ref(), ENV_SEED, &text) {
        Err(AnalyzeError::Format(TraceFormatError::ZeroLookahead)) => {}
        other => panic!("expected ZeroLookahead, got {other:?}"),
    }
}

#[test]
fn tampered_decision_kind_reports_replay_divergence() {
    let app = gho();
    let text = record_vanilla(app.as_ref(), ENV_SEED);
    let mut trace = decode_trace(&text).expect("recorded trace decodes");
    assert!(!trace.is_empty());
    // Swap one decision for a different *kind*: the replayed consultation
    // there can no longer match, so the faithful-replay check must fail.
    let mid = trace.len() / 2;
    let original = trace.decisions[mid].kind();
    trace.decisions[mid] = if original == "defer-close" {
        Decision::Timer(None)
    } else {
        Decision::DeferClose(false)
    };
    let tampered = encode_trace(&trace);
    match analyze_recorded(app.as_ref(), ENV_SEED, &tampered) {
        Err(AnalyzeError::Replay(e)) => {
            assert!(e.mismatches > 0);
        }
        other => panic!("expected replay divergence, got {other:?}"),
    }
}

#[test]
fn errors_render_for_operators() {
    let app = gho();
    let err = analyze_recorded(app.as_ref(), ENV_SEED, "nonsense").unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("decode"), "{msg}");
    let src: &dyn std::error::Error = &err;
    assert!(src.to_string() == msg);
}
