//! Property tests: the happens-before relation is a partial order (a DAG
//! closure) on both synthetic random logs and real fuzzed runs, and
//! [`find_races`] only ever reports genuinely unordered write-ish pairs.

use nodefz::Mode;
use nodefz_check::{forall, Gen};
use nodefz_hb::{find_races, HbGraph};
use nodefz_rt::{
    Access, AccessKind, CbId, EvDetail, EvKind, EventLog, EventLogHandle, EventRecord, VTime,
};

/// A random log whose cause edges all point backwards, like the runtime's.
fn synthetic_log(g: &mut Gen) -> EventLog {
    let n = g.range_usize(2, 40);
    let mut log = EventLog::default();
    let mut timer_seq = 0u64;
    for i in 0..n {
        let backref = |g: &mut Gen, i: usize| {
            if i > 0 && g.bool() {
                Some(CbId(g.below(i as u64) as u32))
            } else {
                None
            }
        };
        let cause = backref(g, i);
        let cause2 = backref(g, i);
        let detail = if g.below(4) == 0 {
            timer_seq += 1;
            EvDetail::Timer {
                deadline: VTime::ZERO,
                seq: timer_seq,
            }
        } else {
            EvDetail::None
        };
        log.events.push(EventRecord {
            id: CbId(i as u32),
            kind: if i == 0 { EvKind::Setup } else { EvKind::Env },
            cause,
            cause2,
            decisions: i as u64,
            iter: i as u64,
            detail,
        });
    }
    let sites = g.range_usize(1, 4);
    for s in 0..sites {
        log.sites.push(format!("site-{s}"));
    }
    let accesses = g.range_usize(0, 12);
    for _ in 0..accesses {
        log.accesses.push(Access {
            event: CbId(g.below(n as u64) as u32),
            site: g.below(sites as u64) as u32,
            kind: *g.pick(&[AccessKind::Read, AccessKind::Write, AccessKind::Update]),
        });
    }
    log
}

/// Asserts the partial-order laws on every pair/triple of a log's graph.
fn assert_partial_order(log: &EventLog) {
    let graph = HbGraph::from_log(log);
    let n = log.events.len();
    assert_eq!(graph.len(), n);
    for a in 0..n {
        let a = CbId(a as u32);
        assert!(graph.leq(a, a), "reflexive at {a:?}");
        for b in 0..n {
            let b = CbId(b as u32);
            // Every edge points forward in dispatch order, so the closure
            // must too — which makes the relation antisymmetric and the
            // graph acyclic.
            if graph.leq(a, b) && a != b {
                assert!(a < b, "forward: {a:?} ≤ {b:?}");
                assert!(!graph.leq(b, a), "antisymmetric on ({a:?}, {b:?})");
            }
        }
    }
    for a in 0..n {
        for b in a..n {
            if !graph.leq(CbId(a as u32), CbId(b as u32)) {
                continue;
            }
            for c in b..n {
                if graph.leq(CbId(b as u32), CbId(c as u32)) {
                    assert!(
                        graph.leq(CbId(a as u32), CbId(c as u32)),
                        "transitive on ({a}, {b}, {c})"
                    );
                }
            }
        }
    }
    // The generating edges are in the closure.
    for ev in &log.events {
        for cause in [ev.cause, ev.cause2].into_iter().flatten() {
            if cause < ev.id {
                assert!(graph.leq(cause, ev.id), "edge {cause:?} -> {:?}", ev.id);
            }
        }
    }
}

/// Asserts [`find_races`] reports only unordered, write-ish, in-range pairs.
fn assert_races_consistent(log: &EventLog) {
    let graph = HbGraph::from_log(log);
    for race in find_races(log) {
        assert!((race.site as usize) < log.sites.len());
        assert!(race.a < race.b, "pair ordered by dispatch id");
        assert!(graph.concurrent(race.a, race.b), "reported pair unordered");
        assert_eq!(race.cut, log.events[race.a.0 as usize].decisions);
        let writeish = |id: CbId| {
            log.accesses
                .iter()
                .any(|acc| acc.event == id && acc.site == race.site && acc.kind.is_write())
        };
        assert!(
            writeish(race.a) || writeish(race.b),
            "at least one side writes"
        );
    }
}

#[test]
fn hb_is_a_partial_order_on_synthetic_logs() {
    forall("hb_is_a_partial_order_on_synthetic_logs", 96, |g| {
        let log = synthetic_log(g);
        assert_partial_order(&log);
        assert_races_consistent(&log);
    });
}

#[test]
fn hb_is_a_partial_order_on_real_fuzzed_runs() {
    let fig6 = ["GHO", "KUE", "MGS", "SIO*", "CLF"];
    forall("hb_is_a_partial_order_on_real_fuzzed_runs", 12, |g| {
        let abbr = *g.pick(&fig6);
        let app = nodefz_apps::by_abbr(abbr).expect("registry");
        let events = EventLogHandle::fresh();
        let mut cfg =
            nodefz_apps::common::RunCfg::new(Mode::Fuzz, g.range(1, 1 << 20)).events(&events);
        cfg.sched_seed = g.u64();
        app.run(&cfg, nodefz_apps::common::Variant::Buggy);
        let log = events.snapshot();
        assert!(!log.events.is_empty(), "{abbr} dispatched something");
        // The runtime's invariant the synthetic generator mimics: causes
        // always dispatch before their effects.
        for ev in &log.events {
            for cause in [ev.cause, ev.cause2].into_iter().flatten() {
                assert!(cause < ev.id, "{abbr}: cause {cause:?} of {:?}", ev.id);
            }
        }
        assert_partial_order(&log);
        assert_races_consistent(&log);
    });
}
