//! Properties of the canonical schedule key: the soundness contract that
//! lets the campaign prune is that two runs mapping to the same
//! [`CanonKey`] carry the same races — skipping one loses nothing.

use std::collections::HashMap;

use nodefz::Mode;
use nodefz_check::{forall, Gen};
use nodefz_hb::{canon_key, find_races, CanonKey, HbGraph};
use nodefz_rt::{Access, CbId, EvKind, EventLog, EventLogHandle};

/// A race report normalized to schedule-invariant terms: ids and interning
/// indices differ between interleavings, site names and event kinds do not.
fn normalized_races(log: &EventLog) -> Vec<(String, &'static str, String, String)> {
    let kind_of = |id: CbId| {
        let ev = &log.events[id.0 as usize];
        match ev.kind {
            EvKind::Setup => "setup".to_string(),
            EvKind::Env => "env".to_string(),
            EvKind::Cb(k) => k.label().to_string(),
        }
    };
    let mut races: Vec<_> = find_races(log)
        .into_iter()
        .map(|r| {
            // Which side dispatched first is schedule-dependent — the
            // pair is unordered, so normalize the two kinds by sorting.
            let (mut ka, mut kb) = (kind_of(r.a), kind_of(r.b));
            if ka > kb {
                std::mem::swap(&mut ka, &mut kb);
            }
            (log.site_name(r.site).to_string(), r.class.label(), ka, kb)
        })
        .collect();
    races.sort();
    races
}

fn logged_fuzz_run(abbr: &str, env_seed: u64, sched_seed: u64) -> EventLog {
    let app = nodefz_apps::by_abbr(abbr).expect("registry");
    let events = EventLogHandle::fresh();
    let mut cfg = nodefz_apps::common::RunCfg::new(Mode::Fuzz, env_seed).events(&events);
    cfg.sched_seed = sched_seed;
    app.run(&cfg, nodefz_apps::common::Variant::Buggy);
    events.snapshot()
}

/// A race, normalized for comparison: (site, class label, endpoint a, b).
type RaceRow = (String, &'static str, String, String);

/// The pruning soundness contract on real fuzzed runs: group runs by
/// canonical key; every group must agree on its (normalized) race report.
#[test]
fn same_canon_key_implies_identical_race_reports() {
    let mut groups: HashMap<CanonKey, (String, Vec<RaceRow>)> = HashMap::new();
    let mut collisions = 0usize;
    for abbr in ["GHO", "KUE", "MGS", "CLF", "AKA"] {
        for env_seed in [3u64, 11] {
            for sched_seed in 0..24u64 {
                let log = logged_fuzz_run(abbr, env_seed, sched_seed);
                assert!(!log.events.is_empty(), "{abbr} dispatched something");
                let key = canon_key(&log);
                let races = normalized_races(&log);
                let tag = format!("{abbr}/env{env_seed}/sched{sched_seed}");
                match groups.entry(key) {
                    std::collections::hash_map::Entry::Vacant(v) => {
                        v.insert((tag, races));
                    }
                    std::collections::hash_map::Entry::Occupied(o) => {
                        collisions += 1;
                        // Colliding runs may come from different seeds (or
                        // even environments with identical event structure);
                        // what pruning relies on is that they agree on races.
                        let (first_tag, first_races) = o.get();
                        assert_eq!(
                            first_races, &races,
                            "{tag} vs {first_tag}: same canonical key, different races"
                        );
                    }
                }
            }
        }
    }
    // The dedup must have something to dedup, or the property is vacuous:
    // across 24 sched seeds per (app, env) many schedules are equivalent.
    assert!(
        collisions >= 10,
        "expected plenty of HB-equivalent schedules, saw {collisions}"
    );
}

/// Remaps a log along a permutation `order` (new dispatch order; a linear
/// extension of the cause/timer edges), renumbering ids and re-interning
/// sites in first-touch order — everything a different interleaving of the
/// same HB class would change.
fn permuted(log: &EventLog, order: &[usize]) -> EventLog {
    let mut new_id = vec![0u32; log.events.len()];
    for (pos, &old) in order.iter().enumerate() {
        new_id[old] = pos as u32;
    }
    let mut out = EventLog::default();
    for &old in order {
        let mut ev = log.events[old];
        ev.id = CbId(new_id[old]);
        ev.cause = ev.cause.map(|c| CbId(new_id[c.0 as usize]));
        ev.cause2 = ev.cause2.map(|c| CbId(new_id[c.0 as usize]));
        // Different interleavings consume different decision prefixes and
        // land on different iterations; canon must not care.
        ev.decisions = ev.decisions.wrapping_mul(31).wrapping_add(7);
        ev.iter += 13;
        out.events.push(ev);
    }
    // Accesses in new dispatch order, sites re-interned on first touch.
    let mut by_event: Vec<Vec<&Access>> = vec![Vec::new(); log.events.len()];
    for a in &log.accesses {
        by_event[a.event.0 as usize].push(a);
    }
    for &old in order {
        for a in &by_event[old] {
            let name = log.site_name(a.site);
            let site = match out.sites.iter().position(|s| s == name) {
                Some(i) => i as u32,
                None => {
                    out.sites.push(name.to_string());
                    (out.sites.len() - 1) as u32
                }
            };
            out.accesses.push(Access {
                event: CbId(new_id[old]),
                site,
                kind: a.kind,
            });
        }
    }
    out
}

/// Draws a random linear extension of the log's HB edges.
fn random_extension(g: &mut Gen, log: &EventLog) -> Vec<usize> {
    let graph = HbGraph::from_log(log);
    let n = log.events.len();
    let mut placed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    while order.len() < n {
        let ready: Vec<usize> = (0..n)
            .filter(|&i| {
                !placed[i]
                    && (0..n)
                        .all(|j| placed[j] || j == i || !graph.leq(CbId(j as u32), CbId(i as u32)))
            })
            .collect();
        let pick = ready[g.below(ready.len() as u64) as usize];
        placed[pick] = true;
        order.push(pick);
    }
    order
}

/// Dispatch-order invariance on real logs: any linear extension of the HB
/// edges — with ids renumbered, sites re-interned, decision stamps
/// perturbed — keys identically and reports identical races.
#[test]
fn canon_key_is_invariant_under_hb_respecting_permutations() {
    forall("canon_key_permutation_invariance", 24, |g| {
        let abbr = *g.pick(&["GHO", "KUE", "CLF", "MGS"]);
        let log = logged_fuzz_run(abbr, g.range(1, 1 << 16), g.u64());
        // Cap the size so the O(n²) extension sampler stays fast.
        if log.events.len() > 120 {
            return;
        }
        let key = canon_key(&log);
        let races = normalized_races(&log);
        let order = random_extension(g, &log);
        let shuffled = permuted(&log, &order);
        assert_eq!(
            canon_key(&shuffled),
            key,
            "{abbr}: HB-respecting reorder changed the canonical key"
        );
        assert_eq!(
            normalized_races(&shuffled),
            races,
            "{abbr}: HB-respecting reorder changed the races"
        );
    });
}

/// Different environments (different event structures) must key apart.
#[test]
fn different_structures_key_apart() {
    let mut keys = std::collections::HashSet::new();
    for abbr in ["GHO", "KUE", "MGS", "CLF", "AKA", "EPL"] {
        let log = logged_fuzz_run(abbr, 5, 1);
        keys.insert(canon_key(&log));
    }
    assert_eq!(keys.len(), 6, "six apps, six structures, six keys");
}
