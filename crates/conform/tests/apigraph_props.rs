//! Validity-by-construction property suite for API-graph generation
//! (ISSUE 10 satellite a).
//!
//! Every program the graph-traversal generator emits must be valid with
//! no caveats: the literal validates, the interpreter installs and runs
//! to quiescence without panics or runtime errors, and the ordering
//! oracle accepts the vanilla schedule — across ≥500 seeds. The suite is
//! parameterised by the graph so the broken-graph canary can prove it
//! *fails* when a dependency producer is dropped.

use std::rc::Rc;

use nodefz::Mode;
use nodefz_rt::Termination;

use nodefz_conform::{check, generate_api_with, run_logged, ApiGraph, OracleCtx, API_NODES};

/// Fixed property seed family — disjoint from the smoke and corpus seeds.
const PROP_BASE: u64 = 0x5EED_0000_0000_0003;

/// Runs the full validity property over `seeds` programs generated from
/// `graph`. Any constraint violation — generation refusal, invalid
/// literal, panic, non-quiescence, runtime error, oracle violation —
/// surfaces as `Err`.
fn validity_suite(graph: &ApiGraph, seeds: u64) -> Result<(), String> {
    for i in 0..seeds {
        let seed = PROP_BASE ^ i;
        let prog =
            Rc::new(generate_api_with(graph, seed).map_err(|e| format!("seed {seed}: {e}"))?);
        prog.validate()
            .map_err(|e| format!("seed {seed}: invalid program: {e}"))?;
        let (report, log) = run_logged(&prog, seed, Mode::Vanilla, &None);
        if !matches!(report.termination, Termination::Quiescent) {
            return Err(format!(
                "seed {seed}: vanilla run did not quiesce: {:?}",
                report.termination
            ));
        }
        if !report.errors.is_empty() {
            return Err(format!(
                "seed {seed}: runtime errors {:?}\nprogram:\n{prog}",
                report.errors
            ));
        }
        let violations = check(
            &prog,
            &log,
            &OracleCtx {
                demux: false,
                completed: true,
            },
        );
        if !violations.is_empty() {
            return Err(format!(
                "seed {seed}: oracle rejected the vanilla run: {violations:?}\nprogram:\n{prog}"
            ));
        }
    }
    Ok(())
}

#[test]
fn five_hundred_api_graph_programs_are_valid_by_construction() {
    validity_suite(&ApiGraph::full(), 500).unwrap();
}

#[test]
fn generated_literals_round_trip_and_are_deterministic() {
    use nodefz_conform::{generate_api, Prog};
    for i in 0..50u64 {
        let seed = PROP_BASE ^ i;
        let a = generate_api(seed);
        assert_eq!(a, generate_api(seed), "seed {seed} not deterministic");
        assert_eq!(Prog::parse(&a.to_string()).unwrap(), a);
    }
}

#[test]
fn broken_graph_canary_fails_the_validity_suite() {
    // Dropping any dependency producer must make the suite fail loudly
    // (generation refuses a non-closed graph) — proving the property
    // suite can fail at all.
    for producer in [
        "Kv::connect",
        "Ctx::set_interval",
        "Barrier::new",
        "SimFs::new",
    ] {
        let damaged = ApiGraph::full().without(producer);
        assert!(
            validity_suite(&damaged, 10).is_err(),
            "dropping {producer} went unnoticed by the validity suite"
        );
    }
    // Sanity: the nodes the canary drops are really in the enumerated
    // surface (guards against a silently renamed graph).
    for producer in [
        "Kv::connect",
        "Ctx::set_interval",
        "Barrier::new",
        "SimFs::new",
    ] {
        assert!(API_NODES.iter().any(|n| n.name == producer));
    }
}
