//! The CI `conform-smoke` leg (ISSUE 5 satellite e).
//!
//! A fixed-seed batch of 200 generated programs through the full
//! differential harness, sized to finish quickly in CI, plus the
//! *broken-oracle canary*: deliberate log corruptions that prove the
//! oracle actually rejects at least three distinct classes of invalid
//! schedule. A green smoke run therefore certifies both directions — the
//! runtime produces legal schedules, and the judge is not asleep.

use std::collections::BTreeSet;
use std::rc::Rc;

use nodefz::Mode;
use nodefz_apps::common::RunCfg;
use nodefz_rt::{CbKind, EvKind, EventLog, EventLogHandle, LoopPool, Termination};

use nodefz_conform::{check, differential, generate, install, DiffConfig, OracleCtx, Prog};

/// The fixed smoke seed family — referenced by `.github/workflows/ci.yml`.
const SMOKE_BASE: u64 = 0x5EED_0000_0000_0001;

#[test]
fn smoke_200_programs_differentially_clean() {
    let pool = LoopPool::new();
    let cfg = DiffConfig {
        pool: Some(pool),
        ..DiffConfig::default()
    };
    let mut failures = Vec::new();
    for i in 0..200u64 {
        let seed = SMOKE_BASE ^ i;
        let prog = Rc::new(generate(seed));
        if let Err(e) = differential(&prog, seed, &cfg) {
            failures.push(format!("seed {seed}: {e}\nprogram:\n{prog}"));
        }
    }
    assert!(
        failures.is_empty(),
        "{} of 200 smoke programs failed:\n{}",
        failures.len(),
        failures.join("\n---\n")
    );
}

fn vanilla_log(seed: u64) -> (Prog, EventLog) {
    let prog = Rc::new(generate(seed));
    let events = EventLogHandle::fresh();
    let cfg = RunCfg::new(Mode::Vanilla, seed).events(&events);
    let mut el = cfg.build_loop();
    install(&prog, &mut el);
    let report = el.run();
    assert!(matches!(report.termination, Termination::Quiescent));
    ((*prog).clone(), events.snapshot())
}

fn violated_rules(prog: &Prog, log: &EventLog) -> BTreeSet<&'static str> {
    check(
        prog,
        log,
        &OracleCtx {
            demux: false,
            completed: true,
        },
    )
    .into_iter()
    .map(|v| v.rule)
    .collect()
}

#[test]
fn broken_oracle_canary_rejects_three_classes_of_invalid_schedule() {
    // Corrupt clean logs three structurally different ways; the oracle
    // must cite a distinct rule class for each. If someone neuters the
    // oracle, this canary — not a thousand green runs — catches it.
    let mut rejected: BTreeSet<&'static str> = BTreeSet::new();

    // Class 1: causality — an event claiming a *later* event caused it.
    for seed in 0..200u64 {
        let (prog, mut log) = vanilla_log(SMOKE_BASE ^ seed);
        if log.events.len() < 2 {
            continue;
        }
        log.events[0].cause = Some(log.events[log.events.len() - 1].id);
        let rules = violated_rules(&prog, &log);
        assert!(rules.contains("cause-backward"), "got {rules:?}");
        rejected.insert("cause-backward");
        break;
    }

    // Class 2: phase order — drag the last event into an earlier
    // iteration than its predecessor.
    for seed in 0..200u64 {
        let (prog, mut log) = vanilla_log(SMOKE_BASE ^ seed);
        let n = log.events.len();
        if n < 2 || log.events[n - 2].iter == 0 {
            continue;
        }
        log.events[n - 1].iter = log.events[n - 2].iter - 1;
        let rules = violated_rules(&prog, &log);
        assert!(rules.contains("phase-order"), "got {rules:?}");
        rejected.insert("phase-order");
        break;
    }

    // Class 3: completeness/liveness — erase a dispatched node's marker
    // from a quiescent run's log.
    for seed in 0..200u64 {
        let (prog, mut log) = vanilla_log(SMOKE_BASE ^ seed);
        let Some(site) = log.sites.iter().position(|s| s == "run:1") else {
            continue;
        };
        log.accesses.retain(|a| a.site != site as u32);
        let rules = violated_rules(&prog, &log);
        assert!(rules.contains("all-dispatched"), "got {rules:?}");
        rejected.insert("all-dispatched");
        break;
    }

    // Class 4: dispatch identity — relabel a timer dispatch as a check
    // callback so the node's kind contradicts its op.
    for seed in 0..400u64 {
        let (prog, mut log) = vanilla_log(SMOKE_BASE ^ seed);
        let Some(idx) = log
            .events
            .iter()
            .position(|e| e.kind == EvKind::Cb(CbKind::Timer))
        else {
            continue;
        };
        log.events[idx].kind = EvKind::Cb(CbKind::Check);
        let rules = violated_rules(&prog, &log);
        if rules.contains("spawn-kind") {
            rejected.insert("spawn-kind");
            break;
        }
    }

    assert!(
        rejected.len() >= 3,
        "oracle only rejected {rejected:?} — need at least three classes"
    );
}
