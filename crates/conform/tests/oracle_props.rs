//! Property suite for the ordering oracle (ISSUE 5 satellite b).
//!
//! Positive direction: the oracle accepts the vanilla log of 500
//! generated programs for each of 3 seed families. Negative direction:
//! hand-mutated logs — a microtask torn out of its parent event, a
//! reordered per-fd FIFO, a close dispatched before poll work, a
//! non-monotone timer pair — are rejected with the *expected* rule id.

use std::rc::Rc;

use nodefz::Mode;
use nodefz_apps::common::RunCfg;
use nodefz_rt::{CbId, CbKind, EvDetail, EvKind, EventLog, EventLogHandle, LoopPool, Termination};

use nodefz_conform::{check, generate, install, Op, OracleCtx, Prog};

fn vanilla_log(pool: &LoopPool, seed: u64) -> (Prog, EventLog) {
    let prog = Rc::new(generate(seed));
    let events = EventLogHandle::fresh();
    let cfg = RunCfg::new(Mode::Vanilla, seed)
        .events(&events)
        .pooled(pool);
    let mut el = cfg.build_loop();
    install(&prog, &mut el);
    let report = el.run();
    assert!(
        matches!(report.termination, Termination::Quiescent),
        "seed {seed} did not quiesce: {:?}",
        report.termination
    );
    ((*prog).clone(), events.snapshot())
}

fn assert_clean(prog: &Prog, log: &EventLog, seed: u64) {
    let violations = check(
        prog,
        log,
        &OracleCtx {
            demux: false,
            completed: true,
        },
    );
    assert!(
        violations.is_empty(),
        "seed {seed} vanilla log rejected:\n{}\nprogram:\n{prog}",
        violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn oracle_accepts_vanilla_logs_for_500_programs_across_3_seed_families() {
    let pool = LoopPool::new();
    for family in 0..3u64 {
        let base = family.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        for i in 0..500u64 {
            let seed = base ^ i;
            let (prog, log) = vanilla_log(&pool, seed);
            assert_clean(&prog, &log, seed);
        }
    }
}

/// Finds the first seed whose vanilla log satisfies `wanted`, mutates
/// the log with `mutate`, and asserts the oracle rejects it citing
/// `rule`. Returns the full violation list for extra assertions.
fn mutation_canary(
    wanted: impl Fn(&Prog, &EventLog) -> bool,
    mutate: impl Fn(&Prog, &mut EventLog),
    rule: &str,
) -> Vec<nodefz_conform::Violation> {
    let pool = LoopPool::new();
    let (prog, mut log) = (0..2_000u64)
        .map(|seed| vanilla_log(&pool, seed))
        .find(|(p, l)| wanted(p, l))
        .unwrap_or_else(|| panic!("no seed in 0..2000 suits the {rule} canary"));
    assert_clean(&prog, &log, u64::MAX); // sanity: legal before mutation
    mutate(&prog, &mut log);
    let violations = check(
        &prog,
        &log,
        &OracleCtx {
            demux: false,
            completed: true,
        },
    );
    assert!(
        violations.iter().any(|v| v.rule == rule),
        "mutated log not rejected under [{rule}]; got: {violations:?}"
    );
    violations
}

/// The event that first accessed `marker`, if any.
fn marker_event(log: &EventLog, marker: &str) -> Option<CbId> {
    let site = log.sites.iter().position(|s| s == marker)? as u32;
    log.accesses
        .iter()
        .find(|a| a.site == site)
        .map(|a| a.event)
}

#[test]
fn swapped_microtask_is_rejected_as_micro_before_macro() {
    // Tear a nextTick body out of its parent's event: reattach its run
    // marker to a different event record.
    let has_ticked_child = |p: &Prog, l: &EventLog| {
        l.events.len() > 2
            && p.nodes.iter().enumerate().any(|(i, n)| {
                matches!(n.op, Op::NextTick)
                    && marker_event(l, &Prog::run_marker(i as u32)).is_some()
            })
    };
    mutation_canary(
        has_ticked_child,
        |p, l| {
            let (id, _) = p
                .nodes
                .iter()
                .enumerate()
                .find(|(_, n)| matches!(n.op, Op::NextTick))
                .unwrap();
            let marker = Prog::run_marker(id as u32);
            let site = l.sites.iter().position(|s| *s == marker).unwrap() as u32;
            let current = marker_event(l, &marker).unwrap();
            // Any *other* event will do: the rule demands equality with
            // the parent's event.
            let other = CbId(if current.0 + 1 < l.events.len() as u32 {
                current.0 + 1
            } else {
                current.0 - 1
            });
            for acc in &mut l.accesses {
                if acc.site == site {
                    acc.event = other;
                }
            }
        },
        "micro-before-macro",
    );
}

#[test]
fn reordered_fd_fifo_is_rejected_as_fd_fifo() {
    // Swap the first two payload observations of a multi-message chain.
    let has_long_chain = |p: &Prog, l: &EventLog| {
        p.nodes.iter().enumerate().any(|(i, n)| {
            matches!(n.op, Op::FdChain { msgs, .. } if msgs >= 2)
                && marker_event(l, &format!("msg:{i}:1")).is_some()
        })
    };
    mutation_canary(
        has_long_chain,
        |p, l| {
            let (id, _) = p
                .nodes
                .iter()
                .enumerate()
                .find(|(i, n)| {
                    matches!(n.op, Op::FdChain { msgs, .. } if msgs >= 2)
                        && marker_event(l, &format!("msg:{i}:1")).is_some()
                })
                .unwrap();
            let site_of =
                |l: &EventLog, name: &str| l.sites.iter().position(|s| s == name).unwrap() as u32;
            let s0 = site_of(l, &format!("msg:{id}:0"));
            let s1 = site_of(l, &format!("msg:{id}:1"));
            let i0 = l.accesses.iter().position(|a| a.site == s0).unwrap();
            let i1 = l.accesses.iter().position(|a| a.site == s1).unwrap();
            // Delivery order becomes 1 then 0.
            l.accesses[i0].site = s1;
            l.accesses[i1].site = s0;
        },
        "fd-fifo",
    );
}

#[test]
fn close_before_poll_is_rejected_as_close_last() {
    // Swap the kinds of a poll-phase event and a later close event in
    // the same iteration: the close now precedes poll work.
    fn close_after_poll(l: &EventLog) -> Option<(usize, usize)> {
        for (j, b) in l.events.iter().enumerate() {
            if b.kind != EvKind::Cb(CbKind::Close) {
                continue;
            }
            for (i, a) in l.events[..j].iter().enumerate() {
                let pollish = matches!(a.kind, EvKind::Env | EvKind::Cb(CbKind::NetRead));
                if a.iter == b.iter && pollish {
                    return Some((i, j));
                }
            }
        }
        None
    }
    mutation_canary(
        |_, l| close_after_poll(l).is_some(),
        |_, l| {
            let (i, j) = close_after_poll(l).unwrap();
            let (ka, kb) = (l.events[i].kind, l.events[j].kind);
            l.events[i].kind = kb;
            l.events[j].kind = ka;
        },
        "close-last",
    );
}

#[test]
fn non_monotone_timers_are_rejected_as_timer_monotone() {
    // Swap the (deadline, seq) payloads of two distinct timer dispatches.
    fn timer_pair(l: &EventLog) -> Option<(usize, usize)> {
        let timers: Vec<usize> = l
            .events
            .iter()
            .enumerate()
            .filter(|(_, e)| matches!(e.detail, EvDetail::Timer { .. }))
            .map(|(i, _)| i)
            .collect();
        timers
            .windows(2)
            .find(|w| l.events[w[0]].detail != l.events[w[1]].detail)
            .map(|w| (w[0], w[1]))
    }
    mutation_canary(
        |_, l| timer_pair(l).is_some(),
        |_, l| {
            let (i, j) = timer_pair(l).unwrap();
            let (da, db) = (l.events[i].detail, l.events[j].detail);
            l.events[i].detail = db;
            l.events[j].detail = da;
        },
        "timer-monotone",
    );
}
