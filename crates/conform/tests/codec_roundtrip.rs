//! Trace-codec round-trip fuzz (ISSUE 5 satellite c).
//!
//! Generated programs recorded under seeded swarm parameterizations
//! produce decision traces; each trace must encode → decode → re-encode
//! **byte-identically**, and the decoded trace must equal the original
//! value. This fuzzes the codec with real (not synthetic) traces whose
//! decision mixes vary with the swarm mask.

use std::rc::Rc;

use nodefz::{decode_trace, encode_trace, FuzzParams, Mode, TraceHandle};
use nodefz_apps::common::RunCfg;
use nodefz_rt::{LoopPool, Termination};

use nodefz_conform::{generate, install};

#[test]
fn recorded_traces_round_trip_byte_identically() {
    let pool = LoopPool::new();
    let mut nonempty = 0usize;
    for seed in 0..200u64 {
        let prog = Rc::new(generate(seed));
        let params = FuzzParams::sampled(seed.wrapping_mul(0x2545_F491_4F6C_DD1D));
        let handle = TraceHandle::fresh();
        let cfg = RunCfg::new(Mode::Record(params, handle.clone()), seed).pooled(&pool);
        let mut el = cfg.build_loop();
        install(&prog, &mut el);
        let report = el.run();
        assert!(
            matches!(report.termination, Termination::Quiescent),
            "seed {seed}: {:?} (errors {:?})\nprogram:\n{prog}",
            report.termination,
            report.errors
        );
        let trace = handle.snapshot();
        if !trace.decisions.is_empty() {
            nonempty += 1;
        }
        let text = encode_trace(&trace);
        let decoded = decode_trace(&text)
            .unwrap_or_else(|e| panic!("seed {seed}: decode failed: {e}\n{text}"));
        assert_eq!(decoded, trace, "seed {seed}: decoded trace differs");
        let text2 = encode_trace(&decoded);
        assert_eq!(
            text, text2,
            "seed {seed}: re-encoding is not byte-identical"
        );
    }
    // The sweep must actually exercise the codec, not just empty traces.
    assert!(
        nonempty > 100,
        "only {nonempty}/200 runs produced decisions — sampled params too tame"
    );
}

#[test]
fn vanilla_programs_record_decision_free_but_valid_traces() {
    // Record mode with the no-op parameterization still snapshots loop
    // facts (pool mode, demux) that must survive the codec.
    for seed in [1u64, 42, 977] {
        let prog = Rc::new(generate(seed));
        let handle = TraceHandle::fresh();
        let cfg = RunCfg::new(Mode::Record(FuzzParams::none(), handle.clone()), seed);
        let mut el = cfg.build_loop();
        install(&prog, &mut el);
        el.run();
        let trace = handle.snapshot();
        let text = encode_trace(&trace);
        let decoded = decode_trace(&text).unwrap();
        assert_eq!(decoded, trace);
        assert_eq!(encode_trace(&decoded), text);
    }
}
