//! Coverage-regression golden (ISSUE 10 satellite c).
//!
//! Freezes the `nodefz-apicov-v1` document of a fixed 100-program
//! API-graph batch as a byte-golden literal, and pins the comparative
//! claim the new family exists for: at equal batch size, the API-graph
//! family covers **strictly more** API nodes, producer→consumer edges,
//! and oracle rules than seed family 0.
//!
//! Re-bless with `NFZ_BLESS=1 cargo test -p nodefz-conform --test
//! apicov_golden` after verifying a diff is intentional.

use std::rc::Rc;

use nodefz::Mode;
use nodefz_rt::Termination;

use nodefz_conform::{
    generate_family, run_logged, ApiCovSnapshot, ApiCoverage, OracleCtx, API_FAMILY,
};

/// Seed scheme of the conform corpus (family stride ^ index).
const FAMILY_STRIDE: u64 = 0x6C62_272E_07BB_0142;

fn family_coverage(family: u64, count: u64) -> ApiCovSnapshot {
    let mut cov = ApiCoverage::default();
    let base = family.wrapping_mul(FAMILY_STRIDE);
    for i in 0..count {
        let seed = base ^ i;
        let prog = Rc::new(generate_family(family, seed));
        let (report, log) = run_logged(&prog, seed, Mode::Vanilla, &None);
        let completed = matches!(report.termination, Termination::Quiescent);
        cov.record(
            &prog,
            &log,
            &OracleCtx {
                demux: false,
                completed,
            },
        );
    }
    cov.snapshot()
}

fn golden(name: &str, actual: &str) {
    let file = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("NFZ_BLESS").is_some() {
        std::fs::create_dir_all(file.parent().unwrap()).unwrap();
        std::fs::write(&file, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&file)
        .unwrap_or_else(|e| panic!("{}: {e} (bless with NFZ_BLESS=1)", file.display()));
    assert_eq!(
        expected, actual,
        "golden mismatch for {name}; if intentional, re-bless with NFZ_BLESS=1"
    );
}

#[test]
fn apicov_document_is_byte_stable() {
    let snap = family_coverage(API_FAMILY, 100);
    golden("apicov.json", &format!("{}\n", snap.to_json()));
}

#[test]
fn api_graph_family_strictly_dominates_family_zero() {
    let base = family_coverage(0, 100);
    let api = family_coverage(API_FAMILY, 100);
    assert!(
        api.nodes_covered > base.nodes_covered,
        "API nodes: api family {} vs family-0 {} — no strict gain",
        api.nodes_covered,
        base.nodes_covered
    );
    assert!(
        api.edges_covered > base.edges_covered,
        "edges: api family {} vs family-0 {} — no strict gain",
        api.edges_covered,
        base.edges_covered
    );
    assert!(
        api.rules_covered > base.rules_covered,
        "oracle rules: api family {} vs family-0 {} — no strict gain",
        api.rules_covered,
        base.rules_covered
    );
}
