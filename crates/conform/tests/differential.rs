//! The tentpole acceptance run: differential schedule testing at scale.
//!
//! Three independent-sampling seed families plus the API-graph family,
//! × 500 generated programs each, every one driven through vanilla /
//! fuzz / replay / directed with zero tolerated failures — plus the
//! shrinking integration: a program whose
//! differential report exhibits a property of interest delta-debugs to a
//! minimal, deterministic, printable `nodefz-prog v1` repro.

use std::rc::Rc;

use nodefz_rt::LoopPool;

use nodefz_conform::{differential, generate, generate_family, shrink_prog, DiffConfig, Prog};

#[test]
fn differential_holds_for_500_programs_per_seed_family() {
    let pool = LoopPool::new();
    let cfg = DiffConfig {
        pool: Some(pool),
        ..DiffConfig::default()
    };
    let mut totals = (0usize, 0usize, 0usize, 0usize); // events, races, confirmed, directed runs
    for family in 0..4u64 {
        let base = family.wrapping_mul(0x6C62_272E_07BB_0142);
        for i in 0..500u64 {
            let seed = base ^ i;
            let prog = Rc::new(generate_family(family, seed));
            let report = differential(&prog, seed, &cfg)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\nprogram:\n{prog}"));
            totals.0 += report.vanilla_events + report.fuzz_events;
            totals.1 += report.races;
            totals.2 += report.confirmed;
            totals.3 += report.directed_runs;
            // Every prediction chased was resolved one way or the other.
            assert_eq!(
                report.confirmed + report.unconfirmable,
                report.races.min(2),
                "seed {seed}: a race prediction was silently dropped"
            );
        }
    }
    // The sweep must be substantive: thousands of events, some races
    // predicted, at least some confirmed by a directed flip.
    println!(
        "differential sweep: 2000 programs, {} events, {} races predicted, \
         {} confirmed, {} directed runs",
        totals.0, totals.1, totals.2, totals.3
    );
    assert!(totals.0 > 10_000, "only {} events total", totals.0);
    assert!(totals.1 > 50, "only {} races predicted", totals.1);
    assert!(totals.2 > 0, "no predicted race was ever confirmed");
    assert!(totals.3 > 0, "no directed runs executed");
}

#[test]
fn interesting_programs_shrink_to_minimal_deterministic_literals() {
    let pool = LoopPool::new();
    let cfg = DiffConfig {
        pool: Some(pool),
        ..DiffConfig::default()
    };
    // "Failure" stand-in: the differential report predicts at least one
    // race. (A real oracle violation would use the same predicate shape
    // with `differential(..).is_err()`.)
    let mut fails = |p: &Prog| match differential(&Rc::new(p.clone()), 12345, &cfg) {
        Ok(report) => report.races > 0,
        Err(_) => false,
    };
    let prog = (0..300u64)
        .map(generate)
        .find(|p| p.nodes.len() > 5 && fails(p))
        .expect("no generated program predicted a race");
    let out = shrink_prog(&prog, &mut fails);
    out.minimal.validate().expect("shrunk program invalid");
    assert!(fails(&out.minimal), "shrinking lost the property");
    assert!(
        out.minimal.nodes.len() <= prog.nodes.len(),
        "shrinking grew the program"
    );
    // Deterministic: shrinking again reproduces the same minimum.
    let again = shrink_prog(&prog, &mut fails);
    assert_eq!(again.minimal, out.minimal);
    // Printable round-trip: the repro is a parseable v1 literal.
    let literal = out.minimal.to_string();
    assert!(literal.starts_with("nodefz-prog v1\n"));
    assert_eq!(Prog::parse(&literal).unwrap(), out.minimal);
}
