//! The CI `apigraph-smoke` leg (ISSUE 10 satellite e).
//!
//! A fixed-seed batch of 200 API-graph programs through the full
//! differential harness, plus the `nodefz-apicov-v1` schema and
//! threshold check: the batch must exercise ≥90% of the enumerated API
//! nodes and every combinator in `crates/rt/src/combinators.rs`. The
//! broken-graph canary lives in `apigraph_props.rs` and runs in the same
//! CI leg.

use std::rc::Rc;

use nodefz::Mode;
use nodefz_rt::{LoopPool, Termination};

use nodefz_conform::{differential, generate_api, run_logged, ApiCoverage, DiffConfig, OracleCtx};

/// The fixed smoke seed family — referenced by `.github/workflows/ci.yml`.
const SMOKE_BASE: u64 = 0x5EED_0000_0000_0002;

#[test]
fn smoke_200_api_graph_programs_differentially_clean() {
    let pool = LoopPool::new();
    let cfg = DiffConfig {
        pool: Some(pool),
        ..DiffConfig::default()
    };
    let mut failures = Vec::new();
    for i in 0..200u64 {
        let seed = SMOKE_BASE ^ i;
        let prog = Rc::new(generate_api(seed));
        if let Err(e) = differential(&prog, seed, &cfg) {
            failures.push(format!("seed {seed}: {e}\nprogram:\n{prog}"));
        }
    }
    assert!(
        failures.is_empty(),
        "{} of 200 API-graph smoke programs failed:\n{}",
        failures.len(),
        failures.join("\n---\n")
    );
}

#[test]
fn smoke_batch_meets_the_apicov_thresholds() {
    let mut cov = ApiCoverage::default();
    for i in 0..200u64 {
        let seed = SMOKE_BASE ^ i;
        let prog = Rc::new(generate_api(seed));
        let (report, log) = run_logged(&prog, seed, Mode::Vanilla, &None);
        let completed = matches!(report.termination, Termination::Quiescent);
        cov.record(
            &prog,
            &log,
            &OracleCtx {
                demux: false,
                completed,
            },
        );
    }
    let snap = cov.snapshot();
    assert_eq!(snap.programs, 200);
    // Acceptance: ≥90% of the enumerated API nodes.
    assert!(
        snap.nodes_covered * 10 >= snap.nodes_total * 9,
        "batch covered {}/{} API nodes (<90%); missing: {:?}",
        snap.nodes_covered,
        snap.nodes_total,
        snap.missing_nodes
    );
    // Acceptance: every combinator in crates/rt/src/combinators.rs.
    for call in [
        "Barrier::new",
        "Barrier::arrive",
        "Barrier::remaining",
        "rt::series",
        "SeriesNext::call",
        "Emitter::new",
        "Emitter::on",
        "Emitter::once",
        "Emitter::remove_listener",
        "Emitter::listener_count",
        "Emitter::emit",
    ] {
        assert!(
            snap.nodes.iter().any(|n| n == call),
            "combinator {call} never exercised by the smoke batch"
        );
    }
    // Schema: the serialised document is a nodefz-apicov-v1 object with
    // every counter section present.
    let json = snap.to_json();
    for key in [
        "\"schema\":\"nodefz-apicov-v1\"",
        "\"programs\":200",
        "\"nodes\":{\"covered\":",
        "\"edges\":{\"covered\":",
        "\"rules\":{\"covered\":",
        "\"phases\":{\"covered\":",
        "\"op_pairs\":",
    ] {
        assert!(json.contains(key), "apicov document missing {key}: {json}");
    }
}
