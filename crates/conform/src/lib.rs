//! Generative conformance oracle + differential schedule testing.
//!
//! Every other crate in this workspace trusts the simulated event loop to
//! *be* a libuv event loop. This crate tests that trust. It generates
//! random event-driven programs from a small DSL ([`prog`], [`gen`]),
//! runs them through the real runtime, and judges the resulting dispatch
//! logs against an executable encoding of libuv's ordering rules
//! ([`oracle`]) — every verdict cites the rule it applied. The
//! differential harness ([`harness`]) then cross-checks the whole stack:
//! vanilla, fuzzed, replayed, and race-directed executions of the same
//! program must all produce oracle-legal schedules, replay must
//! reproduce the recorded log byte-for-byte, and every
//! happens-before-predicted race must be confirmed by a directed flip or
//! explicitly classified unconfirmable. Failing programs delta-debug to
//! a minimal printable `nodefz-prog v1` literal ([`shrink`]), and the
//! whole thing plugs into campaigns as the `CONFORM` arm ([`case`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod case;
pub mod gen;
pub mod harness;
pub mod oracle;
pub mod prog;
pub mod shrink;

pub use case::{bug_case, ConformCase, ABBR};
pub use gen::{generate, MAX_DEPTH, MAX_NODES};
pub use harness::{
    differential, render_log, run_logged, DiffConfig, DiffFailure, DiffReport, RaceOutcome,
};
pub use oracle::{check, OracleCtx, Violation};
pub use prog::{install, Node, Op, Prog, ProgError, Touch, SHARED_SITES};
pub use shrink::{shrink_prog, ShrinkOutcome};
