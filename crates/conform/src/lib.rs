//! Generative conformance oracle + differential schedule testing.
//!
//! Every other crate in this workspace trusts the simulated event loop to
//! *be* a libuv event loop. This crate tests that trust. It generates
//! random event-driven programs from a small DSL ([`prog`], [`gen`]),
//! runs them through the real runtime, and judges the resulting dispatch
//! logs against an executable encoding of libuv's ordering rules
//! ([`oracle`]) — every verdict cites the rule it applied. The
//! differential harness ([`harness`]) then cross-checks the whole stack:
//! vanilla, fuzzed, replayed, and race-directed executions of the same
//! program must all produce oracle-legal schedules, replay must
//! reproduce the recorded log byte-for-byte, and every
//! happens-before-predicted race must be confirmed by a directed flip or
//! explicitly classified unconfirmable. Failing programs delta-debug to
//! a minimal printable `nodefz-prog v1` literal ([`shrink`]), and the
//! whole thing plugs into campaigns as the `CONFORM` arm ([`case`]).
//!
//! Two generators feed the harness: independent swarm sampling ([`gen`],
//! seed families 0–2) and graph traversal over an explicit API
//! dependency model of the runtime surface ([`apigraph`], family
//! [`API_FAMILY`]) whose programs are valid by construction and whose
//! surface coverage is accounted per batch as `nodefz-apicov-v1`
//! ([`coverage`]); the latter rides in campaigns as the `CONFORM-API`
//! arm.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apigraph;
pub mod case;
pub mod coverage;
pub mod gen;
pub mod harness;
pub mod oracle;
pub mod prog;
pub mod shrink;

pub use apigraph::{
    generate_api, generate_api_with, generate_family, ApiGraph, ApiNode, Resource, API_FAMILY,
    API_NODES,
};
pub use case::{api_bug_case, bug_case, ApiConformCase, ConformCase, ABBR, API_ABBR};
pub use coverage::{ApiCovSnapshot, ApiCoverage};
pub use gen::{generate, generate_with, MAX_DEPTH, MAX_NODES};
pub use harness::{
    differential, render_log, run_logged, DiffConfig, DiffFailure, DiffReport, RaceOutcome,
};
// The harness API takes a `Mode`; re-exported so binaries that only
// depend on the conform crate can drive `run_logged` without a direct
// edge to the scheduler crate.
pub use nodefz::Mode;
pub use oracle::{check, phase_label, rules_exercised, OracleCtx, Violation, RULES};
pub use prog::{install, Node, Op, Prog, ProgError, Touch, SHARED_SITES};
pub use shrink::{shrink_prog, ShrinkOutcome};
