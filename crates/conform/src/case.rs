//! The conformance arm as a campaign-compatible [`BugCase`].
//!
//! Campaigns fuzz *applications*; the conform arm fuzzes the *runtime
//! itself*. [`ConformCase`] regenerates a program from the run's
//! environment seed ([`crate::gen::generate`] is pure, so a finding's
//! `env_seed` is a complete repro key), executes it under whatever mode
//! the campaign drives, and applies the ordering oracle to the dispatch
//! log. A "manifestation" is therefore a **runtime** bug — an illegal
//! schedule, a crash, or a hang — never an application bug, which is why
//! the case ignores the buggy/fixed [`Variant`] distinction.

use std::rc::Rc;

use nodefz::Mode;
use nodefz_apps::common::{BugCase, BugInfo, Outcome, RaceType, RunCfg, Variant};
use nodefz_rt::{EventLogHandle, Termination};

use crate::oracle::{check, OracleCtx};
use crate::prog::install;

/// The campaign abbreviation for the conformance arm.
pub const ABBR: &str = "CONFORM";

/// The campaign abbreviation for the API-graph conformance arm.
pub const API_ABBR: &str = "CONFORM-API";

/// Generative conformance oracle packaged as a bug case.
pub struct ConformCase;

/// The API-graph conformance arm: identical harness, but programs come
/// from the graph-traversal generator ([`crate::apigraph::generate_api`])
/// so the whole enumerated runtime surface — combinators and clients
/// included — goes under the oracle.
pub struct ApiConformCase;

/// Returns the conformance arm as a boxed [`BugCase`].
pub fn bug_case() -> Box<dyn BugCase> {
    Box::new(ConformCase)
}

/// Returns the API-graph conformance arm as a boxed [`BugCase`].
pub fn api_bug_case() -> Box<dyn BugCase> {
    Box::new(ApiConformCase)
}

/// Shared conform-arm execution: regenerate the program for the run's
/// environment seed with `generate`, drive it under the campaign's mode,
/// and judge the dispatch log with the ordering oracle.
fn run_conform(cfg: &RunCfg, generate: impl Fn(u64) -> crate::prog::Prog) -> Outcome {
    let prog = Rc::new(generate(cfg.env_seed));
    let events = cfg.events.clone().unwrap_or_else(EventLogHandle::fresh);
    let cfg = RunCfg {
        events: Some(events.clone()),
        ..cfg.clone()
    };
    let mut el = cfg.build_loop();
    install(&prog, &mut el);
    let report = el.run();
    let log = events.snapshot();
    let demux = match &cfg.mode {
        Mode::Replay(trace, _) => trace.demux_done,
        mode => mode.params().is_some_and(|p| p.demux_done),
    };
    let completed = matches!(report.termination, Termination::Quiescent);
    let violations = check(&prog, &log, &OracleCtx { demux, completed });
    let manifested =
        !violations.is_empty() || report.crashed() || !report.errors.is_empty() || !completed;
    let detail = if let Some(v) = violations.first() {
        format!("oracle: {v} (program seed {})", cfg.env_seed)
    } else if manifested {
        format!(
            "run failed without an oracle violation: termination {:?}, errors {:?}",
            report.termination, report.errors
        )
    } else {
        format!(
            "{} events conform ({} program nodes)",
            log.events.len(),
            prog.nodes.len()
        )
    };
    Outcome {
        manifested,
        detail,
        report,
    }
}

impl BugCase for ConformCase {
    fn info(&self) -> BugInfo {
        BugInfo {
            abbr: ABBR,
            name: "nodefz runtime (conformance)",
            bug_ref: "generated programs vs the libuv ordering rules",
            race: RaceType::Ov,
            racing_events: "any",
            race_on: "the event loop itself",
            impact: "illegal dispatch order / lost event / hang",
            fix: "n/a (oracle over the runtime, not an app)",
            in_fig6: false,
            novel: false,
        }
    }

    fn run(&self, cfg: &RunCfg, _variant: Variant) -> Outcome {
        run_conform(cfg, crate::gen::generate)
    }
}

impl BugCase for ApiConformCase {
    fn info(&self) -> BugInfo {
        BugInfo {
            abbr: API_ABBR,
            name: "nodefz runtime (API-graph conformance)",
            bug_ref: "API-graph programs vs the libuv ordering rules",
            race: RaceType::Ov,
            racing_events: "any",
            race_on: "the event loop itself",
            impact: "illegal dispatch order / lost event / hang",
            fix: "n/a (oracle over the runtime, not an app)",
            in_fig6: false,
            novel: false,
        }
    }

    fn run(&self, cfg: &RunCfg, _variant: Variant) -> Outcome {
        run_conform(cfg, crate::apigraph::generate_api)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conform_case_is_clean_under_every_stock_mode() {
        for seed in 0..20 {
            for mode in [Mode::Vanilla, Mode::NoFuzz, Mode::Fuzz, Mode::Guided] {
                let label = mode.label();
                let out = ConformCase.run(&RunCfg::new(mode, seed), Variant::Buggy);
                assert!(!out.manifested, "seed {seed} under {label}: {}", out.detail);
            }
        }
    }

    #[test]
    fn api_conform_case_is_clean_under_every_stock_mode() {
        for seed in 0..20 {
            for mode in [Mode::Vanilla, Mode::NoFuzz, Mode::Fuzz, Mode::Guided] {
                let label = mode.label();
                let out = ApiConformCase.run(&RunCfg::new(mode, seed), Variant::Buggy);
                assert!(!out.manifested, "seed {seed} under {label}: {}", out.detail);
            }
        }
    }

    #[test]
    fn variant_is_ignored() {
        let out_a = ConformCase.run(&RunCfg::new(Mode::Fuzz, 7), Variant::Buggy);
        let out_b = ConformCase.run(&RunCfg::new(Mode::Fuzz, 7), Variant::Fixed);
        assert_eq!(out_a.manifested, out_b.manifested);
        assert_eq!(out_a.report.dispatched, out_b.report.dispatched);
    }
}
