//! Per-batch API coverage accounting, reported as `nodefz-apicov-v1`.
//!
//! [`ApiCoverage`] accumulates, over a batch of executed conform
//! programs, which parts of the enumerated surface were exercised along
//! five axes: API nodes (graph calls, via their op bundle), producer→
//! consumer edges, oracle rules put under test, loop phases dispatched,
//! and parent→child op pairs. [`ApiCoverage::snapshot`] freezes the
//! counters into an [`ApiCovSnapshot`] whose [`ApiCovSnapshot::to_json`]
//! is the `nodefz-apicov-v1` document embedded in `nodefz-metrics-v1`
//! and pinned by the coverage-regression golden.

use std::collections::BTreeSet;

use nodefz_rt::EventLog;

use crate::apigraph::ApiGraph;
use crate::oracle::{phase_label, rules_exercised, OracleCtx, RULES};
use crate::prog::Prog;

/// All loop phases an event can be attributed to.
const PHASES: usize = 8;

/// Accumulating coverage counters over a batch of executed programs.
#[derive(Clone, Debug, Default)]
pub struct ApiCoverage {
    programs: u64,
    nodes: BTreeSet<&'static str>,
    edges: BTreeSet<(&'static str, &'static str)>,
    rules: BTreeSet<&'static str>,
    phases: BTreeSet<&'static str>,
    pairs: BTreeSet<(String, String)>,
}

impl ApiCoverage {
    /// Folds one executed program into the counters. Node and edge
    /// coverage derive from the program's op bundles (each Prog op
    /// exercises every call of its bundle by construction); rule and
    /// phase coverage derive from the recorded log.
    pub fn record(&mut self, prog: &Prog, log: &EventLog, ctx: &OracleCtx) {
        self.programs += 1;
        let graph = ApiGraph::full();
        let bundles: BTreeSet<&str> = prog.nodes.iter().map(|n| n.op.name()).collect();
        for node in &graph.nodes {
            if bundles.contains(node.bundle) {
                self.nodes.insert(node.name);
            }
        }
        for (p, c) in graph.edges() {
            let bundle = graph.nodes.iter().find(|n| n.name == p).map(|n| n.bundle);
            if bundle.is_some_and(|b| bundles.contains(b)) {
                self.edges.insert((p, c));
            }
        }
        for rule in rules_exercised(prog, log, ctx) {
            self.rules.insert(rule);
        }
        for ev in &log.events {
            self.phases.insert(phase_label(ev.kind));
        }
        for node in &prog.nodes {
            for &child in &node.children {
                self.pairs.insert((
                    node.op.name().to_string(),
                    prog.nodes[child as usize].op.name().to_string(),
                ));
            }
        }
    }

    /// Merges another accumulator (e.g. a different arm's batch).
    pub fn merge(&mut self, other: &ApiCoverage) {
        self.programs += other.programs;
        self.nodes.extend(&other.nodes);
        self.edges.extend(&other.edges);
        self.rules.extend(&other.rules);
        self.phases.extend(&other.phases);
        self.pairs.extend(other.pairs.iter().cloned());
    }

    /// Freezes the counters into a serialisable snapshot.
    pub fn snapshot(&self) -> ApiCovSnapshot {
        let graph = ApiGraph::full();
        let missing: Vec<String> = graph
            .nodes
            .iter()
            .filter(|n| !self.nodes.contains(n.name))
            .map(|n| n.name.to_string())
            .collect();
        ApiCovSnapshot {
            programs: self.programs,
            nodes_covered: self.nodes.len(),
            nodes_total: graph.nodes.len(),
            edges_covered: self.edges.len(),
            edges_total: graph.edges().len(),
            rules_covered: self.rules.len(),
            rules_total: RULES.len(),
            phases_covered: self.phases.len(),
            phases_total: PHASES,
            op_pairs: self.pairs.len(),
            nodes: self.nodes.iter().map(|n| n.to_string()).collect(),
            missing_nodes: missing,
            rules: self.rules.iter().map(|r| r.to_string()).collect(),
            phases: self.phases.iter().map(|p| p.to_string()).collect(),
        }
    }
}

/// Frozen coverage counters — the `nodefz-apicov-v1` document.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ApiCovSnapshot {
    /// Programs folded into the batch.
    pub programs: u64,
    /// Distinct API nodes exercised.
    pub nodes_covered: usize,
    /// API nodes in the enumerated surface.
    pub nodes_total: usize,
    /// Distinct producer→consumer edges exercised.
    pub edges_covered: usize,
    /// Edges in the dependency graph.
    pub edges_total: usize,
    /// Distinct oracle rules put under test.
    pub rules_covered: usize,
    /// Rules in the oracle.
    pub rules_total: usize,
    /// Distinct loop phases dispatched.
    pub phases_covered: usize,
    /// Phases an event can be attributed to.
    pub phases_total: usize,
    /// Distinct parent→child op pairs across all program trees.
    pub op_pairs: usize,
    /// Covered API node names, sorted.
    pub nodes: Vec<String>,
    /// Enumerated-but-uncovered API node names, declaration order.
    pub missing_nodes: Vec<String>,
    /// Oracle rules put under test, sorted.
    pub rules: Vec<String>,
    /// Loop phases dispatched, sorted.
    pub phases: Vec<String>,
}

fn json_list(items: &[String]) -> String {
    let quoted: Vec<String> = items.iter().map(|s| format!("\"{s}\"")).collect();
    format!("[{}]", quoted.join(","))
}

impl ApiCovSnapshot {
    /// Serialises as a `nodefz-apicov-v1` JSON document. Deterministic:
    /// every list is sorted, so equal batches yield byte-equal output
    /// (the property the frozen golden relies on).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"schema\":\"nodefz-apicov-v1\",\"programs\":{},\
             \"nodes\":{{\"covered\":{},\"total\":{},\"hit\":{},\"missing\":{}}},\
             \"edges\":{{\"covered\":{},\"total\":{}}},\
             \"rules\":{{\"covered\":{},\"total\":{},\"hit\":{}}},\
             \"phases\":{{\"covered\":{},\"total\":{},\"hit\":{}}},\
             \"op_pairs\":{}}}",
            self.programs,
            self.nodes_covered,
            self.nodes_total,
            json_list(&self.nodes),
            json_list(&self.missing_nodes),
            self.edges_covered,
            self.edges_total,
            self.rules_covered,
            self.rules_total,
            json_list(&self.rules),
            self.phases_covered,
            self.phases_total,
            json_list(&self.phases),
            self.op_pairs,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;

    use nodefz::Mode;
    use nodefz_rt::EventLogHandle;

    use crate::apigraph::generate_api;
    use crate::prog::install;

    fn run_vanilla(prog: &Rc<Prog>, seed: u64) -> (EventLog, bool) {
        let events = EventLogHandle::fresh();
        let cfg = nodefz_apps::common::RunCfg::new(Mode::Vanilla, seed).events(&events);
        let mut el = cfg.build_loop();
        install(prog, &mut el);
        let report = el.run();
        let completed = matches!(report.termination, nodefz_rt::Termination::Quiescent);
        (events.snapshot(), completed)
    }

    #[test]
    fn coverage_accumulates_and_serialises() {
        let mut cov = ApiCoverage::default();
        for seed in 0..30 {
            let prog = Rc::new(generate_api(seed));
            let (log, completed) = run_vanilla(&prog, seed);
            cov.record(
                &prog,
                &log,
                &OracleCtx {
                    demux: false,
                    completed,
                },
            );
        }
        let snap = cov.snapshot();
        assert_eq!(snap.programs, 30);
        assert!(snap.nodes_covered > 0 && snap.nodes_covered <= snap.nodes_total);
        let json = snap.to_json();
        assert!(json.starts_with("{\"schema\":\"nodefz-apicov-v1\""));
        assert!(json.contains("\"op_pairs\":"));
    }

    #[test]
    fn merge_is_a_union() {
        let (mut a, mut b) = (ApiCoverage::default(), ApiCoverage::default());
        for seed in 0..5 {
            let prog = Rc::new(generate_api(seed));
            let (log, completed) = run_vanilla(&prog, seed);
            let ctx = OracleCtx {
                demux: false,
                completed,
            };
            if seed % 2 == 0 {
                a.record(&prog, &log, &ctx);
            } else {
                b.record(&prog, &log, &ctx);
            }
        }
        let mut merged = a.clone();
        merged.merge(&b);
        let snap = merged.snapshot();
        assert_eq!(snap.programs, 5);
        assert!(snap.nodes_covered >= a.snapshot().nodes_covered);
        assert!(snap.nodes_covered >= b.snapshot().nodes_covered);
    }
}
