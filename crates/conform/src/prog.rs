//! The generated-program DSL.
//!
//! A [`Prog`] is a tree of event-driven operations — timers, microtasks,
//! immediates, pending callbacks, close callbacks, worker-pool tasks, and
//! fd read chains — flattened into an arena where node `0` is the root
//! (the program's registration code). Installing a program into an event
//! loop registers the root's children; each node's callback, when
//! dispatched, leaves a *marker* shared-site access (`run:<id>`) the
//! ordering oracle uses to identify which dispatch ran which node, then
//! performs its generated shared-site touches and spawns its children.
//!
//! Programs print as (and parse from) a `nodefz-prog v1` text literal, so
//! a shrunk failing program is a copy-pasteable repro.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;

use nodefz_fs::SimFs;
use nodefz_kv::Kv;
use nodefz_rt::{
    series, AccessKind, Barrier, Ctx, Emitter, EventLoop, FdKind, SeriesNext, SeriesStep, TimerId,
    VDur,
};

/// Number of distinct generated shared sites (`s0` … `s3`).
pub const SHARED_SITES: u8 = 4;

/// One generated shared-site access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Touch {
    /// Site index in `0..SHARED_SITES` (site name `s<idx>`).
    pub site: u8,
    /// Access kind.
    pub kind: AccessKind,
}

/// What a node does when it runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// The program's registration code (node `0` only); runs during the
    /// synthetic `Setup` event.
    Root,
    /// `setTimeout(delay)`.
    Timer {
        /// Timer delay in virtual microseconds.
        delay_us: u32,
    },
    /// `process.nextTick` — a microtask absorbed into its parent's event.
    NextTick,
    /// `setImmediate` — a check-phase callback.
    Immediate,
    /// A pending-phase callback (`defer_pending`).
    Pending,
    /// A close callback (`enqueue_close`).
    Close,
    /// A worker-pool task (`uv_queue_work`); the node body runs in the
    /// *done* callback on the loop.
    Pool {
        /// Nominal task cost in virtual microseconds.
        cost_us: u32,
    },
    /// An fd read chain: `msgs` payloads written by the environment at
    /// `gap_us` spacing, consumed FIFO by a watcher; the node body runs
    /// after the last payload, then the fd is closed.
    FdChain {
        /// Number of payload messages (≥ 1, ≤ 9).
        msgs: u8,
        /// Virtual-microsecond spacing between payload writes.
        gap_us: u32,
    },
    /// `setInterval(period)`: fires `ticks` times, each tick leaving a
    /// `tick:<id>:<k>` marker; the last tick clears the interval (no
    /// fire-after-clear) and runs the node body.
    Interval {
        /// Interval period in virtual microseconds.
        period_us: u32,
        /// Number of ticks before the interval is cleared (≥ 1, ≤ 9).
        ticks: u8,
    },
    /// A [`Barrier`] over `parties` timer arrivals at distinct deadlines
    /// (each leaving an `arr:<id>:<k>` marker); the completion callback —
    /// run synchronously by the last arrival — is the node body.
    Barrier {
        /// Arrivals the barrier awaits (≥ 1, ≤ 9).
        parties: u8,
    },
    /// A [`series`] of `steps` timer-hop steps, each leaving a
    /// `step:<id>:<k>` marker and advancing via its `next` continuation;
    /// the final step runs the node body.
    Series {
        /// Steps in the waterfall (≥ 1, ≤ 9).
        steps: u8,
    },
    /// An [`Emitter`] with `listeners` persistent listeners plus one
    /// `once` and one registered-then-removed listener; a `setImmediate`
    /// emits twice (markers `lis:<id>:<round>:<k>`) and then runs the
    /// node body synchronously after the second emit.
    Emitter {
        /// Persistent listeners registered before the `once` (≤ 9).
        listeners: u8,
    },
    /// A key-value client chain: connect, `SET`, `GET`, `DEL` — each
    /// reply leaving a `kv:<id>:<op>` marker; the node body runs in the
    /// `DEL` reply.
    Kv,
    /// A simulated-fs chain: `writeFile` then `readFile` on the worker
    /// pool (markers `fs:<id>:write` / `fs:<id>:read`); the node body
    /// runs in the read completion.
    Fs,
}

impl Op {
    /// The literal op tag, as spelled in `nodefz-prog v1` documents.
    pub fn name(&self) -> &'static str {
        match self {
            Op::Root => "root",
            Op::Timer { .. } => "timer",
            Op::NextTick => "nexttick",
            Op::Immediate => "immediate",
            Op::Pending => "pending",
            Op::Close => "close",
            Op::Pool { .. } => "pool",
            Op::FdChain { .. } => "fdchain",
            Op::Interval { .. } => "interval",
            Op::Barrier { .. } => "barrier",
            Op::Series { .. } => "series",
            Op::Emitter { .. } => "emitter",
            Op::Kv => "kv",
            Op::Fs => "fs",
        }
    }
}

/// One node of a generated program; its id is its index in
/// [`Prog::nodes`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Node {
    /// The operation this node performs.
    pub op: Op,
    /// Child node ids spawned when this node's callback runs. Always
    /// greater than the node's own id (the program is a forward tree).
    pub children: Vec<u32>,
    /// Generated shared-site accesses performed by this node's callback.
    pub touches: Vec<Touch>,
}

/// A generated event-driven program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Prog {
    /// Arena of nodes; `nodes[0]` is the root.
    pub nodes: Vec<Node>,
}

/// Why a `nodefz-prog v1` literal failed to parse or validate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProgError(pub String);

impl fmt::Display for ProgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad nodefz-prog: {}", self.0)
    }
}

impl std::error::Error for ProgError {}

impl Prog {
    /// The marker site name for a node's run.
    pub fn run_marker(id: u32) -> String {
        format!("run:{id}")
    }

    /// The marker site name for one consumed chain payload.
    pub fn msg_marker(chain: u32, payload: u8) -> String {
        format!("msg:{chain}:{payload}")
    }

    /// The marker site name for one interval tick.
    pub fn tick_marker(id: u32, tick: u8) -> String {
        format!("tick:{id}:{tick}")
    }

    /// The marker site name for one barrier arrival.
    pub fn arr_marker(id: u32, party: u8) -> String {
        format!("arr:{id}:{party}")
    }

    /// The marker site name for one series step.
    pub fn step_marker(id: u32, step: u8) -> String {
        format!("step:{id}:{step}")
    }

    /// The marker site name for one emitter listener invocation in one
    /// emit round (`tag` is the listener index, `once`, or `removed`).
    pub fn lis_marker(id: u32, round: u8, tag: &str) -> String {
        format!("lis:{id}:{round}:{tag}")
    }

    /// The marker site name for one client-chain reply (`kind` is `kv`
    /// or `fs`; `op` names the request).
    pub fn client_marker(kind: &str, id: u32, op: &str) -> String {
        format!("{kind}:{id}:{op}")
    }

    /// Checks the program is a well-formed forward tree: node `0` is the
    /// only root, every child id points forward, and every non-root node
    /// is referenced by exactly one parent.
    ///
    /// # Errors
    ///
    /// Returns a [`ProgError`] naming the first structural defect.
    pub fn validate(&self) -> Result<(), ProgError> {
        if self.nodes.is_empty() || self.nodes[0].op != Op::Root {
            return Err(ProgError("node 0 must be the root".into()));
        }
        let mut referenced = vec![0u8; self.nodes.len()];
        for (id, node) in self.nodes.iter().enumerate() {
            if id > 0 && node.op == Op::Root {
                return Err(ProgError(format!("node {id}: root op off node 0")));
            }
            match node.op {
                Op::FdChain { msgs, .. } if msgs == 0 || msgs > 9 => {
                    return Err(ProgError(format!("node {id}: msgs must be in 1..=9")));
                }
                Op::Interval { ticks, .. } if ticks == 0 || ticks > 9 => {
                    return Err(ProgError(format!("node {id}: ticks must be in 1..=9")));
                }
                Op::Barrier { parties } if parties == 0 || parties > 9 => {
                    return Err(ProgError(format!("node {id}: parties must be in 1..=9")));
                }
                Op::Series { steps } if steps == 0 || steps > 9 => {
                    return Err(ProgError(format!("node {id}: steps must be in 1..=9")));
                }
                Op::Emitter { listeners } if listeners > 9 => {
                    return Err(ProgError(format!("node {id}: listeners must be <= 9")));
                }
                _ => {}
            }
            for touch in &node.touches {
                if touch.site >= SHARED_SITES {
                    return Err(ProgError(format!("node {id}: site out of range")));
                }
            }
            for &c in &node.children {
                if c as usize >= self.nodes.len() {
                    return Err(ProgError(format!("node {id}: child {c} out of range")));
                }
                if c as usize <= id {
                    return Err(ProgError(format!("node {id}: child {c} not forward")));
                }
                referenced[c as usize] += 1;
            }
        }
        for (id, &n) in referenced.iter().enumerate().skip(1) {
            if n != 1 {
                return Err(ProgError(format!("node {id}: referenced {n} times")));
            }
        }
        Ok(())
    }

    /// Projects the program onto a subset of non-root node ids (the
    /// shrinker's candidate), dropping every node whose id is absent *or*
    /// whose parent was dropped, and renumbering the survivors densely in
    /// original-id order.
    pub fn project(&self, keep: &[u32]) -> Prog {
        let mut kept = vec![false; self.nodes.len()];
        kept[0] = true;
        let wanted: std::collections::HashSet<u32> = keep.iter().copied().collect();
        // Children point forward, so one ascending pass settles ancestry.
        for (id, node) in self.nodes.iter().enumerate() {
            if !kept[id] {
                continue;
            }
            for &c in &node.children {
                if wanted.contains(&c) {
                    kept[c as usize] = true;
                }
            }
        }
        let mut remap = vec![u32::MAX; self.nodes.len()];
        let mut nodes = Vec::new();
        for (id, node) in self.nodes.iter().enumerate() {
            if !kept[id] {
                continue;
            }
            remap[id] = nodes.len() as u32;
            let mut copy = node.clone();
            copy.children = node
                .children
                .iter()
                .copied()
                .filter(|&c| kept[c as usize])
                .collect();
            nodes.push(copy);
        }
        for node in &mut nodes {
            for c in &mut node.children {
                *c = remap[*c as usize];
            }
        }
        Prog { nodes }
    }

    /// All non-root node ids, ascending — the shrinker's starting list.
    pub fn non_root_ids(&self) -> Vec<u32> {
        (1..self.nodes.len() as u32).collect()
    }

    /// Renders the program as its `nodefz-prog v1` literal.
    pub fn encode(&self) -> String {
        let mut out = String::from("nodefz-prog v1\n");
        for (id, node) in self.nodes.iter().enumerate() {
            out.push_str(&format!("{id} {}", node.op.name()));
            match node.op {
                Op::Timer { delay_us } => out.push_str(&format!(" delay_us={delay_us}")),
                Op::Pool { cost_us } => out.push_str(&format!(" cost_us={cost_us}")),
                Op::FdChain { msgs, gap_us } => {
                    out.push_str(&format!(" msgs={msgs} gap_us={gap_us}"));
                }
                Op::Interval { period_us, ticks } => {
                    out.push_str(&format!(" period_us={period_us} ticks={ticks}"));
                }
                Op::Barrier { parties } => out.push_str(&format!(" parties={parties}")),
                Op::Series { steps } => out.push_str(&format!(" steps={steps}")),
                Op::Emitter { listeners } => out.push_str(&format!(" listeners={listeners}")),
                _ => {}
            }
            let children: Vec<String> = node.children.iter().map(|c| c.to_string()).collect();
            out.push_str(&format!(" children={}", children.join(",")));
            let touches: Vec<String> = node
                .touches
                .iter()
                .map(|t| {
                    let k = match t.kind {
                        AccessKind::Read => 'r',
                        AccessKind::Write => 'w',
                        AccessKind::Update => 'u',
                    };
                    format!("{k}{}", t.site)
                })
                .collect();
            out.push_str(&format!(" touches={}\n", touches.join(",")));
        }
        out.push_str("end\n");
        out
    }

    /// Parses a `nodefz-prog v1` literal back into a program and
    /// validates it.
    ///
    /// # Errors
    ///
    /// Returns a [`ProgError`] on any malformed line or structural defect.
    pub fn parse(text: &str) -> Result<Prog, ProgError> {
        let mut lines = text.lines();
        match lines.next() {
            Some("nodefz-prog v1") => {}
            other => return Err(ProgError(format!("bad header: {other:?}"))),
        }
        let mut nodes = Vec::new();
        let mut saw_end = false;
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if line == "end" {
                saw_end = true;
                break;
            }
            let mut tokens = line.split_whitespace();
            let id: usize = tokens
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| ProgError(format!("bad id on line '{line}'")))?;
            if id != nodes.len() {
                return Err(ProgError(format!("node {id} out of order")));
            }
            let opname = tokens
                .next()
                .ok_or_else(|| ProgError(format!("missing op on line '{line}'")))?;
            let mut kv = std::collections::HashMap::new();
            for tok in tokens {
                let (k, v) = tok
                    .split_once('=')
                    .ok_or_else(|| ProgError(format!("bad token '{tok}'")))?;
                kv.insert(k, v);
            }
            let num = |key: &str| -> Result<u32, ProgError> {
                kv.get(key)
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| ProgError(format!("node {id}: missing {key}")))
            };
            let op = match opname {
                "root" => Op::Root,
                "timer" => Op::Timer {
                    delay_us: num("delay_us")?,
                },
                "nexttick" => Op::NextTick,
                "immediate" => Op::Immediate,
                "pending" => Op::Pending,
                "close" => Op::Close,
                "pool" => Op::Pool {
                    cost_us: num("cost_us")?,
                },
                "fdchain" => Op::FdChain {
                    msgs: num("msgs")? as u8,
                    gap_us: num("gap_us")?,
                },
                "interval" => Op::Interval {
                    period_us: num("period_us")?,
                    ticks: num("ticks")? as u8,
                },
                "barrier" => Op::Barrier {
                    parties: num("parties")? as u8,
                },
                "series" => Op::Series {
                    steps: num("steps")? as u8,
                },
                "emitter" => Op::Emitter {
                    listeners: num("listeners")? as u8,
                },
                "kv" => Op::Kv,
                "fs" => Op::Fs,
                other => return Err(ProgError(format!("unknown op '{other}'"))),
            };
            let mut children = Vec::new();
            for part in kv.get("children").copied().unwrap_or("").split(',') {
                if part.is_empty() {
                    continue;
                }
                children.push(
                    part.parse()
                        .map_err(|_| ProgError(format!("node {id}: bad child '{part}'")))?,
                );
            }
            let mut touches = Vec::new();
            for part in kv.get("touches").copied().unwrap_or("").split(',') {
                if part.is_empty() {
                    continue;
                }
                let (kind, site) = part.split_at(1);
                let kind = match kind {
                    "r" => AccessKind::Read,
                    "w" => AccessKind::Write,
                    "u" => AccessKind::Update,
                    other => return Err(ProgError(format!("node {id}: bad touch '{other}'"))),
                };
                let site: u8 = site
                    .parse()
                    .map_err(|_| ProgError(format!("node {id}: bad touch site '{site}'")))?;
                touches.push(Touch { site, kind });
            }
            nodes.push(Node {
                op,
                children,
                touches,
            });
        }
        if !saw_end {
            return Err(ProgError("missing 'end' line".into()));
        }
        let prog = Prog { nodes };
        prog.validate()?;
        Ok(prog)
    }
}

impl fmt::Display for Prog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.encode())
    }
}

/// Installs `prog` into the loop: runs the root's body (marker, touches,
/// child registration) inside [`EventLoop::enter`], so it is attributed
/// to the synthetic `Setup` event. The program executes when the caller
/// runs the loop.
pub fn install(prog: &Rc<Prog>, el: &mut EventLoop) {
    let prog = prog.clone();
    el.enter(move |cx| run_body(cx, &prog, 0));
}

/// A node's callback body: marker access, generated touches, children.
fn run_body(cx: &mut Ctx<'_>, prog: &Rc<Prog>, id: u32) {
    cx.touch_read(&Prog::run_marker(id));
    let node = &prog.nodes[id as usize];
    for touch in &node.touches {
        let site = format!("s{}", touch.site);
        match touch.kind {
            AccessKind::Read => cx.touch_read(&site),
            AccessKind::Write => cx.touch_write(&site),
            AccessKind::Update => cx.touch_update(&site),
        }
    }
    for &c in &node.children {
        spawn_child(cx, prog, c);
    }
}

/// Registers child `c`'s operation with the loop.
fn spawn_child(cx: &mut Ctx<'_>, prog: &Rc<Prog>, c: u32) {
    let p = prog.clone();
    match prog.nodes[c as usize].op {
        Op::Root => unreachable!("validated programs keep the root at node 0"),
        Op::Timer { delay_us } => {
            cx.set_timeout(VDur::micros(delay_us as u64), move |cx| {
                run_body(cx, &p, c);
            });
        }
        Op::NextTick => cx.next_tick(move |cx| run_body(cx, &p, c)),
        Op::Immediate => cx.set_immediate(move |cx| run_body(cx, &p, c)),
        Op::Pending => cx.defer_pending(move |cx| run_body(cx, &p, c)),
        Op::Close => cx.enqueue_close(move |cx| run_body(cx, &p, c)),
        Op::Pool { cost_us } => {
            let submitted = cx.submit_work(
                VDur::micros(cost_us as u64),
                |_| (),
                move |cx, ()| run_body(cx, &p, c),
            );
            if submitted.is_err() {
                cx.report_error("conform:emfile", format!("pool node {c}: fd limit"));
            }
        }
        Op::FdChain { msgs, gap_us } => spawn_chain(cx, prog, c, msgs, gap_us),
        Op::Interval { period_us, ticks } => spawn_interval(cx, prog, c, period_us, ticks),
        Op::Barrier { parties } => spawn_barrier(cx, prog, c, parties),
        Op::Series { steps } => spawn_series(cx, prog, c, steps),
        Op::Emitter { listeners } => spawn_emitter(cx, prog, c, listeners),
        Op::Kv => spawn_kv(cx, prog, c),
        Op::Fs => spawn_fs(cx, prog, c),
    }
}

/// Arms a repeating timer that marks each tick, clears itself on tick
/// `ticks - 1` (so it can never fire after its clear), and runs the node
/// body inside that last tick's dispatch.
fn spawn_interval(cx: &mut Ctx<'_>, prog: &Rc<Prog>, c: u32, period_us: u32, ticks: u8) {
    let p = prog.clone();
    let handle: Rc<Cell<Option<TimerId>>> = Rc::new(Cell::new(None));
    let slot = handle.clone();
    let mut fired = 0u8;
    let id = cx.set_interval(VDur::micros(period_us.max(1) as u64), move |cx| {
        cx.touch_read(&Prog::tick_marker(c, fired));
        fired = fired.saturating_add(1);
        if fired >= ticks {
            if let Some(t) = slot.get() {
                cx.clear_timer(t);
            }
            run_body(cx, &p, c);
        }
    });
    handle.set(Some(id));
}

/// Arms `parties` timers at distinct deadlines, each marking its arrival
/// before entering the barrier; the completion callback — run
/// synchronously inside the last arrival's timer dispatch — is the node
/// body. Distinct deadlines keep the arrival order deterministic
/// (timer-monotone); the *interleaving* with the rest of the program is
/// what the fuzzer perturbs.
fn spawn_barrier(cx: &mut Ctx<'_>, prog: &Rc<Prog>, c: u32, parties: u8) {
    let p = prog.clone();
    let barrier = Barrier::new(parties as usize, move |cx| run_body(cx, &p, c));
    for k in 0..parties {
        let b = barrier.clone();
        cx.set_timeout(VDur::micros(120 * (k as u64 + 1)), move |cx| {
            cx.touch_read(&Prog::arr_marker(c, k));
            if b.remaining() == 0 {
                cx.report_error("conform:barrier", format!("node {c}: arrival past zero"));
            }
            b.arrive(cx);
        });
    }
}

/// Runs a `series` waterfall of timer-hop steps. Later steps get
/// *shorter* delays, so only the continuation chain — not the deadlines —
/// keeps them in order; the final step runs the node body.
fn spawn_series(cx: &mut Ctx<'_>, prog: &Rc<Prog>, c: u32, steps: u8) {
    let mut v: Vec<SeriesStep> = Vec::new();
    for k in 0..steps {
        let p = prog.clone();
        v.push(Box::new(move |cx: &mut Ctx<'_>, next: SeriesNext| {
            cx.set_timeout(VDur::micros(60 * (steps - k) as u64), move |cx| {
                cx.touch_read(&Prog::step_marker(c, k));
                if k + 1 == steps {
                    run_body(cx, &p, c);
                }
                next.call(cx);
            });
        }));
    }
    series(cx, v);
}

/// Builds an emitter with `listeners` persistent listeners, one `once`
/// listener, and one listener registered then removed; a `setImmediate`
/// emits two rounds (payload = round index) and runs the node body after
/// the second. Listener markers record the exact synchronous,
/// registration-ordered dispatch the oracle's `emit-order` rule demands;
/// the removed listener's marker must never appear.
fn spawn_emitter(cx: &mut Ctx<'_>, prog: &Rc<Prog>, c: u32, listeners: u8) {
    let p = prog.clone();
    let em: Emitter<u8> = Emitter::new();
    for k in 0..listeners {
        em.on("evt", move |cx, round: &u8| {
            cx.touch_read(&Prog::lis_marker(c, *round, &k.to_string()));
        });
    }
    em.once("evt", move |cx, round: &u8| {
        cx.touch_read(&Prog::lis_marker(c, *round, "once"));
    });
    let removed = em.on("evt", move |cx, round: &u8| {
        cx.touch_read(&Prog::lis_marker(c, *round, "removed"));
    });
    if !em.remove_listener("evt", removed) || em.listener_count("evt") != listeners as usize + 1 {
        cx.report_error(
            "conform:emitter",
            format!("node {c}: listener bookkeeping broken"),
        );
    }
    cx.set_immediate(move |cx| {
        em.emit(cx, "evt", &0);
        em.emit(cx, "evt", &1);
        run_body(cx, &p, c);
    });
}

/// Connects a single-connection kv client and chains `SET` → `GET` →
/// `DEL` on one key, marking each reply; the node body runs in the `DEL`
/// reply. Reply payloads are checked, so a store that loses the write or
/// the delete surfaces as a loop error, not a silent pass.
fn spawn_kv(cx: &mut Ctx<'_>, prog: &Rc<Prog>, c: u32) {
    let kv = match Kv::connect(cx, 1) {
        Ok(kv) => kv,
        Err(_) => {
            cx.report_error("conform:emfile", format!("kv node {c}: no descriptors"));
            return;
        }
    };
    let p = prog.clone();
    let key = format!("k{c}");
    let kv_get = kv.clone();
    let key_get = key.clone();
    kv.set(cx, &key, "v", move |cx, ()| {
        cx.touch_read(&Prog::client_marker("kv", c, "set"));
        let kv_del = kv_get.clone();
        let key_del = key_get.clone();
        kv_get.get(cx, &key_get, move |cx, reply| {
            cx.touch_read(&Prog::client_marker("kv", c, "get"));
            if reply.as_deref() != Some("v") {
                cx.report_error("conform:kv", format!("node {c}: get returned {reply:?}"));
            }
            kv_del.del(cx, &key_del, move |cx, existed| {
                cx.touch_read(&Prog::client_marker("kv", c, "del"));
                if !existed {
                    cx.report_error("conform:kv", format!("node {c}: del lost the key"));
                }
                run_body(cx, &p, c);
            });
        });
    });
}

/// Writes then reads one file on a fresh simulated fs (both legs are
/// worker-pool tasks), marking each completion; the node body runs in
/// the read completion. Contents are verified round-trip.
fn spawn_fs(cx: &mut Ctx<'_>, prog: &Rc<Prog>, c: u32) {
    let fs = SimFs::new();
    let p = prog.clone();
    let path = format!("/n{c}");
    let data = vec![c as u8; 3];
    let fs_read = fs.clone();
    let path_read = path.clone();
    let expect = data.clone();
    fs.write_file(cx, &path, data, move |cx, res| {
        cx.touch_read(&Prog::client_marker("fs", c, "write"));
        if res.is_err() {
            cx.report_error("conform:fs", format!("node {c}: write failed: {res:?}"));
            return;
        }
        fs_read.read_file(cx, &path_read, move |cx, res| {
            cx.touch_read(&Prog::client_marker("fs", c, "read"));
            if res.as_deref().ok() != Some(expect.as_slice()) {
                cx.report_error("conform:fs", format!("node {c}: read mismatch: {res:?}"));
            }
            run_body(cx, &p, c);
        });
    });
}

/// Sets up an fd read chain: a watcher consuming `msgs` payloads FIFO
/// (each consumption touches `msg:<c>:<payload>`), environment writes at
/// `gap_us` spacing, and a close after the last payload — the node body
/// runs just before the close.
fn spawn_chain(cx: &mut Ctx<'_>, prog: &Rc<Prog>, c: u32, msgs: u8, gap_us: u32) {
    let fd = match cx.alloc_fd(FdKind::NetConn) {
        Ok(fd) => fd,
        Err(_) => {
            cx.report_error("conform:emfile", format!("chain node {c}: fd limit"));
            return;
        }
    };
    let payloads: Rc<RefCell<VecDeque<u8>>> = Rc::new(RefCell::new(VecDeque::new()));
    let queue = payloads.clone();
    let p = prog.clone();
    let mut consumed = 0u8;
    let registered = cx.register_watcher(fd, move |cx, fd| {
        // An empty queue here means the runtime dispatched a readiness
        // event it was never given; the sentinel payload makes the
        // oracle's FIFO rule reject the log.
        let payload = queue.borrow_mut().pop_front().unwrap_or(u8::MAX);
        cx.touch_read(&Prog::msg_marker(c, payload));
        consumed = consumed.saturating_add(1);
        if consumed == msgs {
            run_body(cx, &p, c);
            let _ = cx.close_fd(fd);
        }
    });
    if registered.is_err() {
        cx.report_error(
            "conform:watcher",
            format!("chain node {c}: register failed"),
        );
        return;
    }
    for k in 0..msgs {
        let queue = payloads.clone();
        cx.schedule_env(VDur::micros(gap_us as u64 * (k as u64 + 1)), move |cx| {
            queue.borrow_mut().push_back(k);
            let _ = cx.mark_ready(fd);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Prog {
        Prog {
            nodes: vec![
                Node {
                    op: Op::Root,
                    children: vec![1, 2],
                    touches: vec![],
                },
                Node {
                    op: Op::Timer { delay_us: 500 },
                    children: vec![3],
                    touches: vec![Touch {
                        site: 0,
                        kind: AccessKind::Write,
                    }],
                },
                Node {
                    op: Op::FdChain {
                        msgs: 2,
                        gap_us: 90,
                    },
                    children: vec![],
                    touches: vec![Touch {
                        site: 0,
                        kind: AccessKind::Read,
                    }],
                },
                Node {
                    op: Op::NextTick,
                    children: vec![],
                    touches: vec![Touch {
                        site: 1,
                        kind: AccessKind::Update,
                    }],
                },
            ],
        }
    }

    #[test]
    fn literal_round_trips() {
        let prog = sample();
        prog.validate().unwrap();
        let text = prog.encode();
        assert!(text.starts_with("nodefz-prog v1\n"));
        let back = Prog::parse(&text).unwrap();
        assert_eq!(back, prog);
        assert_eq!(back.encode(), text, "encode is a fixed point");
    }

    #[test]
    fn parse_rejects_structural_defects() {
        for bad in [
            "nodefz-prog v2\nend\n",
            "nodefz-prog v1\n0 root children=0 touches=\nend\n",
            "nodefz-prog v1\n0 root children=5 touches=\nend\n",
            "nodefz-prog v1\n0 root children= touches=\n",
            "nodefz-prog v1\n0 timer delay_us=1 children= touches=\nend\n",
            "nodefz-prog v1\n0 root children=1,1 touches=\n1 close children= touches=\nend\n",
        ] {
            assert!(Prog::parse(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn project_drops_orphaned_subtrees_and_renumbers() {
        let prog = sample();
        // Keep node 3 but not its parent 1: both must go.
        let projected = prog.project(&[2, 3]);
        projected.validate().unwrap();
        assert_eq!(projected.nodes.len(), 2);
        assert_eq!(projected.nodes[0].children, vec![1]);
        assert!(matches!(projected.nodes[1].op, Op::FdChain { .. }));
        // Keeping everything is the identity.
        assert_eq!(prog.project(&prog.non_root_ids()), prog);
        // Keeping nothing leaves just the root.
        assert_eq!(prog.project(&[]).nodes.len(), 1);
    }

    #[test]
    fn installed_program_runs_to_quiescence() {
        let prog = Rc::new(sample());
        let mut el = EventLoop::new(nodefz_rt::LoopConfig::seeded(3));
        install(&prog, &mut el);
        let report = el.run();
        assert!(matches!(
            report.termination,
            nodefz_rt::Termination::Quiescent
        ));
        assert!(report.errors.is_empty());
    }
}
