//! The executable ordering oracle.
//!
//! [`check`] judges a dispatch-provenance [`EventLog`] against the libuv
//! phase rules the runtime promises to preserve under *any* legal
//! schedule (DESIGN.md "what fuzzing may and may not reorder"), using the
//! generated program's marker accesses (`run:<id>`, `msg:<chain>:<k>`) to
//! tie dispatches back to DSL nodes. Every rule has a stable identifier
//! so tests can assert *which* invariant a mutated log breaks:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `event-ids` | events are densely numbered in dispatch order |
//! | `access-range` | accesses reference recorded events and sites |
//! | `cause-backward` | causes dispatch before their effects |
//! | `phase-order` | iterations are monotone; within one, phases follow timers → pending → idle → prepare → poll → check → close |
//! | `close-last` | no non-close event after a close event in the same iteration |
//! | `micro-before-macro` | a `nextTick` body runs inside its parent's event, before any macrotask |
//! | `timer-monotone` | timers fire in (deadline, registration seq) order |
//! | `fd-fifo` | per-fd payloads are observed exactly in write order |
//! | `done-after-task` | a pool done callback follows its task's execution |
//! | `mux-done-legal` | with a multiplexed done queue, dones complete in task-finish order |
//! | `spawn-kind` | a node's dispatch has the event kind its op demands |
//! | `immediate-phase` | `setImmediate` runs in the iteration its snapshot semantics dictate |
//! | `run-once` | no node or payload is dispatched twice |
//! | `all-dispatched` | a quiescent run dispatched every node and payload |
//! | `interval-ticks` | a repeating timer's ticks are observed in order, none after its clear |
//! | `barrier-gate` | a barrier body runs inside the last arrival's dispatch, after every arrival |
//! | `series-order` | waterfall steps run in continuation order regardless of their deadlines |
//! | `emit-order` | `emit` dispatches listeners synchronously in registration order; `once` fires once, removed listeners never |
//! | `client-order` | kv/fs client callback chains complete in issue order |

use std::collections::HashMap;
use std::fmt;

use nodefz_rt::{CbId, CbKind, EvDetail, EvKind, EventLog};

use crate::prog::{Op, Prog};

/// Facts about the run the log cannot carry itself.
#[derive(Clone, Copy, Debug)]
pub struct OracleCtx {
    /// Whether the done queue was de-multiplexed (per-task descriptors).
    /// With a multiplexed queue, done order must equal task-finish order.
    pub demux: bool,
    /// Whether the run terminated quiescent — only then may the oracle
    /// demand that everything registered was dispatched.
    pub completed: bool,
}

/// One rule violation: the rule's stable id plus evidence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Stable rule identifier (see the module table).
    pub rule: &'static str,
    /// Human-readable evidence naming the offending events.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.rule, self.message)
    }
}

/// Phase rank of an event kind within one loop iteration. The synthetic
/// `Setup` event (rank 0) only ever occurs at iteration 0; everything
/// dispatched from the poll phase — fd readiness, pool activity, and
/// nested environment events — shares rank 5.
fn rank(kind: EvKind) -> u8 {
    match kind {
        EvKind::Setup => 0,
        EvKind::Cb(CbKind::Timer) => 1,
        EvKind::Cb(CbKind::Pending) => 2,
        EvKind::Cb(CbKind::Idle) => 3,
        EvKind::Cb(CbKind::Prepare) => 4,
        EvKind::Env
        | EvKind::Cb(
            CbKind::NetAccept
            | CbKind::NetRead
            | CbKind::NetClose
            | CbKind::PoolTask
            | CbKind::PoolDone
            | CbKind::FsDone
            | CbKind::KvReply
            | CbKind::Signal
            | CbKind::ChildIo
            | CbKind::Wakeup
            | CbKind::IoOther,
        ) => 5,
        EvKind::Cb(CbKind::Check) => 6,
        EvKind::Cb(CbKind::Close) => 7,
    }
}

const CHECK_RANK: u8 = 6;

/// First event that accessed each marker site, plus the access count.
fn marker_map(log: &EventLog) -> HashMap<&str, (CbId, usize)> {
    let mut map: HashMap<&str, (CbId, usize)> = HashMap::new();
    for acc in &log.accesses {
        let Some(name) = log.sites.get(acc.site as usize) else {
            continue; // reported separately by access-range
        };
        const PREFIXES: [&str; 8] = [
            "run:", "msg:", "tick:", "arr:", "step:", "lis:", "kv:", "fs:",
        ];
        if !PREFIXES.iter().any(|p| name.starts_with(p)) {
            continue;
        }
        map.entry(name.as_str())
            .and_modify(|(_, n)| *n += 1)
            .or_insert((acc.event, 1));
    }
    map
}

/// Judges `log` against every conformance rule; an empty result means
/// the schedule is legal. Violations cite their rule id and evidence.
pub fn check(prog: &Prog, log: &EventLog, ctx: &OracleCtx) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut fail = |rule: &'static str, message: String| {
        out.push(Violation { rule, message });
    };

    // --- log-structural rules (program-independent) ----------------------
    for (i, ev) in log.events.iter().enumerate() {
        if ev.id.0 as usize != i {
            fail(
                "event-ids",
                format!("event at index {i} has id {:?}", ev.id),
            );
        }
        for cause in [ev.cause, ev.cause2].into_iter().flatten() {
            if cause >= ev.id {
                fail(
                    "cause-backward",
                    format!("event {:?} caused by later event {cause:?}", ev.id),
                );
            }
        }
    }
    for acc in &log.accesses {
        if acc.event.0 as usize >= log.events.len() || acc.site as usize >= log.sites.len() {
            fail(
                "access-range",
                format!("access ({:?}, site {}) out of range", acc.event, acc.site),
            );
        }
    }

    for pair in log.events.windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        if b.iter < a.iter {
            fail(
                "phase-order",
                format!(
                    "event {:?} in iteration {} after {:?} in iteration {}",
                    b.id, b.iter, a.id, a.iter
                ),
            );
        } else if b.iter == a.iter && rank(b.kind) < rank(a.kind) {
            let rule = if a.kind == EvKind::Cb(CbKind::Close) {
                "close-last"
            } else {
                "phase-order"
            };
            fail(
                rule,
                format!(
                    "iteration {}: {:?} ({:?}) dispatched after {:?} ({:?})",
                    b.iter, b.id, b.kind, a.id, a.kind
                ),
            );
        }
    }

    let mut last_timer: Option<(nodefz_rt::VTime, u64, CbId)> = None;
    for ev in &log.events {
        if let EvDetail::Timer { deadline, seq } = ev.detail {
            if let Some((pd, ps, pid)) = last_timer {
                if (deadline, seq) < (pd, ps) {
                    fail(
                        "timer-monotone",
                        format!(
                            "timer {:?} (deadline {deadline:?}, seq {seq}) fired after \
                             {pid:?} (deadline {pd:?}, seq {ps})",
                            ev.id
                        ),
                    );
                }
            }
            last_timer = Some((deadline, seq, ev.id));
        }
    }

    // --- worker-pool rules ------------------------------------------------
    let mut tasks: Vec<(u64, CbId)> = Vec::new();
    let mut dones: Vec<(u64, CbId)> = Vec::new();
    for ev in &log.events {
        if let EvDetail::Task(task) = ev.detail {
            match ev.kind {
                EvKind::Cb(CbKind::PoolTask) => tasks.push((task, ev.id)),
                EvKind::Cb(CbKind::PoolDone) => dones.push((task, ev.id)),
                _ => {}
            }
        }
    }
    for (i, &(task, done_ev)) in dones.iter().enumerate() {
        match tasks.iter().find(|&&(t, _)| t == task) {
            None => fail(
                "done-after-task",
                format!("done {done_ev:?} for task {task} which never ran"),
            ),
            Some(&(_, task_ev)) if task_ev >= done_ev => fail(
                "done-after-task",
                format!("done {done_ev:?} precedes its task event {task_ev:?}"),
            ),
            Some(_) => {}
        }
        if dones[..i].iter().any(|&(t, _)| t == task) {
            fail("run-once", format!("task {task} completed twice"));
        }
        if !ctx.demux {
            // Multiplexed done queue: the k-th done is the k-th finished
            // task — done order must match task execution order exactly.
            match tasks.get(i) {
                Some(&(t, _)) if t == task => {}
                other => fail(
                    "mux-done-legal",
                    format!(
                        "multiplexed done #{i} is task {task}, expected task \
                         {:?} (task order {:?})",
                        other.map(|&(t, _)| t),
                        tasks.iter().map(|&(t, _)| t).collect::<Vec<_>>()
                    ),
                ),
            }
        }
    }

    // --- program-aware rules ---------------------------------------------
    let markers = marker_map(log);
    let run_of = |id: u32| markers.get(Prog::run_marker(id).as_str()).copied();
    let mut parent = vec![None; prog.nodes.len()];
    for (id, node) in prog.nodes.iter().enumerate() {
        for &c in &node.children {
            parent[c as usize] = Some(id as u32);
        }
    }

    for (&name, &(_, count)) in &markers {
        if count > 1 {
            fail(
                "run-once",
                format!("marker {name} dispatched {count} times"),
            );
        }
    }

    for (id, node) in prog.nodes.iter().enumerate() {
        let id = id as u32;
        let Some((ev, _)) = run_of(id) else {
            if ctx.completed {
                fail(
                    "all-dispatched",
                    format!("quiescent run never dispatched node {id} ({:?})", node.op),
                );
            }
            continue;
        };
        let record = &log.events[ev.0 as usize];
        let expected = match node.op {
            Op::Root => Some(EvKind::Setup),
            Op::Timer { .. } => Some(EvKind::Cb(CbKind::Timer)),
            Op::Immediate => Some(EvKind::Cb(CbKind::Check)),
            Op::Pending => Some(EvKind::Cb(CbKind::Pending)),
            Op::Close => Some(EvKind::Cb(CbKind::Close)),
            Op::Pool { .. } => Some(EvKind::Cb(CbKind::PoolDone)),
            Op::FdChain { .. } => Some(EvKind::Cb(CbKind::NetRead)),
            // Interval/barrier/series bodies all run inside a timer
            // dispatch (the last tick, arrival, or step hop).
            Op::Interval { .. } | Op::Barrier { .. } | Op::Series { .. } => {
                Some(EvKind::Cb(CbKind::Timer))
            }
            Op::Emitter { .. } => Some(EvKind::Cb(CbKind::Check)),
            Op::Kv => Some(EvKind::Cb(CbKind::KvReply)),
            Op::Fs => Some(EvKind::Cb(CbKind::PoolDone)),
            // Checked against the parent's event below instead.
            Op::NextTick => None,
        };
        if let Some(expected) = expected {
            if record.kind != expected {
                fail(
                    "spawn-kind",
                    format!(
                        "node {id} ({:?}) ran in {:?} event {ev:?}, expected {expected:?}",
                        node.op, record.kind
                    ),
                );
            }
        }
        let spawn = parent[id as usize].and_then(|p| run_of(p).map(|(e, _)| e));
        match node.op {
            Op::NextTick => {
                // Microtasks are absorbed into the dispatching event:
                // the child's marker must land in the same event record
                // as the parent's (transitively collapsing tick chains).
                if let Some(parent_ev) = spawn {
                    if parent_ev != ev {
                        fail(
                            "micro-before-macro",
                            format!(
                                "nextTick node {id} ran in event {ev:?}, not inside its \
                                 parent's event {parent_ev:?}"
                            ),
                        );
                    }
                }
            }
            Op::Immediate => {
                // setImmediate snapshot semantics: queued at or after the
                // check phase (or during setup) → next iteration's check;
                // queued in an earlier phase → this iteration's check.
                if let Some(parent_ev) = spawn {
                    let spawn_rec = &log.events[parent_ev.0 as usize];
                    let expected_iter = if spawn_rec.iter == 0 {
                        1
                    } else if rank(spawn_rec.kind) >= CHECK_RANK {
                        spawn_rec.iter + 1
                    } else {
                        spawn_rec.iter
                    };
                    if record.iter != expected_iter {
                        fail(
                            "immediate-phase",
                            format!(
                                "immediate node {id} spawned in iteration {} ({:?}) ran in \
                                 iteration {}, expected {expected_iter}",
                                spawn_rec.iter, spawn_rec.kind, record.iter
                            ),
                        );
                    }
                }
            }
            _ => {}
        }
    }

    // --- per-chain FIFO ---------------------------------------------------
    for (id, node) in prog.nodes.iter().enumerate() {
        let Op::FdChain { msgs, .. } = node.op else {
            continue;
        };
        let id = id as u32;
        let prefix = format!("msg:{id}:");
        let mut observed = Vec::new();
        for acc in &log.accesses {
            let Some(name) = log.sites.get(acc.site as usize) else {
                continue;
            };
            if let Some(payload) = name.strip_prefix(&prefix) {
                observed.push(payload.parse::<u32>().unwrap_or(u32::MAX));
            }
        }
        let in_order = observed
            .iter()
            .enumerate()
            .all(|(k, &p)| p == k as u32 && p < msgs as u32);
        if !in_order {
            fail(
                "fd-fifo",
                format!(
                    "chain node {id} observed payloads {observed:?}, expected the \
                     in-order prefix of 0..{msgs}"
                ),
            );
        } else if ctx.completed && observed.len() != msgs as usize {
            fail(
                "all-dispatched",
                format!(
                    "quiescent run delivered {}/{} payloads of chain node {id}",
                    observed.len(),
                    msgs
                ),
            );
        }
    }

    // --- combinator and client rules --------------------------------------
    for (id, node) in prog.nodes.iter().enumerate() {
        let id = id as u32;
        match node.op {
            Op::Interval { ticks, .. } => {
                let obs = ordered_suffixes(log, &format!("tick:{id}:"));
                let in_order = obs
                    .iter()
                    .enumerate()
                    .all(|(k, p)| p.parse() == Ok(k as u32) && (k as u32) < ticks as u32);
                if !in_order {
                    fail(
                        "interval-ticks",
                        format!(
                            "interval node {id} observed ticks {obs:?}, expected the \
                             in-order prefix of 0..{ticks}"
                        ),
                    );
                } else if ctx.completed && obs.len() != ticks as usize {
                    fail(
                        "all-dispatched",
                        format!(
                            "quiescent run fired {}/{} ticks of interval node {id}",
                            obs.len(),
                            ticks
                        ),
                    );
                }
            }
            Op::Barrier { parties } => {
                let arrived: Vec<CbId> = (0..parties)
                    .filter_map(|k| {
                        markers
                            .get(Prog::arr_marker(id, k).as_str())
                            .map(|&(ev, _)| ev)
                    })
                    .collect();
                if let Some((run_ev, _)) = run_of(id) {
                    if arrived.len() != parties as usize {
                        fail(
                            "barrier-gate",
                            format!(
                                "barrier node {id} body ran with {}/{parties} arrivals",
                                arrived.len()
                            ),
                        );
                    } else if run_ev != *arrived.iter().max().unwrap() {
                        fail(
                            "barrier-gate",
                            format!(
                                "barrier node {id} body ran in event {run_ev:?}, not the \
                                 last arrival's event {:?}",
                                arrived.iter().max().unwrap()
                            ),
                        );
                    }
                } else if ctx.completed {
                    fail(
                        "all-dispatched",
                        format!(
                            "quiescent run saw {}/{parties} arrivals at barrier node {id} \
                             and never ran its body",
                            arrived.len()
                        ),
                    );
                }
            }
            Op::Series { steps } => {
                let obs = ordered_suffixes(log, &format!("step:{id}:"));
                let in_order = obs
                    .iter()
                    .enumerate()
                    .all(|(k, p)| p.parse() == Ok(k as u32) && (k as u32) < steps as u32);
                if !in_order {
                    fail(
                        "series-order",
                        format!(
                            "series node {id} observed steps {obs:?}, expected the \
                             in-order prefix of 0..{steps}"
                        ),
                    );
                } else if ctx.completed && obs.len() != steps as usize {
                    fail(
                        "all-dispatched",
                        format!(
                            "quiescent run ran {}/{} steps of series node {id}",
                            obs.len(),
                            steps
                        ),
                    );
                }
                if let (Some((run_ev, _)), Some(&(step_ev, _))) = (
                    run_of(id),
                    markers.get(Prog::step_marker(id, steps - 1).as_str()),
                ) {
                    if run_ev != step_ev {
                        fail(
                            "series-order",
                            format!(
                                "series node {id} body ran in event {run_ev:?}, not the \
                                 final step's event {step_ev:?}"
                            ),
                        );
                    }
                }
            }
            Op::Emitter { listeners } => {
                let obs = ordered_suffixes(log, &format!("lis:{id}:"));
                // Two synchronous rounds: persistents in registration
                // order, the `once` listener only in round 0, the removed
                // listener never.
                let mut expected: Vec<String> = Vec::new();
                for k in 0..listeners {
                    expected.push(format!("0:{k}"));
                }
                expected.push("0:once".to_string());
                for k in 0..listeners {
                    expected.push(format!("1:{k}"));
                }
                if obs.iter().any(|s| s.ends_with(":removed")) {
                    fail(
                        "emit-order",
                        format!("emitter node {id} dispatched a removed listener"),
                    );
                } else if !obs.is_empty() && obs != expected {
                    fail(
                        "emit-order",
                        format!("emitter node {id} dispatch order {obs:?}, expected {expected:?}"),
                    );
                }
            }
            Op::Kv => {
                for v in check_client(log, "kv", id, &["set", "get", "del"], ctx) {
                    fail(v.rule, v.message);
                }
            }
            Op::Fs => {
                for v in check_client(log, "fs", id, &["write", "read"], ctx) {
                    fail(v.rule, v.message);
                }
            }
            _ => {}
        }
    }

    out
}

/// Marker suffixes under `prefix`, in dispatch (access) order.
fn ordered_suffixes(log: &EventLog, prefix: &str) -> Vec<String> {
    let mut v = Vec::new();
    for acc in &log.accesses {
        if let Some(name) = log.sites.get(acc.site as usize) {
            if let Some(rest) = name.strip_prefix(prefix) {
                v.push(rest.to_string());
            }
        }
    }
    v
}

/// Shared `client-order` check: a client node's callbacks must complete
/// as a prefix of `ops` in issue order, and all of them on a quiescent
/// run.
fn check_client(
    log: &EventLog,
    kind: &str,
    id: u32,
    ops: &[&str],
    ctx: &OracleCtx,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let obs = ordered_suffixes(log, &format!("{kind}:{id}:"));
    if obs.len() > ops.len() || obs.iter().zip(ops).any(|(a, b)| a != b) {
        out.push(Violation {
            rule: "client-order",
            message: format!("{kind} node {id} replies {obs:?}, expected a prefix of {ops:?}"),
        });
    } else if ctx.completed && obs.len() != ops.len() {
        out.push(Violation {
            rule: "all-dispatched",
            message: format!(
                "quiescent run completed {}/{} {kind} ops of node {id}",
                obs.len(),
                ops.len()
            ),
        });
    }
    out
}

/// Every rule identifier the oracle can emit, in the module-table order.
pub const RULES: &[&str] = &[
    "event-ids",
    "access-range",
    "cause-backward",
    "phase-order",
    "close-last",
    "micro-before-macro",
    "timer-monotone",
    "fd-fifo",
    "done-after-task",
    "mux-done-legal",
    "spawn-kind",
    "immediate-phase",
    "run-once",
    "all-dispatched",
    "interval-ticks",
    "barrier-gate",
    "series-order",
    "emit-order",
    "client-order",
];

/// The subset of [`RULES`] that checking `prog` against `log` actually
/// put under test — structural rules always, completeness rules when the
/// run quiesced, per-op rules when the program contains the guarded
/// construct. Coverage accounting counts a rule exercised even when no
/// violation fired: the invariant was checkable, and held.
pub fn rules_exercised(prog: &Prog, log: &EventLog, ctx: &OracleCtx) -> Vec<&'static str> {
    let mut out = vec![
        "event-ids",
        "access-range",
        "cause-backward",
        "phase-order",
        "spawn-kind",
        "run-once",
    ];
    if ctx.completed {
        out.push("all-dispatched");
    }
    let timers = log
        .events
        .iter()
        .filter(|e| matches!(e.detail, EvDetail::Timer { .. }))
        .count();
    if timers >= 2 {
        out.push("timer-monotone");
    }
    if log
        .events
        .iter()
        .any(|e| e.kind == EvKind::Cb(CbKind::PoolDone))
    {
        out.push("done-after-task");
        if !ctx.demux {
            out.push("mux-done-legal");
        }
    }
    for node in &prog.nodes {
        let rule = match node.op {
            Op::Close => Some("close-last"),
            Op::NextTick => Some("micro-before-macro"),
            Op::Immediate => Some("immediate-phase"),
            Op::FdChain { .. } => Some("fd-fifo"),
            Op::Interval { .. } => Some("interval-ticks"),
            Op::Barrier { .. } => Some("barrier-gate"),
            Op::Series { .. } => Some("series-order"),
            Op::Emitter { .. } => Some("emit-order"),
            Op::Kv | Op::Fs => Some("client-order"),
            _ => None,
        };
        if let Some(rule) = rule {
            if !out.contains(&rule) {
                out.push(rule);
            }
        }
    }
    out
}

/// Loop-phase label of an event kind, for coverage accounting.
pub fn phase_label(kind: EvKind) -> &'static str {
    match rank(kind) {
        0 => "setup",
        1 => "timers",
        2 => "pending",
        3 => "idle",
        4 => "prepare",
        5 => "poll",
        6 => "check",
        _ => "close",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;

    use nodefz::Mode;
    use nodefz_rt::EventLogHandle;

    use crate::gen::generate;
    use crate::prog::install;

    fn vanilla_log(seed: u64) -> (Prog, EventLog, bool) {
        let prog = Rc::new(generate(seed));
        let events = EventLogHandle::fresh();
        let cfg = nodefz_apps::common::RunCfg::new(Mode::Vanilla, seed).events(&events);
        let mut el = cfg.build_loop();
        install(&prog, &mut el);
        let report = el.run();
        let completed = matches!(report.termination, nodefz_rt::Termination::Quiescent);
        ((*prog).clone(), events.snapshot(), completed)
    }

    #[test]
    fn vanilla_runs_satisfy_the_oracle() {
        for seed in 0..40 {
            let (prog, log, completed) = vanilla_log(seed);
            assert!(completed, "seed {seed} did not quiesce");
            let violations = check(
                &prog,
                &log,
                &OracleCtx {
                    demux: false,
                    completed,
                },
            );
            assert!(violations.is_empty(), "seed {seed}: {violations:?}");
        }
    }

    #[test]
    fn incomplete_context_relaxes_only_completeness() {
        let (prog, log, _) = vanilla_log(7);
        // Claiming the run did not complete must never *add* violations.
        let v = check(
            &prog,
            &log,
            &OracleCtx {
                demux: false,
                completed: false,
            },
        );
        assert!(v.is_empty(), "{v:?}");
    }
}
