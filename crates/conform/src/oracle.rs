//! The executable ordering oracle.
//!
//! [`check`] judges a dispatch-provenance [`EventLog`] against the libuv
//! phase rules the runtime promises to preserve under *any* legal
//! schedule (DESIGN.md "what fuzzing may and may not reorder"), using the
//! generated program's marker accesses (`run:<id>`, `msg:<chain>:<k>`) to
//! tie dispatches back to DSL nodes. Every rule has a stable identifier
//! so tests can assert *which* invariant a mutated log breaks:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `event-ids` | events are densely numbered in dispatch order |
//! | `access-range` | accesses reference recorded events and sites |
//! | `cause-backward` | causes dispatch before their effects |
//! | `phase-order` | iterations are monotone; within one, phases follow timers → pending → idle → prepare → poll → check → close |
//! | `close-last` | no non-close event after a close event in the same iteration |
//! | `micro-before-macro` | a `nextTick` body runs inside its parent's event, before any macrotask |
//! | `timer-monotone` | timers fire in (deadline, registration seq) order |
//! | `fd-fifo` | per-fd payloads are observed exactly in write order |
//! | `done-after-task` | a pool done callback follows its task's execution |
//! | `mux-done-legal` | with a multiplexed done queue, dones complete in task-finish order |
//! | `spawn-kind` | a node's dispatch has the event kind its op demands |
//! | `immediate-phase` | `setImmediate` runs in the iteration its snapshot semantics dictate |
//! | `run-once` | no node or payload is dispatched twice |
//! | `all-dispatched` | a quiescent run dispatched every node and payload |

use std::collections::HashMap;
use std::fmt;

use nodefz_rt::{CbId, CbKind, EvDetail, EvKind, EventLog};

use crate::prog::{Op, Prog};

/// Facts about the run the log cannot carry itself.
#[derive(Clone, Copy, Debug)]
pub struct OracleCtx {
    /// Whether the done queue was de-multiplexed (per-task descriptors).
    /// With a multiplexed queue, done order must equal task-finish order.
    pub demux: bool,
    /// Whether the run terminated quiescent — only then may the oracle
    /// demand that everything registered was dispatched.
    pub completed: bool,
}

/// One rule violation: the rule's stable id plus evidence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Stable rule identifier (see the module table).
    pub rule: &'static str,
    /// Human-readable evidence naming the offending events.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.rule, self.message)
    }
}

/// Phase rank of an event kind within one loop iteration. The synthetic
/// `Setup` event (rank 0) only ever occurs at iteration 0; everything
/// dispatched from the poll phase — fd readiness, pool activity, and
/// nested environment events — shares rank 5.
fn rank(kind: EvKind) -> u8 {
    match kind {
        EvKind::Setup => 0,
        EvKind::Cb(CbKind::Timer) => 1,
        EvKind::Cb(CbKind::Pending) => 2,
        EvKind::Cb(CbKind::Idle) => 3,
        EvKind::Cb(CbKind::Prepare) => 4,
        EvKind::Env
        | EvKind::Cb(
            CbKind::NetAccept
            | CbKind::NetRead
            | CbKind::NetClose
            | CbKind::PoolTask
            | CbKind::PoolDone
            | CbKind::FsDone
            | CbKind::KvReply
            | CbKind::Signal
            | CbKind::ChildIo
            | CbKind::Wakeup
            | CbKind::IoOther,
        ) => 5,
        EvKind::Cb(CbKind::Check) => 6,
        EvKind::Cb(CbKind::Close) => 7,
    }
}

const CHECK_RANK: u8 = 6;

/// First event that accessed each marker site, plus the access count.
fn marker_map(log: &EventLog) -> HashMap<&str, (CbId, usize)> {
    let mut map: HashMap<&str, (CbId, usize)> = HashMap::new();
    for acc in &log.accesses {
        let Some(name) = log.sites.get(acc.site as usize) else {
            continue; // reported separately by access-range
        };
        if !(name.starts_with("run:") || name.starts_with("msg:")) {
            continue;
        }
        map.entry(name.as_str())
            .and_modify(|(_, n)| *n += 1)
            .or_insert((acc.event, 1));
    }
    map
}

/// Judges `log` against every conformance rule; an empty result means
/// the schedule is legal. Violations cite their rule id and evidence.
pub fn check(prog: &Prog, log: &EventLog, ctx: &OracleCtx) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut fail = |rule: &'static str, message: String| {
        out.push(Violation { rule, message });
    };

    // --- log-structural rules (program-independent) ----------------------
    for (i, ev) in log.events.iter().enumerate() {
        if ev.id.0 as usize != i {
            fail(
                "event-ids",
                format!("event at index {i} has id {:?}", ev.id),
            );
        }
        for cause in [ev.cause, ev.cause2].into_iter().flatten() {
            if cause >= ev.id {
                fail(
                    "cause-backward",
                    format!("event {:?} caused by later event {cause:?}", ev.id),
                );
            }
        }
    }
    for acc in &log.accesses {
        if acc.event.0 as usize >= log.events.len() || acc.site as usize >= log.sites.len() {
            fail(
                "access-range",
                format!("access ({:?}, site {}) out of range", acc.event, acc.site),
            );
        }
    }

    for pair in log.events.windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        if b.iter < a.iter {
            fail(
                "phase-order",
                format!(
                    "event {:?} in iteration {} after {:?} in iteration {}",
                    b.id, b.iter, a.id, a.iter
                ),
            );
        } else if b.iter == a.iter && rank(b.kind) < rank(a.kind) {
            let rule = if a.kind == EvKind::Cb(CbKind::Close) {
                "close-last"
            } else {
                "phase-order"
            };
            fail(
                rule,
                format!(
                    "iteration {}: {:?} ({:?}) dispatched after {:?} ({:?})",
                    b.iter, b.id, b.kind, a.id, a.kind
                ),
            );
        }
    }

    let mut last_timer: Option<(nodefz_rt::VTime, u64, CbId)> = None;
    for ev in &log.events {
        if let EvDetail::Timer { deadline, seq } = ev.detail {
            if let Some((pd, ps, pid)) = last_timer {
                if (deadline, seq) < (pd, ps) {
                    fail(
                        "timer-monotone",
                        format!(
                            "timer {:?} (deadline {deadline:?}, seq {seq}) fired after \
                             {pid:?} (deadline {pd:?}, seq {ps})",
                            ev.id
                        ),
                    );
                }
            }
            last_timer = Some((deadline, seq, ev.id));
        }
    }

    // --- worker-pool rules ------------------------------------------------
    let mut tasks: Vec<(u64, CbId)> = Vec::new();
    let mut dones: Vec<(u64, CbId)> = Vec::new();
    for ev in &log.events {
        if let EvDetail::Task(task) = ev.detail {
            match ev.kind {
                EvKind::Cb(CbKind::PoolTask) => tasks.push((task, ev.id)),
                EvKind::Cb(CbKind::PoolDone) => dones.push((task, ev.id)),
                _ => {}
            }
        }
    }
    for (i, &(task, done_ev)) in dones.iter().enumerate() {
        match tasks.iter().find(|&&(t, _)| t == task) {
            None => fail(
                "done-after-task",
                format!("done {done_ev:?} for task {task} which never ran"),
            ),
            Some(&(_, task_ev)) if task_ev >= done_ev => fail(
                "done-after-task",
                format!("done {done_ev:?} precedes its task event {task_ev:?}"),
            ),
            Some(_) => {}
        }
        if dones[..i].iter().any(|&(t, _)| t == task) {
            fail("run-once", format!("task {task} completed twice"));
        }
        if !ctx.demux {
            // Multiplexed done queue: the k-th done is the k-th finished
            // task — done order must match task execution order exactly.
            match tasks.get(i) {
                Some(&(t, _)) if t == task => {}
                other => fail(
                    "mux-done-legal",
                    format!(
                        "multiplexed done #{i} is task {task}, expected task \
                         {:?} (task order {:?})",
                        other.map(|&(t, _)| t),
                        tasks.iter().map(|&(t, _)| t).collect::<Vec<_>>()
                    ),
                ),
            }
        }
    }

    // --- program-aware rules ---------------------------------------------
    let markers = marker_map(log);
    let run_of = |id: u32| markers.get(Prog::run_marker(id).as_str()).copied();
    let mut parent = vec![None; prog.nodes.len()];
    for (id, node) in prog.nodes.iter().enumerate() {
        for &c in &node.children {
            parent[c as usize] = Some(id as u32);
        }
    }

    for (&name, &(_, count)) in &markers {
        if count > 1 {
            fail(
                "run-once",
                format!("marker {name} dispatched {count} times"),
            );
        }
    }

    for (id, node) in prog.nodes.iter().enumerate() {
        let id = id as u32;
        let Some((ev, _)) = run_of(id) else {
            if ctx.completed {
                fail(
                    "all-dispatched",
                    format!("quiescent run never dispatched node {id} ({:?})", node.op),
                );
            }
            continue;
        };
        let record = &log.events[ev.0 as usize];
        let expected = match node.op {
            Op::Root => Some(EvKind::Setup),
            Op::Timer { .. } => Some(EvKind::Cb(CbKind::Timer)),
            Op::Immediate => Some(EvKind::Cb(CbKind::Check)),
            Op::Pending => Some(EvKind::Cb(CbKind::Pending)),
            Op::Close => Some(EvKind::Cb(CbKind::Close)),
            Op::Pool { .. } => Some(EvKind::Cb(CbKind::PoolDone)),
            Op::FdChain { .. } => Some(EvKind::Cb(CbKind::NetRead)),
            // Checked against the parent's event below instead.
            Op::NextTick => None,
        };
        if let Some(expected) = expected {
            if record.kind != expected {
                fail(
                    "spawn-kind",
                    format!(
                        "node {id} ({:?}) ran in {:?} event {ev:?}, expected {expected:?}",
                        node.op, record.kind
                    ),
                );
            }
        }
        let spawn = parent[id as usize].and_then(|p| run_of(p).map(|(e, _)| e));
        match node.op {
            Op::NextTick => {
                // Microtasks are absorbed into the dispatching event:
                // the child's marker must land in the same event record
                // as the parent's (transitively collapsing tick chains).
                if let Some(parent_ev) = spawn {
                    if parent_ev != ev {
                        fail(
                            "micro-before-macro",
                            format!(
                                "nextTick node {id} ran in event {ev:?}, not inside its \
                                 parent's event {parent_ev:?}"
                            ),
                        );
                    }
                }
            }
            Op::Immediate => {
                // setImmediate snapshot semantics: queued at or after the
                // check phase (or during setup) → next iteration's check;
                // queued in an earlier phase → this iteration's check.
                if let Some(parent_ev) = spawn {
                    let spawn_rec = &log.events[parent_ev.0 as usize];
                    let expected_iter = if spawn_rec.iter == 0 {
                        1
                    } else if rank(spawn_rec.kind) >= CHECK_RANK {
                        spawn_rec.iter + 1
                    } else {
                        spawn_rec.iter
                    };
                    if record.iter != expected_iter {
                        fail(
                            "immediate-phase",
                            format!(
                                "immediate node {id} spawned in iteration {} ({:?}) ran in \
                                 iteration {}, expected {expected_iter}",
                                spawn_rec.iter, spawn_rec.kind, record.iter
                            ),
                        );
                    }
                }
            }
            _ => {}
        }
    }

    // --- per-chain FIFO ---------------------------------------------------
    for (id, node) in prog.nodes.iter().enumerate() {
        let Op::FdChain { msgs, .. } = node.op else {
            continue;
        };
        let id = id as u32;
        let prefix = format!("msg:{id}:");
        let mut observed = Vec::new();
        for acc in &log.accesses {
            let Some(name) = log.sites.get(acc.site as usize) else {
                continue;
            };
            if let Some(payload) = name.strip_prefix(&prefix) {
                observed.push(payload.parse::<u32>().unwrap_or(u32::MAX));
            }
        }
        let in_order = observed
            .iter()
            .enumerate()
            .all(|(k, &p)| p == k as u32 && p < msgs as u32);
        if !in_order {
            fail(
                "fd-fifo",
                format!(
                    "chain node {id} observed payloads {observed:?}, expected the \
                     in-order prefix of 0..{msgs}"
                ),
            );
        } else if ctx.completed && observed.len() != msgs as usize {
            fail(
                "all-dispatched",
                format!(
                    "quiescent run delivered {}/{} payloads of chain node {id}",
                    observed.len(),
                    msgs
                ),
            );
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;

    use nodefz::Mode;
    use nodefz_rt::EventLogHandle;

    use crate::gen::generate;
    use crate::prog::install;

    fn vanilla_log(seed: u64) -> (Prog, EventLog, bool) {
        let prog = Rc::new(generate(seed));
        let events = EventLogHandle::fresh();
        let cfg = nodefz_apps::common::RunCfg::new(Mode::Vanilla, seed).events(&events);
        let mut el = cfg.build_loop();
        install(&prog, &mut el);
        let report = el.run();
        let completed = matches!(report.termination, nodefz_rt::Termination::Quiescent);
        ((*prog).clone(), events.snapshot(), completed)
    }

    #[test]
    fn vanilla_runs_satisfy_the_oracle() {
        for seed in 0..40 {
            let (prog, log, completed) = vanilla_log(seed);
            assert!(completed, "seed {seed} did not quiesce");
            let violations = check(
                &prog,
                &log,
                &OracleCtx {
                    demux: false,
                    completed,
                },
            );
            assert!(violations.is_empty(), "seed {seed}: {violations:?}");
        }
    }

    #[test]
    fn incomplete_context_relaxes_only_completeness() {
        let (prog, log, _) = vanilla_log(7);
        // Claiming the run did not complete must never *add* violations.
        let v = check(
            &prog,
            &log,
            &OracleCtx {
                demux: false,
                completed: false,
            },
        );
        assert!(v.is_empty(), "{v:?}");
    }
}
