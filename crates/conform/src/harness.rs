//! The differential schedule-testing harness.
//!
//! [`differential`] runs one generated program under four runtime
//! postures and cross-checks them:
//!
//! 1. **vanilla** — the libuv-faithful scheduler; its log must pass the
//!    ordering oracle.
//! 2. **fuzz** — a seeded *swarm* parameterization
//!    ([`FuzzParams::sampled`]), recorded; the perturbed log must pass
//!    the same oracle (fuzzing may reorder only what the rules allow).
//! 3. **replay** — the fuzz recording replayed decision-for-decision;
//!    the replay must be divergence-free and reproduce the fuzz run's
//!    event log **byte-for-byte** (compared via [`render_log`]).
//! 4. **directed** — happens-before analysis of a no-fuzz recording
//!    predicts races; each prediction is either *confirmed* (a
//!    race-directed run flips the racing pair, and that flipped log still
//!    passes the oracle) or explicitly classified *unconfirmable* with a
//!    reason — never silently dropped.

use std::fmt;
use std::rc::Rc;

use nodefz::{DirectedSpec, FuzzParams, Mode, ReplayStatusHandle, TraceHandle};
use nodefz_apps::common::RunCfg;
use nodefz_hb::races_with_cuts;
use nodefz_rt::{EventLog, EventLogHandle, LoopPool, RunReport, Termination};

use crate::oracle::{check, OracleCtx, Violation};
use crate::prog::{install, Prog};

/// Knobs bounding the directed phase of one differential check.
#[derive(Clone, Debug)]
pub struct DiffConfig {
    /// How many predicted races to chase per program.
    pub directed_races: usize,
    /// How many flip cuts to try per race.
    pub directed_cuts: usize,
    /// How many scheduler attempts to make per cut.
    pub directed_attempts: u64,
    /// Loop-state pool to recycle buffers through.
    pub pool: Option<LoopPool>,
}

impl Default for DiffConfig {
    fn default() -> DiffConfig {
        DiffConfig {
            directed_races: 2,
            directed_cuts: 2,
            directed_attempts: 2,
            pool: None,
        }
    }
}

/// Why one program failed the differential check.
#[derive(Clone, Debug)]
pub enum DiffFailure {
    /// A run ended with errors, a crash, or a non-quiescent termination.
    RunError {
        /// Which posture failed ("vanilla", "fuzz", "replay", …).
        mode: &'static str,
        /// Termination and error evidence.
        detail: String,
    },
    /// A run's event log violated the ordering oracle.
    Oracle {
        /// Which posture produced the illegal log.
        mode: &'static str,
        /// The first violation (all carry rule ids).
        violation: Violation,
    },
    /// The replay consulted decisions that diverged from the recording.
    ReplayDiverged {
        /// The replayer's divergence report.
        detail: String,
    },
    /// The replay ran clean but reproduced a *different* event log.
    LogMismatch {
        /// First line number where the rendered logs differ.
        line: usize,
        /// The recorded line at that position.
        recorded: String,
        /// The replayed line at that position.
        replayed: String,
    },
}

impl fmt::Display for DiffFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiffFailure::RunError { mode, detail } => {
                write!(f, "{mode} run failed: {detail}")
            }
            DiffFailure::Oracle { mode, violation } => {
                write!(f, "{mode} log violates the oracle: {violation}")
            }
            DiffFailure::ReplayDiverged { detail } => {
                write!(f, "replay diverged: {detail}")
            }
            DiffFailure::LogMismatch {
                line,
                recorded,
                replayed,
            } => write!(
                f,
                "replay produced a different log at line {line}: \
                 recorded '{recorded}' vs replayed '{replayed}'"
            ),
        }
    }
}

/// How one predicted race was resolved by the directed phase.
#[derive(Clone, Debug)]
pub enum RaceOutcome {
    /// A directed run flipped the racing pair (and its log passed the
    /// oracle).
    Confirmed,
    /// No directed run flipped the pair; the reason is recorded so no
    /// prediction is ever silently dropped.
    Unconfirmable(String),
}

/// The successful result of one differential check.
#[derive(Clone, Debug, Default)]
pub struct DiffReport {
    /// Events dispatched by the vanilla run.
    pub vanilla_events: usize,
    /// Events dispatched by the fuzzed run.
    pub fuzz_events: usize,
    /// Races predicted by happens-before analysis of the no-fuzz run.
    pub races: usize,
    /// Predictions confirmed by a directed flip.
    pub confirmed: usize,
    /// Predictions classified unconfirmable (with reasons).
    pub unconfirmable: usize,
    /// Directed runs executed.
    pub directed_runs: usize,
}

/// Renders an event log as deterministic text — the byte-for-byte
/// comparison form for replay fidelity, and the evidence printed when a
/// differential check fails. Sites are rendered by name so the text is
/// stable under interning order.
pub fn render_log(log: &EventLog) -> String {
    let mut out = String::new();
    for ev in &log.events {
        let cause = |c: Option<nodefz_rt::CbId>| match c {
            Some(id) => id.0.to_string(),
            None => "-".into(),
        };
        out.push_str(&format!(
            "ev {} {:?} cause={} cause2={} dec={} iter={} detail={:?}\n",
            ev.id.0,
            ev.kind,
            cause(ev.cause),
            cause(ev.cause2),
            ev.decisions,
            ev.iter,
            ev.detail,
        ));
    }
    for acc in &log.accesses {
        let site = log
            .sites
            .get(acc.site as usize)
            .map(String::as_str)
            .unwrap_or("?");
        out.push_str(&format!("acc {} {site} {:?}\n", acc.event.0, acc.kind));
    }
    out
}

/// One posture's run: build, install, run, snapshot the log *before* the
/// loop (and any pooled state) is dropped. Public so other crates (the
/// static analyzer's soundness gate, notably) can obtain the event log of
/// a single posture without re-implementing the install/run/snapshot
/// dance.
pub fn run_logged(
    prog: &Rc<Prog>,
    env_seed: u64,
    mode: Mode,
    pool: &Option<LoopPool>,
) -> (RunReport, EventLog) {
    let events = EventLogHandle::fresh();
    let mut cfg = RunCfg::new(mode, env_seed).events(&events);
    if let Some(pool) = pool {
        cfg = cfg.pooled(pool);
    }
    let mut el = cfg.build_loop();
    install(prog, &mut el);
    let report = el.run();
    let log = events.snapshot();
    (report, log)
}

fn clean(mode: &'static str, report: &RunReport) -> Result<(), DiffFailure> {
    if !matches!(report.termination, Termination::Quiescent) || !report.errors.is_empty() {
        return Err(DiffFailure::RunError {
            mode,
            detail: format!(
                "termination {:?}, errors {:?}",
                report.termination, report.errors
            ),
        });
    }
    Ok(())
}

fn oracle_pass(
    mode: &'static str,
    prog: &Prog,
    log: &EventLog,
    ctx: &OracleCtx,
) -> Result<(), DiffFailure> {
    match check(prog, log, ctx).into_iter().next() {
        None => Ok(()),
        Some(violation) => Err(DiffFailure::Oracle { mode, violation }),
    }
}

/// The first marker site (`run:`/`msg:`) accessed by `event` — the
/// cross-run identity anchor for a racing dispatch.
fn anchor_of(log: &EventLog, event: u32) -> Option<String> {
    log.accesses.iter().find_map(|acc| {
        let name = log.sites.get(acc.site as usize)?;
        (acc.event.0 == event && (name.starts_with("run:") || name.starts_with("msg:")))
            .then(|| name.clone())
    })
}

/// The event that accessed `marker` in `log`, if any.
fn event_of(log: &EventLog, marker: &str) -> Option<u32> {
    let site = log.sites.iter().position(|s| s == marker)? as u32;
    log.accesses
        .iter()
        .find(|acc| acc.site == site)
        .map(|acc| acc.event.0)
}

/// Runs `prog` through all four postures and cross-checks them. On
/// success the report counts events, predictions, and how each
/// prediction was resolved; the first failed cross-check aborts.
///
/// # Errors
///
/// Returns the first [`DiffFailure`] encountered.
pub fn differential(
    prog: &Rc<Prog>,
    env_seed: u64,
    cfg: &DiffConfig,
) -> Result<DiffReport, DiffFailure> {
    let mut report = DiffReport::default();

    // 1. Vanilla.
    let (vr, vlog) = run_logged(prog, env_seed, Mode::Vanilla, &cfg.pool);
    clean("vanilla", &vr)?;
    let vctx = OracleCtx {
        demux: false,
        completed: true,
    };
    oracle_pass("vanilla", prog, &vlog, &vctx)?;
    report.vanilla_events = vlog.events.len();

    // 2. Fuzz under a seeded swarm parameterization, recorded.
    let params = FuzzParams::sampled(env_seed ^ 0x5EED_CAFE);
    let handle = TraceHandle::fresh();
    let (fr, flog) = run_logged(
        prog,
        env_seed,
        Mode::Record(params.clone(), handle.clone()),
        &cfg.pool,
    );
    clean("fuzz", &fr)?;
    let fctx = OracleCtx {
        demux: params.demux_done,
        completed: true,
    };
    oracle_pass("fuzz", prog, &flog, &fctx)?;
    report.fuzz_events = flog.events.len();
    let trace = handle.snapshot();

    // 3. Replay the fuzz recording: divergence-free, byte-identical log.
    let status = ReplayStatusHandle::fresh();
    let (rr, rlog) = run_logged(
        prog,
        env_seed,
        Mode::Replay(trace.clone(), status.clone()),
        &cfg.pool,
    );
    clean("replay", &rr)?;
    if let Err(e) = status.verdict() {
        return Err(DiffFailure::ReplayDiverged {
            detail: e.to_string(),
        });
    }
    let recorded = render_log(&flog);
    let replayed = render_log(&rlog);
    if recorded != replayed {
        let line = recorded
            .lines()
            .zip(replayed.lines())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| recorded.lines().count().min(replayed.lines().count()));
        return Err(DiffFailure::LogMismatch {
            line,
            recorded: recorded.lines().nth(line).unwrap_or("<eof>").to_string(),
            replayed: replayed.lines().nth(line).unwrap_or("<eof>").to_string(),
        });
    }
    oracle_pass(
        "replay",
        prog,
        &rlog,
        &OracleCtx {
            demux: trace.demux_done,
            completed: true,
        },
    )?;

    // 4. Directed: predict races from a no-fuzz recording, then confirm
    // or explicitly classify every prediction.
    let base_handle = TraceHandle::fresh();
    let base_params = FuzzParams::none();
    let base_demux = base_params.demux_done;
    let (br, blog) = run_logged(
        prog,
        env_seed,
        Mode::Record(base_params, base_handle.clone()),
        &cfg.pool,
    );
    clean("baseline", &br)?;
    oracle_pass(
        "baseline",
        prog,
        &blog,
        &OracleCtx {
            demux: base_demux,
            completed: true,
        },
    )?;
    let base_trace = base_handle.snapshot();
    let races = races_with_cuts(&blog);
    report.races = races.len();
    // Directed runs use the standard parameterization for their suffix.
    let directed_demux = Mode::Directed(
        DirectedSpec::new(base_trace.clone(), 0),
        TraceHandle::fresh(),
    )
    .params()
    .is_some_and(|p| p.demux_done);

    for race in races.iter().take(cfg.directed_races) {
        let outcome = confirm_race(
            prog,
            env_seed,
            cfg,
            &blog,
            &base_trace,
            race,
            directed_demux,
            &mut report,
        )?;
        match outcome {
            RaceOutcome::Confirmed => report.confirmed += 1,
            RaceOutcome::Unconfirmable(_) => report.unconfirmable += 1,
        }
    }
    Ok(report)
}

/// Tries to flip one predicted race with directed runs; every directed
/// log must itself pass the oracle (a flipped schedule is still a legal
/// schedule).
#[allow(clippy::too_many_arguments)]
fn confirm_race(
    prog: &Rc<Prog>,
    env_seed: u64,
    cfg: &DiffConfig,
    base_log: &EventLog,
    base_trace: &nodefz::DecisionTrace,
    race: &nodefz_hb::RaceInfo,
    directed_demux: bool,
    report: &mut DiffReport,
) -> Result<RaceOutcome, DiffFailure> {
    let Some(anchor_a) = anchor_of(base_log, race.a.event) else {
        return Ok(RaceOutcome::Unconfirmable(format!(
            "event {} carries no marker to identify it across runs",
            race.a.event
        )));
    };
    let Some(anchor_b) = anchor_of(base_log, race.b.event) else {
        return Ok(RaceOutcome::Unconfirmable(format!(
            "event {} carries no marker to identify it across runs",
            race.b.event
        )));
    };
    if anchor_a == anchor_b {
        return Ok(RaceOutcome::Unconfirmable(
            "both racing events resolve to the same marker".into(),
        ));
    }
    // The shared flip-cut ladder (when `flip_cuts` is empty, `chain_cut`
    // equals the ladder's pre-dispatch fallback, so this is identical to
    // the historical chain_cut fallback).
    for cut in race.ladder(cfg.directed_cuts) {
        for attempt in 0..cfg.directed_attempts {
            let spec = DirectedSpec::new(base_trace.clone(), cut).with_attempt(attempt);
            let dhandle = TraceHandle::fresh();
            let (dr, dlog) = run_logged(prog, env_seed, Mode::Directed(spec, dhandle), &cfg.pool);
            report.directed_runs += 1;
            clean("directed", &dr)?;
            oracle_pass(
                "directed",
                prog,
                &dlog,
                &OracleCtx {
                    demux: directed_demux,
                    completed: true,
                },
            )?;
            if let (Some(da), Some(db)) = (event_of(&dlog, &anchor_a), event_of(&dlog, &anchor_b)) {
                if db < da {
                    return Ok(RaceOutcome::Confirmed);
                }
            }
        }
    }
    Ok(RaceOutcome::Unconfirmable(format!(
        "no directed run flipped {anchor_a} and {anchor_b} within \
         {} cut(s) x {} attempt(s)",
        cfg.directed_cuts, cfg.directed_attempts
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;

    #[test]
    fn differential_passes_on_generated_programs() {
        let cfg = DiffConfig::default();
        for seed in 0..25 {
            let prog = Rc::new(generate(seed));
            let report = differential(&prog, seed, &cfg)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\nprogram:\n{prog}"));
            assert!(report.vanilla_events > 0);
            assert_eq!(
                report.confirmed + report.unconfirmable,
                report.races.min(cfg.directed_races)
            );
        }
    }

    #[test]
    fn render_log_is_deterministic_and_total() {
        let prog = Rc::new(generate(11));
        let (_, log) = run_logged(&prog, 11, Mode::Vanilla, &None);
        let a = render_log(&log);
        let b = render_log(&log);
        assert_eq!(a, b);
        assert!(a.lines().count() >= log.events.len() + log.accesses.len());
    }
}
