//! Shrinking failing programs to minimal `nodefz-prog v1` repros.
//!
//! When a generated program fails the differential harness, the raw tree
//! is rarely the smallest witness. [`shrink_prog`] delta-debugs the
//! program's non-root nodes with [`nodefz_check::ddmin`], re-running the
//! caller's failure predicate on each structurally-valid projection
//! ([`Prog::project`] drops orphaned subtrees and renumbers densely), and
//! returns the minimal still-failing program — printable as a
//! deterministic `nodefz-prog v1` literal via its `Display` impl.

use nodefz_check::ddmin;

use crate::prog::Prog;

/// The result of shrinking one failing program.
#[derive(Clone, Debug)]
pub struct ShrinkOutcome {
    /// The minimal still-failing program.
    pub minimal: Prog,
    /// Non-root nodes in the original program.
    pub original_nodes: usize,
    /// Predicate evaluations spent.
    pub runs: u64,
}

/// Minimizes `prog` against `fails`: the predicate receives candidate
/// projections of the program and returns `true` while the failure still
/// reproduces. `fails(prog)` itself must hold, or shrinking returns the
/// original program unchanged. Deterministic for a deterministic
/// predicate.
pub fn shrink_prog<F: FnMut(&Prog) -> bool>(prog: &Prog, mut fails: F) -> ShrinkOutcome {
    let ids = prog.non_root_ids();
    let original_nodes = ids.len();
    if !fails(prog) {
        return ShrinkOutcome {
            minimal: prog.clone(),
            original_nodes,
            runs: 1,
        };
    }
    let result = ddmin(&ids, |keep| fails(&prog.project(keep)));
    ShrinkOutcome {
        minimal: prog.project(&result.items),
        original_nodes,
        runs: result.runs + 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;
    use crate::prog::Op;

    /// A predicate that "fails" whenever the program still contains a
    /// pool task — shrinking should strip everything else.
    fn has_pool(p: &Prog) -> bool {
        p.nodes.iter().any(|n| matches!(n.op, Op::Pool { .. }))
    }

    #[test]
    fn shrinks_to_the_single_triggering_node() {
        // Find a generated program with a pool op plus other noise.
        let prog = (0..500)
            .map(generate)
            .find(|p| has_pool(p) && p.nodes.len() > 4)
            .expect("no seed generated a pool op among noise");
        let out = shrink_prog(&prog, has_pool);
        out.minimal.validate().expect("shrunk program invalid");
        assert!(has_pool(&out.minimal), "shrinking lost the failure");
        // The minimal witness is a root plus one pool chain; no siblings
        // of unrelated kinds survive.
        assert!(
            out.minimal.nodes.len() < prog.nodes.len(),
            "nothing was removed from {prog}"
        );
        assert!(out
            .minimal
            .nodes
            .iter()
            .all(|n| matches!(n.op, Op::Root | Op::Pool { .. })));
    }

    #[test]
    fn shrinking_is_deterministic_and_prints_a_literal() {
        let prog = (0..500)
            .map(generate)
            .find(|p| has_pool(p) && p.nodes.len() > 4)
            .unwrap();
        let a = shrink_prog(&prog, has_pool);
        let b = shrink_prog(&prog, has_pool);
        assert_eq!(a.minimal, b.minimal);
        let text = a.minimal.to_string();
        assert!(
            text.starts_with("nodefz-prog v1\n"),
            "not a literal: {text}"
        );
        assert_eq!(Prog::parse(&text).unwrap(), a.minimal);
    }

    #[test]
    fn non_failing_program_is_returned_unchanged() {
        let prog = generate(1);
        let out = shrink_prog(&prog, |_| false);
        assert_eq!(out.minimal, prog);
        assert_eq!(out.runs, 1);
    }
}
