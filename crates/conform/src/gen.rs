//! Seeded random program generation with swarm-testing feature masks.
//!
//! [`generate`] is a pure function of its seed: the same seed always
//! yields the same [`Prog`], which is what lets a campaign regenerate the
//! program from a finding's environment seed at replay time. Each seed
//! first draws a nonzero *feature mask* selecting which operation kinds
//! the program may use (swarm testing: programs that omit features
//! entirely exercise corners a uniform mix never reaches), then grows a
//! forward tree under node- and depth-budgets.

use nodefz_check::Gen;
use nodefz_rt::AccessKind;

use crate::prog::{Node, Op, Prog, Touch, SHARED_SITES};

/// Maximum nodes per generated program (including the root).
pub const MAX_NODES: usize = 12;
/// Maximum tree depth (root = depth 0).
pub const MAX_DEPTH: usize = 4;

/// The op kinds a feature mask can enable, in mask-bit order.
const OPS: [u8; 7] = [0, 1, 2, 3, 4, 5, 6];

fn op_for(g: &mut Gen, mask: u8) -> Op {
    let enabled: Vec<u8> = OPS
        .iter()
        .copied()
        .filter(|b| mask & (1 << b) != 0)
        .collect();
    match *g.pick(&enabled) {
        0 => Op::Timer {
            delay_us: g.range(0, 5_000) as u32,
        },
        1 => Op::NextTick,
        2 => Op::Immediate,
        3 => Op::Pending,
        4 => Op::Close,
        5 => Op::Pool {
            cost_us: g.range(1, 2_000) as u32,
        },
        _ => Op::FdChain {
            msgs: g.range(1, 4) as u8,
            gap_us: g.range(10, 500) as u32,
        },
    }
}

fn touches_for(g: &mut Gen) -> Vec<Touch> {
    let n = g.below(3) as usize;
    (0..n)
        .map(|_| Touch {
            site: g.below(SHARED_SITES as u64) as u8,
            kind: *g.pick(&[AccessKind::Read, AccessKind::Write, AccessKind::Update]),
        })
        .collect()
}

/// Generates the program for `seed`. Deterministic; always yields a
/// [`Prog::validate`]-clean tree with at least one non-root node.
pub fn generate(seed: u64) -> Prog {
    let mut g = Gen::new(seed ^ 0xC0F0_12A5_9E37_79B9);
    // Swarm feature mask: nonzero, so at least one op kind is available.
    let mask = g.range(1, 128) as u8;
    let budget = g.range_usize(2, MAX_NODES + 1);
    generate_with_rng(&mut g, mask, budget)
}

/// Grows a program from an explicit swarm `mask` and node `budget` —
/// the entry point for callers that pick their own feature mix (reduced
/// corpora, canary tests). Degenerate inputs — a mask with no op bit set
/// or a budget below two nodes — previously produced an *empty* program
/// (root only, nothing to schedule), which the harness would vacuously
/// pass; now they fall back to a minimal nonempty program: root plus one
/// timer.
pub fn generate_with(seed: u64, mask: u8, budget: usize) -> Prog {
    let mut g = Gen::new(seed ^ 0xC0F0_12A5_9E37_79B9);
    generate_with_rng(&mut g, mask, budget)
}

fn generate_with_rng(g: &mut Gen, mask: u8, budget: usize) -> Prog {
    if mask & 0x7F == 0 || budget < 2 {
        // Degenerate request: no enabled ops or no room for a non-root
        // node. Return the minimal program with activity instead of an
        // empty tree the oracle would vacuously accept.
        let prog = Prog {
            nodes: vec![
                Node {
                    op: Op::Root,
                    children: vec![1],
                    touches: Vec::new(),
                },
                Node {
                    op: Op::Timer { delay_us: 0 },
                    children: Vec::new(),
                    touches: Vec::new(),
                },
            ],
        };
        debug_assert!(prog.validate().is_ok(), "generator bug: {prog}");
        return prog;
    }
    let mut nodes = vec![Node {
        op: Op::Root,
        children: Vec::new(),
        touches: touches_for(g),
    }];
    // Breadth-first growth: (node id, depth) pairs still allowed children.
    let mut frontier = vec![(0u32, 0usize)];
    while nodes.len() < budget.min(MAX_NODES) && !frontier.is_empty() {
        let slot = g.below(frontier.len() as u64) as usize;
        let (parent, depth) = frontier[slot];
        let id = nodes.len() as u32;
        nodes.push(Node {
            op: op_for(g, mask),
            children: Vec::new(),
            touches: touches_for(g),
        });
        nodes[parent as usize].children.push(id);
        if depth + 1 < MAX_DEPTH {
            frontier.push((id, depth + 1));
        }
        // Parents take at most 3 children; the root is never retired
        // before it has one (guaranteed: it is the only frontier entry
        // until its first child exists).
        if nodes[parent as usize].children.len() >= 3 {
            frontier.swap_remove(slot);
        }
    }
    let prog = Prog { nodes };
    debug_assert!(prog.validate().is_ok(), "generator bug: {prog}");
    prog
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_valid() {
        for seed in 0..200 {
            let a = generate(seed);
            let b = generate(seed);
            assert_eq!(a, b, "seed {seed} not deterministic");
            a.validate().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(a.nodes.len() >= 2, "seed {seed} generated no activity");
            assert!(a.nodes.len() <= MAX_NODES);
        }
    }

    #[test]
    fn swarm_masks_vary_the_op_mix() {
        // Across many seeds, every op kind should appear somewhere and
        // some programs should *omit* common kinds entirely (the swarm
        // property).
        let mut seen = [false; 7];
        let mut omitted_timer = false;
        for seed in 0..300 {
            let prog = generate(seed);
            let mut has_timer = false;
            for node in &prog.nodes[1..] {
                let bit = match node.op {
                    Op::Timer { .. } => {
                        has_timer = true;
                        0
                    }
                    Op::NextTick => 1,
                    Op::Immediate => 2,
                    Op::Pending => 3,
                    Op::Close => 4,
                    Op::Pool { .. } => 5,
                    Op::FdChain { .. } => 6,
                    ref other => unreachable!("family-0 generated {other:?}"),
                };
                seen[bit] = true;
            }
            if !has_timer && prog.nodes.len() > 4 {
                omitted_timer = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "op kinds seen: {seen:?}");
        assert!(omitted_timer, "no sizeable program omitted timers");
    }

    #[test]
    fn degenerate_mask_or_budget_still_yields_activity() {
        // Regression: an all-zero swarm mask (or an exhausted budget)
        // used to emit a root-only program that every oracle vacuously
        // accepted. The generator must always return something to
        // schedule.
        for (mask, budget) in [(0u8, 8usize), (0x80, 8), (37, 0), (37, 1), (0, 0)] {
            let prog = generate_with(99, mask, budget);
            prog.validate()
                .unwrap_or_else(|e| panic!("mask {mask:#x} budget {budget}: {e}"));
            assert!(
                prog.nodes.len() >= 2,
                "mask {mask:#x} budget {budget}: empty program"
            );
        }
        // Well-formed inputs keep their stream: explicit (mask, budget)
        // generation stays deterministic and respects the node cap.
        let a = generate_with(7, 0x7F, MAX_NODES + 50);
        let b = generate_with(7, 0x7F, MAX_NODES + 50);
        assert_eq!(a, b);
        assert!(a.nodes.len() <= MAX_NODES);
    }

    #[test]
    fn generated_literals_round_trip() {
        for seed in [3u64, 17, 404, 9001] {
            let prog = generate(seed);
            let text = prog.encode();
            assert_eq!(Prog::parse(&text).unwrap(), prog);
        }
    }
}
