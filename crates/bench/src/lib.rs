//! # nodefz-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation (§5):
//!
//! * `cargo bench -p nodefz-bench --bench fig6` — bug reproduction rates
//!   under nodeV / nodeNFZ / nodeFZ (+ guided), Figure 6.
//! * `cargo bench -p nodefz-bench --bench fig7` — normalized pairwise
//!   Levenshtein distance between type schedules, Figure 7.
//! * `cargo bench -p nodefz-bench --bench fig8` — normalized wall-clock
//!   overhead, Figure 8.
//! * `cargo bench -p nodefz-bench --bench tables` — Tables 1, 2 and 3.
//! * `cargo bench -p nodefz-bench --bench ablation` — per-mechanism
//!   contribution study (extension).
//! * `cargo bench -p nodefz-bench --bench sweep` — parameter sweeps
//!   (extension).
//! * `cargo bench -p nodefz-bench --bench micro` — Criterion micro-benches
//!   of the runtime and analysis kernels.
//!
//! Absolute numbers differ from the paper (this substrate is a simulator,
//! not the authors' testbed); the comparison targets are the *shapes*
//! documented in `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

use nodefz::Mode;
use nodefz_apps::common::{BugCase, RunCfg, Variant};
use nodefz_trace::pairwise_normalized_ld;

/// One bar group of Figure 6.
#[derive(Clone, Debug)]
pub struct Fig6Row {
    /// Bug abbreviation.
    pub abbr: &'static str,
    /// Manifestation rate under nodeV.
    pub vanilla: f64,
    /// Manifestation rate under nodeNFZ.
    pub nofuzz: f64,
    /// Manifestation rate under nodeFZ (standard parameterization).
    pub fuzz: f64,
    /// Manifestation rate under the guided parameterization.
    pub guided: f64,
}

/// Runs the Figure 6 experiment: `runs` repetitions per version for every
/// bug in the paper's Figure 6 set.
pub fn fig6(runs: u64) -> Vec<Fig6Row> {
    nodefz_apps::registry()
        .into_iter()
        .filter(|case| case.info().in_fig6)
        .map(|case| {
            let rate = |mode: Mode| -> f64 {
                let hits = (0..runs)
                    .filter(|&seed| {
                        case.run(&RunCfg::new(mode.clone(), seed), Variant::Buggy)
                            .manifested
                    })
                    .count();
                hits as f64 / runs as f64
            };
            Fig6Row {
                abbr: case.info().abbr,
                vanilla: rate(Mode::Vanilla),
                nofuzz: rate(Mode::NoFuzz),
                fuzz: rate(Mode::Fuzz),
                guided: rate(Mode::Guided),
            }
        })
        .collect()
}

/// One bar group of Figure 7.
#[derive(Clone, Debug)]
pub struct Fig7Row {
    /// Bug abbreviation (test-suite owner).
    pub abbr: &'static str,
    /// Mean pairwise normalized LD across nodeNFZ suite runs.
    pub nofuzz_ld: f64,
    /// Mean pairwise normalized LD across nodeFZ suite runs.
    pub fuzz_ld: f64,
    /// Mean schedule length (callbacks per suite run).
    pub mean_len: f64,
}

/// Runs the Figure 7 experiment: `runs` suite executions per version, mean
/// pairwise normalized Levenshtein distance over schedules truncated to
/// `truncate` callbacks.
///
/// The paper compares nodeNFZ against nodeFZ (nodeV cannot produce the
/// serialized type schedules the metric needs, §5.3).
pub fn fig7(runs: u64, truncate: usize) -> Vec<Fig7Row> {
    nodefz_apps::registry()
        .into_iter()
        .filter(|case| case.info().in_fig6)
        .map(|case| {
            let schedules = |mode: Mode| {
                (0..runs)
                    .map(|seed| case.suite(&RunCfg::new(mode.clone(), seed)).schedule)
                    .collect::<Vec<_>>()
            };
            let nfz = schedules(Mode::NoFuzz);
            let fz = schedules(Mode::Fuzz);
            let mean_len = fz.iter().map(|s| s.len()).sum::<usize>() as f64 / runs as f64;
            Fig7Row {
                abbr: case.info().abbr,
                nofuzz_ld: pairwise_normalized_ld(&nfz, truncate),
                fuzz_ld: pairwise_normalized_ld(&fz, truncate),
                mean_len,
            }
        })
        .collect()
}

/// One bar group of Figure 8.
#[derive(Clone, Debug)]
pub struct Fig8Row {
    /// Bug abbreviation (test-suite owner).
    pub abbr: &'static str,
    /// Wall-clock per suite run under nodeV (seconds).
    pub vanilla_s: f64,
    /// Normalized wall-clock under nodeNFZ (nodeV = 1.0).
    pub nofuzz_rel: f64,
    /// Normalized wall-clock under nodeFZ (nodeV = 1.0).
    pub fuzz_rel: f64,
}

/// Runs the Figure 8 experiment: wall-clock time of `iters` suite runs per
/// version, normalized against nodeV.
pub fn fig8(iters: u64) -> Vec<Fig8Row> {
    nodefz_apps::registry()
        .into_iter()
        .filter(|case| case.info().in_fig6)
        .map(|case| {
            let time = |mode: Mode| -> f64 {
                let start = Instant::now();
                for seed in 0..iters {
                    let _ = case.suite(&RunCfg::new(mode.clone(), seed));
                }
                start.elapsed().as_secs_f64() / iters as f64
            };
            let v = time(Mode::Vanilla);
            let nfz = time(Mode::NoFuzz);
            let fz = time(Mode::Fuzz);
            Fig8Row {
                abbr: case.info().abbr,
                vanilla_s: v,
                nofuzz_rel: nfz / v,
                fuzz_rel: fz / v,
            }
        })
        .collect()
}

/// Renders a horizontal ASCII bar of width proportional to `value` in
/// `[0, max]`.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    let filled = if max <= 0.0 {
        0
    } else {
        ((value / max) * width as f64).round() as usize
    };
    let filled = filled.min(width);
    format!("{}{}", "#".repeat(filled), ".".repeat(width - filled))
}

/// Observed manifestation evidence for a Table 2 row.
#[derive(Clone, Debug)]
pub struct Evidence {
    /// Bug abbreviation.
    pub abbr: &'static str,
    /// First fuzz seed that manifested the bug (if any within the budget).
    pub first_seed: Option<u64>,
    /// The oracle's description of what was observed.
    pub detail: String,
}

/// Hunts for the first manifesting fuzz seed per bug (Table 2 evidence).
pub fn table2_evidence(max_seeds: u64) -> Vec<Evidence> {
    nodefz_apps::registry()
        .into_iter()
        .map(|case| {
            let mut found = None;
            let mut detail = String::from("did not manifest within the seed budget");
            for seed in 0..max_seeds {
                let mode = if case.info().abbr == "KUEt" {
                    // The race-against-time bug is found via guided fuzzing
                    // (§5.2.3).
                    Mode::Guided
                } else {
                    Mode::Fuzz
                };
                let out = case.run(&RunCfg::new(mode, seed), Variant::Buggy);
                if out.manifested {
                    found = Some(seed);
                    detail = out.detail;
                    break;
                }
            }
            Evidence {
                abbr: case.info().abbr,
                first_seed: found,
                detail,
            }
        })
        .collect()
}

/// Convenience: the full registry (re-exported for bench targets).
pub fn registry() -> Vec<Box<dyn BugCase>> {
    nodefz_apps::registry()
}

/// One row of the campaign-scaling experiment.
#[derive(Clone, Debug)]
pub struct CampaignScalingRow {
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock seconds for the whole campaign.
    pub wall_s: f64,
    /// Fuzz runs completed per second.
    pub runs_per_s: f64,
    /// Distinct bugs found (after dedup).
    pub unique_bugs: usize,
}

/// Runs a fig6-style campaign sweep: the same fuzzing campaign (identical
/// apps, budget and base seed) at each thread count, reporting wall-clock
/// scaling and the deduplicated bug count.
///
/// The finding set is seed-determined, so every row should report the same
/// `unique_bugs`; only the wall clock should move.
pub fn campaign_scaling(
    apps: &[&str],
    budget: u64,
    thread_counts: &[usize],
) -> Vec<CampaignScalingRow> {
    thread_counts
        .iter()
        .map(|&threads| {
            let cfg = nodefz_campaign::CampaignConfig {
                threads,
                budget,
                apps: apps.iter().map(|a| a.to_string()).collect(),
                ..nodefz_campaign::CampaignConfig::default()
            };
            let report = nodefz_campaign::run(&cfg).expect("campaign config is valid");
            let wall_s = report.elapsed.as_secs_f64();
            CampaignScalingRow {
                threads,
                wall_s,
                runs_per_s: report.runs as f64 / wall_s.max(1e-9),
                unique_bugs: report.unique_bugs(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_rendering() {
        assert_eq!(bar(0.5, 1.0, 10), "#####.....");
        assert_eq!(bar(0.0, 1.0, 4), "....");
        assert_eq!(bar(1.0, 1.0, 4), "####");
        assert_eq!(bar(2.0, 1.0, 4), "####", "clamped at full");
        assert_eq!(bar(1.0, 0.0, 4), "....", "zero max is empty");
    }

    #[test]
    fn fig6_small_smoke() {
        let rows = fig6(3);
        assert!(!rows.is_empty());
        for row in &rows {
            for rate in [row.vanilla, row.nofuzz, row.fuzz, row.guided] {
                assert!((0.0..=1.0).contains(&rate), "{row:?}");
            }
        }
    }

    #[test]
    fn fig7_small_smoke() {
        let rows = fig7(2, 2_000);
        for row in &rows {
            assert!((0.0..=1.0).contains(&row.nofuzz_ld), "{row:?}");
            assert!((0.0..=1.0).contains(&row.fuzz_ld), "{row:?}");
            assert!(row.mean_len > 0.0);
        }
    }

    #[test]
    fn table2_evidence_covers_all_bugs() {
        let ev = table2_evidence(1);
        assert_eq!(ev.len(), registry().len());
    }
}
