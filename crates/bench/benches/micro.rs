//! Criterion micro-benchmarks of the runtime and analysis kernels:
//! event-loop dispatch throughput under each scheduler, worker-pool
//! throughput, network echo throughput, and Levenshtein distance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nodefz::Mode;
use nodefz_net::{Client, SimNet};
use nodefz_rt::{LoopConfig, VDur};
use nodefz_trace::{levenshtein, levenshtein_banded};

fn bench_timer_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("timer_dispatch_1k");
    for mode in [Mode::Vanilla, Mode::NoFuzz, Mode::Fuzz] {
        group.bench_with_input(
            BenchmarkId::from_parameter(mode.label()),
            &mode,
            |b, mode| {
                b.iter(|| {
                    let mut el = mode.build_loop(LoopConfig::seeded(1), 7);
                    el.enter(|cx| {
                        for i in 0..1_000u64 {
                            cx.set_timeout(VDur::micros(i), |_| {});
                        }
                    });
                    let report = el.run();
                    assert!(report.dispatched >= 1_000);
                    report.dispatched
                });
            },
        );
    }
    group.finish();
}

fn bench_pool_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool_500_tasks");
    for mode in [Mode::Vanilla, Mode::Fuzz] {
        group.bench_with_input(
            BenchmarkId::from_parameter(mode.label()),
            &mode,
            |b, mode| {
                b.iter(|| {
                    let mut el = mode.build_loop(LoopConfig::seeded(2), 9);
                    el.enter(|cx| {
                        for _ in 0..500 {
                            cx.submit_work(VDur::micros(50), |_| (), |_, ()| {})
                                .unwrap();
                        }
                    });
                    let report = el.run();
                    assert_eq!(report.pool.completed, 500);
                });
            },
        );
    }
    group.finish();
}

fn bench_net_echo(c: &mut Criterion) {
    let mut group = c.benchmark_group("net_echo_100_msgs");
    for mode in [Mode::Vanilla, Mode::Fuzz] {
        group.bench_with_input(
            BenchmarkId::from_parameter(mode.label()),
            &mode,
            |b, mode| {
                b.iter(|| {
                    let mut el = mode.build_loop(LoopConfig::seeded(3), 11);
                    let net = SimNet::new();
                    let n = net.clone();
                    el.enter(move |cx| {
                        n.listen(cx, 80, |_cx, conn| {
                            conn.on_data(|cx, conn, msg| {
                                let _ = conn.write(cx, msg.clone());
                            });
                        })
                        .unwrap();
                    });
                    let client = el.enter(|cx| {
                        let c = Client::connect(cx, &net, 80);
                        for i in 0..100u8 {
                            c.send(cx, vec![i]);
                        }
                        c.close_after(cx, VDur::millis(500));
                        c
                    });
                    el.enter(|cx| net.close_all_listeners_after(cx, VDur::millis(600)));
                    el.run();
                    assert_eq!(client.received().len(), 100);
                });
            },
        );
    }
    group.finish();
}

fn bench_levenshtein(c: &mut Criterion) {
    // Deterministic pseudo-random schedules.
    let mut x: u64 = 42;
    let mut next = move || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (x >> 33) as u8 % 8 + b'A'
    };
    let a: Vec<u8> = (0..2_000).map(|_| next()).collect();
    let b: Vec<u8> = (0..2_000).map(|_| next()).collect();
    c.bench_function("levenshtein_2k_exact", |bench| {
        bench.iter(|| levenshtein(&a, &b));
    });
    let mut c2 = a.clone();
    for slot in c2.iter_mut().step_by(40) {
        *slot = b'z';
    }
    c.bench_function("levenshtein_2k_banded", |bench| {
        bench.iter(|| levenshtein_banded(&a, &c2, 128).expect("within band"));
    });
}

criterion_group!(
    benches,
    bench_timer_dispatch,
    bench_pool_throughput,
    bench_net_echo,
    bench_levenshtein
);
criterion_main!(benches);
