//! Micro-benchmarks of the runtime and analysis kernels: event-loop
//! dispatch throughput under each scheduler, worker-pool throughput,
//! network echo throughput, and Levenshtein distance.
//!
//! Hand-rolled timing harness (median of `reps` timed runs after a warmup)
//! so the workspace carries no external bench dependency.

use std::time::Instant;

use nodefz::Mode;
use nodefz_net::{Client, SimNet};
use nodefz_rt::{LoopConfig, VDur};
use nodefz_trace::{levenshtein, levenshtein_banded};

/// Times `f` over `reps` runs (after one warmup) and prints the median.
fn bench(name: &str, reps: usize, mut f: impl FnMut()) {
    f();
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let max = samples[samples.len() - 1];
    println!("{name:<40} median {median:9.3} ms   (min {min:.3}, max {max:.3}, n={reps})");
}

fn bench_timer_dispatch() {
    for mode in [Mode::Vanilla, Mode::NoFuzz, Mode::Fuzz] {
        let label = format!("timer_dispatch_1k/{}", mode.label());
        let mode2 = mode.clone();
        bench(&label, 15, move || {
            let mut el = mode2.build_loop(LoopConfig::seeded(1), 7);
            el.enter(|cx| {
                for i in 0..1_000u64 {
                    cx.set_timeout(VDur::micros(i), |_| {});
                }
            });
            let report = el.run();
            assert!(report.dispatched >= 1_000);
        });
    }
}

fn bench_pool_throughput() {
    for mode in [Mode::Vanilla, Mode::Fuzz] {
        let label = format!("pool_500_tasks/{}", mode.label());
        let mode2 = mode.clone();
        bench(&label, 15, move || {
            let mut el = mode2.build_loop(LoopConfig::seeded(2), 9);
            el.enter(|cx| {
                for _ in 0..500 {
                    cx.submit_work(VDur::micros(50), |_| (), |_, ()| {})
                        .unwrap();
                }
            });
            let report = el.run();
            assert_eq!(report.pool.completed, 500);
        });
    }
}

fn bench_net_echo() {
    for mode in [Mode::Vanilla, Mode::Fuzz] {
        let label = format!("net_echo_100_msgs/{}", mode.label());
        let mode2 = mode.clone();
        bench(&label, 15, move || {
            let mut el = mode2.build_loop(LoopConfig::seeded(3), 11);
            let net = SimNet::new();
            let n = net.clone();
            el.enter(move |cx| {
                n.listen(cx, 80, |_cx, conn| {
                    conn.on_data(|cx, conn, msg| {
                        let _ = conn.write(cx, msg.clone());
                    });
                })
                .unwrap();
            });
            let client = el.enter(|cx| {
                let c = Client::connect(cx, &net, 80);
                for i in 0..100u8 {
                    c.send(cx, vec![i]);
                }
                c.close_after(cx, VDur::millis(500));
                c
            });
            el.enter(|cx| net.close_all_listeners_after(cx, VDur::millis(600)));
            el.run();
            assert_eq!(client.received().len(), 100);
        });
    }
}

fn bench_levenshtein() {
    // Deterministic pseudo-random schedules.
    let mut x: u64 = 42;
    let mut next = move || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (x >> 33) as u8 % 8 + b'A'
    };
    let a: Vec<u8> = (0..2_000).map(|_| next()).collect();
    let b: Vec<u8> = (0..2_000).map(|_| next()).collect();
    bench("levenshtein_2k_exact", 9, || {
        let _ = levenshtein(&a, &b);
    });
    let mut c2 = a.clone();
    for slot in c2.iter_mut().step_by(40) {
        *slot = b'z';
    }
    bench("levenshtein_2k_banded", 9, || {
        let _ = levenshtein_banded(&a, &c2, 128).expect("within band");
    });
}

fn main() {
    bench_timer_dispatch();
    bench_pool_throughput();
    bench_net_echo();
    bench_levenshtein();
}
