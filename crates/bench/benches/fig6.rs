//! Figure 6: bug reproduction rates using different versions of Node.js.
//!
//! Paper shape: most bugs manifest only under nodeFZ; KUE (and FPS)
//! manifest occasionally under nodeV; nodeNFZ tracks nodeV closely; the
//! KUEt "race against time" is amplified by the guided parameterization.

fn main() {
    let runs: u64 = std::env::var("NODEFZ_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100);
    println!("=== Figure 6: bug reproduction rate over {runs} runs ===\n");
    println!(
        "{:<6} {:>7} {:>8} {:>7} {:>7}   nodeFZ rate",
        "bug", "nodeV", "nodeNFZ", "nodeFZ", "guided"
    );
    let rows = nodefz_bench::fig6(runs);
    for r in &rows {
        println!(
            "{:<6} {:>7.2} {:>8.2} {:>7.2} {:>7.2}   |{}|",
            r.abbr,
            r.vanilla,
            r.nofuzz,
            r.fuzz,
            r.guided,
            nodefz_bench::bar(r.fuzz, 1.0, 30)
        );
    }
    let only_fz = rows
        .iter()
        .filter(|r| r.vanilla == 0.0 && r.fuzz > 0.0)
        .count();
    println!(
        "\n{only_fz}/{} bugs were exposed ONLY by nodeFZ (paper: the majority).",
        rows.len()
    );
    if let Some(kuet) = rows.iter().find(|r| r.abbr == "KUEt") {
        println!(
            "KUEt guided vs standard: {:.2} vs {:.2} (paper: 13/50 vs 3/50).",
            kuet.guided, kuet.fuzz
        );
    }
}
