//! Figure 8: normalized performance overhead of running each suite under
//! nodeV, nodeNFZ and nodeFZ.
//!
//! Paper shape: nodeNFZ is comparable to nodeV; nodeFZ costs up to ~1.5x
//! (delay injection and extra loop iterations).

fn main() {
    let iters: u64 = std::env::var("NODEFZ_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(30);
    println!("=== Figure 8: normalized suite wall-clock over {iters} runs (nodeV = 1.0) ===\n");
    println!(
        "{:<6} {:>10} {:>8} {:>7}   nodeFZ overhead",
        "suite", "nodeV (ms)", "nodeNFZ", "nodeFZ"
    );
    let rows = nodefz_bench::fig8(iters);
    for r in &rows {
        println!(
            "{:<6} {:>10.3} {:>8.2} {:>7.2}   |{}|",
            r.abbr,
            r.vanilla_s * 1e3,
            r.nofuzz_rel,
            r.fuzz_rel,
            nodefz_bench::bar(r.fuzz_rel, 2.0, 30)
        );
    }
    let worst = rows.iter().map(|r| r.fuzz_rel).fold(0.0f64, f64::max);
    println!("\nWorst nodeFZ overhead: {worst:.2}x (paper: up to ~1.5x).");
}
