//! Random fuzzing vs. systematic delay-bounded exploration (extension).
//!
//! §6 of the paper positions randomized schedule fuzzing against systematic
//! testing and cites evidence that randomization is competitive. This
//! harness measures both on the same seeded NW–Timer race: how many runs
//! until the first manifestation, and how many distinct schedules each
//! strategy visits in a fixed budget.

use std::cell::RefCell;
use std::collections::HashSet;
use std::rc::Rc;

use nodefz::{FuzzParams, FuzzScheduler, SystematicScheduler};
use nodefz_rt::{EventLoop, LoopConfig, Scheduler, VDur};

/// The NES-shaped race: a heartbeat timer races a teardown event.
fn run_once(scheduler: Box<dyn Scheduler>, env_seed: u64) -> (bool, nodefz_rt::TypeSchedule) {
    let mut el = EventLoop::with_scheduler(LoopConfig::seeded(env_seed), scheduler);
    let slot: Rc<RefCell<Option<u32>>> = Rc::new(RefCell::new(Some(1)));
    let s_timer = slot.clone();
    let s_clear = slot.clone();
    el.enter(move |cx| {
        cx.set_timeout(VDur::millis(4), move |cx| {
            if s_timer.borrow().is_none() {
                cx.crash("null-deref", "heartbeat after teardown");
            }
        });
        cx.schedule_env(VDur::micros(4_500), move |_cx| {
            *s_clear.borrow_mut() = None;
        });
        for i in 1..5u64 {
            cx.set_timeout(VDur::micros(900 * i), move |cx| {
                cx.busy(VDur::micros(150));
            });
        }
        cx.submit_work(VDur::millis(1), |_| (), |_, ()| {}).unwrap();
    });
    let report = el.run();
    (report.has_error("null-deref"), report.schedule)
}

fn main() {
    let budget: u64 = std::env::var("NODEFZ_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256);
    println!("=== Exploration strategies on one seeded NW-Timer race (budget {budget} runs) ===\n");

    // Random fuzzing: vary the scheduler seed.
    let mut random_first = None;
    let mut random_schedules = HashSet::new();
    for seed in 0..budget {
        let sched = FuzzScheduler::new(FuzzParams::standard(), seed);
        let (hit, schedule) = run_once(Box::new(sched), 3);
        random_schedules.insert(schedule);
        if hit && random_first.is_none() {
            random_first = Some(seed + 1);
        }
    }

    // Systematic: enumerate schedule ids with a delay budget of 4.
    let mut systematic_first = None;
    let mut systematic_schedules = HashSet::new();
    for id in 0..budget {
        let sched = SystematicScheduler::new(id, 4);
        let (hit, schedule) = run_once(Box::new(sched), 3);
        systematic_schedules.insert(schedule);
        if hit && systematic_first.is_none() {
            systematic_first = Some(id + 1);
        }
    }

    println!(
        "{:<24} {:>18} {:>20}",
        "strategy", "runs to first hit", "distinct schedules"
    );
    println!(
        "{:<24} {:>18} {:>20}",
        "random (nodeFZ std)",
        random_first.map_or("none".into(), |n: u64| n.to_string()),
        random_schedules.len()
    );
    println!(
        "{:<24} {:>18} {:>20}",
        "systematic (delay<=4)",
        systematic_first.map_or("none".into(), |n: u64| n.to_string()),
        systematic_schedules.len()
    );
    println!("\nBoth strategies drive the same runtime hooks; the paper argues (via [51])");
    println!("that randomized scheduling is competitive with systematic exploration.");
}
