//! Campaign-scaling experiment: the same fuzzing campaign (fig6 bug set,
//! fixed budget and base seed) at 1, 2 and 4 worker threads. The finding
//! set is seed-determined, so the unique-bug column must not move; the
//! wall-clock column shows the parallel speedup.
//!
//! Run with: `cargo bench -p nodefz-bench --bench campaign`

use nodefz_bench::campaign_scaling;

fn main() {
    let apps = [
        "GHO", "FPS", "CLF", "NES", "AKA", "SIO", "MKD", "KUE", "MGS",
    ];
    let budget = 20_000;
    println!("campaign scaling: {budget} runs over {} apps", apps.len());
    println!(
        "{:<8} {:>9} {:>10} {:>12}",
        "threads", "wall s", "runs/s", "unique bugs"
    );
    let rows = campaign_scaling(&apps, budget, &[1, 2, 4]);
    let base = rows.first().map(|r| r.wall_s);
    for row in &rows {
        let speedup = base.map_or(1.0, |b| b / row.wall_s.max(1e-9));
        println!(
            "{:<8} {:>9.3} {:>10.1} {:>12}   ({speedup:.2}x vs 1 thread)",
            row.threads, row.wall_s, row.runs_per_s, row.unique_bugs
        );
    }
}
