//! Executions-per-second throughput trajectory (perf north star).
//!
//! Runs the campaign worker's hot path ([`RunContext::fuzz_once`] via
//! [`nodefz_campaign::measure`]) back-to-back for every (app, preset) arm
//! of the fig6 bug set, prints the per-arm table, and writes the
//! `nodefz-throughput-v1` JSON report to `BENCH_throughput.json` at the
//! repo root — the number successive PRs regress against.
//!
//! Run with: `cargo bench -p nodefz-bench --bench throughput`
//!
//! Environment knobs (all optional):
//! * `NFZ_BENCH_WINDOW_MS` — measurement window per arm (default 400)
//! * `NFZ_BENCH_WARMUP_MS` — warmup per arm, excluded (default 100)
//! * `NFZ_BENCH_OUT` — report path (default `BENCH_throughput.json`)
//!
//! Methodology caveats (see EXPERIMENTS.md): single-threaded on purpose —
//! per-worker throughput is the tracked quantity — and wall-clock windows
//! on a 1-CPU container are noisy, so compare totals, not single arms.
//!
//! [`RunContext::fuzz_once`]: nodefz_campaign::RunContext::fuzz_once

use std::time::Duration;

use nodefz_campaign::{measure, BenchConfig};

fn env_ms(var: &str, default: u64) -> Duration {
    Duration::from_millis(
        std::env::var(var)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default),
    )
}

fn main() {
    let apps: Vec<String> = nodefz_apps::registry()
        .iter()
        .map(|c| c.info())
        .filter(|i| i.in_fig6)
        .map(|i| i.abbr.to_string())
        .collect();
    let cfg = BenchConfig {
        apps,
        warmup: env_ms("NFZ_BENCH_WARMUP_MS", 100),
        window: env_ms("NFZ_BENCH_WINDOW_MS", 400),
        base_seed: 1,
    };
    println!(
        "throughput: {} apps x 3 presets, {}ms warmup + {}ms window per arm",
        cfg.apps.len(),
        cfg.warmup.as_millis(),
        cfg.window.as_millis()
    );
    let report = match measure(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("throughput bench failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "{:<6} {:<12} {:>8} {:>12} {:>14}",
        "app", "preset", "runs", "execs/s", "events/s"
    );
    for arm in &report.arms {
        println!(
            "{:<6} {:<12} {:>8} {:>12.1} {:>14.1}",
            arm.app,
            arm.preset,
            arm.runs,
            arm.execs_per_sec(),
            arm.events_per_sec()
        );
    }
    println!(
        "total: {} runs, {:.1} execs/s",
        report.total_runs(),
        report.total_execs_per_sec()
    );
    let out = std::env::var("NFZ_BENCH_OUT").unwrap_or_else(|_| "BENCH_throughput.json".into());
    match std::fs::write(&out, report.to_json()) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => {
            eprintln!("could not write {out}: {e}");
            std::process::exit(1);
        }
    }
}
