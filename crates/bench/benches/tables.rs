//! Tables 1, 2 and 3 of the paper.
//!
//! Pass an argument (`table1`, `table2`, `table3`) to print one table;
//! prints all three by default.

use nodefz::FuzzParams;

fn table1() {
    println!("=== Table 1: software used in the bug study ===\n");
    println!("{:<6} {:<32} {:<12} Race type", "Abbr.", "Name", "Bug ref");
    for case in nodefz_bench::registry() {
        let info = case.info();
        println!(
            "{:<6} {:<32} {:<12} {}",
            info.abbr,
            info.name,
            info.bug_ref,
            info.race.label()
        );
    }
    println!();
}

fn table2() {
    let budget: u64 = std::env::var("NODEFZ_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    println!(
        "=== Table 2: bug characteristics + observed evidence (nodeFZ, <= {budget} seeds) ===\n"
    );
    println!(
        "{:<6} {:<6} {:<10} {:<12} {:<44} Fix",
        "Abbr.", "Type", "Events", "Race on", "Impact"
    );
    let registry = nodefz_bench::registry();
    for case in &registry {
        let info = case.info();
        println!(
            "{:<6} {:<6} {:<10} {:<12} {:<44} {}",
            info.abbr,
            info.race.label(),
            info.racing_events,
            info.race_on,
            info.impact,
            info.fix
        );
    }
    println!("\n--- Observed manifestations ---\n");
    for ev in nodefz_bench::table2_evidence(budget) {
        match ev.first_seed {
            Some(seed) => println!("{:<6} seed {:>3}: {}", ev.abbr, seed, ev.detail),
            None => println!("{:<6} ---: {}", ev.abbr, ev.detail),
        }
    }
    println!();
}

fn table3() {
    println!("=== Table 3: Node.fz scheduler parameters ===\n");
    println!("Standard parameterization (§5.1.2):\n");
    for (name, desc, value) in FuzzParams::standard().table3_rows() {
        println!("  {name}\n    {desc}\n    value: {value}");
    }
    println!("\nGuided accurate-timer parameterization (§5.2.3):\n");
    for (name, _, value) in FuzzParams::guided_accurate_timers().table3_rows() {
        println!("  {name}: {value}");
    }
    println!();
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_default();
    match which.as_str() {
        "table1" => table1(),
        "table2" => table2(),
        "table3" => table3(),
        _ => {
            table1();
            table2();
            table3();
        }
    }
}
