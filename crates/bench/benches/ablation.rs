//! Ablation study (extension beyond the paper): how much does each fuzz
//! mechanism contribute to bug manifestation?
//!
//! Disables one mechanism at a time from the standard parameterization.

use nodefz::{FuzzParams, Mode};
use nodefz_apps::common::{RunCfg, Variant};

fn main() {
    let runs: u64 = std::env::var("NODEFZ_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40);
    let configs: Vec<(&str, Mode)> = vec![
        ("standard", Mode::Fuzz),
        (
            "-shuffle",
            Mode::Custom(FuzzParams::standard().without_shuffle()),
        ),
        (
            "-deferral",
            Mode::Custom(FuzzParams::standard().without_deferral()),
        ),
        (
            "-demux",
            Mode::Custom(FuzzParams::standard().without_demux()),
        ),
    ];
    println!("=== Ablation: manifestation rate with one mechanism disabled ({runs} runs) ===\n");
    print!("{:<6}", "bug");
    for (name, _) in &configs {
        print!(" {name:>10}");
    }
    println!();
    for case in nodefz_bench::registry() {
        if !case.info().in_fig6 {
            continue;
        }
        print!("{:<6}", case.info().abbr);
        for (_, mode) in &configs {
            let hits = (0..runs)
                .filter(|&seed| {
                    case.run(&RunCfg::new(mode.clone(), seed), Variant::Buggy)
                        .manifested
                })
                .count();
            print!(" {:>10.2}", hits as f64 / runs as f64);
        }
        println!();
    }
    println!(
        "\nReading: a column lower than `standard` means that mechanism matters for that bug."
    );
}
