//! Parameter sweeps (extension beyond the paper): manifestation rate as a
//! function of individual deferral percentages.

use nodefz::{FuzzParams, Mode};
use nodefz_apps::common::{RunCfg, Variant};

fn main() {
    let runs: u64 = std::env::var("NODEFZ_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40);
    let subjects = ["GHO", "NES", "MGS"];
    println!("=== Sweep: timer deferral percentage ({runs} runs) ===\n");
    print!("{:<12}", "timer_defer");
    for s in subjects {
        print!(" {s:>7}");
    }
    println!();
    for pct in [0.0, 10.0, 20.0, 40.0, 60.0] {
        let mut params = FuzzParams::standard();
        params.timer_defer_pct = pct;
        let mode = Mode::Custom(params);
        print!("{pct:<12}");
        for s in subjects {
            let case = nodefz_bench::registry()
                .into_iter()
                .find(|c| c.info().abbr == s)
                .expect("known bug");
            let hits = (0..runs)
                .filter(|&seed| {
                    case.run(&RunCfg::new(mode.clone(), seed), Variant::Buggy)
                        .manifested
                })
                .count();
            print!(" {:>7.2}", hits as f64 / runs as f64);
        }
        println!();
    }
    println!("\n=== Sweep: epoll deferral percentage ({runs} runs) ===\n");
    print!("{:<12}", "epoll_defer");
    for s in subjects {
        print!(" {s:>7}");
    }
    println!();
    for pct in [0.0, 5.0, 10.0, 25.0, 50.0] {
        let mut params = FuzzParams::standard();
        params.epoll_defer_pct = pct;
        let mode = Mode::Custom(params);
        print!("{pct:<12}");
        for s in subjects {
            let case = nodefz_bench::registry()
                .into_iter()
                .find(|c| c.info().abbr == s)
                .expect("known bug");
            let hits = (0..runs)
                .filter(|&seed| {
                    case.run(&RunCfg::new(mode.clone(), seed), Variant::Buggy)
                        .manifested
                })
                .count();
            print!(" {:>7.2}", hits as f64 / runs as f64);
        }
        println!();
    }
}
