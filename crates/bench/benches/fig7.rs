//! Figure 7: normalized Levenshtein distance between type schedules of
//! repeated suite runs, nodeNFZ vs nodeFZ.
//!
//! Paper shape: nodeFZ increases schedule variation for every suite
//! (CLF being the paper's own truncation-artifact outlier). An LD of 1.0
//! would require schedules with nothing in common.

fn main() {
    let runs: u64 = std::env::var("NODEFZ_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    let truncate: usize = std::env::var("NODEFZ_TRUNCATE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(nodefz_trace::PAPER_TRUNCATION);
    println!("=== Figure 7: pairwise normalized LD over {runs} suite runs (truncated to {truncate}) ===\n");
    println!(
        "{:<6} {:>8} {:>8} {:>9}   nodeFZ LD",
        "suite", "nodeNFZ", "nodeFZ", "mean len"
    );
    let rows = nodefz_bench::fig7(runs, truncate);
    let mut increased = 0;
    for r in &rows {
        println!(
            "{:<6} {:>8.3} {:>8.3} {:>9.0}   |{}|",
            r.abbr,
            r.nofuzz_ld,
            r.fuzz_ld,
            r.mean_len,
            nodefz_bench::bar(r.fuzz_ld, 0.5, 30)
        );
        if r.fuzz_ld > r.nofuzz_ld {
            increased += 1;
        }
    }
    println!(
        "\nnodeFZ increased schedule variation for {increased}/{} suites (paper: all but CLF).",
        rows.len()
    );
}
