//! # nodefz-fs — simulated file system on the worker pool
//!
//! Node.js file-system calls are "asynchronous" because libuv executes them
//! on the worker pool (§2.2 of the paper). This crate reproduces that
//! architecture: every operation is submitted as a worker-pool task whose
//! body mutates a shared in-memory tree at the task's virtual execution
//! time, and whose completion callback runs on the event loop later.
//!
//! Consequences that matter for the bug study:
//!
//! * Two logically-concurrent operations interleave at *operation*
//!   granularity in virtual time — the source of the FS–FS races (MKD) and
//!   FS–Call races (CLF).
//! * Errors use the errno model the bugs turn on (`EEXIST`, `ENOENT`,
//!   `ENOTDIR`, …).
//! * Multi-page writes are split into one pool task per page, reproducing
//!   ext4's page-granularity write atomicity (§4.2.3): concurrent
//!   overlapping writes can leave a file with pages from either writer.
//!
//! ## Example
//!
//! ```
//! use nodefz_fs::SimFs;
//! use nodefz_rt::{EventLoop, LoopConfig};
//!
//! let mut el = EventLoop::new(LoopConfig::seeded(3));
//! let fs = SimFs::new();
//! let f = fs.clone();
//! el.enter(move |cx| {
//!     let f2 = f.clone();
//!     f.mkdir(cx, "logs", move |cx, r| {
//!         r.unwrap();
//!         f2.write_file(cx, "logs/app.log", b"hello".to_vec(), |_, r| {
//!             r.unwrap();
//!         });
//!     });
//! });
//! el.run();
//! assert!(fs.exists_sync("logs/app.log"));
//! assert_eq!(fs.read_sync("logs/app.log").unwrap(), b"hello");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

use nodefz_rt::{Barrier, CbKind, Ctx, Errno, Fd, FdKind, VDur};

/// Page size for page-granularity write atomicity (§4.2.3).
pub const PAGE_SIZE: usize = 4096;

/// Metadata returned by [`SimFs::stat`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Stat {
    /// Whether the path names a directory.
    pub is_dir: bool,
    /// File size in bytes (0 for directories).
    pub size: usize,
}

/// Virtual execution costs per operation class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FsCosts {
    /// Metadata read (`stat`, `readdir`).
    pub meta: VDur,
    /// Directory creation/removal.
    pub mkdir: VDur,
    /// File read, base cost (plus size-proportional term).
    pub read: VDur,
    /// File write, base cost (plus size-proportional term).
    pub write: VDur,
}

impl Default for FsCosts {
    fn default() -> FsCosts {
        FsCosts {
            meta: VDur::micros(40),
            mkdir: VDur::micros(80),
            read: VDur::micros(60),
            write: VDur::micros(100),
        }
    }
}

#[derive(Clone, Debug)]
enum Node {
    Dir(BTreeMap<String, Node>),
    File(Vec<u8>),
}

/// What happened to a watched path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsEventKind {
    /// A file or directory was created.
    Created,
    /// A file's contents changed.
    Modified,
    /// A file or directory was removed.
    Removed,
}

/// A change notification delivered to a watcher (`fs.watch`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FsEvent {
    /// The affected path.
    pub path: String,
    /// The kind of change.
    pub kind: FsEventKind,
}

/// Identifier of a registered watcher.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct WatchId(u64);

struct Watcher {
    id: WatchId,
    prefix: String,
    fd: Fd,
    queue: VecDeque<FsEvent>,
}

#[derive(Debug, Default)]
struct FsStats {
    ops: u64,
    creates: u64,
}

struct FsState {
    root: BTreeMap<String, Node>,
    costs: FsCosts,
    stats: FsStats,
    watchers: Vec<Watcher>,
    next_watch: u64,
    /// Notifications produced by operations, drained on the loop side.
    pending_events: Vec<(WatchId, FsEvent)>,
}

impl FsState {
    fn notify(&mut self, path: &str, kind: FsEventKind) {
        for w in &self.watchers {
            if path.starts_with(w.prefix.as_str()) {
                self.pending_events.push((
                    w.id,
                    FsEvent {
                        path: path.to_string(),
                        kind,
                    },
                ));
            }
        }
    }
}

/// The simulated file system. Cheap to clone; clones share the tree.
#[derive(Clone)]
pub struct SimFs {
    inner: Rc<RefCell<FsState>>,
}

impl Default for SimFs {
    fn default() -> SimFs {
        SimFs::new()
    }
}

fn split(path: &str) -> Result<Vec<String>, Errno> {
    let parts: Vec<String> = path
        .split('/')
        .filter(|p| !p.is_empty() && *p != ".")
        .map(str::to_string)
        .collect();
    if parts.is_empty() {
        return Err(Errno::Einval);
    }
    Ok(parts)
}

impl FsState {
    fn resolve_dir<'a>(
        root: &'a mut BTreeMap<String, Node>,
        parents: &[String],
    ) -> Result<&'a mut BTreeMap<String, Node>, Errno> {
        let mut cur = root;
        for part in parents {
            match cur.get_mut(part) {
                Some(Node::Dir(children)) => cur = children,
                Some(Node::File(_)) => return Err(Errno::Enotdir),
                None => return Err(Errno::Enoent),
            }
        }
        Ok(cur)
    }

    fn mkdir(&mut self, path: &str) -> Result<(), Errno> {
        self.stats.ops += 1;
        let parts = split(path)?;
        let (leaf, parents) = parts.split_last().expect("split is non-empty");
        let dir = Self::resolve_dir(&mut self.root, parents)?;
        match dir.get(leaf) {
            Some(_) => Err(Errno::Eexist),
            None => {
                dir.insert(leaf.clone(), Node::Dir(BTreeMap::new()));
                self.stats.creates += 1;
                self.notify(path, FsEventKind::Created);
                Ok(())
            }
        }
    }

    fn rmdir(&mut self, path: &str) -> Result<(), Errno> {
        self.stats.ops += 1;
        let parts = split(path)?;
        let (leaf, parents) = parts.split_last().expect("split is non-empty");
        let dir = Self::resolve_dir(&mut self.root, parents)?;
        match dir.get(leaf) {
            Some(Node::Dir(children)) if children.is_empty() => {
                dir.remove(leaf);
                self.notify(path, FsEventKind::Removed);
                Ok(())
            }
            Some(Node::Dir(_)) => Err(Errno::Enotempty),
            Some(Node::File(_)) => Err(Errno::Enotdir),
            None => Err(Errno::Enoent),
        }
    }

    fn stat(&mut self, path: &str) -> Result<Stat, Errno> {
        self.stats.ops += 1;
        let parts = split(path)?;
        let (leaf, parents) = parts.split_last().expect("split is non-empty");
        let dir = Self::resolve_dir(&mut self.root, parents)?;
        match dir.get(leaf) {
            Some(Node::Dir(_)) => Ok(Stat {
                is_dir: true,
                size: 0,
            }),
            Some(Node::File(data)) => Ok(Stat {
                is_dir: false,
                size: data.len(),
            }),
            None => Err(Errno::Enoent),
        }
    }

    fn write_file(&mut self, path: &str, data: &[u8], append: bool) -> Result<(), Errno> {
        self.stats.ops += 1;
        let parts = split(path)?;
        let (leaf, parents) = parts.split_last().expect("split is non-empty");
        let dir = Self::resolve_dir(&mut self.root, parents)?;
        match dir.get_mut(leaf) {
            Some(Node::Dir(_)) => Err(Errno::Eisdir),
            Some(Node::File(existing)) => {
                if append {
                    existing.extend_from_slice(data);
                } else {
                    *existing = data.to_vec();
                }
                self.notify(path, FsEventKind::Modified);
                Ok(())
            }
            None => {
                dir.insert(leaf.clone(), Node::File(data.to_vec()));
                self.stats.creates += 1;
                self.notify(path, FsEventKind::Created);
                Ok(())
            }
        }
    }

    fn write_page(&mut self, path: &str, page_index: usize, page: &[u8]) -> Result<(), Errno> {
        self.stats.ops += 1;
        let parts = split(path)?;
        let (leaf, parents) = parts.split_last().expect("split is non-empty");
        let dir = Self::resolve_dir(&mut self.root, parents)?;
        let file = match dir.get_mut(leaf) {
            Some(Node::Dir(_)) => return Err(Errno::Eisdir),
            Some(Node::File(existing)) => existing,
            None => {
                dir.insert(leaf.clone(), Node::File(Vec::new()));
                self.stats.creates += 1;
                match dir.get_mut(leaf) {
                    Some(Node::File(f)) => f,
                    _ => unreachable!("just inserted a file"),
                }
            }
        };
        let start = page_index * PAGE_SIZE;
        let end = start + page.len();
        if file.len() < end {
            file.resize(end, 0);
        }
        file[start..end].copy_from_slice(page);
        Ok(())
    }

    fn read_file(&mut self, path: &str) -> Result<Vec<u8>, Errno> {
        self.stats.ops += 1;
        let parts = split(path)?;
        let (leaf, parents) = parts.split_last().expect("split is non-empty");
        let dir = Self::resolve_dir(&mut self.root, parents)?;
        match dir.get(leaf) {
            Some(Node::File(data)) => Ok(data.clone()),
            Some(Node::Dir(_)) => Err(Errno::Eisdir),
            None => Err(Errno::Enoent),
        }
    }

    fn unlink(&mut self, path: &str) -> Result<(), Errno> {
        self.stats.ops += 1;
        let parts = split(path)?;
        let (leaf, parents) = parts.split_last().expect("split is non-empty");
        let dir = Self::resolve_dir(&mut self.root, parents)?;
        match dir.get(leaf) {
            Some(Node::File(_)) => {
                dir.remove(leaf);
                self.notify(path, FsEventKind::Removed);
                Ok(())
            }
            Some(Node::Dir(_)) => Err(Errno::Eisdir),
            None => Err(Errno::Enoent),
        }
    }

    fn rename(&mut self, from: &str, to: &str) -> Result<(), Errno> {
        self.stats.ops += 1;
        let from_parts = split(from)?;
        let to_parts = split(to)?;
        // Take the source node out.
        let (from_leaf, from_parents) = from_parts.split_last().expect("split is non-empty");
        let node = {
            let dir = Self::resolve_dir(&mut self.root, from_parents)?;
            match dir.get(from_leaf) {
                Some(_) => dir.remove(from_leaf).expect("just seen"),
                None => return Err(Errno::Enoent),
            }
        };
        // Install it at the destination (replacing a file, as rename(2)
        // does; refusing to clobber a directory).
        let (to_leaf, to_parents) = to_parts.split_last().expect("split is non-empty");
        let reinstall = |root: &mut BTreeMap<String, Node>, node: Node| {
            // Restore the source on failure.
            let dir = Self::resolve_dir(root, from_parents).expect("source dir existed");
            dir.insert(from_leaf.clone(), node);
        };
        match Self::resolve_dir(&mut self.root, to_parents) {
            Ok(dir) => {
                if matches!(dir.get(to_leaf), Some(Node::Dir(_))) {
                    reinstall(&mut self.root, node);
                    return Err(Errno::Eisdir);
                }
                let dest = Self::resolve_dir(&mut self.root, to_parents).expect("just resolved");
                dest.insert(to_leaf.clone(), node);
                self.notify(from, FsEventKind::Removed);
                self.notify(to, FsEventKind::Created);
                Ok(())
            }
            Err(e) => {
                reinstall(&mut self.root, node);
                Err(e)
            }
        }
    }

    fn readdir(&mut self, path: &str) -> Result<Vec<String>, Errno> {
        self.stats.ops += 1;
        if path.is_empty() || path == "/" || path == "." {
            return Ok(self.root.keys().cloned().collect());
        }
        let parts = split(path)?;
        let dir = Self::resolve_dir(&mut self.root, &parts)?;
        Ok(dir.keys().cloned().collect())
    }
}

impl SimFs {
    /// Creates an empty file system with default costs.
    pub fn new() -> SimFs {
        SimFs::with_costs(FsCosts::default())
    }

    /// Creates an empty file system with custom operation costs.
    pub fn with_costs(costs: FsCosts) -> SimFs {
        SimFs {
            inner: Rc::new(RefCell::new(FsState {
                root: BTreeMap::new(),
                costs,
                stats: FsStats::default(),
                watchers: Vec::new(),
                next_watch: 0,
                pending_events: Vec::new(),
            })),
        }
    }

    fn submit<T: 'static>(
        &self,
        cx: &mut Ctx<'_>,
        cost: VDur,
        op: impl FnOnce(&mut FsState) -> T + 'static,
        cb: impl FnOnce(&mut Ctx<'_>, T) + 'static,
    ) {
        let fs = self.clone();
        let fs_done = self.clone();
        let submit = cx.submit_work(
            cost,
            move |_w| op(&mut fs.inner.borrow_mut()),
            move |cx, result| {
                fs_done.flush_watch_events(cx);
                cb(cx, result);
            },
        );
        if submit.is_err() {
            // Descriptor exhaustion while de-multiplexing: surface as a
            // loop-level error so tests can observe it (§4.4).
            cx.report_error(
                "EMFILE",
                "fs operation could not allocate a task descriptor",
            );
        }
    }

    /// Creates a directory (`fs.mkdir`).
    pub fn mkdir(
        &self,
        cx: &mut Ctx<'_>,
        path: &str,
        cb: impl FnOnce(&mut Ctx<'_>, Result<(), Errno>) + 'static,
    ) {
        let path = path.to_string();
        let cost = self.inner.borrow().costs.mkdir;
        self.submit(cx, cost, move |fs| fs.mkdir(&path), cb);
    }

    /// Removes an empty directory (`fs.rmdir`).
    pub fn rmdir(
        &self,
        cx: &mut Ctx<'_>,
        path: &str,
        cb: impl FnOnce(&mut Ctx<'_>, Result<(), Errno>) + 'static,
    ) {
        let path = path.to_string();
        let cost = self.inner.borrow().costs.mkdir;
        self.submit(cx, cost, move |fs| fs.rmdir(&path), cb);
    }

    /// Stats a path (`fs.stat`).
    pub fn stat(
        &self,
        cx: &mut Ctx<'_>,
        path: &str,
        cb: impl FnOnce(&mut Ctx<'_>, Result<Stat, Errno>) + 'static,
    ) {
        let path = path.to_string();
        let cost = self.inner.borrow().costs.meta;
        self.submit(cx, cost, move |fs| fs.stat(&path), cb);
    }

    /// Creates or truncates a file with the given contents
    /// (`fs.writeFile`).
    pub fn write_file(
        &self,
        cx: &mut Ctx<'_>,
        path: &str,
        data: Vec<u8>,
        cb: impl FnOnce(&mut Ctx<'_>, Result<(), Errno>) + 'static,
    ) {
        let path = path.to_string();
        let cost = self.inner.borrow().costs.write + VDur::nanos(data.len() as u64 * 4);
        self.submit(cx, cost, move |fs| fs.write_file(&path, &data, false), cb);
    }

    /// Appends to a file, creating it if needed (`fs.appendFile`).
    pub fn append(
        &self,
        cx: &mut Ctx<'_>,
        path: &str,
        data: Vec<u8>,
        cb: impl FnOnce(&mut Ctx<'_>, Result<(), Errno>) + 'static,
    ) {
        let path = path.to_string();
        let cost = self.inner.borrow().costs.write + VDur::nanos(data.len() as u64 * 4);
        self.submit(cx, cost, move |fs| fs.write_file(&path, &data, true), cb);
    }

    /// Writes whole pages at page-granularity atomicity (§4.2.3).
    ///
    /// Each page becomes its own worker-pool task, so two overlapping
    /// multi-page writes may interleave and leave the file with pages from
    /// either writer. The completion callback runs after *this* call's
    /// pages are all written.
    pub fn write_pages(
        &self,
        cx: &mut Ctx<'_>,
        path: &str,
        first_page: usize,
        pages: Vec<Vec<u8>>,
        cb: impl FnOnce(&mut Ctx<'_>, Result<(), Errno>) + 'static,
    ) {
        if pages.is_empty() {
            cb(cx, Ok(()));
            return;
        }
        let outcome = Rc::new(RefCell::new(Ok(())));
        let o = outcome.clone();
        let barrier = Barrier::new(pages.len(), move |cx| {
            cb(cx, *o.borrow());
        });
        let cost = self.inner.borrow().costs.write;
        for (i, page) in pages.into_iter().enumerate() {
            let path = path.to_string();
            let barrier = barrier.clone();
            let outcome = outcome.clone();
            self.submit(
                cx,
                cost,
                move |fs| fs.write_page(&path, first_page + i, &page),
                move |cx, r: Result<(), Errno>| {
                    if let Err(e) = r {
                        *outcome.borrow_mut() = Err(e);
                    }
                    barrier.arrive(cx);
                },
            );
        }
    }

    /// Reads a whole file (`fs.readFile`).
    pub fn read_file(
        &self,
        cx: &mut Ctx<'_>,
        path: &str,
        cb: impl FnOnce(&mut Ctx<'_>, Result<Vec<u8>, Errno>) + 'static,
    ) {
        let path = path.to_string();
        let cost = self.inner.borrow().costs.read;
        self.submit(cx, cost, move |fs| fs.read_file(&path), cb);
    }

    /// Deletes a file (`fs.unlink`).
    pub fn unlink(
        &self,
        cx: &mut Ctx<'_>,
        path: &str,
        cb: impl FnOnce(&mut Ctx<'_>, Result<(), Errno>) + 'static,
    ) {
        let path = path.to_string();
        let cost = self.inner.borrow().costs.meta;
        self.submit(cx, cost, move |fs| fs.unlink(&path), cb);
    }

    /// Renames a file or directory (`fs.rename`).
    ///
    /// Replaces an existing destination file (as `rename(2)` does) but
    /// refuses to clobber a directory.
    pub fn rename(
        &self,
        cx: &mut Ctx<'_>,
        from: &str,
        to: &str,
        cb: impl FnOnce(&mut Ctx<'_>, Result<(), Errno>) + 'static,
    ) {
        let from = from.to_string();
        let to = to.to_string();
        let cost = self.inner.borrow().costs.meta;
        self.submit(cx, cost, move |fs| fs.rename(&from, &to), cb);
    }

    /// Lists a directory (`fs.readdir`).
    pub fn readdir(
        &self,
        cx: &mut Ctx<'_>,
        path: &str,
        cb: impl FnOnce(&mut Ctx<'_>, Result<Vec<String>, Errno>) + 'static,
    ) {
        let path = path.to_string();
        let cost = self.inner.borrow().costs.meta;
        self.submit(cx, cost, move |fs| fs.readdir(&path), cb);
    }

    // ---- Watching (`fs.watch`) ------------------------------------------------

    /// Watches every path under `prefix`; `cb` runs once per change event.
    ///
    /// As in Node.js, an open watcher keeps the event loop alive — close it
    /// with [`SimFs::unwatch`]. Events flow through the poll phase, so they
    /// are fuzzable like any other I/O.
    ///
    /// # Errors
    ///
    /// Returns `EMFILE` at the descriptor limit.
    pub fn watch(
        &self,
        cx: &mut Ctx<'_>,
        prefix: &str,
        mut cb: impl FnMut(&mut Ctx<'_>, &FsEvent) + 'static,
    ) -> Result<WatchId, Errno> {
        let fd = cx.alloc_fd(FdKind::FsDone)?;
        cx.set_fd_trace_kind(fd, CbKind::FsDone)?;
        let fs = self.clone();
        cx.register_watcher(fd, move |cx, fd| {
            let event = {
                let mut st = fs.inner.borrow_mut();
                st.watchers
                    .iter_mut()
                    .find(|w| w.fd == fd)
                    .and_then(|w| w.queue.pop_front())
            };
            if let Some(event) = event {
                cb(cx, &event);
            }
        })?;
        let mut st = self.inner.borrow_mut();
        let id = WatchId(st.next_watch);
        st.next_watch += 1;
        st.watchers.push(Watcher {
            id,
            prefix: prefix.to_string(),
            fd,
            queue: VecDeque::new(),
        });
        Ok(id)
    }

    /// Closes a watcher.
    ///
    /// # Errors
    ///
    /// Returns `EBADF` for an unknown watcher id.
    pub fn unwatch(&self, cx: &mut Ctx<'_>, id: WatchId) -> Result<(), Errno> {
        let fd = {
            let mut st = self.inner.borrow_mut();
            let idx = st
                .watchers
                .iter()
                .position(|w| w.id == id)
                .ok_or(Errno::Ebadf)?;
            st.watchers.swap_remove(idx).fd
        };
        cx.close_fd(fd)
    }

    /// Moves pending notifications into watcher queues and marks their
    /// descriptors ready. Runs on the loop after each completed operation.
    fn flush_watch_events(&self, cx: &mut Ctx<'_>) {
        let marks: Vec<Fd> = {
            let mut st = self.inner.borrow_mut();
            let pending = std::mem::take(&mut st.pending_events);
            let mut marks = Vec::with_capacity(pending.len());
            for (wid, event) in pending {
                if let Some(w) = st.watchers.iter_mut().find(|w| w.id == wid) {
                    w.queue.push_back(event);
                    marks.push(w.fd);
                }
            }
            marks
        };
        for fd in marks {
            let _ = cx.mark_ready(fd);
        }
    }

    // ---- Synchronous inspection (for oracles and setup) ---------------------

    /// Whether a path exists right now (oracle helper; not a modelled op).
    pub fn exists_sync(&self, path: &str) -> bool {
        let mut st = self.inner.borrow_mut();
        st.stats.ops = st.stats.ops.wrapping_sub(0); // No-op; keep stats honest.
        let Ok(parts) = split(path) else {
            return false;
        };
        let (leaf, parents) = parts.split_last().expect("split is non-empty");
        match FsState::resolve_dir(&mut st.root, parents) {
            Ok(dir) => dir.contains_key(leaf),
            Err(_) => false,
        }
    }

    /// Reads a file right now (oracle helper).
    pub fn read_sync(&self, path: &str) -> Result<Vec<u8>, Errno> {
        self.inner.borrow_mut().read_file(path)
    }

    /// Lists a directory right now (oracle helper).
    pub fn readdir_sync(&self, path: &str) -> Result<Vec<String>, Errno> {
        self.inner.borrow_mut().readdir(path)
    }

    /// Creates a directory right now (setup helper).
    pub fn mkdir_sync(&self, path: &str) -> Result<(), Errno> {
        self.inner.borrow_mut().mkdir(path)
    }

    /// Creates or truncates a file right now (setup helper).
    pub fn write_sync(&self, path: &str, data: Vec<u8>) -> Result<(), Errno> {
        self.inner.borrow_mut().write_file(path, &data, false)
    }

    /// Total files + directories ever created (diagnostics).
    pub fn creates(&self) -> u64 {
        self.inner.borrow().stats.creates
    }

    /// Total operations executed (diagnostics).
    pub fn ops(&self) -> u64 {
        self.inner.borrow().stats.ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodefz_rt::{EventLoop, LoopConfig};

    fn run_fs(seed: u64, setup: impl FnOnce(&mut Ctx<'_>, SimFs)) -> SimFs {
        let mut el = EventLoop::new(LoopConfig::seeded(seed));
        let fs = SimFs::new();
        let f = fs.clone();
        el.enter(move |cx| setup(cx, f));
        el.run();
        fs
    }

    #[test]
    fn mkdir_then_exists() {
        let fs = run_fs(1, |cx, fs| {
            fs.mkdir(cx, "a", |_, r| r.unwrap());
        });
        assert!(fs.exists_sync("a"));
        assert!(!fs.exists_sync("b"));
    }

    #[test]
    fn mkdir_missing_parent_is_enoent() {
        let fs = run_fs(2, |cx, fs| {
            fs.mkdir(cx, "a/b/c", |cx, r| {
                assert_eq!(r, Err(Errno::Enoent));
                cx.report_error("saw-enoent", "");
            });
        });
        assert!(!fs.exists_sync("a"));
    }

    #[test]
    fn mkdir_twice_is_eexist() {
        run_fs(3, |cx, fs| {
            let fs2 = fs.clone();
            fs.mkdir(cx, "dup", move |cx, r| {
                r.unwrap();
                fs2.mkdir(cx, "dup", |_, r| {
                    assert_eq!(r, Err(Errno::Eexist));
                });
            });
        });
    }

    #[test]
    fn write_read_roundtrip() {
        let fs = run_fs(4, |cx, fs| {
            let fs2 = fs.clone();
            fs.write_file(cx, "f.txt", b"abc".to_vec(), move |cx, r| {
                r.unwrap();
                fs2.read_file(cx, "f.txt", |cx, r| {
                    assert_eq!(r.unwrap(), b"abc");
                    cx.report_error("read-ok", "");
                });
            });
        });
        assert_eq!(fs.read_sync("f.txt").unwrap(), b"abc");
    }

    #[test]
    fn append_accumulates() {
        let fs = run_fs(5, |cx, fs| {
            let fs2 = fs.clone();
            fs.append(cx, "log", b"one".to_vec(), move |cx, r| {
                r.unwrap();
                fs2.append(cx, "log", b"two".to_vec(), |_, r| r.unwrap());
            });
        });
        assert_eq!(fs.read_sync("log").unwrap(), b"onetwo");
    }

    #[test]
    fn read_missing_is_enoent() {
        run_fs(6, |cx, fs| {
            fs.read_file(cx, "ghost", |_, r| {
                assert_eq!(r.err(), Some(Errno::Enoent));
            });
        });
    }

    #[test]
    fn read_dir_is_eisdir() {
        run_fs(7, |cx, fs| {
            let fs2 = fs.clone();
            fs.mkdir(cx, "d", move |cx, r| {
                r.unwrap();
                fs2.read_file(cx, "d", |_, r| {
                    assert_eq!(r.err(), Some(Errno::Eisdir));
                });
            });
        });
    }

    #[test]
    fn file_as_path_component_is_enotdir() {
        run_fs(8, |cx, fs| {
            let fs2 = fs.clone();
            fs.write_file(cx, "f", b"x".to_vec(), move |cx, r| {
                r.unwrap();
                fs2.mkdir(cx, "f/sub", |_, r| {
                    assert_eq!(r, Err(Errno::Enotdir));
                });
            });
        });
    }

    #[test]
    fn unlink_removes_file() {
        let fs = run_fs(9, |cx, fs| {
            let fs2 = fs.clone();
            fs.write_file(cx, "f", b"x".to_vec(), move |cx, r| {
                r.unwrap();
                fs2.unlink(cx, "f", |_, r| r.unwrap());
            });
        });
        assert!(!fs.exists_sync("f"));
    }

    #[test]
    fn unlink_dir_is_eisdir_rmdir_file_is_enotdir() {
        run_fs(10, |cx, fs| {
            let fs2 = fs.clone();
            fs.mkdir_sync("d").unwrap();
            fs.write_file(cx, "f", b"x".to_vec(), move |cx, r| {
                r.unwrap();
                let fs3 = fs2.clone();
                fs2.unlink(cx, "d", move |cx, r| {
                    assert_eq!(r, Err(Errno::Eisdir));
                    fs3.rmdir(cx, "f", |_, r| {
                        assert_eq!(r, Err(Errno::Enotdir));
                    });
                });
            });
        });
    }

    #[test]
    fn rmdir_nonempty_is_enotempty() {
        run_fs(11, |cx, fs| {
            fs.mkdir_sync("d").unwrap();
            fs.mkdir_sync("d/inner").unwrap();
            fs.rmdir(cx, "d", |_, r| {
                assert_eq!(r, Err(Errno::Enotempty));
            });
        });
    }

    #[test]
    fn readdir_lists_children_sorted() {
        let fs = run_fs(12, |cx, fs| {
            fs.mkdir_sync("d").unwrap();
            fs.mkdir_sync("d/z").unwrap();
            fs.mkdir_sync("d/a").unwrap();
            fs.readdir(cx, "d", |_, r| {
                assert_eq!(r.unwrap(), vec!["a".to_string(), "z".to_string()]);
            });
        });
        assert_eq!(fs.readdir_sync("/").unwrap(), vec!["d".to_string()]);
    }

    #[test]
    fn stat_reports_kind_and_size() {
        run_fs(13, |cx, fs| {
            fs.mkdir_sync("d").unwrap();
            let fs2 = fs.clone();
            fs.write_file(cx, "f", vec![0u8; 7], move |cx, r| {
                r.unwrap();
                let fs3 = fs2.clone();
                fs2.stat(cx, "f", move |cx, r| {
                    assert_eq!(
                        r.unwrap(),
                        Stat {
                            is_dir: false,
                            size: 7
                        }
                    );
                    fs3.stat(cx, "d", |_, r| {
                        assert!(r.unwrap().is_dir);
                    });
                });
            });
        });
    }

    #[test]
    fn empty_path_is_einval() {
        run_fs(14, |cx, fs| {
            fs.mkdir(cx, "", |_, r| {
                assert_eq!(r, Err(Errno::Einval));
            });
        });
    }

    #[test]
    fn write_pages_lays_out_pages() {
        let fs = run_fs(15, |cx, fs| {
            let pages = vec![vec![1u8; PAGE_SIZE], vec![2u8; PAGE_SIZE]];
            fs.write_pages(cx, "big", 0, pages, |_, r| r.unwrap());
        });
        let data = fs.read_sync("big").unwrap();
        assert_eq!(data.len(), 2 * PAGE_SIZE);
        assert!(data[..PAGE_SIZE].iter().all(|&b| b == 1));
        assert!(data[PAGE_SIZE..].iter().all(|&b| b == 2));
    }

    #[test]
    fn concurrent_overlapping_page_writes_can_mix() {
        // Two 4-page writes to the same range: under the vanilla pool's
        // 4 workers the page tasks interleave, so across seeds we should
        // observe at least one torn file — pages from both writers.
        let mut torn = false;
        for seed in 0..200 {
            let mut el = EventLoop::new(LoopConfig {
                pool_cost_jitter: 0.9,
                ..LoopConfig::seeded(1000 + seed)
            });
            let fs = SimFs::new();
            let f = fs.clone();
            el.enter(move |cx| {
                let pages_a = vec![vec![b'A'; PAGE_SIZE]; 4];
                let pages_b = vec![vec![b'B'; PAGE_SIZE]; 4];
                f.write_pages(cx, "shared", 0, pages_a, |_, r| r.unwrap());
                f.write_pages(cx, "shared", 0, pages_b, |_, r| r.unwrap());
            });
            el.run();
            let data = fs.read_sync("shared").unwrap();
            let firsts: Vec<u8> = (0..4).map(|p| data[p * PAGE_SIZE]).collect();
            if firsts.contains(&b'A') && firsts.contains(&b'B') {
                torn = true;
                break;
            }
        }
        assert!(torn, "expected a torn multi-page write across 200 seeds");
    }

    #[test]
    fn counters_track_activity() {
        let fs = run_fs(16, |cx, fs| {
            fs.mkdir(cx, "x", |_, r| r.unwrap());
        });
        assert_eq!(fs.creates(), 1);
        assert!(fs.ops() >= 1);
    }
}
