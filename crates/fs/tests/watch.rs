//! Tests for `fs.watch` (§4.2.1's "monitor changes in the file system").

use std::cell::RefCell;
use std::rc::Rc;

use nodefz_fs::{FsEvent, FsEventKind, SimFs};
use nodefz_rt::{Errno, EventLoop, LoopConfig, Termination, VDur};

type Events = Rc<RefCell<Vec<FsEvent>>>;

fn watch_scenario(
    seed: u64,
    prefix: &'static str,
    script: impl FnOnce(&mut nodefz_rt::Ctx<'_>, SimFs) + 'static,
) -> (Vec<FsEvent>, Termination) {
    let mut el = EventLoop::new(LoopConfig::seeded(seed));
    let fs = SimFs::new();
    let events: Events = Rc::new(RefCell::new(Vec::new()));
    let f = fs.clone();
    let e = events.clone();
    el.enter(move |cx| {
        let watch_id = f
            .watch(cx, prefix, move |_cx, event| {
                e.borrow_mut().push(event.clone());
            })
            .unwrap();
        script(cx, f.clone());
        // Watchers keep the loop alive; close at the horizon.
        let f2 = f.clone();
        cx.set_timeout(VDur::millis(30), move |cx| {
            f2.unwatch(cx, watch_id).unwrap();
        });
    });
    let report = el.run();
    let out = events.borrow().clone();
    (out, report.termination)
}

#[test]
fn create_modify_remove_are_observed_in_order() {
    let (events, term) = watch_scenario(1, "", |cx, fs| {
        let fs2 = fs.clone();
        fs.write_file(cx, "log", b"v1".to_vec(), move |cx, r| {
            r.unwrap();
            let fs3 = fs2.clone();
            fs2.write_file(cx, "log", b"v2".to_vec(), move |cx, r| {
                r.unwrap();
                fs3.unlink(cx, "log", |_cx, r| r.unwrap());
            });
        });
    });
    assert_eq!(term, Termination::Quiescent);
    assert_eq!(
        events,
        vec![
            FsEvent {
                path: "log".into(),
                kind: FsEventKind::Created
            },
            FsEvent {
                path: "log".into(),
                kind: FsEventKind::Modified
            },
            FsEvent {
                path: "log".into(),
                kind: FsEventKind::Removed
            },
        ]
    );
}

#[test]
fn prefix_filters_events() {
    let (events, _) = watch_scenario(2, "logs/", |cx, fs| {
        fs.mkdir_sync("logs").unwrap();
        fs.mkdir_sync("tmp").unwrap();
        let fs2 = fs.clone();
        fs.write_file(cx, "logs/app", b"x".to_vec(), move |cx, r| {
            r.unwrap();
            fs2.write_file(cx, "tmp/scratch", b"y".to_vec(), |_cx, r| r.unwrap());
        });
    });
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].path, "logs/app");
}

#[test]
fn mkdir_and_rmdir_notify() {
    let (events, _) = watch_scenario(3, "build", |cx, fs| {
        let fs2 = fs.clone();
        fs.mkdir(cx, "build", move |cx, r| {
            r.unwrap();
            fs2.rmdir(cx, "build", |_cx, r| r.unwrap());
        });
    });
    assert_eq!(
        events.iter().map(|e| e.kind).collect::<Vec<_>>(),
        vec![FsEventKind::Created, FsEventKind::Removed]
    );
}

#[test]
fn failed_operations_do_not_notify() {
    let (events, _) = watch_scenario(4, "", |cx, fs| {
        fs.mkdir(cx, "a/b/c", |_cx, r| assert!(r.is_err())); // ENOENT.
    });
    assert!(events.is_empty());
}

#[test]
fn unwatch_stops_delivery_and_releases_the_loop() {
    let mut el = EventLoop::new(LoopConfig::seeded(5));
    let fs = SimFs::new();
    let count = Rc::new(RefCell::new(0u32));
    let f = fs.clone();
    let c = count.clone();
    el.enter(move |cx| {
        let id = f
            .watch(cx, "", move |_cx, _e| *c.borrow_mut() += 1)
            .unwrap();
        let f2 = f.clone();
        f.write_file(cx, "one", b"1".to_vec(), move |cx, r| {
            r.unwrap();
            let f3 = f2.clone();
            f2.unwatch(cx, id).unwrap();
            assert!(f2.unwatch(cx, id).is_err(), "double unwatch");
            f3.write_file(cx, "two", b"2".to_vec(), |_cx, r| r.unwrap());
        });
    });
    let report = el.run();
    assert_eq!(report.termination, Termination::Quiescent);
    // Only the first write could have been delivered; the event for the
    // second was dropped with the watcher. (The first event's delivery
    // races with the unwatch, so 0 or 1 are both legal — never 2.)
    assert!(*count.borrow() <= 1);
}

#[test]
fn open_watcher_keeps_the_loop_alive() {
    let mut el = EventLoop::new(LoopConfig::seeded(6));
    let fs = SimFs::new();
    let f = fs.clone();
    el.enter(move |cx| {
        f.watch(cx, "", |_cx, _e| {}).unwrap();
    });
    let report = el.run();
    assert_eq!(
        report.termination,
        Termination::Hung,
        "an open watcher with no possible events is a hang, as in Node"
    );
}

#[test]
fn two_watchers_both_notified() {
    let mut el = EventLoop::new(LoopConfig::seeded(7));
    let fs = SimFs::new();
    let hits = Rc::new(RefCell::new(0u32));
    let f = fs.clone();
    let h = hits.clone();
    el.enter(move |cx| {
        let mut ids = Vec::new();
        for _ in 0..2 {
            let h = h.clone();
            ids.push(
                f.watch(cx, "", move |_cx, _e| *h.borrow_mut() += 1)
                    .unwrap(),
            );
        }
        let f2 = f.clone();
        f.write_file(cx, "shared", b"x".to_vec(), |_cx, r| r.unwrap());
        cx.set_timeout(VDur::millis(20), move |cx| {
            for id in ids {
                f2.unwatch(cx, id).unwrap();
            }
        });
    });
    el.run();
    assert_eq!(*hits.borrow(), 2);
}

#[test]
fn rename_moves_files_and_notifies() {
    let mut el = EventLoop::new(LoopConfig::seeded(20));
    let fs = SimFs::new();
    let events: Events = Rc::new(RefCell::new(Vec::new()));
    let f = fs.clone();
    let e = events.clone();
    el.enter(move |cx| {
        let id = f
            .watch(cx, "", move |_cx, ev| e.borrow_mut().push(ev.clone()))
            .unwrap();
        f.mkdir_sync("dir").unwrap();
        f.write_sync("old", b"data".to_vec()).unwrap();
        let f2 = f.clone();
        f.rename(cx, "old", "dir/new", move |cx, r| {
            r.unwrap();
            let f3 = f2.clone();
            // Missing source is ENOENT.
            f2.rename(cx, "ghost", "x", move |cx, r| {
                assert_eq!(r, Err(Errno::Enoent));
                // Clobbering a directory is refused, and the source stays.
                let f4 = f3.clone();
                f3.rename(cx, "dir/new", "dir", move |_cx, r| {
                    assert_eq!(r, Err(Errno::Eisdir));
                    assert!(f4.exists_sync("dir/new"));
                });
            });
        });
        let f5 = f.clone();
        cx.set_timeout(VDur::millis(30), move |cx| {
            f5.unwatch(cx, id).unwrap();
        });
    });
    let report = el.run();
    assert_eq!(report.termination, Termination::Quiescent);
    assert!(fs.exists_sync("dir/new"));
    assert!(!fs.exists_sync("old"));
    assert_eq!(fs.read_sync("dir/new").unwrap(), b"data");
    let kinds: Vec<_> = events
        .borrow()
        .iter()
        .map(|e| (e.path.clone(), e.kind))
        .collect();
    assert!(kinds.contains(&("old".to_string(), FsEventKind::Removed)));
    assert!(kinds.contains(&("dir/new".to_string(), FsEventKind::Created)));
}

#[test]
fn rename_replaces_destination_file() {
    let mut el = EventLoop::new(LoopConfig::seeded(21));
    let fs = SimFs::new();
    fs.write_sync("a", b"aaa".to_vec()).unwrap();
    fs.write_sync("b", b"bbb".to_vec()).unwrap();
    let f = fs.clone();
    el.enter(move |cx| {
        f.rename(cx, "a", "b", |_cx, r| r.unwrap());
    });
    el.run();
    assert!(!fs.exists_sync("a"));
    assert_eq!(fs.read_sync("b").unwrap(), b"aaa");
}
