//! Model-based property tests: arbitrary operation sequences applied to
//! `SimFs` (through the event loop, single chain so order is determined)
//! must agree with a trivially-correct in-memory model.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use nodefz_check::{forall, Gen};

use nodefz_fs::SimFs;
use nodefz_rt::{Ctx, Errno, EventLoop, LoopConfig};

#[derive(Clone, Debug)]
enum Op {
    Mkdir(String),
    WriteFile(String, Vec<u8>),
    Append(String, Vec<u8>),
    ReadFile(String),
    Unlink(String),
    Rmdir(String),
    Stat(String),
}

#[derive(Clone, Debug, PartialEq)]
enum ModelNode {
    Dir,
    File(Vec<u8>),
}

/// The reference model: a flat path map with explicit parent checks.
#[derive(Default)]
struct Model {
    nodes: BTreeMap<Vec<String>, ModelNode>,
}

fn split(path: &str) -> Result<Vec<String>, Errno> {
    let parts: Vec<String> = path
        .split('/')
        .filter(|p| !p.is_empty())
        .map(str::to_string)
        .collect();
    if parts.is_empty() {
        return Err(Errno::Einval);
    }
    Ok(parts)
}

impl Model {
    fn parent_ok(&self, parts: &[String]) -> Result<(), Errno> {
        for i in 1..parts.len() {
            match self.nodes.get(&parts[..i]) {
                Some(ModelNode::Dir) => {}
                Some(ModelNode::File(_)) => return Err(Errno::Enotdir),
                None => return Err(Errno::Enoent),
            }
        }
        Ok(())
    }

    fn mkdir(&mut self, path: &str) -> Result<(), Errno> {
        let parts = split(path)?;
        self.parent_ok(&parts)?;
        if self.nodes.contains_key(&parts) {
            return Err(Errno::Eexist);
        }
        self.nodes.insert(parts, ModelNode::Dir);
        Ok(())
    }

    fn write(&mut self, path: &str, data: &[u8], append: bool) -> Result<(), Errno> {
        let parts = split(path)?;
        self.parent_ok(&parts)?;
        match self.nodes.get_mut(&parts) {
            Some(ModelNode::Dir) => Err(Errno::Eisdir),
            Some(ModelNode::File(existing)) => {
                if append {
                    existing.extend_from_slice(data);
                } else {
                    *existing = data.to_vec();
                }
                Ok(())
            }
            None => {
                self.nodes.insert(parts, ModelNode::File(data.to_vec()));
                Ok(())
            }
        }
    }

    fn read(&self, path: &str) -> Result<Vec<u8>, Errno> {
        let parts = split(path)?;
        // Parent errors surface before the leaf lookup, like the real fs.
        self.parent_ok(&parts)?;
        match self.nodes.get(&parts) {
            Some(ModelNode::File(d)) => Ok(d.clone()),
            Some(ModelNode::Dir) => Err(Errno::Eisdir),
            None => Err(Errno::Enoent),
        }
    }

    fn unlink(&mut self, path: &str) -> Result<(), Errno> {
        let parts = split(path)?;
        self.parent_ok(&parts)?;
        match self.nodes.get(&parts) {
            Some(ModelNode::File(_)) => {
                self.nodes.remove(&parts);
                Ok(())
            }
            Some(ModelNode::Dir) => Err(Errno::Eisdir),
            None => Err(Errno::Enoent),
        }
    }

    fn rmdir(&mut self, path: &str) -> Result<(), Errno> {
        let parts = split(path)?;
        self.parent_ok(&parts)?;
        match self.nodes.get(&parts) {
            Some(ModelNode::Dir) => {
                let has_children = self
                    .nodes
                    .keys()
                    .any(|k| k.len() > parts.len() && k.starts_with(&parts));
                if has_children {
                    return Err(Errno::Enotempty);
                }
                self.nodes.remove(&parts);
                Ok(())
            }
            Some(ModelNode::File(_)) => Err(Errno::Enotdir),
            None => Err(Errno::Enoent),
        }
    }

    fn stat(&self, path: &str) -> Result<(bool, usize), Errno> {
        let parts = split(path)?;
        self.parent_ok(&parts)?;
        match self.nodes.get(&parts) {
            Some(ModelNode::Dir) => Ok((true, 0)),
            Some(ModelNode::File(d)) => Ok((false, d.len())),
            None => Err(Errno::Enoent),
        }
    }
}

/// A small path universe so operations collide meaningfully.
fn gen_path(g: &mut Gen) -> String {
    let paths = ["a", "b", "a/x", "a/y", "b/x", "a/x/deep", "file", "a/file"];
    g.pick(&paths).to_string()
}

fn gen_op(g: &mut Gen) -> Op {
    match g.below(7) {
        0 => Op::Mkdir(gen_path(g)),
        1 => Op::WriteFile(gen_path(g), g.bytes(0, 8)),
        2 => Op::Append(gen_path(g), g.bytes(0, 8)),
        3 => Op::ReadFile(gen_path(g)),
        4 => Op::Unlink(gen_path(g)),
        5 => Op::Rmdir(gen_path(g)),
        _ => Op::Stat(gen_path(g)),
    }
}

/// Runs `ops` sequentially through the loop (each op in the completion
/// callback of the previous one) and records each result as a string.
fn run_sim(ops: Vec<Op>, seed: u64) -> Vec<String> {
    let mut el = EventLoop::new(LoopConfig::seeded(seed));
    let fs = SimFs::new();
    let results: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));

    fn step(cx: &mut Ctx<'_>, fs: SimFs, mut ops: Vec<Op>, out: Rc<RefCell<Vec<String>>>) {
        if ops.is_empty() {
            return;
        }
        let op = ops.remove(0);
        let cont = move |cx: &mut Ctx<'_>,
                         result: String,
                         fs: SimFs,
                         ops: Vec<Op>,
                         out: Rc<RefCell<Vec<String>>>| {
            out.borrow_mut().push(result);
            step(cx, fs, ops, out);
        };
        match op {
            Op::Mkdir(p) => {
                let f = fs.clone();
                fs.mkdir(cx, &p, move |cx, r| cont(cx, format!("{r:?}"), f, ops, out));
            }
            Op::WriteFile(p, d) => {
                let f = fs.clone();
                fs.write_file(cx, &p, d, move |cx, r| {
                    cont(cx, format!("{r:?}"), f, ops, out)
                });
            }
            Op::Append(p, d) => {
                let f = fs.clone();
                fs.append(cx, &p, d, move |cx, r| {
                    cont(cx, format!("{r:?}"), f, ops, out)
                });
            }
            Op::ReadFile(p) => {
                let f = fs.clone();
                fs.read_file(cx, &p, move |cx, r| cont(cx, format!("{r:?}"), f, ops, out));
            }
            Op::Unlink(p) => {
                let f = fs.clone();
                fs.unlink(cx, &p, move |cx, r| cont(cx, format!("{r:?}"), f, ops, out));
            }
            Op::Rmdir(p) => {
                let f = fs.clone();
                fs.rmdir(cx, &p, move |cx, r| cont(cx, format!("{r:?}"), f, ops, out));
            }
            Op::Stat(p) => {
                let f = fs.clone();
                fs.stat(cx, &p, move |cx, r| {
                    cont(
                        cx,
                        format!("{:?}", r.map(|s| (s.is_dir, s.size))),
                        f,
                        ops,
                        out,
                    )
                });
            }
        }
    }

    let f = fs.clone();
    let out = results.clone();
    el.enter(move |cx| step(cx, f, ops, out));
    el.run();
    Rc::try_unwrap(results).expect("loop done").into_inner()
}

fn run_model(ops: &[Op]) -> Vec<String> {
    let mut model = Model::default();
    ops.iter()
        .map(|op| match op {
            Op::Mkdir(p) => format!("{:?}", model.mkdir(p)),
            Op::WriteFile(p, d) => format!("{:?}", model.write(p, d, false)),
            Op::Append(p, d) => format!("{:?}", model.write(p, d, true)),
            Op::ReadFile(p) => format!("{:?}", model.read(p)),
            Op::Unlink(p) => format!("{:?}", model.unlink(p)),
            Op::Rmdir(p) => format!("{:?}", model.rmdir(p)),
            Op::Stat(p) => format!("{:?}", model.stat(p)),
        })
        .collect()
}

#[test]
fn simfs_agrees_with_the_model() {
    forall("simfs_agrees_with_the_model", 64, |g| {
        let ops = g.vec_with(1, 25, gen_op);
        let seed = g.u64();
        let sim = run_sim(ops.clone(), seed);
        let model = run_model(&ops);
        assert_eq!(sim, model, "ops: {ops:?}");
    });
}
