//! AKA — agentkeepalive issue #23 (AV, NW–Timer, variable → error).
//!
//! A keep-alive HTTP agent returns idle sockets to a free list when their
//! keep-alive timer fires ('timeout' event), and invalidates them when the
//! server actually tears them down ('close' event). The two events are
//! unordered: a request that grabs a socket in the window between 'timeout'
//! and 'close' uses a dead socket and an error is thrown. This is the bug
//! whose reporter wrote the quote that inspired Node.fz: *"I don't know how
//! to artificially expand the delay between the 'timeout' and 'close'
//! events"* (§2.3).
//!
//! Fix (as upstream): handle the state transition in the same callback —
//! validate the socket when taking it from the free list.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use nodefz_net::{Client, LatencyModel, SimNet};
use nodefz_rt::{Ctx, VDur};

use crate::common::{BugCase, BugInfo, Chatter, Outcome, RaceType, RunCfg, Variant};

/// The AKA reproduction.
pub struct Aka;

/// Ground-truth socket state, as the kernel would see it.
#[derive(Default)]
struct AgentState {
    /// Socket id → still actually open.
    open: HashMap<u32, bool>,
    /// Free list of sockets believed reusable.
    free: Vec<u32>,
    /// Errors observed when a dead socket was used.
    used_dead: u32,
}

impl AgentState {
    fn take_socket(&mut self, cx: &mut Ctx<'_>, variant: Variant) -> Option<u32> {
        cx.touch_read("aka:agent-state");
        cx.touch_write("aka:agent-state");
        while let Some(id) = self.free.pop() {
            let alive = *self.open.get(&id).unwrap_or(&false);
            match variant {
                Variant::Buggy => {
                    // BUGGY: trust the free list.
                    if !alive {
                        self.used_dead += 1;
                        cx.report_error(
                            "socket-hang-up",
                            format!("request reused socket {id} after close"),
                        );
                        return None;
                    }
                    return Some(id);
                }
                Variant::Fixed => {
                    // FIX: validate in the same callback that takes it.
                    if alive {
                        return Some(id);
                    }
                    // Dead socket: drop it and keep looking.
                }
            }
        }
        None
    }
}

impl BugCase for Aka {
    fn info(&self) -> BugInfo {
        BugInfo {
            abbr: "AKA",
            name: "agentkeepalive",
            bug_ref: "#23",
            race: RaceType::Av,
            racing_events: "NW-Timer",
            race_on: "Variable",
            impact: "Throws error (possible crash)",
            fix: "Rd/wr in same callback",
            in_fig6: true,
            novel: false,
        }
    }

    fn static_model(&self, variant: Variant) -> Option<crate::statics::StaticModel> {
        use crate::statics::{AtomKind, ModelBuilder};
        let mut m = ModelBuilder::new("AKA", variant);
        // Setup seeds the keep-alive pool.
        m.write(0, "aka:agent-state");
        let timeout = m.atom("timer:keep-alive", AtomKind::Timer, 0);
        m.write(timeout, "aka:agent-state");
        // The server's FIN is an external stimulus with no registering
        // callback — modelled parentless so it stays concurrent with
        // everything, matching the recorded happens-before graph.
        let fin = m.free_atom("env:server-fin", AtomKind::Env);
        m.write(fin, "aka:agent-state");
        let fin_close = m.atom("close:socket-teardown", AtomKind::Close, fin);
        m.write(fin_close, "aka:agent-state");
        // take_socket reads and rewrites the pool in both variants; the
        // fix only validates liveness within the same callback.
        let req = m.atom("net:pooled-request", AtomKind::Net, 0);
        m.read(req, "aka:agent-state");
        m.write(req, "aka:agent-state");
        Some(m.build())
    }

    fn run(&self, cfg: &RunCfg, variant: Variant) -> Outcome {
        let mut el = cfg.build_loop();
        let net = SimNet::with_latency(LatencyModel {
            base: VDur::millis(2),
            jitter: 0.05,
        });
        let agent = Rc::new(RefCell::new(AgentState::default()));
        let n = net.clone();
        let a = agent.clone();
        el.enter(move |cx| {
            // A previous request finished on socket 7; it is kept alive.
            cx.touch_write("aka:agent-state");
            a.borrow_mut().open.insert(7, true);
            // The keep-alive 'timeout' timer returns it to the free list.
            let a_timer = a.clone();
            cx.set_timeout(VDur::millis(4), move |cx| {
                cx.busy(VDur::micros(50));
                cx.touch_write("aka:agent-state");
                a_timer.borrow_mut().free.push(7);
            });
            // The server's FIN arrives right after the keep-alive window:
            // the kernel-level teardown is immediate, the application-level
            // 'close' handling (which scrubs the free list) runs in the
            // loop's close phase.
            let a_net = a.clone();
            cx.schedule_env_at(nodefz_rt::VTime::ZERO + VDur::micros(5_400), move |cx| {
                cx.touch_write("aka:agent-state");
                a_net.borrow_mut().open.insert(7, false);
                let a2 = a_net.clone();
                cx.enqueue_close(move |cx| {
                    cx.touch_write("aka:agent-state");
                    a2.borrow_mut().free.retain(|&s| s != 7);
                });
            });
            // A new request arrives in between and wants a pooled socket.
            let a_req = a.clone();
            n.listen(cx, 80, move |cx, _conn| {
                cx.busy(VDur::micros(150));
                let _ = a_req.borrow_mut().take_socket(cx, variant);
            })
            .expect("listen");
            Chatter::spawn(cx, &n, 81, 4, 10, VDur::micros(600), VDur::micros(90));
        });
        el.enter(|cx| {
            // The request lands well after both the keep-alive timeout and
            // the FIN have normally been processed (in that order, which
            // leaves the free list empty). A deferred 'timeout' timer
            // re-adds the socket AFTER the close scrub — a stale entry the
            // request then trips over.
            let c = Client::connect_after(
                cx,
                &net,
                80,
                VDur::micros(crate::common::tuned_margin_us(8_500)),
            );
            c.close_after(cx, VDur::millis(12));
            net.close_all_listeners_after(cx, VDur::millis(25));
        });
        let report = el.run();
        let dead_uses = agent.borrow().used_dead;
        let manifested = dead_uses > 0;
        Outcome {
            manifested,
            detail: format!("{dead_uses} request(s) threw on a dead keep-alive socket"),
            report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::check_case;

    #[test]
    fn aka_fixed_never_manifests_under_fuzz() {
        check_case::fixed_never_manifests(&Aka, 20);
    }

    #[test]
    fn aka_buggy_manifests_under_fuzz() {
        check_case::buggy_manifests_under_fuzz(&Aka, 60);
    }

    #[test]
    fn aka_vanilla_rarely_manifests() {
        check_case::vanilla_rarely_manifests(&Aka, 40, 2);
    }

    #[test]
    fn aka_is_the_motivating_bug() {
        let info = Aka.info();
        assert_eq!(info.bug_ref, "#23");
        assert_eq!(info.fix, "Rd/wr in same callback");
    }
}
