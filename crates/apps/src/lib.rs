//! # nodefz-apps — the Node.fz concurrency bug study, reproduced
//!
//! One module per studied bug (§3, Table 2) plus the novel bugs of §5.2.
//! Each module contains a faithful re-creation of the racy callback-chain
//! structure (buggy variant), the community's actual fix strategy (fixed
//! variant), a workload driver, and an oracle that detects manifestation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod common;
pub mod statics;

mod aka;
mod clf;
mod epl;
mod fps;
mod fps_novel;
mod gho;
mod kue;
mod kue_novel;
mod kue_timer;
mod mgs;
mod mkd;
mod nes;
mod rst;
mod sio;
mod sio_novel;
mod wpt;

pub use aka::Aka;
pub use clf::Clf;
pub use epl::Epl;
pub use fps::Fps;
pub use fps_novel::FpsNovel;
pub use gho::Gho;
pub use kue::Kue;
pub use kue_novel::KueNovel;
pub use kue_timer::KueTimer;
pub use mgs::Mgs;
pub use mkd::Mkd;
pub use nes::Nes;
pub use rst::Rst;
pub use sio::Sio;
pub use sio_novel::SioNovel;
pub use wpt::Wpt;

use common::BugCase;

/// All reproduced bugs, in Table 2 order.
pub fn registry() -> Vec<Box<dyn BugCase>> {
    vec![
        Box::new(Epl),
        Box::new(Gho),
        Box::new(Fps),
        Box::new(Clf),
        Box::new(Nes),
        Box::new(Aka),
        Box::new(Wpt),
        Box::new(Sio),
        Box::new(Mkd),
        Box::new(Kue),
        Box::new(Rst),
        Box::new(Mgs),
        Box::new(SioNovel),
        Box::new(KueNovel),
        Box::new(FpsNovel),
        Box::new(KueTimer),
    ]
}

/// The abbreviations of every reproduced bug, in Table 2 order.
///
/// `Box<dyn BugCase>` is not `Send` (bug cases drive `Rc`-based loops), so
/// multi-threaded drivers ship abbreviations across threads and instantiate
/// cases locally via [`by_abbr`].
pub fn abbrs() -> Vec<&'static str> {
    registry().iter().map(|c| c.info().abbr).collect()
}

/// Looks up a bug case by its Table 2 abbreviation (case-insensitive).
pub fn by_abbr(abbr: &str) -> Option<Box<dyn BugCase>> {
    registry()
        .into_iter()
        .find(|c| c.info().abbr.eq_ignore_ascii_case(abbr))
}
