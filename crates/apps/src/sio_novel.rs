//! SIO (novel) — socket.io PR #2721 (AV, NW–Timer, socket).
//!
//! The novel bug Node.fz found in the socket.io *test suite* (§5.2.1): a
//! test case fails to clean up a client with a repeating reconnect timer.
//! When a leftover reconnect fires during one of the sensitive test cases
//! that share the server, it steals the server's only connection slot and
//! the sensitive test times out.
//!
//! Fix (as the accepted upstream patch): disable automatic reconnection —
//! the earlier test tears its client down.

use std::cell::RefCell;
use std::rc::Rc;

use nodefz_net::{Client, LatencyModel, SimNet};
use nodefz_rt::VDur;

use crate::common::{BugCase, BugInfo, Chatter, Outcome, RaceType, RunCfg, Variant};

/// The novel SIO reproduction.
pub struct SioNovel;

impl BugCase for SioNovel {
    fn info(&self) -> BugInfo {
        BugInfo {
            abbr: "SIO*",
            name: "socket.io (novel)",
            bug_ref: "PR #2721",
            race: RaceType::Av,
            racing_events: "NW-Timer",
            race_on: "Socket",
            impact: "Subsequent tests fail because the server's socket is occupied",
            fix: "Disable automatic reconnection",
            in_fig6: true,
            novel: true,
        }
    }

    fn static_model(&self, variant: Variant) -> Option<crate::statics::StaticModel> {
        use crate::statics::{AtomKind, ModelBuilder};
        let mut m = ModelBuilder::new("SIO*", variant);
        let serve = |m: &mut ModelBuilder, label: &str, parent: u32| {
            let data = m.atom(&format!("net:data-{label}"), AtomKind::Net, parent);
            m.read(data, "sio*:slot");
            m.write(data, "sio*:slot");
            let expire = m.atom(&format!("timer:expire-{label}"), AtomKind::Timer, data);
            m.write(expire, "sio*:slot");
        };
        serve(&mut m, "probe", 0);
        if variant == Variant::Buggy {
            // BUGGY: a leaked reconnect interval keeps producing stray
            // clients that grab the shared slot (first two firings
            // modelled; later firings repeat the same access pattern).
            for n in 1..=2u32 {
                let tick = m.atom(&format!("timer:reconnect#{n}"), AtomKind::Timer, 0);
                serve(&mut m, &format!("stray{n}"), tick);
            }
        }
        Some(m.build())
    }

    fn run(&self, cfg: &RunCfg, variant: Variant) -> Outcome {
        let mut el = cfg.build_loop();
        let net = SimNet::with_latency(LatencyModel {
            base: VDur::millis(2),
            jitter: 0.05,
        });
        // The shared test server has a single connection slot.
        let occupied: Rc<RefCell<bool>> = Rc::new(RefCell::new(false));
        let n = net.clone();
        let occ = occupied.clone();
        el.enter(move |cx| {
            n.listen(cx, 80, move |_cx, conn| {
                let occ = occ.clone();
                conn.on_data(move |cx, conn, msg| {
                    cx.busy(VDur::micros(100));
                    cx.touch_read("sio*:slot");
                    cx.touch_write("sio*:slot");
                    let mut slot = occ.borrow_mut();
                    if *slot {
                        // Slot taken: this client gets nothing (the
                        // sensitive test will time out).
                        return;
                    }
                    *slot = true;
                    drop(slot);
                    let _ = conn.write(cx, [b"served:", msg.as_slice()].concat());
                    // The slot frees once this exchange's session expires.
                    let occ2 = occ.clone();
                    cx.set_timeout(VDur::micros(1_500), move |cx| {
                        cx.touch_write("sio*:slot");
                        *occ2.borrow_mut() = false;
                    });
                });
            })
            .expect("listen");
            Chatter::spawn(cx, &n, 81, 4, 10, VDur::micros(600), VDur::micros(90));
            crate::common::heartbeat(cx, VDur::micros(800), VDur::millis(14));
            // --- Test 1 runs and finishes, but (buggy) leaks a client on a
            // repeating reconnect timer.
            if variant == Variant::Buggy {
                let net2 = n.clone();
                let stray = cx.set_interval(VDur::millis(4), move |cx| {
                    // The leftover client reconnects and briefly occupies
                    // the shared server.
                    let c = Client::connect(cx, &net2, 80);
                    c.send(cx, b"stray".to_vec());
                    c.close_after(cx, VDur::millis(3));
                });
                // The whole suite ends at 14 ms; the stray timer dies with
                // the process.
                cx.set_timeout(VDur::millis(14), move |cx| {
                    cx.clear_timer(stray);
                });
            }
            // With the fix there is no leftover timer at all (reconnection
            // disabled).
        });
        // --- Test 2 (sensitive): expects to be served promptly.
        let probe = el.enter(|cx| {
            let probe = Client::connect_after(
                cx,
                &net,
                80,
                VDur::micros(crate::common::tuned_margin_us(7_750)),
            );
            probe.send(cx, b"probe".to_vec());
            probe.close_after(cx, VDur::millis(16));
            net.close_all_listeners_after(cx, VDur::millis(26));
            probe
        });
        let report = el.run();
        let served = probe.received().iter().any(|m| m.starts_with(b"served:"));
        let manifested = !served;
        Outcome {
            manifested,
            detail: if manifested {
                "sensitive test timed out: a stray reconnect held the socket".into()
            } else {
                "sensitive test was served".into()
            },
            report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::check_case;

    #[test]
    fn sio_novel_fixed_never_manifests_under_fuzz() {
        check_case::fixed_never_manifests(&SioNovel, 20);
    }

    #[test]
    fn sio_novel_buggy_manifests_under_fuzz() {
        check_case::buggy_manifests_under_fuzz(&SioNovel, 60);
    }

    #[test]
    fn sio_novel_vanilla_rarely_manifests() {
        check_case::vanilla_rarely_manifests(&SioNovel, 40, 2);
    }

    #[test]
    fn sio_novel_is_novel() {
        assert!(SioNovel.info().novel);
    }
}
