//! FPS — fiware-pep-steelskin issue #269 (AV, NW–NW, variable → hang).
//!
//! A policy-enforcement proxy validates each request against a back-end
//! before answering. The buggy code tracks the in-flight request in a
//! *shared* variable; when a second request arrives while the first is
//! still validating, the incorrect control flow overwrites the shared slot
//! and the first client's response is never sent — the request hangs.
//!
//! Fix (as upstream): correct the control flow so each request's response
//! is routed from its own callback chain.

use std::cell::RefCell;
use std::rc::Rc;

use nodefz_kv::{Kv, KvTiming};
use nodefz_net::{Client, Connection, LatencyModel, SimNet};
use nodefz_rt::VDur;

use crate::common::{BugCase, BugInfo, Chatter, Outcome, RaceType, RunCfg, Variant};

/// The FPS reproduction.
pub struct Fps;

impl BugCase for Fps {
    fn info(&self) -> BugInfo {
        BugInfo {
            abbr: "FPS",
            name: "fiware-pep-steelskin",
            bug_ref: "#269",
            race: RaceType::Av,
            racing_events: "NW-NW",
            race_on: "Variable",
            impact: "Request hangs",
            fix: "Fix incorrect control flow",
            in_fig6: true,
            novel: false,
        }
    }

    fn static_model(&self, variant: Variant) -> Option<crate::statics::StaticModel> {
        use crate::statics::{AtomKind, ModelBuilder};
        let mut m = ModelBuilder::new("FPS", variant);
        for r in 1..=2u32 {
            let req = m.atom(&format!("net:request#{r}"), AtomKind::Net, 0);
            let get = m.atom(&format!("kv.get:policy#{r}"), AtomKind::Kv, req);
            if variant == Variant::Buggy {
                // The handler parks "the" current request in a shared
                // slot; the policy reply answers whatever the slot holds.
                m.write(req, "fps:inflight");
                m.read(get, "fps:inflight");
                m.write(get, "fps:inflight");
            }
            // Fixed: the reply is routed from this request's own chain —
            // no shared slot is touched.
        }
        Some(m.build())
    }

    fn run(&self, cfg: &RunCfg, variant: Variant) -> Outcome {
        let mut el = cfg.build_loop();
        let net = SimNet::with_latency(LatencyModel {
            base: VDur::millis(2),
            jitter: 0.05,
        });
        // The shared in-flight slot (the racy variable).
        let inflight: Rc<RefCell<Option<Connection>>> = Rc::new(RefCell::new(None));
        let n = net.clone();
        let slot = inflight.clone();
        el.enter(move |cx| {
            let kv = Kv::connect_with(
                cx,
                2,
                KvTiming {
                    latency: VDur::millis(1),
                    latency_jitter: 0.05,
                    proc: VDur::micros(200),
                    proc_jitter: 0.1,
                },
            )
            .expect("kv pool");
            kv.set_sync("policy:default", "allow");
            n.listen(cx, 80, move |_cx, conn| {
                let kv = kv.clone();
                let slot = slot.clone();
                conn.on_data(move |cx, conn, msg| {
                    if msg.as_slice() != b"authorize" {
                        return;
                    }
                    cx.busy(VDur::micros(300));
                    match variant {
                        Variant::Buggy => {
                            // BUGGY control flow: the proxy notes "the"
                            // current request in a shared slot...
                            cx.touch_write("fps:inflight");
                            *slot.borrow_mut() = Some(conn.clone());
                            let slot = slot.clone();
                            kv.get(cx, "policy:default", move |cx, verdict| {
                                // ...and answers whatever the slot holds
                                // now. A second request that arrived in
                                // between overwrote it: the first client
                                // never hears back.
                                cx.touch_read("fps:inflight");
                                cx.touch_write("fps:inflight");
                                let target = slot.borrow_mut().take();
                                if let (Some(target), Some(v)) = (target, verdict) {
                                    let _ = target.write(cx, v.into_bytes());
                                }
                            });
                        }
                        Variant::Fixed => {
                            // Fixed control flow: the response is routed
                            // from this request's own chain.
                            let me = conn.clone();
                            kv.get(cx, "policy:default", move |cx, verdict| {
                                if let Some(v) = verdict {
                                    let _ = me.write(cx, v.into_bytes());
                                }
                            });
                        }
                    }
                });
            })
            .expect("listen");
            Chatter::spawn(cx, &n, 81, 4, 10, VDur::micros(600), VDur::micros(90));
            crate::common::heartbeat(cx, VDur::micros(800), VDur::millis(15));
        });
        let clients = el.enter(|cx| {
            let a = Client::connect(cx, &net, 80);
            a.send(cx, b"authorize".to_vec());
            a.close_after(cx, VDur::millis(30));
            // The second request normally arrives after the first one's
            // validation round trip has completed.
            let b = Client::connect(cx, &net, 80);
            b.send_after(
                cx,
                VDur::micros(crate::common::tuned_margin_us(3_800)),
                b"authorize".to_vec(),
            );
            b.close_after(cx, VDur::millis(30));
            net.close_all_listeners_after(cx, VDur::millis(40));
            [a, b]
        });
        let report = el.run();
        let unanswered: Vec<usize> = clients
            .iter()
            .enumerate()
            .filter(|(_, c)| c.received().is_empty())
            .map(|(i, _)| i)
            .collect();
        let manifested = !unanswered.is_empty();
        Outcome {
            manifested,
            detail: if manifested {
                format!("request(s) {unanswered:?} never received a response")
            } else {
                "every request was answered".into()
            },
            report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::check_case;

    #[test]
    fn fps_fixed_never_manifests_under_fuzz() {
        check_case::fixed_never_manifests(&Fps, 20);
    }

    #[test]
    fn fps_buggy_manifests_under_fuzz() {
        check_case::buggy_manifests_under_fuzz(&Fps, 60);
    }

    #[test]
    fn fps_vanilla_rarely_manifests() {
        check_case::vanilla_rarely_manifests(&Fps, 40, 6);
    }

    #[test]
    fn fps_impact_is_hang() {
        assert_eq!(Fps.info().impact, "Request hangs");
    }
}
