//! NES — nes issue #18 (AV, NW–Timer, variable → crash).
//!
//! A WebSocket layer runs a per-connection heartbeat timer that pings the
//! client. When the client disconnects, the close handler clears the
//! socket reference. The atomicity violation: the heartbeat timer and the
//! disconnect event are unordered, so the timer callback can run after the
//! socket was torn down and dereference null — crashing the server.
//!
//! Fix (as upstream): check the socket still exists in the timer callback.

use std::cell::RefCell;
use std::rc::Rc;

use nodefz_net::{Client, Connection, LatencyModel, SimNet};
use nodefz_rt::VDur;

use crate::common::{BugCase, BugInfo, Chatter, Outcome, RaceType, RunCfg, Variant};

/// The NES reproduction.
pub struct Nes;

impl BugCase for Nes {
    fn info(&self) -> BugInfo {
        BugInfo {
            abbr: "NES",
            name: "nes",
            bug_ref: "#18",
            race: RaceType::Av,
            racing_events: "NW-Timer",
            race_on: "Variable",
            impact: "Crash (null dereference)",
            fix: "Check not null before use",
            in_fig6: true,
            novel: false,
        }
    }

    fn static_model(&self, variant: Variant) -> Option<crate::statics::StaticModel> {
        use crate::statics::{AtomKind, ModelBuilder};
        let mut m = ModelBuilder::new("NES", variant);
        let accept = m.atom("net:accept", AtomKind::Net, 0);
        m.write(accept, "nes:socket");
        let heartbeat = m.atom("timer:heartbeat", AtomKind::Timer, accept);
        if variant == Variant::Buggy {
            // BUGGY: the heartbeat dereferences the socket slot; the
            // fixed heartbeat null-checks without an instrumented read.
            m.read(heartbeat, "nes:socket");
        }
        let closed = m.atom("net:on-close", AtomKind::Net, accept);
        m.write(closed, "nes:socket");
        Some(m.build())
    }

    fn run(&self, cfg: &RunCfg, variant: Variant) -> Outcome {
        let mut el = cfg.build_loop();
        let net = SimNet::with_latency(LatencyModel {
            base: VDur::millis(2),
            jitter: 0.05,
        });
        let n = net.clone();
        el.enter(move |cx| {
            n.listen(cx, 80, move |cx, conn| {
                // Per-connection socket slot, cleared on disconnect.
                cx.touch_write("nes:socket");
                let socket: Rc<RefCell<Option<Connection>>> =
                    Rc::new(RefCell::new(Some(conn.clone())));
                let s_timer = socket.clone();
                // Heartbeat: ping the client after the keep-alive interval.
                cx.set_timeout(VDur::millis(4), move |cx| {
                    match variant {
                        Variant::Buggy => {
                            // BUGGY: assumes the socket still exists.
                            cx.touch_read("nes:socket");
                            let slot = s_timer.borrow();
                            match slot.as_ref() {
                                Some(sock) => {
                                    let _ = sock.write(cx, b"ping".to_vec());
                                }
                                None => {
                                    cx.crash("null-deref", "heartbeat fired after socket teardown")
                                }
                            }
                        }
                        Variant::Fixed => {
                            if let Some(sock) = s_timer.borrow().as_ref() {
                                let _ = sock.write(cx, b"ping".to_vec());
                            }
                        }
                    }
                });
                let s_close = socket.clone();
                conn.on_close(move |cx, _conn| {
                    cx.touch_write("nes:socket");
                    *s_close.borrow_mut() = None;
                });
            })
            .expect("listen");
            Chatter::spawn(cx, &n, 81, 4, 10, VDur::micros(600), VDur::micros(90));
        });
        el.enter(|cx| {
            let client = Client::connect(cx, &net, 80);
            // The client disconnects shortly AFTER the heartbeat normally
            // fires (heartbeat at ~connect+4ms; EOF reaches the server at
            // ~connect+4ms+margin). A deferred heartbeat (+5 ms) runs
            // after the close handler cleared the slot.
            client.close_after(cx, VDur::micros(crate::common::tuned_margin_us(4_500)));
            net.close_all_listeners_after(cx, VDur::millis(25));
        });
        let report = el.run();
        let manifested = report.has_error("null-deref");
        Outcome {
            manifested,
            detail: if manifested {
                "heartbeat timer dereferenced a cleared socket".into()
            } else {
                "heartbeat and teardown did not interleave".into()
            },
            report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::check_case;

    #[test]
    fn nes_fixed_never_manifests_under_fuzz() {
        check_case::fixed_never_manifests(&Nes, 20);
    }

    #[test]
    fn nes_buggy_manifests_under_fuzz() {
        check_case::buggy_manifests_under_fuzz(&Nes, 60);
    }

    #[test]
    fn nes_vanilla_rarely_manifests() {
        check_case::vanilla_rarely_manifests(&Nes, 40, 2);
    }

    #[test]
    fn nes_races_network_against_timer() {
        assert_eq!(Nes.info().racing_events, "NW-Timer");
    }
}
