//! EPL — etherpad-lite issue #2674 (AV, NW–NW, array → crash).
//!
//! A collaborative editor keeps a per-document `pad` object holding its
//! author list. Handling an *edit* message is partitioned into a callback
//! chain: fetch author metadata from the database, then update the author
//! array. Handling a *delete* message destroys the pad immediately. The
//! atomicity violation: a delete can interleave between an edit's database
//! fetch and its array update, so the update dereferences a destroyed pad —
//! a null dereference that crashes the server.
//!
//! Fix (as upstream): check the pad still exists before using it.

use std::cell::RefCell;
use std::rc::Rc;

use nodefz_kv::{Kv, KvTiming};
use nodefz_net::{Client, LatencyModel, SimNet};
use nodefz_rt::VDur;

use crate::common::{BugCase, BugInfo, Chatter, Outcome, RaceType, RunCfg, Variant};

/// The EPL reproduction.
pub struct Epl;

struct Pad {
    authors: Vec<String>,
}

impl BugCase for Epl {
    fn info(&self) -> BugInfo {
        BugInfo {
            abbr: "EPL",
            name: "etherpad-lite",
            bug_ref: "#2674",
            race: RaceType::Av,
            racing_events: "NW-NW",
            race_on: "Array",
            impact: "Crash (null dereference)",
            fix: "Check not null before use",
            in_fig6: false, // Excluded in §5.1.1 (browser-driven upstream test).
            novel: false,
        }
    }

    fn run(&self, cfg: &RunCfg, variant: Variant) -> Outcome {
        let mut el = cfg.build_loop();
        let net = SimNet::with_latency(LatencyModel {
            base: VDur::millis(2),
            jitter: 0.05,
        });
        let pad: Rc<RefCell<Option<Pad>>> = Rc::new(RefCell::new(Some(Pad {
            authors: Vec::new(),
        })));
        let n = net.clone();
        let p = pad.clone();
        el.enter(move |cx| {
            let kv = Kv::connect_with(
                cx,
                2,
                KvTiming {
                    latency: VDur::millis(1),
                    latency_jitter: 0.05,
                    proc: VDur::micros(200),
                    proc_jitter: 0.1,
                },
            )
            .expect("kv pool");
            kv.set_sync("color:alice", "blue");
            n.listen(cx, 80, move |_cx, conn| {
                let p = p.clone();
                let kv = kv.clone();
                conn.on_data(move |cx, _conn, msg| {
                    cx.busy(VDur::micros(300));
                    match msg.as_slice() {
                        b"edit" => {
                            // Callback chain link 1: fetch author metadata.
                            let p = p.clone();
                            kv.get(cx, "color:alice", move |cx, _color| {
                                // Link 2: update the author array. BUGGY:
                                // assumes the pad still exists.
                                match variant {
                                    Variant::Buggy => {
                                        let mut pad = p.borrow_mut();
                                        match pad.as_mut() {
                                            Some(pad) => pad.authors.push("alice".into()),
                                            None => cx.crash(
                                                "null-deref",
                                                "edit chain used a deleted pad",
                                            ),
                                        }
                                    }
                                    Variant::Fixed => {
                                        // Upstream fix: not-null check.
                                        if let Some(pad) = p.borrow_mut().as_mut() {
                                            pad.authors.push("alice".into());
                                        }
                                    }
                                }
                            });
                        }
                        b"delete" => {
                            // Destroys the pad synchronously.
                            *p.borrow_mut() = None;
                        }
                        _ => {}
                    }
                });
            })
            .expect("listen");
            // Background suite traffic: long iterations, shared windows.
            Chatter::spawn(cx, &n, 81, 4, 10, VDur::micros(600), VDur::micros(90));
            crate::common::heartbeat(cx, VDur::micros(800), VDur::millis(15));
        });
        el.enter(|cx| {
            let editor = Client::connect(cx, &net, 80);
            editor.send(cx, b"edit".to_vec());
            editor.close_after(cx, VDur::millis(12));
            // The delete lands normally well after the edit chain finishes.
            let deleter = Client::connect(cx, &net, 80);
            deleter.send_after(
                cx,
                VDur::micros(crate::common::tuned_margin_us(3_800)),
                b"delete".to_vec(),
            );
            deleter.close_after(cx, VDur::millis(12));
            net.close_all_listeners_after(cx, VDur::millis(30));
        });
        let report = el.run();
        let manifested = report.has_error("null-deref");
        Outcome {
            manifested,
            detail: if manifested {
                "server crashed: edit chain dereferenced a deleted pad".into()
            } else {
                format!(
                    "pad intact ({:?} authors)",
                    pad.borrow().as_ref().map(|p| p.authors.len())
                )
            },
            report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::check_case;

    #[test]
    fn epl_fixed_never_manifests_under_fuzz() {
        check_case::fixed_never_manifests(&Epl, 20);
    }

    #[test]
    fn epl_buggy_manifests_under_fuzz() {
        check_case::buggy_manifests_under_fuzz(&Epl, 60);
    }

    #[test]
    fn epl_vanilla_rarely_manifests() {
        check_case::vanilla_rarely_manifests(&Epl, 40, 4);
    }

    #[test]
    fn epl_info_is_table2_row() {
        let info = Epl.info();
        assert_eq!(info.abbr, "EPL");
        assert_eq!(info.race, RaceType::Av);
        assert!(!info.in_fig6);
    }
}
