//! RST — restify issue #847 ((C)OV, FS–X, array → missing data).
//!
//! A response assembler launches one asynchronous `fs.read` per chunk,
//! each callback writing its slot of a shared buffer. The buggy code
//! responds when the *last-submitted* read completes (the
//! `isLast = i == N-1` anti-pattern): a commutative ordering violation.
//! Reads complete in any order, so the response can ship with empty slots.
//!
//! Fix (as upstream, second attempt): an asynchronous barrier that fires
//! only when *all* reads have completed.

use std::cell::RefCell;
use std::rc::Rc;

use nodefz_fs::SimFs;
use nodefz_net::{Client, LatencyModel, SimNet};
use nodefz_rt::{Barrier, VDur};

use crate::common::{BugCase, BugInfo, Chatter, Outcome, RaceType, RunCfg, Variant};

/// The RST reproduction.
pub struct Rst;

const CHUNKS: usize = 4;

impl BugCase for Rst {
    fn info(&self) -> BugInfo {
        BugInfo {
            abbr: "RST",
            name: "restify",
            bug_ref: "#847",
            race: RaceType::Cov,
            racing_events: "FS-X",
            race_on: "Array",
            impact: "Incorrect response (missing data)",
            fix: "Use an \"async barrier\"",
            in_fig6: false, // §5.1.1: manifests frequently even on nodeV.
            novel: false,
        }
    }

    fn run(&self, cfg: &RunCfg, variant: Variant) -> Outcome {
        let mut el = cfg.build_loop();
        let net = SimNet::with_latency(LatencyModel {
            base: VDur::millis(2),
            jitter: 0.05,
        });
        let fs = SimFs::new();
        fs.mkdir_sync("static").expect("setup");
        let responses: Rc<RefCell<Vec<Vec<String>>>> = Rc::new(RefCell::new(Vec::new()));
        let n = net.clone();
        let fs_srv = fs.clone();
        let resp = responses.clone();
        el.enter(move |cx| {
            // Chunk files of very different sizes: completion order is not
            // submission order.
            for i in 0..CHUNKS {
                let body = vec![b'a' + i as u8; 64 * (CHUNKS - i)];
                fs_srv
                    .write_sync(&format!("static/chunk{i}"), body)
                    .expect("setup");
            }
            let fs2 = fs_srv.clone();
            let resp = resp.clone();
            n.listen(cx, 80, move |_cx, conn| {
                let fs = fs2.clone();
                let resp = resp.clone();
                conn.on_data(move |cx, conn, _msg| {
                    cx.busy(VDur::micros(150));
                    // One shared buffer of slots for this response.
                    let buffer: Rc<RefCell<Vec<String>>> =
                        Rc::new(RefCell::new(vec![String::new(); CHUNKS]));
                    let respond = {
                        let buffer = buffer.clone();
                        let resp = resp.clone();
                        let me = conn.clone();
                        move |cx: &mut nodefz_rt::Ctx<'_>| {
                            let snapshot = buffer.borrow().clone();
                            resp.borrow_mut().push(snapshot.clone());
                            let _ = me.write(cx, snapshot.join(",").into_bytes());
                        }
                    };
                    match variant {
                        Variant::Buggy => {
                            let respond = Rc::new(respond);
                            for i in 0..CHUNKS {
                                let buffer = buffer.clone();
                                let respond = respond.clone();
                                let is_last = i == CHUNKS - 1;
                                fs.read_file(cx, &format!("static/chunk{i}"), move |cx, r| {
                                    if let Ok(data) = r {
                                        buffer.borrow_mut()[i] = format!("chunk{i}:{}", data.len());
                                    }
                                    // BUGGY: the last *submitted* read
                                    // is treated as the last completed.
                                    if is_last {
                                        respond(cx);
                                    }
                                });
                            }
                        }
                        Variant::Fixed => {
                            let mut respond = Some(respond);
                            let barrier = Barrier::new(CHUNKS, move |cx| {
                                if let Some(r) = respond.take() {
                                    r(cx);
                                }
                            });
                            for i in 0..CHUNKS {
                                let buffer = buffer.clone();
                                let barrier = barrier.clone();
                                fs.read_file(cx, &format!("static/chunk{i}"), move |cx, r| {
                                    if let Ok(data) = r {
                                        buffer.borrow_mut()[i] = format!("chunk{i}:{}", data.len());
                                    }
                                    barrier.arrive(cx);
                                });
                            }
                        }
                    }
                });
            })
            .expect("listen");
            Chatter::spawn(cx, &n, 81, 2, 6, VDur::micros(800), VDur::micros(80));
        });
        el.enter(|cx| {
            let c = Client::connect(cx, &net, 80);
            c.send(cx, b"GET /bundle".to_vec());
            c.close_after(cx, VDur::millis(14));
            net.close_all_listeners_after(cx, VDur::millis(25));
        });
        let report = el.run();
        let responses = responses.borrow();
        let incomplete = responses
            .iter()
            .filter(|slots| slots.iter().any(String::is_empty))
            .count();
        let manifested = incomplete > 0;
        Outcome {
            manifested,
            detail: format!(
                "{incomplete}/{} response(s) shipped with missing chunks",
                responses.len()
            ),
            report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::check_case;
    use nodefz::Mode;

    #[test]
    fn rst_fixed_never_manifests_under_fuzz() {
        check_case::fixed_never_manifests(&Rst, 20);
    }

    #[test]
    fn rst_buggy_manifests_under_fuzz() {
        check_case::buggy_manifests_under_fuzz(&Rst, 60);
    }

    #[test]
    fn rst_manifests_even_under_vanilla() {
        // §5.1.1: RST manifests frequently even using nodeV (which is why
        // the paper excludes it from Figure 6).
        let mut hits = 0;
        for seed in 0..40 {
            if Rst
                .run(
                    &RunCfg::new(Mode::Vanilla, seed),
                    crate::common::Variant::Buggy,
                )
                .manifested
            {
                hits += 1;
            }
        }
        assert!(hits >= 3, "expected a frequent vanilla rate, got {hits}/40");
    }

    #[test]
    fn rst_is_a_cov() {
        assert_eq!(Rst.info().race, RaceType::Cov);
        assert!(!Rst.info().in_fig6);
    }
}
