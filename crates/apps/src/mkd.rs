//! MKD — mkdirp issue #2 (AV, FS–FS, file system → incorrect response).
//!
//! `mkdirp(path)` works like `mkdir -p`: create the directory and any
//! missing parents. The buggy version treats `EEXIST` anywhere in the
//! recursion as "the whole path already exists" and reports success. When
//! two `mkdirp` calls sharing a prefix race, one of them hits `EEXIST` on a
//! parent the *other* call just created and returns early — success is
//! reported while the requested leaf directory does not exist. This is a
//! race on file-system state, not on memory (§3.3.2).
//!
//! Fix (as upstream): treat `EEXIST` as success *of that level only* and
//! continue creating the remaining components.

use std::cell::RefCell;
use std::rc::Rc;

use nodefz_fs::SimFs;
use nodefz_net::{Client, LatencyModel, SimNet};
use nodefz_rt::{Ctx, Errno, VDur};

use crate::common::{BugCase, BugInfo, Chatter, Outcome, RaceType, RunCfg, Variant};

/// The MKD reproduction.
pub struct Mkd;

fn parent_of(path: &str) -> Option<String> {
    path.rsplit_once('/').map(|(p, _)| p.to_string())
}

/// Continuation for one `mkdirp` level: `Ok(true)` if this call created the
/// directory, `Ok(false)` if it already existed.
type LevelCb = Rc<dyn Fn(&mut Ctx<'_>, Result<bool, Errno>)>;

/// Recursive `mkdir -p`, buggy or fixed in its `EEXIST` handling.
fn mkdirp(cx: &mut Ctx<'_>, fs: SimFs, path: String, variant: Variant, cb: LevelCb) {
    let fs2 = fs.clone();
    let path2 = path.clone();
    fs.mkdir(cx, &path, move |cx, r| match r {
        Ok(()) => {
            cx.touch_write("mkd:fs-tree");
            cb(cx, Ok(true));
        }
        // This level already existed (possibly created concurrently).
        Err(Errno::Eexist) => {
            cx.touch_read("mkd:fs-tree");
            cb(cx, Ok(false));
        }
        Err(Errno::Enoent) => {
            cx.touch_read("mkd:fs-tree");
            // A parent is missing: create it, then retry this level.
            let Some(parent) = parent_of(&path2) else {
                cb(cx, Err(Errno::Enoent));
                return;
            };
            let fs3 = fs2.clone();
            let retry_path = path2.clone();
            let outer_cb = cb.clone();
            let retry: LevelCb = Rc::new(move |cx: &mut Ctx<'_>, r| match r {
                Ok(created) => {
                    if variant == Variant::Buggy && !created {
                        // BUGGY: the parent "already existed" (another
                        // chain created it concurrently), so assume the
                        // whole remaining path exists too — report success
                        // without creating this level.
                        outer_cb(cx, Ok(false));
                        return;
                    }
                    // FIX: the parent exists now, whoever made it; retry
                    // creating this level.
                    let cb2 = outer_cb.clone();
                    fs3.mkdir(cx, &retry_path, move |cx, r| match r {
                        Ok(()) => cb2(cx, Ok(true)),
                        Err(Errno::Eexist) => cb2(cx, Ok(false)),
                        Err(e) => cb2(cx, Err(e)),
                    });
                }
                Err(e) => outer_cb(cx, Err(e)),
            });
            mkdirp(cx, fs2.clone(), parent, variant, retry);
        }
        Err(e) => cb(cx, Err(e)),
    });
}

impl BugCase for Mkd {
    fn info(&self) -> BugInfo {
        BugInfo {
            abbr: "MKD",
            name: "mkdirp",
            bug_ref: "#2",
            race: RaceType::Av,
            racing_events: "FS-FS",
            race_on: "File system",
            impact: "Incorrect response (does not finish mkdir)",
            fix: "Check err code",
            in_fig6: true,
            novel: false,
        }
    }

    fn static_model(&self, variant: Variant) -> Option<crate::statics::StaticModel> {
        use crate::statics::{AtomKind, ModelBuilder};
        let mut m = ModelBuilder::new("MKD", variant);
        // Both variants recurse through the same mkdir chain; each level's
        // completion either created the directory (write) or observed it
        // existing (read). The fix changes what the chain *does* with an
        // EEXIST, not which file-system state it touches.
        for r in 1..=2u32 {
            let req = m.atom(&format!("net:mkdirp#{r}"), AtomKind::Net, 0);
            let mut parent = req;
            for level in ["leaf", "parent", "retry"] {
                let lvl = m.atom(&format!("fs.mkdir:{level}#{r}"), AtomKind::Fs, parent);
                m.read(lvl, "mkd:fs-tree");
                m.write(lvl, "mkd:fs-tree");
                parent = lvl;
            }
        }
        Some(m.build())
    }

    fn run(&self, cfg: &RunCfg, variant: Variant) -> Outcome {
        let mut el = cfg.build_loop();
        let net = SimNet::with_latency(LatencyModel {
            base: VDur::millis(2),
            jitter: 0.05,
        });
        let fs = SimFs::new();
        // (path, leaf existed when success was reported).
        let results: Rc<RefCell<Vec<(String, bool)>>> = Rc::new(RefCell::new(Vec::new()));
        let n = net.clone();
        let fs_srv = fs.clone();
        let res = results.clone();
        el.enter(move |cx| {
            let fs_srv = fs_srv.clone();
            let res = res.clone();
            n.listen(cx, 80, move |_cx, conn| {
                let fs = fs_srv.clone();
                let res = res.clone();
                conn.on_data(move |cx, _conn, msg| {
                    let Ok(path) = String::from_utf8(msg.clone()) else {
                        return;
                    };
                    cx.busy(VDur::micros(150));
                    let fs2 = fs.clone();
                    let res = res.clone();
                    let check_path = path.clone();
                    let cb: LevelCb = Rc::new(move |_cx: &mut Ctx<'_>, r: Result<bool, Errno>| {
                        if r.is_ok() {
                            // Oracle probe: did mkdirp really finish?
                            res.borrow_mut()
                                .push((check_path.clone(), fs2.exists_sync(&check_path)));
                        }
                    });
                    mkdirp(cx, fs.clone(), path, variant, cb);
                });
            })
            .expect("listen");
            Chatter::spawn(cx, &n, 81, 4, 10, VDur::micros(600), VDur::micros(90));
            crate::common::heartbeat(cx, VDur::micros(800), VDur::millis(12));
        });
        el.enter(|cx| {
            // Two mkdirp calls sharing the "build/cache" prefix; the second
            // normally starts after the first finished its recursion.
            let a = Client::connect(cx, &net, 80);
            a.send(cx, b"build/cache/js".to_vec());
            a.close_after(cx, VDur::millis(14));
            let b = Client::connect(cx, &net, 80);
            b.send_after(
                cx,
                VDur::micros(crate::common::tuned_margin_us(2_400)),
                b"build/cache/css".to_vec(),
            );
            b.close_after(cx, VDur::millis(14));
            net.close_all_listeners_after(cx, VDur::millis(28));
        });
        let report = el.run();
        let results = results.borrow();
        let premature: Vec<&(String, bool)> =
            results.iter().filter(|(_, existed)| !existed).collect();
        let manifested = !premature.is_empty();
        Outcome {
            manifested,
            detail: if manifested {
                format!(
                    "mkdirp reported success but the directory was missing: {:?}",
                    premature.iter().map(|(p, _)| p).collect::<Vec<_>>()
                )
            } else {
                format!("{} mkdirp call(s) completed correctly", results.len())
            },
            report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::check_case;

    #[test]
    fn mkd_fixed_never_manifests_under_fuzz() {
        check_case::fixed_never_manifests(&Mkd, 20);
    }

    #[test]
    fn mkd_buggy_manifests_under_fuzz() {
        check_case::buggy_manifests_under_fuzz(&Mkd, 60);
    }

    #[test]
    fn mkd_vanilla_rarely_manifests() {
        check_case::vanilla_rarely_manifests(&Mkd, 40, 2);
    }

    #[test]
    fn mkd_is_a_file_system_race() {
        assert_eq!(Mkd.info().race_on, "File system");
        assert_eq!(Mkd.info().racing_events, "FS-FS");
    }
}
