//! Declarative static models of event-driven callback structure.
//!
//! A [`StaticModel`] describes an application (or generated program) as a
//! finite set of *atoms* — callbacks as the scheduler sees them — with
//! registration parentage, extra must-happen-after edges, and the
//! instrumented shared-site accesses each atom performs. The model is a
//! pure description: building one executes nothing. `nodefz-sa` consumes
//! models to compute a may-happen-in-parallel relation and predict the
//! paper's §3.2 race classes without running a single schedule.
//!
//! The types live here (not in `nodefz-sa`) so every fig6 app can expose a
//! model via [`crate::common::BugCase::static_model`] without the apps
//! crate depending on the analyzer.

use nodefz_rt::AccessKind;

use crate::common::Variant;

/// The scheduler-visible flavour of one modelled callback. Mirrors the
/// event kinds the runtime dispatches; two `Timer` atoms are totally
/// ordered in *every* run (the happens-before timer chain), which is the
/// one kind-specific fact the analyzer relies on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AtomKind {
    /// The synthetic setup event (registration code; always atom 0).
    Setup,
    /// A timer callback (`setTimeout` / `setInterval`).
    Timer,
    /// A pending-phase callback.
    Pending,
    /// A check-phase callback (`setImmediate`).
    Immediate,
    /// A close callback.
    Close,
    /// A worker-pool done callback.
    Pool,
    /// An fd-watcher dispatch (read chain).
    Fd,
    /// A network callback (accept / data / connection close handler).
    Net,
    /// A key-value store reply callback.
    Kv,
    /// A file-system completion callback.
    Fs,
    /// An environment event (external stimulus with no registering
    /// callback; atoms of this kind usually have no parent).
    Env,
}

impl AtomKind {
    /// Short lowercase label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            AtomKind::Setup => "setup",
            AtomKind::Timer => "timer",
            AtomKind::Pending => "pending",
            AtomKind::Immediate => "immediate",
            AtomKind::Close => "close",
            AtomKind::Pool => "pool",
            AtomKind::Fd => "fd",
            AtomKind::Net => "net",
            AtomKind::Kv => "kv",
            AtomKind::Fs => "fs",
            AtomKind::Env => "env",
        }
    }

    /// Phase rank within one loop iteration, mirroring the conform
    /// oracle's table: setup 0, timers 1, pending 2, everything dispatched
    /// from the poll phase 5, check 6, close 7. Used by the
    /// schedule-sensitivity lints (vanilla runs dispatch lower ranks
    /// first within an iteration) — never as a must-happen-before edge.
    pub fn rank(self) -> u8 {
        match self {
            AtomKind::Setup => 0,
            AtomKind::Timer => 1,
            AtomKind::Pending => 2,
            AtomKind::Pool
            | AtomKind::Fd
            | AtomKind::Net
            | AtomKind::Kv
            | AtomKind::Fs
            | AtomKind::Env => 5,
            AtomKind::Immediate => 6,
            AtomKind::Close => 7,
        }
    }

    /// Whether two atoms of this kind are totally ordered in every run.
    pub fn is_timer(self) -> bool {
        matches!(self, AtomKind::Timer)
    }
}

/// One instrumented shared-site access performed by an atom.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Access {
    /// Shared-site name (as passed to `touch_read` / `touch_write`).
    pub site: String,
    /// Access kind.
    pub kind: AccessKind,
}

/// One modelled callback.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Atom {
    /// Human-readable label (stable: feeds report finding ids).
    pub label: String,
    /// Scheduler-visible kind.
    pub kind: AtomKind,
    /// The atom whose callback registered this one, if any. Registration
    /// is a happens-before edge in every run. `None` models external
    /// stimuli with no scheduler-visible ancestor.
    pub parent: Option<u32>,
    /// Extra atoms that must complete before this one runs in every
    /// schedule (beyond the parent edge).
    pub ordered_after: Vec<u32>,
    /// Instrumented accesses this atom's callback performs.
    pub accesses: Vec<Access>,
}

/// A static callback-registration model of one app variant or program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StaticModel {
    /// Model name (app abbreviation or program label).
    pub name: String,
    /// Variant label (`"buggy"` / `"fixed"` / `"v1"` for programs).
    pub variant: String,
    /// The atoms; atom 0 is always the setup atom. All `parent` and
    /// `ordered_after` references point to strictly smaller ids.
    pub atoms: Vec<Atom>,
}

impl StaticModel {
    /// Checks structural well-formedness: atom 0 is a parentless `Setup`
    /// atom and every edge points to a strictly smaller id.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first defect.
    pub fn validate(&self) -> Result<(), String> {
        let first = self
            .atoms
            .first()
            .ok_or_else(|| "model has no atoms".to_string())?;
        if first.kind != AtomKind::Setup || first.parent.is_some() {
            return Err("atom 0 must be a parentless setup atom".into());
        }
        for (id, atom) in self.atoms.iter().enumerate() {
            if let Some(p) = atom.parent {
                if p as usize >= id {
                    return Err(format!("atom {id}: parent {p} not earlier"));
                }
            }
            for &e in &atom.ordered_after {
                if e as usize >= id {
                    return Err(format!("atom {id}: ordered_after {e} not earlier"));
                }
            }
        }
        Ok(())
    }
}

/// Fluent builder for authoring app models. Creates the setup atom
/// automatically as atom 0.
pub struct ModelBuilder {
    model: StaticModel,
}

impl ModelBuilder {
    /// Starts a model for `name` with the given variant's label.
    pub fn new(name: &str, variant: Variant) -> ModelBuilder {
        let label = match variant {
            Variant::Buggy => "buggy",
            Variant::Fixed => "fixed",
        };
        ModelBuilder {
            model: StaticModel {
                name: name.to_string(),
                variant: label.to_string(),
                atoms: vec![Atom {
                    label: "setup".into(),
                    kind: AtomKind::Setup,
                    parent: None,
                    ordered_after: Vec::new(),
                    accesses: Vec::new(),
                }],
            },
        }
    }

    /// Adds an atom registered by `parent` and returns its id.
    pub fn atom(&mut self, label: &str, kind: AtomKind, parent: u32) -> u32 {
        self.push(label, kind, Some(parent))
    }

    /// Adds an atom with no scheduler-visible ancestor (external
    /// stimulus) and returns its id.
    pub fn free_atom(&mut self, label: &str, kind: AtomKind) -> u32 {
        self.push(label, kind, None)
    }

    fn push(&mut self, label: &str, kind: AtomKind, parent: Option<u32>) -> u32 {
        let id = self.model.atoms.len() as u32;
        self.model.atoms.push(Atom {
            label: label.to_string(),
            kind,
            parent,
            ordered_after: Vec::new(),
            accesses: Vec::new(),
        });
        id
    }

    /// Records that `atom` reads `site`.
    pub fn read(&mut self, atom: u32, site: &str) {
        self.access(atom, site, AccessKind::Read);
    }

    /// Records that `atom` writes `site`.
    pub fn write(&mut self, atom: u32, site: &str) {
        self.access(atom, site, AccessKind::Write);
    }

    /// Records that `atom` performs a commutative update of `site`.
    pub fn update(&mut self, atom: u32, site: &str) {
        self.access(atom, site, AccessKind::Update);
    }

    fn access(&mut self, atom: u32, site: &str, kind: AccessKind) {
        self.model.atoms[atom as usize].accesses.push(Access {
            site: site.to_string(),
            kind,
        });
    }

    /// Adds a must-happen-after edge: `earlier` completes before `atom`
    /// in every schedule.
    pub fn after(&mut self, atom: u32, earlier: u32) {
        self.model.atoms[atom as usize].ordered_after.push(earlier);
    }

    /// Finishes the model.
    ///
    /// # Panics
    ///
    /// Panics if the authored model is structurally malformed — models
    /// are hand-written constants, so a defect is a programming error.
    pub fn build(self) -> StaticModel {
        if let Err(e) = self.model.validate() {
            panic!("malformed static model {}: {e}", self.model.name);
        }
        self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_valid_models() {
        let mut m = ModelBuilder::new("T", Variant::Buggy);
        let a = m.atom("net:req", AtomKind::Net, 0);
        let b = m.atom("kv.get:row", AtomKind::Kv, a);
        m.read(b, "t:site");
        m.after(b, a);
        let model = m.build();
        assert_eq!(model.atoms.len(), 3);
        assert_eq!(model.variant, "buggy");
        assert!(model.validate().is_ok());
    }

    #[test]
    fn validate_rejects_forward_edges() {
        let model = StaticModel {
            name: "bad".into(),
            variant: "buggy".into(),
            atoms: vec![
                Atom {
                    label: "setup".into(),
                    kind: AtomKind::Setup,
                    parent: None,
                    ordered_after: Vec::new(),
                    accesses: Vec::new(),
                },
                Atom {
                    label: "x".into(),
                    kind: AtomKind::Net,
                    parent: Some(2),
                    ordered_after: Vec::new(),
                    accesses: Vec::new(),
                },
            ],
        };
        assert!(model.validate().is_err());
    }

    #[test]
    fn every_fig6_app_has_models_for_both_variants() {
        for case in crate::registry() {
            let info = case.info();
            let buggy = case.static_model(Variant::Buggy);
            let fixed = case.static_model(Variant::Fixed);
            if info.in_fig6 {
                let b = buggy.unwrap_or_else(|| panic!("{}: no buggy model", info.abbr));
                let f = fixed.unwrap_or_else(|| panic!("{}: no fixed model", info.abbr));
                assert!(b.validate().is_ok(), "{}: invalid buggy model", info.abbr);
                assert!(f.validate().is_ok(), "{}: invalid fixed model", info.abbr);
                assert_eq!(b.name, info.abbr);
            } else {
                assert!(buggy.is_none() && fixed.is_none());
            }
        }
    }

    #[test]
    fn ranks_mirror_the_conform_oracle_table() {
        assert_eq!(AtomKind::Setup.rank(), 0);
        assert_eq!(AtomKind::Timer.rank(), 1);
        assert_eq!(AtomKind::Pending.rank(), 2);
        assert_eq!(AtomKind::Net.rank(), 5);
        assert_eq!(AtomKind::Pool.rank(), 5);
        assert_eq!(AtomKind::Immediate.rank(), 6);
        assert_eq!(AtomKind::Close.rank(), 7);
    }
}
