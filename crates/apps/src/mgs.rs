//! MGS — mongoose issue #2992 ((C)OV, NW–NW, database → incorrect
//! response).
//!
//! The `populate` flow of Figure 4 in the paper: `firstStep` launches N
//! asynchronous `find` queries, binding `isLast = (i == N-1)` into each
//! completion. The promise is resolved when the *last-submitted* query
//! completes — but queries complete in any order, so the result can be
//! returned before all sub-queries have populated it: a commutative
//! ordering violation.
//!
//! Fix (as upstream): a `remaining` counter decremented by every
//! completion; resolve when it reaches zero.

use std::cell::RefCell;
use std::rc::Rc;

use nodefz_kv::{Kv, KvTiming};
use nodefz_net::{Client, LatencyModel, SimNet};
use nodefz_rt::VDur;

use crate::common::{BugCase, BugInfo, Chatter, Outcome, RaceType, RunCfg, Variant};

/// The MGS reproduction.
pub struct Mgs;

const QUERIES: usize = 4;

impl BugCase for Mgs {
    fn info(&self) -> BugInfo {
        BugInfo {
            abbr: "MGS",
            name: "mongoose",
            bug_ref: "#2992",
            race: RaceType::Cov,
            racing_events: "NW-NW",
            race_on: "Database",
            impact: "Incorrect response",
            fix: "Global counter",
            in_fig6: true,
            novel: false,
        }
    }

    fn static_model(&self, variant: Variant) -> Option<crate::statics::StaticModel> {
        use crate::statics::{AtomKind, ModelBuilder};
        let mut m = ModelBuilder::new("MGS", variant);
        let req = m.atom("net:populate", AtomKind::Net, 0);
        // Every sub-query's completion bumps the fill counter; the fix
        // (a remaining-counter) changes when the promise resolves, not
        // which shared state the completions update.
        for i in 0..QUERIES {
            let find = m.atom(&format!("kv.find:doc{i}"), AtomKind::Kv, req);
            m.update(find, "mgs:filled");
        }
        Some(m.build())
    }

    fn run(&self, cfg: &RunCfg, variant: Variant) -> Outcome {
        let mut el = cfg.build_loop();
        let net = SimNet::with_latency(LatencyModel {
            base: VDur::millis(2),
            jitter: 0.05,
        });
        // Each element: number of sub-queries that had completed when the
        // promise resolved.
        let resolved_with: Rc<RefCell<Vec<usize>>> = Rc::new(RefCell::new(Vec::new()));
        let n = net.clone();
        let res = resolved_with.clone();
        el.enter(move |cx| {
            // A 4-connection pool: replies across connections reorder.
            let kv = Kv::connect_with(
                cx,
                4,
                KvTiming {
                    latency: VDur::millis(1),
                    latency_jitter: 0.12,
                    proc: VDur::micros(200),
                    proc_jitter: 0.12,
                },
            )
            .expect("kv pool");
            for i in 0..QUERIES {
                kv.set_sync(&format!("doc:{i}:ref"), &format!("value-{i}"));
            }
            let kv_handler = kv.clone();
            let res = res.clone();
            n.listen(cx, 80, move |_cx, conn| {
                let kv = kv_handler.clone();
                let res = res.clone();
                conn.on_data(move |cx, conn, _msg| {
                    cx.busy(VDur::micros(150));
                    let filled: Rc<RefCell<usize>> = Rc::new(RefCell::new(0));
                    let resolve = {
                        let filled = filled.clone();
                        let res = res.clone();
                        let me = conn.clone();
                        Rc::new(move |cx: &mut nodefz_rt::Ctx<'_>| {
                            let done = *filled.borrow();
                            res.borrow_mut().push(done);
                            let _ = me.write(cx, format!("populated:{done}").into_bytes());
                        })
                    };
                    // The MGS fix: a shared `remaining` counter.
                    let remaining: Rc<RefCell<usize>> = Rc::new(RefCell::new(QUERIES));
                    for i in 0..QUERIES {
                        let filled = filled.clone();
                        let resolve = resolve.clone();
                        let remaining = remaining.clone();
                        let is_last = i == QUERIES - 1;
                        kv.find(cx, &format!("doc:{i}:"), move |cx, _rows| {
                            cx.touch_update("mgs:filled");
                            *filled.borrow_mut() += 1;
                            match variant {
                                Variant::Buggy => {
                                    // BUGGY (Figure 4, before): resolve on
                                    // the last *submitted* query.
                                    if is_last {
                                        resolve(cx);
                                    }
                                }
                                Variant::Fixed => {
                                    // FIX (Figure 4, after): resolve when
                                    // --remaining == 0.
                                    let mut r = remaining.borrow_mut();
                                    *r -= 1;
                                    if *r == 0 {
                                        drop(r);
                                        resolve(cx);
                                    }
                                }
                            }
                        });
                    }
                });
            })
            .expect("listen");
            Chatter::spawn(cx, &n, 81, 4, 10, VDur::micros(600), VDur::micros(90));
            crate::common::heartbeat(cx, VDur::micros(800), VDur::millis(12));
        });
        el.enter(|cx| {
            let c = Client::connect(cx, &net, 80);
            c.send(cx, b"populate".to_vec());
            c.close_after(cx, VDur::millis(14));
            net.close_all_listeners_after(cx, VDur::millis(25));
        });
        let report = el.run();
        let resolved = resolved_with.borrow();
        let premature = resolved.iter().filter(|&&n| n < QUERIES).count();
        let manifested = premature > 0;
        Outcome {
            manifested,
            detail: format!(
                "promise resolutions with completed sub-queries: {:?} (need {QUERIES})",
                *resolved
            ),
            report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::check_case;

    #[test]
    fn mgs_fixed_never_manifests_under_fuzz() {
        check_case::fixed_never_manifests(&Mgs, 20);
    }

    #[test]
    fn mgs_buggy_manifests_under_fuzz() {
        check_case::buggy_manifests_under_fuzz(&Mgs, 60);
    }

    #[test]
    fn mgs_vanilla_rarely_manifests() {
        check_case::vanilla_rarely_manifests(&Mgs, 40, 6);
    }

    #[test]
    fn mgs_is_figure_4() {
        let info = Mgs.info();
        assert_eq!(info.race, RaceType::Cov);
        assert_eq!(info.fix, "Global counter");
    }
}
