//! GHO′ — ghost issue #1834 (AV, NW–NW, database → too many accounts).
//!
//! Registering a username asynchronously checks whether the name exists in
//! the database and asynchronously inserts it if not. Two interleaved
//! registrations can both observe "absent" and both insert — a classic
//! check-then-act atomicity violation on *database state*, invisible to
//! memory-only race detectors (§3.3.2).
//!
//! As in the paper (§5.1.1), the upstream bug could not be triggered
//! externally, so this is the standalone GHO′ replica of the racy code.
//! The upstream "fix" deprecated the endpoint; our fixed variant models the
//! equivalent safe behaviour by funnelling check-and-insert into a single
//! atomic server-side operation (`SETNX`).

use nodefz_kv::{Kv, KvTiming};
use nodefz_net::{Client, LatencyModel, SimNet};
use nodefz_rt::VDur;

use crate::common::{BugCase, BugInfo, Chatter, Outcome, RaceType, RunCfg, Variant};

/// The GHO′ reproduction.
pub struct Gho;

impl BugCase for Gho {
    fn info(&self) -> BugInfo {
        BugInfo {
            abbr: "GHO",
            name: "ghost (GHO')",
            bug_ref: "#1834",
            race: RaceType::Av,
            racing_events: "NW-NW",
            race_on: "Database",
            impact: "Creates too many user accounts",
            fix: "Deprecate functionality (modelled: atomic check-and-insert)",
            in_fig6: true,
            novel: false,
        }
    }

    fn static_model(&self, variant: Variant) -> Option<crate::statics::StaticModel> {
        use crate::statics::{AtomKind, ModelBuilder};
        let mut m = ModelBuilder::new("GHO", variant);
        for r in 1..=2u32 {
            let req = m.atom(&format!("net:signup#{r}"), AtomKind::Net, 0);
            match variant {
                Variant::Buggy => {
                    // Async check-then-insert: the read and the write sit
                    // in different callbacks of the same chain.
                    let get = m.atom(&format!("kv.get:user-row#{r}"), AtomKind::Kv, req);
                    m.read(get, "gho:user-row");
                    let set = m.atom(&format!("kv.set:user-row#{r}"), AtomKind::Kv, get);
                    m.write(set, "gho:user-row");
                }
                Variant::Fixed => {
                    // setnx: the check-and-insert is a single server-side
                    // atomic operation — no instrumented window remains.
                    let _ = m.atom(&format!("kv.setnx:user-row#{r}"), AtomKind::Kv, req);
                }
            }
        }
        Some(m.build())
    }

    fn run(&self, cfg: &RunCfg, variant: Variant) -> Outcome {
        let mut el = cfg.build_loop();
        let net = SimNet::with_latency(LatencyModel {
            base: VDur::millis(2),
            jitter: 0.05,
        });
        let n = net.clone();
        let kv_out = el.enter(move |cx| {
            let kv = Kv::connect_with(
                cx,
                2,
                KvTiming {
                    latency: VDur::millis(1),
                    latency_jitter: 0.05,
                    proc: VDur::micros(200),
                    proc_jitter: 0.1,
                },
            )
            .expect("kv pool");
            let kv_handler = kv.clone();
            n.listen(cx, 80, move |cx, conn| {
                let kv = kv_handler.clone();
                cx.busy(VDur::micros(200));
                conn.on_data(move |cx, conn, msg| {
                    let Some(name) = msg.strip_prefix(b"signup:") else {
                        return;
                    };
                    let name = String::from_utf8_lossy(name).to_string();
                    cx.busy(VDur::micros(250));
                    let kv = kv.clone();
                    match variant {
                        Variant::Buggy => {
                            // Async check...
                            let key = format!("user:{name}");
                            let key_inner = key.clone();
                            let kv2 = kv.clone();
                            let who = conn.id();
                            kv.get(cx, &key, move |cx, existing| {
                                cx.touch_read("gho:user-row");
                                if existing.is_none() {
                                    cx.busy(VDur::micros(150));
                                    // ...then async insert: the gap is the
                                    // atomicity violation.
                                    let kv3 = kv2.clone();
                                    kv2.set(cx, &key_inner, "profile", move |cx, ()| {
                                        // One row per successful insert.
                                        cx.touch_write("gho:user-row");
                                        kv3.set(
                                            cx,
                                            &format!("acct:{name}:{who:?}"),
                                            "row",
                                            |_cx, ()| {},
                                        );
                                    });
                                }
                            });
                        }
                        Variant::Fixed => {
                            // Atomic server-side check-and-insert.
                            let key = format!("user:{name}");
                            let kv2 = kv.clone();
                            let who = conn.id();
                            kv.setnx(cx, &key, "profile", move |cx, created| {
                                if created {
                                    kv2.set(
                                        cx,
                                        &format!("acct:{name}:{who:?}"),
                                        "row",
                                        |_cx, ()| {},
                                    );
                                }
                            });
                        }
                    }
                });
            })
            .expect("listen");
            Chatter::spawn(cx, &n, 81, 4, 10, VDur::micros(600), VDur::micros(90));
            crate::common::heartbeat(cx, VDur::micros(800), VDur::millis(15));
            kv
        });
        el.enter(|cx| {
            let first = Client::connect(cx, &net, 80);
            first.send(cx, b"signup:alice".to_vec());
            first.close_after(cx, VDur::millis(14));
            // The second registration normally arrives after the first
            // one's insert has been applied.
            let second = Client::connect(cx, &net, 80);
            second.send_after(
                cx,
                VDur::micros(crate::common::tuned_margin_us(3_800)),
                b"signup:alice".to_vec(),
            );
            second.close_after(cx, VDur::millis(14));
            net.close_all_listeners_after(cx, VDur::millis(30));
        });
        let report = el.run();
        let rows = kv_out.count_prefix_sync("acct:alice");
        let manifested = rows > 1;
        Outcome {
            manifested,
            detail: format!("{rows} account row(s) for username 'alice'"),
            report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::check_case;

    #[test]
    fn gho_fixed_never_manifests_under_fuzz() {
        check_case::fixed_never_manifests(&Gho, 20);
    }

    #[test]
    fn gho_buggy_manifests_under_fuzz() {
        check_case::buggy_manifests_under_fuzz(&Gho, 60);
    }

    #[test]
    fn gho_vanilla_rarely_manifests() {
        check_case::vanilla_rarely_manifests(&Gho, 40, 4);
    }

    #[test]
    fn gho_is_a_database_race() {
        let info = Gho.info();
        assert_eq!(info.race_on, "Database");
        assert!(info.in_fig6);
    }
}
