//! SIO — socket.io issue #1862 (AV, NW–NW, array → request hangs).
//!
//! The connection manager of Figure 2 in the paper. `socket()` creates a
//! socket and — in the buggy version — only adds it to the `sockets` array
//! once the asynchronous 'connect' handshake completes. `destroy()` removes
//! a socket and closes the whole manager when the array is empty. A fast
//! connection that connects and disconnects while a slow connection is
//! still mid-handshake finds the array empty, closes the manager, and the
//! slow connection can never complete — its request hangs.
//!
//! Fix (as upstream): read/write in the same callback — register the socket
//! synchronously in `socket()`, before the asynchronous handshake.

use std::cell::RefCell;
use std::rc::Rc;

use nodefz_net::{Client, ConnId, LatencyModel, SimNet};
use nodefz_rt::VDur;

use crate::common::{BugCase, BugInfo, Chatter, Outcome, RaceType, RunCfg, Variant};

/// The SIO reproduction.
pub struct Sio;

#[derive(Default)]
struct Manager {
    sockets: Vec<ConnId>,
    closed: bool,
    /// Connections that already said goodbye themselves (their own late
    /// handshake completions are not the studied bug).
    departed: Vec<ConnId>,
}

impl BugCase for Sio {
    fn info(&self) -> BugInfo {
        BugInfo {
            abbr: "SIO",
            name: "socket.io",
            bug_ref: "#1862",
            race: RaceType::Av,
            racing_events: "NW-NW",
            race_on: "Array",
            impact: "Request hangs",
            fix: "Rd/wr in same callback",
            in_fig6: true,
            novel: false,
        }
    }

    fn static_model(&self, variant: Variant) -> Option<crate::statics::StaticModel> {
        use crate::statics::{AtomKind, ModelBuilder};
        let mut m = ModelBuilder::new("SIO", variant);
        for speed in ["fast", "slow"] {
            let open = m.atom(&format!("net:open-{speed}"), AtomKind::Net, 0);
            m.read(open, "sio:manager");
            let hs = m.atom(&format!("pool:handshake-{speed}"), AtomKind::Pool, open);
            m.read(hs, "sio:manager");
            m.write(hs, "sio:manager");
        }
        let bye = m.atom("net:bye", AtomKind::Net, 0);
        m.write(bye, "sio:manager");
        // The fix registers the socket synchronously in the open handler,
        // a value-level change: the instrumented accesses (and so the
        // static over-approximation) are identical in both variants.
        Some(m.build())
    }

    fn run(&self, cfg: &RunCfg, variant: Variant) -> Outcome {
        let mut el = cfg.build_loop();
        let net = SimNet::with_latency(LatencyModel {
            base: VDur::millis(2),
            jitter: 0.05,
        });
        let manager = Rc::new(RefCell::new(Manager::default()));
        // Oracle flag: a handshake that was ACCEPTED while the manager was
        // open later found it closed (the studied AV). An open arriving at
        // an already-closed manager is politely rejected and is not the
        // bug.
        let premature = Rc::new(RefCell::new(false));
        let n = net.clone();
        let m = manager.clone();
        let prem = premature.clone();
        el.enter(move |cx| {
            n.listen(cx, 80, move |_cx, conn| {
                let m = m.clone();
                let prem = prem.clone();
                conn.on_data(move |cx, conn, msg| {
                    cx.busy(VDur::micros(150));
                    match msg.as_slice() {
                        b"open:fast" | b"open:slow" => {
                            cx.touch_read("sio:manager");
                            if m.borrow().closed {
                                let _ = conn.write(cx, b"rejected".to_vec());
                                return;
                            }
                            let slow = msg.ends_with(b"slow");
                            let handshake = if slow {
                                VDur::micros(1_200)
                            } else {
                                VDur::micros(250)
                            };
                            if variant == Variant::Fixed {
                                // FIX: register synchronously, before the
                                // asynchronous handshake.
                                m.borrow_mut().sockets.push(conn.id());
                            }
                            let m2 = m.clone();
                            let me = conn.clone();
                            let prem = prem.clone();
                            let _ = cx.submit_work(
                                handshake,
                                |_| (),
                                move |cx, ()| {
                                    cx.touch_read("sio:manager");
                                    cx.touch_write("sio:manager");
                                    let mut mgr = m2.borrow_mut();
                                    if mgr.closed {
                                        // Manager closed between accepting
                                        // this open and completing its
                                        // handshake: the studied AV —
                                        // unless this socket itself already
                                        // left.
                                        if !mgr.departed.contains(&me.id()) {
                                            *prem.borrow_mut() = true;
                                        }
                                        return;
                                    }
                                    if variant == Variant::Buggy && !mgr.sockets.contains(&me.id())
                                    {
                                        // BUGGY: registration happens only
                                        // on 'connect' completion.
                                        mgr.sockets.push(me.id());
                                    }
                                    drop(mgr);
                                    let _ = me.write(cx, b"connected".to_vec());
                                },
                            );
                        }
                        b"bye" => {
                            cx.touch_write("sio:manager");
                            let mut mgr = m.borrow_mut();
                            let id = conn.id();
                            mgr.departed.push(id);
                            mgr.sockets.retain(|&s| s != id);
                            if mgr.sockets.is_empty() {
                                // Last socket gone: shut the manager down.
                                mgr.closed = true;
                            }
                        }
                        _ => {}
                    }
                });
            })
            .expect("listen");
            Chatter::spawn(cx, &n, 81, 4, 10, VDur::micros(600), VDur::micros(90));
            crate::common::heartbeat(cx, VDur::micros(800), VDur::millis(12));
        });
        let slow_client = el.enter(|cx| {
            // Fast connection: opens, completes, and says goodbye.
            let fast = Client::connect(cx, &net, 80);
            fast.send(cx, b"open:fast".to_vec());
            fast.send_after(
                cx,
                VDur::micros(crate::common::tuned_margin_us(3_600)),
                b"bye".to_vec(),
            );
            fast.close_after(cx, VDur::millis(14));
            // Slow connection: its handshake is still in flight when the
            // fast one says goodbye (under an adversarial schedule).
            let slow = Client::connect_after(cx, &net, 80, VDur::micros(200));
            slow.send(cx, b"open:slow".to_vec());
            slow.close_after(cx, VDur::millis(14));
            net.close_all_listeners_after(cx, VDur::millis(28));
            slow
        });
        let report = el.run();
        let connected = slow_client
            .received()
            .iter()
            .any(|m| m.as_slice() == b"connected");
        let manifested = *premature.borrow() && !connected;
        Outcome {
            manifested,
            detail: if manifested {
                "slow connection never completed: manager closed mid-handshake".into()
            } else {
                "slow connection completed".into()
            },
            report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::check_case;

    #[test]
    fn sio_fixed_never_manifests_under_fuzz() {
        check_case::fixed_never_manifests(&Sio, 20);
    }

    #[test]
    fn sio_buggy_manifests_under_fuzz() {
        check_case::buggy_manifests_under_fuzz(&Sio, 60);
    }

    #[test]
    fn sio_vanilla_rarely_manifests() {
        check_case::vanilla_rarely_manifests(&Sio, 40, 2);
    }

    #[test]
    fn sio_is_figure_2() {
        let info = Sio.info();
        assert_eq!(info.race_on, "Array");
        assert_eq!(info.impact, "Request hangs");
    }
}
