//! Shared harness for the bug reproductions.
//!
//! Every bug module implements [`BugCase`]: a faithful re-creation of the
//! racy logic (buggy variant), the community's actual fix per Table 2's
//! "Fix" column (fixed variant), a workload driver, and an oracle that
//! inspects the run to decide whether the race *manifested*.

use nodefz::Mode;
use nodefz_net::SimNet;
use nodefz_rt::{Ctx, EventLoop, LoopConfig, LoopPool, RunReport, VDur, VTime};

/// Which variant of the application to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// The original racy code.
    Buggy,
    /// The community's fix (Table 2, "Fix" column).
    Fixed,
}

/// The race classification of §3.2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RaceType {
    /// Atomicity violation.
    Av,
    /// Ordering violation.
    Ov,
    /// Commutative ordering violation (the paper's new sub-type).
    Cov,
    /// "Race against time" (§5.2.3) — neither an AV nor an OV.
    TimeRace,
}

impl RaceType {
    /// The label used in Table 2.
    pub fn label(self) -> &'static str {
        match self {
            RaceType::Av => "AV",
            RaceType::Ov => "OV",
            RaceType::Cov => "(C)OV",
            RaceType::TimeRace => "time",
        }
    }
}

/// Static description of a studied bug (the Table 1/Table 2 row).
#[derive(Clone, Debug)]
pub struct BugInfo {
    /// Short identifier ("EPL", "GHO", …).
    pub abbr: &'static str,
    /// Software name the bug was studied in.
    pub name: &'static str,
    /// Upstream issue/PR reference.
    pub bug_ref: &'static str,
    /// Race classification.
    pub race: RaceType,
    /// The racing event types (Table 2 "Racing events").
    pub racing_events: &'static str,
    /// The racy object (Table 2 "Race on").
    pub race_on: &'static str,
    /// Observable impact (Table 2 "Impact").
    pub impact: &'static str,
    /// Fix strategy (Table 2 "Fix").
    pub fix: &'static str,
    /// Whether this bug is part of the Figure 6 experiment set (the paper
    /// excludes EPL, WPT and RST from that experiment; §5.1.1).
    pub in_fig6: bool,
    /// Whether the paper lists this among the novel findings (§5.2).
    pub novel: bool,
}

/// One reproduction run's configuration.
#[derive(Clone, Debug)]
pub struct RunCfg {
    /// Runtime version under test.
    pub mode: Mode,
    /// Environment seed (latencies, durations, costs).
    pub env_seed: u64,
    /// Fuzz-scheduler decision seed.
    pub sched_seed: u64,
    /// Whether to record the full type schedule.
    pub trace: bool,
    /// Loop-state pool to recycle heap buffers through (`None` builds a
    /// fresh loop per run). Recycling never changes behavior — a pooled
    /// loop is reset to exactly the state a fresh one would have.
    pub pool: Option<LoopPool>,
    /// Dispatch-provenance event log attached to every loop this config
    /// builds. Recording reads the run (causes + instrumented accesses);
    /// it never changes seeds, decisions, or schedules. The `nodefz-hb`
    /// analyzer consumes the result.
    pub events: Option<nodefz_rt::EventLogHandle>,
    /// Observability handle attached to every loop this config builds
    /// (compile-time feature `obs`). Profiling reads the run; it never
    /// changes seeds, decisions, or schedules.
    #[cfg(feature = "obs")]
    pub obs: Option<nodefz_rt::ObsHandle>,
}

impl RunCfg {
    /// A configuration for one run of `mode` with the given environment
    /// seed (the scheduler seed is derived).
    pub fn new(mode: Mode, env_seed: u64) -> RunCfg {
        RunCfg {
            mode,
            env_seed,
            sched_seed: env_seed.wrapping_mul(0x9E37_79B9).wrapping_add(17),
            trace: true,
            pool: None,
            events: None,
            #[cfg(feature = "obs")]
            obs: None,
        }
    }

    /// Sets the loop-state pool this run recycles through.
    #[must_use]
    pub fn pooled(mut self, pool: &LoopPool) -> RunCfg {
        self.pool = Some(pool.clone());
        self
    }

    /// Attaches a dispatch-provenance event log to every loop built from
    /// this configuration. The handle is reset per build; read it back
    /// with [`nodefz_rt::EventLogHandle::snapshot`] after the run.
    #[must_use]
    pub fn events(mut self, events: &nodefz_rt::EventLogHandle) -> RunCfg {
        self.events = Some(events.clone());
        self
    }

    /// Attaches an observability handle to every loop built from this
    /// configuration (compile-time feature `obs`).
    #[cfg(feature = "obs")]
    #[must_use]
    pub fn observed(mut self, obs: &nodefz_rt::ObsHandle) -> RunCfg {
        self.obs = Some(obs.clone());
        self
    }

    /// Builds the event loop for this configuration.
    ///
    /// Bug runs get a tight virtual-time cap: every workload finishes well
    /// within one virtual minute, and hang oracles rely on the cap.
    pub fn build_loop(&self) -> EventLoop {
        let cfg = LoopConfig {
            max_vtime: VTime::ZERO + VDur::secs(60),
            trace: self.trace,
            ..LoopConfig::seeded(self.env_seed)
        };
        #[allow(unused_mut)]
        let mut el = match &self.pool {
            Some(pool) => self.mode.build_loop_pooled(cfg, self.sched_seed, pool),
            None => self.mode.build_loop(cfg, self.sched_seed),
        };
        if let Some(events) = &self.events {
            el.set_event_log(events);
        }
        #[cfg(feature = "obs")]
        if let Some(obs) = &self.obs {
            el.set_obs(obs.clone());
        }
        el
    }
}

/// The observed outcome of one reproduction run.
#[derive(Debug)]
pub struct Outcome {
    /// Whether the race manifested (the oracle tripped).
    pub manifested: bool,
    /// Human-readable evidence.
    pub detail: String,
    /// The full run report.
    pub report: RunReport,
}

/// A reproduced bug: metadata, driver, and oracle.
pub trait BugCase {
    /// Static description (Table 1 / Table 2 row).
    fn info(&self) -> BugInfo;

    /// Runs the workload once and applies the oracle.
    fn run(&self, cfg: &RunCfg, variant: Variant) -> Outcome;

    /// A declarative static model of this variant's callback-registration
    /// structure, for zero-execution race prediction (`nodefz-sa`).
    /// Returns `None` when no model has been authored; every fig6 app
    /// provides one for both variants.
    fn static_model(&self, _variant: Variant) -> Option<crate::statics::StaticModel> {
        None
    }

    /// Runs this software's "test suite" — a larger workload used by the
    /// schedule-diversity (Figure 7) and overhead (Figure 8) experiments.
    ///
    /// The default suite mimics a module's test run: six test cases
    /// (alternating buggy and fixed variants under varied environments),
    /// schedules concatenated. Seeds are derived from `cfg.env_seed` so a
    /// suite run is as reproducible as a single run.
    fn suite(&self, cfg: &RunCfg) -> RunReport {
        let mut combined: Option<RunReport> = None;
        for case_no in 0..6u64 {
            let variant = if case_no % 2 == 0 {
                Variant::Buggy
            } else {
                Variant::Fixed
            };
            let sub = RunCfg {
                env_seed: cfg.env_seed.wrapping_mul(1_000_003).wrapping_add(case_no),
                sched_seed: cfg.sched_seed.wrapping_add(case_no * 7919),
                ..cfg.clone()
            };
            let report = self.run(&sub, variant).report;
            match &mut combined {
                None => combined = Some(report),
                Some(total) => {
                    total.schedule.extend(&report.schedule);
                    total.iterations += report.iterations;
                    total.dispatched += report.dispatched;
                    total.end_time = total.end_time.max(report.end_time);
                }
            }
        }
        combined.expect("at least one suite case ran")
    }
}

/// Returns the workload's racing-event delay in microseconds: the
/// per-bug default, unless the `NFZ_MARGIN_US` environment variable
/// overrides it (used by the calibration sweep only).
pub fn tuned_margin_us(default_us: u64) -> u64 {
    std::env::var("NFZ_MARGIN_US")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default_us)
}

/// Spawns a periodic "monitoring" timer that stops itself after `until`.
///
/// Real servers run periodic timers (stats, keep-alives); §5.1.1 notes the
/// paper's adapted test cases deliberately introduce timers because they
/// are a fuzzing lever — each expired timer is a deferral opportunity that
/// injects a 5 ms loop delay.
pub fn heartbeat(cx: &mut Ctx<'_>, period: nodefz_rt::VDur, until: nodefz_rt::VDur) {
    use std::cell::RefCell;
    use std::rc::Rc;
    let deadline = cx.now() + until;
    let id = Rc::new(RefCell::new(None));
    let id2 = id.clone();
    let tid = cx.set_interval(period, move |cx| {
        cx.busy(nodefz_rt::VDur::micros(30));
        if cx.now() >= deadline {
            if let Some(tid) = *id2.borrow() {
                cx.clear_timer(tid);
            }
        }
    });
    *id.borrow_mut() = Some(tid);
}

/// Reusable assertions for bug-case tests and experiments.
///
/// Every bug module's tests call these three checks, which encode the
/// paper's headline claims per bug: the fix holds under fuzzing, the buggy
/// code manifests under fuzzing, and vanilla schedules rarely expose it.
pub mod check_case {
    use super::{BugCase, RunCfg, Variant};
    use nodefz::Mode;

    /// Asserts the fixed variant never manifests across `seeds` fuzz runs
    /// (plus a vanilla run per seed) — the §4.4 fidelity claim applied to
    /// the patched software.
    ///
    /// # Panics
    ///
    /// Panics if any run manifests.
    pub fn fixed_never_manifests(case: &dyn BugCase, seeds: u64) {
        for seed in 0..seeds {
            for mode in [Mode::Vanilla, Mode::Fuzz] {
                let label = mode.label();
                let out = case.run(&RunCfg::new(mode, seed), Variant::Fixed);
                assert!(
                    !out.manifested,
                    "{} fixed variant manifested under {label} seed {seed}: {}",
                    case.info().abbr,
                    out.detail
                );
            }
        }
    }

    /// Asserts the buggy variant manifests at least once within
    /// `max_seeds` runs under the standard fuzz parameterization.
    ///
    /// # Panics
    ///
    /// Panics if no run manifests.
    pub fn buggy_manifests_under_fuzz(case: &dyn BugCase, max_seeds: u64) {
        for seed in 0..max_seeds {
            let out = case.run(&RunCfg::new(Mode::Fuzz, seed), Variant::Buggy);
            if out.manifested {
                return;
            }
        }
        panic!(
            "{} buggy variant never manifested in {max_seeds} nodeFZ runs",
            case.info().abbr
        );
    }

    /// Asserts the buggy variant manifests in at most `max_hits` of
    /// `seeds` vanilla runs.
    ///
    /// # Panics
    ///
    /// Panics if vanilla manifests more often than allowed.
    pub fn vanilla_rarely_manifests(case: &dyn BugCase, seeds: u64, max_hits: u64) {
        let mut hits = 0;
        for seed in 0..seeds {
            let out = case.run(&RunCfg::new(Mode::Vanilla, seed), Variant::Buggy);
            if out.manifested {
                hits += 1;
            }
        }
        assert!(
            hits <= max_hits,
            "{} manifested in {hits}/{seeds} vanilla runs (allowed {max_hits})",
            case.info().abbr
        );
    }
}

/// Background traffic that keeps the event loop busy.
///
/// Real server test suites process many requests concurrently, which makes
/// loop iterations long and puts many events into each poll window — the
/// precondition for the fuzzer's ready-list shuffle to bite. `Chatter`
/// reproduces that: a side server plus scripted clients whose handlers burn
/// a configurable amount of virtual CPU.
pub struct Chatter;

impl Chatter {
    /// Spawns a chatter server on `port` and `clients` clients that each
    /// send `msgs` messages spaced `spacing` apart; every handler burns
    /// `busy` of virtual CPU. Everything tears down by
    /// `clients*msgs*spacing + grace`.
    pub fn spawn(
        cx: &mut Ctx<'_>,
        net: &SimNet,
        port: u16,
        clients: usize,
        msgs: usize,
        spacing: VDur,
        busy: VDur,
    ) {
        let server = net
            .listen(cx, port, move |_cx, conn| {
                conn.on_data(move |cx, _conn, _msg| {
                    cx.busy(busy);
                });
            })
            .expect("chatter port must be free");
        let horizon = spacing * (msgs as u64 + 2) + VDur::millis(20);
        for c in 0..clients {
            let client =
                nodefz_net::Client::connect_after(cx, net, port, VDur::micros(50 * c as u64));
            for m in 0..msgs {
                client.send_after(cx, spacing * m as u64, b"noise".to_vec());
            }
            client.close_after(cx, horizon);
        }
        cx.set_timeout(horizon + VDur::millis(10), move |cx| {
            server.close(cx);
        });
    }
}
