//! KUE (novel) — kue issue #967 (AV → lock-wait timeout).
//!
//! The novel bug Node.fz found in the kue test suite (§5.2.2): a test case
//! times out because a Redis lock cannot be acquired, suggesting a
//! deadlock. The paper could not pin the root cause ("Unknown" in
//! Table 2); we reproduce the *symptom* with one plausible mechanism: a
//! worker's lock release is guarded by a shared `active_job` flag that a
//! concurrently-arriving pause event clears, so an adversarial
//! interleaving skips the release and the lock is held forever.
//!
//! Fixed variant: the completion callback releases the lock it holds
//! unconditionally.

use std::cell::RefCell;
use std::rc::Rc;

use nodefz_kv::{Kv, KvTiming};
use nodefz_net::{Client, LatencyModel, SimNet};
use nodefz_rt::VDur;

use crate::common::{BugCase, BugInfo, Chatter, Outcome, RaceType, RunCfg, Variant};

/// The novel KUE reproduction.
pub struct KueNovel;

impl BugCase for KueNovel {
    fn info(&self) -> BugInfo {
        BugInfo {
            abbr: "KUE*",
            name: "kue (novel)",
            bug_ref: "#967",
            race: RaceType::Av,
            racing_events: "Unknown",
            race_on: "Unknown",
            impact: "Tests fail because lock is taken",
            fix: "Unknown (modelled: release in completion callback)",
            in_fig6: true,
            novel: true,
        }
    }

    fn static_model(&self, variant: Variant) -> Option<crate::statics::StaticModel> {
        use crate::statics::{AtomKind, ModelBuilder};
        let mut m = ModelBuilder::new("KUE*", variant);
        let run = m.atom("net:run-job", AtomKind::Net, 0);
        let lock = m.atom("kv.setnx:lock", AtomKind::Kv, run);
        m.write(lock, "kue*:active-job");
        let done = m.atom("pool:job-done", AtomKind::Pool, lock);
        if variant == Variant::Buggy {
            // BUGGY: the release is guarded by the shared active-job
            // flag; the fixed completion releases unconditionally and
            // performs no instrumented check.
            m.read(done, "kue*:active-job");
            m.write(done, "kue*:active-job");
        }
        let pause = m.atom("net:pause", AtomKind::Net, 0);
        m.write(pause, "kue*:active-job");
        Some(m.build())
    }

    fn run(&self, cfg: &RunCfg, variant: Variant) -> Outcome {
        let mut el = cfg.build_loop();
        let net = SimNet::with_latency(LatencyModel {
            base: VDur::millis(2),
            jitter: 0.05,
        });
        let active_job: Rc<RefCell<Option<u32>>> = Rc::new(RefCell::new(None));
        let n = net.clone();
        let active = active_job.clone();
        el.enter(move |cx| {
            let kv = Kv::connect_with(
                cx,
                2,
                KvTiming {
                    latency: VDur::micros(500),
                    latency_jitter: 0.1,
                    proc: VDur::micros(150),
                    proc_jitter: 0.1,
                },
            )
            .expect("kv pool");
            let kv_handler = kv.clone();
            let active = active.clone();
            n.listen(cx, 80, move |_cx, conn| {
                let kv = kv_handler.clone();
                let active = active.clone();
                conn.on_data(move |cx, _conn, msg| {
                    cx.busy(VDur::micros(150));
                    match msg.as_slice() {
                        b"run-job" => {
                            let kv2 = kv.clone();
                            let active = active.clone();
                            kv.setnx(cx, "lock:q", "worker-1", move |cx, won| {
                                if !won {
                                    return;
                                }
                                cx.touch_write("kue*:active-job");
                                *active.borrow_mut() = Some(1);
                                let kv3 = kv2.clone();
                                let active2 = active.clone();
                                // Process the job on the worker pool.
                                let _ = cx.submit_work(
                                    VDur::millis(2),
                                    |_| (),
                                    move |cx, ()| match variant {
                                        Variant::Buggy => {
                                            // BUGGY: only release if the
                                            // shared flag says a job is
                                            // still active.
                                            cx.touch_read("kue*:active-job");
                                            cx.touch_write("kue*:active-job");
                                            if active2.borrow_mut().take().is_some() {
                                                kv3.del(cx, "lock:q", |_cx, _| {});
                                            }
                                        }
                                        Variant::Fixed => {
                                            // FIX: this chain acquired the
                                            // lock; release it regardless.
                                            active2.borrow_mut().take();
                                            kv3.del(cx, "lock:q", |_cx, _| {});
                                        }
                                    },
                                );
                            });
                        }
                        b"pause" => {
                            // The pause handler assumes any active job has
                            // already finished and clears the flag.
                            cx.touch_write("kue*:active-job");
                            active.borrow_mut().take();
                        }
                        _ => {}
                    }
                });
            })
            .expect("listen");
            Chatter::spawn(cx, &n, 81, 4, 10, VDur::micros(600), VDur::micros(90));
            crate::common::heartbeat(cx, VDur::micros(800), VDur::millis(12));
            // --- The next test case: poll for the lock, time out if it is
            // still held.
            let kv_probe = kv.clone();
            cx.set_timeout(VDur::millis(9), move |cx| {
                let mut attempts = 0;
                fn try_acquire(cx: &mut nodefz_rt::Ctx<'_>, kv: Kv, attempts: &mut u32) {
                    let n = *attempts;
                    let mut n2 = n;
                    let kv2 = kv.clone();
                    kv.setnx(cx, "lock:q", "worker-2", move |cx, won| {
                        if won {
                            kv2.del(cx, "lock:q", |_cx, _| {});
                            return;
                        }
                        n2 += 1;
                        if n2 >= 5 {
                            cx.report_error(
                                "lock-timeout",
                                "test timed out waiting for the queue lock",
                            );
                            return;
                        }
                        let kv3 = kv2.clone();
                        cx.set_timeout(VDur::millis(2), move |cx| {
                            let mut a = n2;
                            try_acquire(cx, kv3, &mut a);
                        });
                    });
                }
                try_acquire(cx, kv_probe, &mut attempts);
            });
        });
        el.enter(|cx| {
            let worker = Client::connect(cx, &net, 80);
            worker.send(cx, b"run-job".to_vec());
            // The pause normally arrives after the job completed and the
            // lock was released.
            worker.send_after(
                cx,
                VDur::micros(crate::common::tuned_margin_us(5_800)),
                b"pause".to_vec(),
            );
            worker.close_after(cx, VDur::millis(22));
            net.close_all_listeners_after(cx, VDur::millis(30));
        });
        let report = el.run();
        let manifested = report.has_error("lock-timeout");
        Outcome {
            manifested,
            detail: if manifested {
                "lock never released: next test timed out acquiring it".into()
            } else {
                "lock released and reacquired normally".into()
            },
            report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::check_case;

    #[test]
    fn kue_novel_fixed_never_manifests_under_fuzz() {
        check_case::fixed_never_manifests(&KueNovel, 20);
    }

    #[test]
    fn kue_novel_buggy_manifests_under_fuzz() {
        check_case::buggy_manifests_under_fuzz(&KueNovel, 60);
    }

    #[test]
    fn kue_novel_vanilla_rarely_manifests() {
        check_case::vanilla_rarely_manifests(&KueNovel, 40, 2);
    }

    #[test]
    fn kue_novel_cause_is_unknown_upstream() {
        assert_eq!(KueNovel.info().racing_events, "Unknown");
    }
}
