//! KUE (2014) — commit 03736bd7: a "race against time" (§5.2.3).
//!
//! An old kue test assumed timers would *not* be executed with high
//! precision — it crashed if a timer went off too soon after its scheduled
//! deadline. On a busy loop, timers are usually noticed late; a schedule
//! that keeps the loop spinning notices them almost exactly on time.
//!
//! The paper uses this bug to demonstrate *guided* fuzzing: a
//! parameterization that defers worker-pool tasks and event-loop events
//! with high probability makes the loop spin, fires timers accurately, and
//! quadruples the manifestation rate (3/50 → 13/50).
//!
//! Fixed variant: the test tolerates precise timers.

use std::cell::RefCell;
use std::rc::Rc;

use nodefz_net::{LatencyModel, SimNet};
use nodefz_rt::VDur;

use crate::common::{BugCase, BugInfo, Chatter, Outcome, RaceType, RunCfg, Variant};

/// The KUE timer-precision reproduction.
pub struct KueTimer;

impl BugCase for KueTimer {
    fn info(&self) -> BugInfo {
        BugInfo {
            abbr: "KUEt",
            name: "kue (2014 test suite)",
            bug_ref: "03736bd7",
            race: RaceType::TimeRace,
            racing_events: "Timer",
            race_on: "Time",
            impact: "Test crashes when a timer fires too precisely",
            fix: "Tolerate precise timers in the assertion",
            in_fig6: true,
            novel: true,
        }
    }

    fn static_model(&self, variant: Variant) -> Option<crate::statics::StaticModel> {
        use crate::statics::{AtomKind, ModelBuilder};
        // A race against *time*, not against shared state: the model has
        // a single timer atom and no instrumented accesses, so the static
        // analyzer correctly predicts no shared-site races.
        let mut m = ModelBuilder::new("KUEt", variant);
        let _ = m.atom("timer:deadline-probe", AtomKind::Timer, 0);
        Some(m.build())
    }

    fn run(&self, cfg: &RunCfg, variant: Variant) -> Outcome {
        let mut el = cfg.build_loop();
        let net = SimNet::with_latency(LatencyModel {
            base: VDur::millis(2),
            jitter: 0.05,
        });
        let delta_seen: Rc<RefCell<Option<VDur>>> = Rc::new(RefCell::new(None));
        let n = net.clone();
        let delta_out = delta_seen.clone();
        el.enter(move |cx| {
            // The suite's other activity keeps the loop busy, which is what
            // normally makes timers late.
            Chatter::spawn(cx, &n, 81, 4, 14, VDur::micros(500), VDur::micros(220));
            let deadline = cx.now() + VDur::millis(5);
            let tolerance = VDur::micros(crate::common::tuned_margin_us(300));
            cx.set_timeout(VDur::millis(5), move |cx| {
                let delta = cx.now() - deadline;
                *delta_out.borrow_mut() = Some(delta);
                match variant {
                    Variant::Buggy => {
                        // BUGGY assertion: "the timer cannot be this
                        // punctual on a busy system".
                        if delta < tolerance {
                            cx.crash(
                                "timer-too-precise",
                                format!("timer fired {delta} after its deadline"),
                            );
                        }
                    }
                    Variant::Fixed => {
                        // FIX: precision is legal; assert only that the
                        // timer is never early.
                        if cx.now() < deadline {
                            cx.crash("timer-early", "timer fired before its deadline");
                        }
                    }
                }
            });
        });
        el.enter(|cx| net.close_all_listeners_after(cx, VDur::millis(20)));
        let report = el.run();
        let manifested = report.has_error("timer-too-precise");
        Outcome {
            manifested,
            detail: format!("timer lateness: {:?}", *delta_seen.borrow()),
            report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::check_case;
    use nodefz::Mode;

    #[test]
    fn kue_timer_fixed_never_manifests_under_fuzz() {
        check_case::fixed_never_manifests(&KueTimer, 20);
    }

    #[test]
    fn kue_timer_guided_fuzzing_raises_rate() {
        // §5.2.3: the guided parameterization should manifest this bug
        // more often than both vanilla and the standard parameterization.
        let runs = 50u64;
        let rate = |mode: Mode| {
            (0..runs)
                .filter(|&seed| {
                    KueTimer
                        .run(&RunCfg::new(mode.clone(), seed), Variant::Buggy)
                        .manifested
                })
                .count()
        };
        let guided = rate(Mode::Guided);
        let vanilla = rate(Mode::Vanilla);
        assert!(
            guided > vanilla,
            "guided ({guided}/{runs}) should beat vanilla ({vanilla}/{runs})"
        );
        assert!(
            guided >= 5,
            "guided should be substantial, got {guided}/{runs}"
        );
    }

    #[test]
    fn kue_timer_is_neither_av_nor_ov() {
        assert_eq!(KueTimer.info().race, RaceType::TimeRace);
    }
}
