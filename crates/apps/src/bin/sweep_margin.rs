//! Margin sweep for calibration: rates per margin for one bug.
use nodefz::Mode;
use nodefz_apps::common::{RunCfg, Variant};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "GHO".into());
    let runs = 60;
    println!("margin_us  nodeV  nodeFZ");
    for margin in (2200..5200).step_by(300) {
        std::env::set_var("NFZ_MARGIN_US", margin.to_string());
        let case = nodefz_apps::registry()
            .into_iter()
            .find(|c| c.info().abbr == which)
            .expect("bug");
        let mut rates = Vec::new();
        for mode in [Mode::Vanilla, Mode::Fuzz] {
            let hits = (0..runs)
                .filter(|&seed| {
                    case.run(&RunCfg::new(mode.clone(), seed), Variant::Buggy)
                        .manifested
                })
                .count();
            rates.push(hits as f64 / runs as f64);
        }
        println!("{margin:>8} {:>6.2} {:>7.2}", rates[0], rates[1]);
    }
}
