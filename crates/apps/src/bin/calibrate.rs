//! Calibration harness: manifestation rates per bug and mode.

use nodefz::Mode;
use nodefz_apps::common::{RunCfg, Variant};

fn main() {
    let runs: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(50);
    println!(
        "{:<6} {:>8} {:>8} {:>8} {:>8}",
        "bug", "nodeV", "nodeNFZ", "nodeFZ", "guided"
    );
    for case in nodefz_apps::registry() {
        let mut rates = Vec::new();
        for mode in [Mode::Vanilla, Mode::NoFuzz, Mode::Fuzz, Mode::Guided] {
            let hits = (0..runs)
                .filter(|&seed| {
                    case.run(&RunCfg::new(mode.clone(), seed), Variant::Buggy)
                        .manifested
                })
                .count();
            rates.push(hits as f64 / runs as f64);
        }
        println!(
            "{:<6} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
            case.info().abbr,
            rates[0],
            rates[1],
            rates[2],
            rates[3]
        );
    }
}
