//! KUE — kue issue #483 (OV, NW–NW, database → job runs more than once).
//!
//! The `markFailed` flow of Figure 3 in the paper. When a retryable job
//! fails, `update()` writes state `failed` to Redis and `delayed()` writes
//! state `delayed` plus enqueues the job for retry. Both are asynchronous;
//! the buggy code launches them concurrently, so the writes can land in
//! either order. If `delayed` lands first, the job ends in state `failed`
//! *and* in the retry queue — it runs again from a terminal state, i.e.
//! more than once.
//!
//! Fix (as upstream): order the calls — invoke `delayed()` from `update()`'s
//! completion callback.

use nodefz_kv::{Kv, KvTiming};
use nodefz_net::{Client, LatencyModel, SimNet};
use nodefz_rt::VDur;

use crate::common::{BugCase, BugInfo, Chatter, Outcome, RaceType, RunCfg, Variant};

/// The KUE reproduction.
pub struct Kue;

impl BugCase for Kue {
    fn info(&self) -> BugInfo {
        BugInfo {
            abbr: "KUE",
            name: "kue",
            bug_ref: "#483",
            race: RaceType::Ov,
            racing_events: "NW-NW",
            race_on: "Database",
            impact: "Job runs more than once",
            fix: "Order async. calls using callbacks",
            in_fig6: true,
            novel: false,
        }
    }

    fn static_model(&self, variant: Variant) -> Option<crate::statics::StaticModel> {
        use crate::statics::{AtomKind, ModelBuilder};
        let mut m = ModelBuilder::new("KUE", variant);
        let req = m.atom("net:job-failed", AtomKind::Net, 0);
        let u_get = m.atom("kv.get:update", AtomKind::Kv, req);
        let u_set = m.atom("kv.set:failed", AtomKind::Kv, u_get);
        m.write(u_set, "kue:job-state");
        let d_parent = match variant {
            // BUGGY (Figure 3, before): update() and delayed() race.
            Variant::Buggy => req,
            // FIX (Figure 3, after): delayed() runs in update()'s
            // completion callback, so registration orders the writes.
            Variant::Fixed => u_set,
        };
        let d_get = m.atom("kv.get:delayed", AtomKind::Kv, d_parent);
        let d_set = m.atom("kv.set:delayed", AtomKind::Kv, d_get);
        m.write(d_set, "kue:job-state");
        Some(m.build())
    }

    fn run(&self, cfg: &RunCfg, variant: Variant) -> Outcome {
        let mut el = cfg.build_loop();
        let net = SimNet::with_latency(LatencyModel {
            base: VDur::millis(2),
            jitter: 0.05,
        });
        let n = net.clone();
        let kv_out = el.enter(move |cx| {
            // A connection pool, as the real redis clients use: replies on
            // different connections are unordered.
            let kv = Kv::connect_with(
                cx,
                2,
                KvTiming {
                    latency: VDur::millis(1),
                    latency_jitter: 0.45,
                    proc: VDur::micros(200),
                    proc_jitter: 0.4,
                },
            )
            .expect("kv pool");
            kv.set_sync("job:1:state", "active");
            let kv_handler = kv.clone();
            n.listen(cx, 80, move |_cx, conn| {
                let kv = kv_handler.clone();
                conn.on_data(move |cx, _conn, msg| {
                    if msg.as_slice() != b"job-failed" {
                        return;
                    }
                    cx.busy(VDur::micros(150));
                    // markFailed(): the job can be retried.
                    // `update()` and `delayed()` are each a fetch-then-save
                    // chain, as in the real module.
                    let update = {
                        let kv = kv.clone();
                        move |cx: &mut nodefz_rt::Ctx<'_>,
                              then: Box<dyn FnOnce(&mut nodefz_rt::Ctx<'_>)>| {
                            let kv2 = kv.clone();
                            kv.get(cx, "job:1:state", move |cx, _cur| {
                                kv2.set(cx, "job:1:state", "failed", move |cx, ()| {
                                    cx.touch_write("kue:job-state");
                                    then(cx);
                                });
                            });
                        }
                    };
                    let delayed = {
                        let kv = kv.clone();
                        move |cx: &mut nodefz_rt::Ctx<'_>| {
                            let kv2 = kv.clone();
                            kv.get(cx, "job:1:state", move |cx, _cur| {
                                let kv3 = kv2.clone();
                                kv2.set(cx, "job:1:state", "delayed", move |cx, ()| {
                                    cx.touch_write("kue:job-state");
                                    kv3.lpush(cx, "q:delayed", "job:1", |_cx, _| {});
                                });
                            });
                        }
                    };
                    match variant {
                        Variant::Buggy => {
                            // BUGGY (Figure 3, before the patch):
                            // `self.update().delayed()` — the two chains
                            // race.
                            update(cx, Box::new(|_cx| {}));
                            delayed(cx);
                        }
                        Variant::Fixed => {
                            // FIX (Figure 3, after the patch): `delayed()`
                            // runs in `update()`'s completion callback.
                            update(cx, Box::new(move |cx| delayed(cx)));
                        }
                    }
                });
            })
            .expect("listen");
            Chatter::spawn(cx, &n, 81, 4, 10, VDur::micros(600), VDur::micros(90));
            crate::common::heartbeat(cx, VDur::micros(800), VDur::millis(12));
            kv
        });
        el.enter(|cx| {
            let worker = Client::connect(cx, &net, 80);
            worker.send(cx, b"job-failed".to_vec());
            worker.close_after(cx, VDur::millis(12));
            net.close_all_listeners_after(cx, VDur::millis(25));
        });
        let report = el.run();
        let state = kv_out.get_sync("job:1:state");
        let queued = kv_out.list_len_sync("q:delayed");
        // The job must end in state `delayed`; ending `failed` while queued
        // for retry means it will be run again from a terminal state.
        let manifested = state.as_deref() != Some("delayed") && queued > 0;
        Outcome {
            manifested,
            detail: format!("final state {state:?}, {queued} retry queue entr(ies)"),
            report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::check_case;
    use nodefz::Mode;

    #[test]
    fn kue_fixed_never_manifests_under_fuzz() {
        check_case::fixed_never_manifests(&Kue, 20);
    }

    #[test]
    fn kue_buggy_manifests_under_fuzz() {
        check_case::buggy_manifests_under_fuzz(&Kue, 60);
    }

    #[test]
    fn kue_manifests_even_under_vanilla() {
        // §5.1.1: "The bugs in KUE and RST manifest frequently even using
        // nodeV" — this ordering violation needs no fuzzer at all.
        let mut hits = 0;
        for seed in 0..60 {
            if Kue
                .run(
                    &RunCfg::new(Mode::Vanilla, seed),
                    crate::common::Variant::Buggy,
                )
                .manifested
            {
                hits += 1;
            }
        }
        assert!(hits >= 3, "expected nonzero vanilla rate, got {hits}/60");
    }

    #[test]
    fn kue_is_an_ordering_violation() {
        assert_eq!(Kue.info().race, RaceType::Ov);
    }
}
