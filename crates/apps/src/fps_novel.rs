//! FPS (novel) — fiware-pep-steelskin PR #339 ((C)OV, NW–NW, variable).
//!
//! The novel commutative ordering violation the paper's authors found in
//! the FPS *test case* while studying the FPS AV (§3.2.2): the test fires
//! several asynchronous operations and asserts its expectations when the
//! last-*submitted* one completes — the same `isLast` anti-pattern as MGS
//! — so the assertion can run before all operations have finished and the
//! test "fails in the wrong place".
//!
//! Fix (as the authors' accepted pull request): a global completion
//! counter.

use std::cell::RefCell;
use std::rc::Rc;

use nodefz_fs::SimFs;
use nodefz_kv::{Kv, KvTiming};
use nodefz_net::{LatencyModel, SimNet};
use nodefz_rt::VDur;

use crate::common::{BugCase, BugInfo, Chatter, Outcome, RaceType, RunCfg, Variant};

/// The novel FPS reproduction.
pub struct FpsNovel;

impl BugCase for FpsNovel {
    fn info(&self) -> BugInfo {
        BugInfo {
            abbr: "FPS*",
            name: "fiware-pep-steelskin (novel)",
            bug_ref: "PR #339",
            race: RaceType::Cov,
            racing_events: "NW-NW",
            race_on: "Variable",
            impact: "Test case fails in wrong place",
            fix: "Global counter",
            in_fig6: true,
            novel: true,
        }
    }

    fn static_model(&self, variant: Variant) -> Option<crate::statics::StaticModel> {
        use crate::statics::{AtomKind, ModelBuilder};
        let mut m = ModelBuilder::new("FPS*", variant);
        // Three async setup operations, each bumping the completion
        // counter. The fix changes when the assertion runs, not which
        // shared state the completions update.
        let fixture = m.atom("fs.read:fixture", AtomKind::Fs, 0);
        m.update(fixture, "fps*:completed");
        for rule in 1..=2u32 {
            let get = m.atom(&format!("kv.get:rule{rule}"), AtomKind::Kv, 0);
            m.update(get, "fps*:completed");
        }
        Some(m.build())
    }

    fn run(&self, cfg: &RunCfg, variant: Variant) -> Outcome {
        let mut el = cfg.build_loop();
        let net = SimNet::with_latency(LatencyModel {
            base: VDur::millis(2),
            jitter: 0.05,
        });
        let fs = SimFs::new();
        fs.write_sync("fixture.json", b"{}".to_vec())
            .expect("setup");
        // (completed when the assertion ran, expected).
        let assert_seen: Rc<RefCell<Option<usize>>> = Rc::new(RefCell::new(None));
        let n = net.clone();
        let seen = assert_seen.clone();
        let fs2 = fs.clone();
        el.enter(move |cx| {
            let kv = Kv::connect_with(
                cx,
                3,
                KvTiming {
                    latency: VDur::millis(1),
                    latency_jitter: 0.12,
                    proc: VDur::micros(200),
                    proc_jitter: 0.12,
                },
            )
            .expect("kv pool");
            kv.set_sync("rule:1", "allow");
            kv.set_sync("rule:2", "deny");
            Chatter::spawn(cx, &n, 81, 4, 10, VDur::micros(600), VDur::micros(90));
            crate::common::heartbeat(cx, VDur::micros(800), VDur::millis(12));
            // --- The test body: three async setup operations, assertion
            // on completion.
            let completed: Rc<RefCell<usize>> = Rc::new(RefCell::new(0));
            let remaining: Rc<RefCell<usize>> = Rc::new(RefCell::new(3));
            let run_assert = {
                let completed = completed.clone();
                let seen = seen.clone();
                Rc::new(move |_cx: &mut nodefz_rt::Ctx<'_>| {
                    *seen.borrow_mut() = Some(*completed.borrow());
                })
            };
            let finish = {
                let completed = completed.clone();
                let remaining = remaining.clone();
                let run_assert = run_assert.clone();
                Rc::new(move |cx: &mut nodefz_rt::Ctx<'_>, is_last: bool| {
                    cx.touch_update("fps*:completed");
                    *completed.borrow_mut() += 1;
                    match variant {
                        Variant::Buggy => {
                            // BUGGY: assert when the last-submitted
                            // operation completes.
                            if is_last {
                                run_assert(cx);
                            }
                        }
                        Variant::Fixed => {
                            // FIX (the authors' patch): a global
                            // counter.
                            let mut r = remaining.borrow_mut();
                            *r -= 1;
                            if *r == 0 {
                                drop(r);
                                run_assert(cx);
                            }
                        }
                    }
                })
            };
            // Operation 1: load a fixture from disk.
            let f1 = finish.clone();
            fs2.read_file(cx, "fixture.json", move |cx, _r| f1(cx, false));
            // Operation 2: fetch a policy rule.
            let f2 = finish.clone();
            kv.get(cx, "rule:1", move |cx, _r| f2(cx, false));
            // Operation 3 (submitted last): fetch another rule.
            let f3 = finish.clone();
            kv.get(cx, "rule:2", move |cx, _r| f3(cx, true));
        });
        el.enter(|cx| net.close_all_listeners_after(cx, VDur::millis(24)));
        let report = el.run();
        let seen = *assert_seen.borrow();
        let manifested = matches!(seen, Some(n) if n < 3);
        Outcome {
            manifested,
            detail: match seen {
                Some(n) if n < 3 => {
                    format!("assertion ran with only {n}/3 operations complete")
                }
                Some(_) => "assertion ran after all operations".into(),
                None => "assertion never ran".into(),
            },
            report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::check_case;

    #[test]
    fn fps_novel_fixed_never_manifests_under_fuzz() {
        check_case::fixed_never_manifests(&FpsNovel, 20);
    }

    #[test]
    fn fps_novel_buggy_manifests_under_fuzz() {
        check_case::buggy_manifests_under_fuzz(&FpsNovel, 60);
    }

    #[test]
    fn fps_novel_vanilla_rarely_manifests() {
        check_case::vanilla_rarely_manifests(&FpsNovel, 40, 4);
    }

    #[test]
    fn fps_novel_is_the_authors_pr() {
        assert_eq!(FpsNovel.info().bug_ref, "PR #339");
    }
}
