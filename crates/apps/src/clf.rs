//! CLF — cinovo-logger-file issue #1 (AV, FS–Call, variable → duplicate
//! file).
//!
//! A rolling-file logger lazily creates its output file on the first write:
//! it checks a `current_file` variable, and if unset, asynchronously
//! creates a file, setting the variable in the completion callback. A
//! second `log()` call arriving before the creation completes repeats the
//! check, sees the variable still unset, and creates a *duplicate* file.
//! The racing events are a file-system completion and a plain API call.
//!
//! Fix (as upstream): read and write the guard variable in the same
//! callback — claim `current_file` synchronously before the async create.

use std::cell::RefCell;
use std::rc::Rc;

use nodefz_fs::SimFs;
use nodefz_net::{Client, LatencyModel, SimNet};
use nodefz_rt::{Ctx, VDur};

use crate::common::{BugCase, BugInfo, Chatter, Outcome, RaceType, RunCfg, Variant};

/// The CLF reproduction.
pub struct Clf;

struct Logger {
    fs: SimFs,
    current: Rc<RefCell<Option<String>>>,
    seq: Rc<RefCell<u32>>,
    variant: Variant,
}

impl Logger {
    fn log(&self, cx: &mut Ctx<'_>, msg: &str) {
        cx.touch_read("clf:current-file");
        let current = self.current.borrow().clone();
        match current {
            Some(file) => {
                self.fs
                    .append(cx, &file, format!("{msg}\n").into_bytes(), |_cx, r| {
                        let _ = r;
                    });
            }
            None => {
                let mut seq = self.seq.borrow_mut();
                let name = format!("logs/out-{}.log", *seq);
                *seq += 1;
                drop(seq);
                match self.variant {
                    Variant::Buggy => {
                        // BUGGY: `current` is only set once the async
                        // create completes; a second log() call in the gap
                        // re-runs this branch.
                        let current = self.current.clone();
                        let line = format!("{msg}\n").into_bytes();
                        let name2 = name.clone();
                        self.fs.write_file(cx, &name, line, move |cx, r| {
                            if r.is_ok() {
                                cx.touch_write("clf:current-file");
                                *current.borrow_mut() = Some(name2);
                            }
                        });
                    }
                    Variant::Fixed => {
                        // FIX: read and write in the same callback — claim
                        // the slot before going async.
                        *self.current.borrow_mut() = Some(name.clone());
                        let line = format!("{msg}\n").into_bytes();
                        self.fs.write_file(cx, &name, line, |_cx, r| {
                            let _ = r;
                        });
                    }
                }
            }
        }
    }
}

impl BugCase for Clf {
    fn info(&self) -> BugInfo {
        BugInfo {
            abbr: "CLF",
            name: "cinovo-logger-file",
            bug_ref: "#1",
            race: RaceType::Av,
            racing_events: "FS-Call",
            race_on: "Variable",
            impact: "Creates a duplicate file",
            fix: "Rd/wr in the same callback",
            in_fig6: true,
            novel: false,
        }
    }

    fn static_model(&self, variant: Variant) -> Option<crate::statics::StaticModel> {
        use crate::statics::{AtomKind, ModelBuilder};
        let mut m = ModelBuilder::new("CLF", variant);
        for r in 1..=2u32 {
            let log = m.atom(&format!("net:log#{r}"), AtomKind::Net, 0);
            // Logger::log always checks the current-file slot first.
            m.read(log, "clf:current-file");
            let done = m.atom(&format!("fs.write:done#{r}"), AtomKind::Fs, log);
            if variant == Variant::Buggy {
                // BUGGY: the slot is claimed only after the asynchronous
                // file creation completes.
                m.write(done, "clf:current-file");
            }
            // Fixed: the slot is claimed synchronously inside `log` —
            // the completion callback no longer writes shared state.
        }
        Some(m.build())
    }

    fn run(&self, cfg: &RunCfg, variant: Variant) -> Outcome {
        let mut el = cfg.build_loop();
        let net = SimNet::with_latency(LatencyModel {
            base: VDur::millis(2),
            jitter: 0.05,
        });
        let fs = SimFs::with_costs(nodefz_fs::FsCosts {
            write: VDur::micros(350),
            ..nodefz_fs::FsCosts::default()
        });
        fs.mkdir_sync("logs").expect("setup");
        let logger = Rc::new(Logger {
            fs: fs.clone(),
            current: Rc::new(RefCell::new(None)),
            seq: Rc::new(RefCell::new(0)),
            variant,
        });
        let n = net.clone();
        el.enter(move |cx| {
            let logger = logger.clone();
            n.listen(cx, 80, move |_cx, conn| {
                let logger = logger.clone();
                conn.on_data(move |cx, _conn, msg| {
                    cx.busy(VDur::micros(250));
                    logger.log(cx, &String::from_utf8_lossy(msg));
                });
            })
            .expect("listen");
            // Light background traffic only: this race is between an API
            // call and a pool completion, so the fuzz levers are the
            // serialized pool and done-event shuffling, not long windows.
            Chatter::spawn(cx, &n, 81, 1, 4, VDur::millis(2), VDur::micros(80));
            crate::common::heartbeat(cx, VDur::micros(800), VDur::millis(10));
        });
        el.enter(|cx| {
            // Two requests log in quick succession; in a calm schedule the
            // first create completes before the second log() call.
            let a = Client::connect(cx, &net, 80);
            a.send(cx, b"request A".to_vec());
            a.close_after(cx, VDur::millis(12));
            let b = Client::connect(cx, &net, 80);
            b.send_after(
                cx,
                VDur::micros(crate::common::tuned_margin_us(1_400)),
                b"request B".to_vec(),
            );
            b.close_after(cx, VDur::millis(12));
            net.close_all_listeners_after(cx, VDur::millis(25));
        });
        let report = el.run();
        let files = fs.readdir_sync("logs").unwrap_or_default();
        let manifested = files.len() > 1;
        Outcome {
            manifested,
            detail: format!("log files created: {files:?}"),
            report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::check_case;

    #[test]
    fn clf_fixed_never_manifests_under_fuzz() {
        check_case::fixed_never_manifests(&Clf, 20);
    }

    #[test]
    fn clf_buggy_manifests_under_fuzz() {
        check_case::buggy_manifests_under_fuzz(&Clf, 60);
    }

    #[test]
    fn clf_vanilla_rarely_manifests() {
        check_case::vanilla_rarely_manifests(&Clf, 40, 6);
    }

    #[test]
    fn clf_races_fs_against_call() {
        assert_eq!(Clf.info().racing_events, "FS-Call");
    }
}
