//! WPT — webpack-tapable issue #243 (AV, X–X, variable → error).
//!
//! A plugin framework runs each request through an asynchronous waterfall
//! of plugin steps. The buggy code tracks the remaining step count in a
//! variable *shared by all requests*; when two requests' waterfalls
//! interleave, the counter is corrupted and the framework throws. The
//! racing events are "application-dependent asynchronous steps" (the
//! paper's X–X): immediates and worker-pool hops.
//!
//! Fix (as upstream): keep the counter per request (per callback chain).

use std::cell::RefCell;
use std::rc::Rc;

use nodefz_net::{Client, LatencyModel, SimNet};
use nodefz_rt::{Ctx, VDur};

use crate::common::{BugCase, BugInfo, Chatter, Outcome, RaceType, RunCfg, Variant};

/// The WPT reproduction.
pub struct Wpt;

const STEPS: u32 = 3;

type DoneFn = Rc<dyn Fn(&mut Ctx<'_>, bool)>;

/// Runs one waterfall step asynchronously, then continues.
fn run_step(cx: &mut Ctx<'_>, step: u32, counter: Rc<RefCell<i64>>, done: DoneFn) {
    // Alternate the async hop kind: check-phase immediates and worker-pool
    // tasks, like a real plugin mix.
    let cont = move |cx: &mut Ctx<'_>| {
        cx.busy(VDur::micros(80));
        let mut c = counter.borrow_mut();
        *c -= 1;
        let remaining = *c;
        drop(c);
        if remaining < 0 {
            // The framework's internal invariant broke: throw.
            done(cx, false);
        } else if remaining == 0 {
            done(cx, true);
        } else {
            run_step(cx, step + 1, counter, done);
        }
    };
    if step.is_multiple_of(2) {
        cx.set_immediate(cont);
    } else {
        let _ = cx.submit_work(VDur::micros(150), |_| (), move |cx, ()| cont(cx));
    }
}

impl BugCase for Wpt {
    fn info(&self) -> BugInfo {
        BugInfo {
            abbr: "WPT",
            name: "webpack-tapable",
            bug_ref: "#243",
            race: RaceType::Av,
            racing_events: "X-X",
            race_on: "Variable",
            impact: "Throws error (possible crash)",
            fix: "Counter per request (callback chain)",
            in_fig6: false, // Excluded in §5.1.1 (CoffeeScript upstream test).
            novel: false,
        }
    }

    fn run(&self, cfg: &RunCfg, variant: Variant) -> Outcome {
        let mut el = cfg.build_loop();
        let net = SimNet::with_latency(LatencyModel {
            base: VDur::millis(2),
            jitter: 0.05,
        });
        // The shared (racy) counter used by the buggy variant.
        let shared: Rc<RefCell<i64>> = Rc::new(RefCell::new(0));
        let n = net.clone();
        let sh = shared.clone();
        el.enter(move |cx| {
            n.listen(cx, 80, move |_cx, conn| {
                let shared = sh.clone();
                conn.on_data(move |cx, conn, _msg| {
                    cx.busy(VDur::micros(150));
                    let counter = match variant {
                        Variant::Buggy => {
                            // BUGGY: (re-)arm the shared counter.
                            *shared.borrow_mut() = STEPS as i64;
                            shared.clone()
                        }
                        // FIX: one counter per callback chain.
                        Variant::Fixed => Rc::new(RefCell::new(STEPS as i64)),
                    };
                    let me = conn.clone();
                    let done: DoneFn = Rc::new(move |cx: &mut Ctx<'_>, ok: bool| {
                        if ok {
                            let _ = me.write(cx, b"built".to_vec());
                        } else {
                            cx.report_error(
                                "waterfall-corrupt",
                                "plugin waterfall counter went negative",
                            );
                        }
                    });
                    run_step(cx, 0, counter, done);
                });
            })
            .expect("listen");
            Chatter::spawn(cx, &n, 81, 4, 10, VDur::micros(600), VDur::micros(90));
            crate::common::heartbeat(cx, VDur::micros(800), VDur::millis(12));
        });
        el.enter(|cx| {
            let a = Client::connect(cx, &net, 80);
            a.send(cx, b"build".to_vec());
            a.close_after(cx, VDur::millis(14));
            // The second build normally starts after the first waterfall
            // has drained.
            let b = Client::connect(cx, &net, 80);
            b.send_after(
                cx,
                VDur::micros(crate::common::tuned_margin_us(2_600)),
                b"build".to_vec(),
            );
            b.close_after(cx, VDur::millis(14));
            net.close_all_listeners_after(cx, VDur::millis(28));
        });
        let report = el.run();
        let manifested = report.has_error("waterfall-corrupt");
        Outcome {
            manifested,
            detail: if manifested {
                "interleaved waterfalls corrupted the shared step counter".into()
            } else {
                "waterfalls did not interleave".into()
            },
            report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::check_case;

    #[test]
    fn wpt_fixed_never_manifests_under_fuzz() {
        check_case::fixed_never_manifests(&Wpt, 20);
    }

    #[test]
    fn wpt_buggy_manifests_under_fuzz() {
        check_case::buggy_manifests_under_fuzz(&Wpt, 60);
    }

    #[test]
    fn wpt_vanilla_rarely_manifests() {
        check_case::vanilla_rarely_manifests(&Wpt, 40, 2);
    }

    #[test]
    fn wpt_races_async_steps() {
        assert_eq!(Wpt.info().racing_events, "X-X");
        assert!(!Wpt.info().in_fig6);
    }
}
