//! Byte-golden `nodefz-sa-v1` reports: three representative handwritten
//! `nodefz-prog v1` literals and two fig6 app models (GHO buggy carries
//! the planted race; KUE fixed is provably race-free). Any analyzer or
//! renderer change that shifts the document shows up as a diff here.
//!
//! Re-bless with `NFZ_BLESS=1 cargo test -p nodefz-sa --test golden`
//! after verifying a diff is intentional.

use std::rc::Rc;

use nodefz_apps::common::Variant;
use nodefz_conform::Prog;
use nodefz_sa::{analyze_model, model_of_prog, sa_report};

/// Two unordered writers (timer, pool) and a reader on one site: the
/// smallest program with AV-, OV-, and reader-involved candidates.
const WRITERS: &str = "nodefz-prog v1
0 root children=1,2,3 touches=
1 timer delay_us=100 children= touches=w0
2 pool cost_us=50 children= touches=w0
3 fdchain msgs=1 gap_us=10 children= touches=r0
end
";

/// A registration chain with a folded nexttick: every access is ordered
/// by ancestry, so the analyzer must prove it race-free.
const ORDERED: &str = "nodefz-prog v1
0 root children=1 touches=w1
1 timer delay_us=50 children=2 touches=r1
2 nexttick children=3 touches=u1
3 close children= touches=r1
end
";

/// Two update-only callbacks on one site: the commutative (COV) class.
const COV: &str = "nodefz-prog v1
0 root children=1,2 touches=
1 pending children= touches=u2
2 immediate children= touches=u2
end
";

fn golden(name: &str, actual: &str) {
    let file = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("NFZ_BLESS").is_some() {
        std::fs::create_dir_all(file.parent().unwrap()).unwrap();
        std::fs::write(&file, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&file)
        .unwrap_or_else(|e| panic!("{}: {e} (bless with NFZ_BLESS=1)", file.display()));
    assert_eq!(
        expected, actual,
        "golden mismatch for {name}; if intentional, re-bless with NFZ_BLESS=1"
    );
}

#[test]
fn representative_prog_literals_render_stable_reports() {
    let analyses: Vec<_> = [
        ("prog-writers", WRITERS),
        ("prog-ordered", ORDERED),
        ("prog-cov", COV),
    ]
    .into_iter()
    .map(|(name, text)| {
        let prog = Rc::new(Prog::parse(text).expect("literal parses"));
        analyze_model(model_of_prog(&prog, name).model)
    })
    .collect();

    // Semantic anchors first, so a golden diff is never the only signal.
    assert!(
        !analyses[0].candidates.is_empty(),
        "unordered writers must race"
    );
    assert!(
        analyses[1].candidates.is_empty(),
        "the ordered chain must be race-free: {:#?}",
        analyses[1].candidates
    );
    assert!(
        analyses[2]
            .candidates
            .iter()
            .all(|c| c.classes == [nodefz_hb::RaceClass::Cov]),
        "update-only pairs classify COV: {:#?}",
        analyses[2].candidates
    );

    golden("progs.json", &sa_report(&analyses));
}

#[test]
fn gho_buggy_and_kue_fixed_render_stable_reports() {
    let gho = nodefz_apps::by_abbr("GHO")
        .unwrap()
        .static_model(Variant::Buggy)
        .expect("GHO models");
    let kue = nodefz_apps::by_abbr("KUE")
        .unwrap()
        .static_model(Variant::Fixed)
        .expect("KUE models");
    let analyses = vec![analyze_model(gho), analyze_model(kue)];

    assert!(
        analyses[0]
            .candidates
            .iter()
            .any(|c| c.site == "gho:user-row"),
        "GHO's planted race must be predicted: {:#?}",
        analyses[0].candidates
    );
    assert!(
        analyses[1].candidates.is_empty(),
        "KUE fixed must be race-free: {:#?}",
        analyses[1].candidates
    );

    golden("apps.json", &sa_report(&analyses));
}
