//! The acceptance sweep: the full conform corpus — three independent-
//! sampling seed families plus the API-graph family, × 500 generated
//! programs each, the exact seeds of the differential acceptance run —
//! goes through the soundness gate with **zero** dynamically-predicted
//! races missing a static cover.

use nodefz_rt::LoopPool;
use nodefz_sa::sweep_family;

#[test]
fn soundness_holds_over_the_full_conform_corpus() {
    let pool = Some(LoopPool::new());
    let mut programs = 0u64;
    let mut race_free = 0u64;
    let mut dynamic = 0u64;
    let mut metrics = nodefz_sa::SaMetrics::default();
    for family in 0..4u64 {
        let stats =
            sweep_family(family, 500, &pool).unwrap_or_else(|e| panic!("family {family}: {e}"));
        assert!(
            stats.missing.is_empty(),
            "family {family}: {} uncovered dynamic prediction(s): {:#?}",
            stats.missing.len(),
            stats.missing
        );
        programs += stats.programs;
        race_free += stats.race_free;
        dynamic += stats.dynamic;
        metrics.merge(&stats.metrics);
    }
    // Precision accounting over the corpus — printed so the numbers in
    // EXPERIMENTS.md stay reproducible from one command.
    println!(
        "sa sweep: {programs} programs, {race_free} race-free, {dynamic} dynamic races, \
         {} candidates ({} AV-capable / {} OV / {} COV), {} confirmed \
         ({} AV / {} OV / {} COV)",
        metrics.candidates,
        metrics.av,
        metrics.ov,
        metrics.cov,
        metrics.confirmed,
        metrics.confirmed_av,
        metrics.confirmed_ov,
        metrics.confirmed_cov,
    );
    assert_eq!(programs, 2000);
    assert!(dynamic > 500, "sweep too weak: {dynamic} dynamic races");
    assert!(
        race_free > 0,
        "the analyzer never proved a program race-free"
    );
    assert!(metrics.confirmed > 0 && metrics.confirmed <= metrics.candidates);
}
