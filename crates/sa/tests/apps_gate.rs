//! The app-level soundness gate: for every registered bug case that
//! declares a static model, the model's candidates must cover every
//! dynamic race `nodefz-hb` predicts from a recorded buggy run — at the
//! (site, class) level, since app events carry no model atom markers.

use nodefz_apps::common::Variant;
use nodefz_hb::analyze_app;
use nodefz_sa::{candidates, MhpIndex};

#[test]
fn static_models_cover_every_dynamic_app_race() {
    let mut modeled = 0;
    let mut covered = 0;
    for case in nodefz_apps::registry() {
        let abbr = case.info().abbr;
        let Some(model) = case.static_model(Variant::Buggy) else {
            continue;
        };
        modeled += 1;
        let idx = MhpIndex::build(&model);
        let cands = candidates(&model, &idx);
        let analysis = analyze_app(case.as_ref(), 11)
            .unwrap_or_else(|e| panic!("{abbr}: dynamic analysis failed: {e}"));
        for race in &analysis.races {
            assert!(
                cands
                    .iter()
                    .any(|c| c.site == race.site && c.covers(race.class)),
                "{abbr}: dynamic {} race on {} has no covering static candidate; \
                 static candidates: {cands:#?}",
                race.class.label(),
                race.site
            );
            covered += 1;
        }
    }
    assert!(modeled >= 13, "only {modeled} apps carry static models");
    assert!(
        covered >= 5,
        "only {covered} dynamic races across all apps — gate too weak"
    );
}

#[test]
fn fixed_variants_predict_no_more_than_buggy() {
    // The fix removes or orders accesses; the analyzer must never invent
    // *new* racing behavior for the fixed variant of the same app.
    for case in nodefz_apps::registry() {
        let (Some(buggy), Some(fixed)) = (
            case.static_model(Variant::Buggy),
            case.static_model(Variant::Fixed),
        ) else {
            continue;
        };
        let b = candidates(&buggy, &MhpIndex::build(&buggy)).len();
        let f = candidates(&fixed, &MhpIndex::build(&fixed)).len();
        assert!(
            f <= b,
            "{}: fixed variant predicts {f} candidates vs {b} buggy",
            case.info().abbr
        );
    }
}
