//! Property suite for the soundness gate: on *fresh* generated programs
//! (seeds drawn from the property harness, disjoint from the conform
//! corpus families), every dynamic happens-before race prediction must
//! be covered by a static candidate with the exact (site, atom pair,
//! class) — and a sabotaged analyzer must get caught.

use std::cell::Cell;
use std::rc::Rc;

use nodefz_check::forall;
use nodefz_conform::{generate, generate_api};
use nodefz_rt::LoopPool;
use nodefz_sa::check_prog;

#[test]
fn static_candidates_cover_dynamic_predictions_on_fresh_programs() {
    let pool = Some(LoopPool::new());
    let dynamic = Cell::new(0u64);
    let candidates = Cell::new(0u64);
    forall("sa_soundness_containment", 500, |g| {
        let seed = g.u64();
        let prog = Rc::new(generate(seed));
        let check = check_prog(&prog, seed, &pool, false)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}\nprogram:\n{prog}"));
        assert!(
            check.missing.is_empty(),
            "seed {seed}: uncovered dynamic prediction(s): {:#?}\nprogram:\n{prog}",
            check.missing
        );
        dynamic.set(dynamic.get() + check.dynamic as u64);
        candidates.set(candidates.get() + check.metrics.candidates);
    });
    // The property is vacuous unless the sweep actually exercised races.
    assert!(
        dynamic.get() > 50,
        "only {} dynamic races across 500 programs — too weak to trust",
        dynamic.get()
    );
    assert!(candidates.get() >= dynamic.get());
}

#[test]
fn static_candidates_cover_dynamic_predictions_on_api_graph_programs() {
    // Same containment property over the API-graph generator: the new
    // op family (intervals, barriers, series, emitters, kv/fs clients)
    // must stay inside the analyzer's static cover.
    let pool = Some(LoopPool::new());
    let dynamic = Cell::new(0u64);
    forall("sa_soundness_apigraph", 300, |g| {
        let seed = g.u64();
        let prog = Rc::new(generate_api(seed));
        let check = check_prog(&prog, seed, &pool, false)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}\nprogram:\n{prog}"));
        assert!(
            check.missing.is_empty(),
            "seed {seed}: uncovered dynamic prediction(s): {:#?}\nprogram:\n{prog}",
            check.missing
        );
        dynamic.set(dynamic.get() + check.dynamic as u64);
    });
    assert!(
        dynamic.get() > 30,
        "only {} dynamic races across 300 API-graph programs — too weak to trust",
        dynamic.get()
    );
}

#[test]
fn a_sabotaged_analyzer_trips_the_gate() {
    // Dropping one MHP candidate must be *observable*: some program's
    // dynamic prediction loses its cover. This is the canary that proves
    // the gate can fail — without it, `missing.is_empty()` could pass
    // because the check compares nothing against nothing.
    let pool = Some(LoopPool::new());
    let tripped = (0..200u64).any(|seed| {
        let prog = Rc::new(generate(seed));
        check_prog(&prog, seed, &pool, true).is_ok_and(|c| !c.missing.is_empty())
    });
    assert!(
        tripped,
        "sabotage (dropping candidates[0]) never produced a miss in 200 programs"
    );
}
