//! Candidate race pairs: MHP atoms sharing an instrumented site.
//!
//! A candidate carries a *set* of §3.2 classes because the class a pair
//! manifests as varies per run: the same two callbacks form an atomicity
//! violation when a third access lands between them and a plain ordering
//! violation when it does not, and which happens depends on where the
//! run's timer chain points. Emitting the set keeps the prediction a
//! superset of every per-run `nodefz-hb` verdict — the soundness
//! harness checks exact `(site, class)` containment against it.

use nodefz_apps::statics::StaticModel;
use nodefz_hb::RaceClass;
use nodefz_rt::AccessKind;

use crate::mhp::MhpIndex;

/// One predicted race pair on one shared site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Candidate {
    /// Shared-site name.
    pub site: String,
    /// Lower atom id of the pair.
    pub a: u32,
    /// Higher atom id of the pair.
    pub b: u32,
    /// The §3.2 classes this pair may manifest as, in `[AV, OV, COV]`
    /// order.
    pub classes: Vec<RaceClass>,
}

impl Candidate {
    /// Whether the candidate's class set covers `class`.
    pub fn covers(&self, class: RaceClass) -> bool {
        self.classes.contains(&class)
    }
}

#[derive(Clone, Copy, Default)]
struct SiteUse {
    touched: bool,
    writeish: bool,
    update_only: bool,
}

/// Atoms touching each site, with per-atom access summaries. Sites in
/// first-appearance order, atoms ascending.
fn site_table(model: &StaticModel) -> Vec<(String, Vec<(u32, SiteUse)>)> {
    let mut sites: Vec<(String, Vec<(u32, SiteUse)>)> = Vec::new();
    for (id, atom) in model.atoms.iter().enumerate() {
        for access in &atom.accesses {
            let entry = match sites.iter_mut().find(|(s, _)| *s == access.site) {
                Some((_, atoms)) => atoms,
                None => {
                    sites.push((access.site.clone(), Vec::new()));
                    &mut sites.last_mut().expect("just pushed").1
                }
            };
            let slot = match entry.iter_mut().find(|(a, _)| *a == id as u32) {
                Some((_, slot)) => slot,
                None => {
                    entry.push((id as u32, SiteUse::default()));
                    &mut entry.last_mut().expect("just pushed").1
                }
            };
            let writeish = access.kind != AccessKind::Read;
            slot.writeish |= writeish;
            slot.update_only = if slot.touched {
                slot.update_only && access.kind == AccessKind::Update
            } else {
                access.kind == AccessKind::Update
            };
            slot.touched = true;
        }
    }
    sites
}

/// Whether a third site-accessing atom may land strictly between an
/// ordered dispatch of some pair containing `owner`, splitting an
/// atomicity region the owner believed contiguous. Mirrors the dynamic
/// analyzer's `intrudes` shape, with may/must in place of the per-run
/// graph: `intruder` may intrude iff some ordering `X ≤ Y` of
/// site-accessing atoms with `owner ∈ {X, Y}` is possible and no must
/// edge pins `intruder` outside the `[X, Y]` window.
fn may_intrudes(idx: &MhpIndex, atoms: &[(u32, SiteUse)], owner: u32, intruder: u32) -> bool {
    for &(x, _) in atoms {
        for &(y, _) in atoms {
            if x == y || (owner != x && owner != y) {
                continue;
            }
            if x == intruder || y == intruder {
                continue;
            }
            if idx.may_leq(x, y) && !idx.must_leq(y, intruder) && !idx.must_leq(intruder, x) {
                return true;
            }
        }
    }
    false
}

/// Computes all candidate race pairs of `model`, deterministically
/// ordered: sites in first-appearance order, pairs by ascending
/// `(a, b)`.
pub fn candidates(model: &StaticModel, idx: &MhpIndex) -> Vec<Candidate> {
    let mut out = Vec::new();
    for (site, atoms) in site_table(model) {
        for (i, &(a, ua)) in atoms.iter().enumerate() {
            for &(b, ub) in &atoms[i + 1..] {
                if !idx.mhp(a, b) || !(ua.writeish || ub.writeish) {
                    continue;
                }
                let classes = if ua.update_only && ub.update_only {
                    vec![RaceClass::Cov]
                } else if may_intrudes(idx, &atoms, a, b) || may_intrudes(idx, &atoms, b, a) {
                    vec![RaceClass::Av, RaceClass::Ov]
                } else {
                    vec![RaceClass::Ov]
                };
                out.push(Candidate {
                    site: site.clone(),
                    a,
                    b,
                    classes,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodefz_apps::common::Variant;
    use nodefz_apps::statics::{AtomKind, ModelBuilder};

    fn analyze(model: &StaticModel) -> Vec<Candidate> {
        candidates(model, &MhpIndex::build(model))
    }

    #[test]
    fn ordered_pair_is_not_a_candidate() {
        let mut m = ModelBuilder::new("T", Variant::Buggy);
        let a = m.atom("a", AtomKind::Net, 0);
        let b = m.atom("b", AtomKind::Kv, a);
        m.write(a, "s");
        m.read(b, "s");
        assert!(analyze(&m.build()).is_empty());
    }

    #[test]
    fn read_read_pair_is_not_a_candidate() {
        let mut m = ModelBuilder::new("T", Variant::Buggy);
        let a = m.atom("a", AtomKind::Net, 0);
        let b = m.atom("b", AtomKind::Net, 0);
        m.read(a, "s");
        m.read(b, "s");
        assert!(analyze(&m.build()).is_empty());
    }

    #[test]
    fn update_only_pair_is_exactly_cov() {
        let mut m = ModelBuilder::new("T", Variant::Buggy);
        let a = m.atom("a", AtomKind::Kv, 0);
        let b = m.atom("b", AtomKind::Kv, 0);
        m.update(a, "s");
        m.update(b, "s");
        let got = analyze(&m.build());
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].classes, vec![RaceClass::Cov]);
    }

    #[test]
    fn two_party_write_read_is_plain_ov() {
        let mut m = ModelBuilder::new("T", Variant::Buggy);
        let a = m.atom("a", AtomKind::Net, 0);
        let b = m.atom("b", AtomKind::Kv, 0);
        m.write(a, "s");
        m.read(b, "s");
        let got = analyze(&m.build());
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].classes, vec![RaceClass::Ov]);
        assert!(got[0].covers(RaceClass::Ov));
        assert!(!got[0].covers(RaceClass::Av));
    }

    #[test]
    fn intruding_third_writer_adds_av() {
        // The check-then-act shape: net reads, its kv child writes back,
        // and an unordered third writer may land in between.
        let mut m = ModelBuilder::new("T", Variant::Buggy);
        let req = m.atom("req", AtomKind::Net, 0);
        let set = m.atom("set", AtomKind::Kv, req);
        let other = m.atom("other", AtomKind::Net, 0);
        m.read(req, "s");
        m.write(set, "s");
        m.write(other, "s");
        let got = analyze(&m.build());
        // (req, other) and (set, other) both race; the region req→set is
        // splittable by `other`, so AV is on the menu for both.
        assert_eq!(got.len(), 2);
        for c in &got {
            assert_eq!(c.classes, vec![RaceClass::Av, RaceClass::Ov]);
        }
    }
}
