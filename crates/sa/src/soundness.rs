//! The soundness gate: static prediction must cover dynamic prediction.
//!
//! For every generated program, `nodefz-hb`'s happens-before analysis of
//! a recorded run yields *dynamic* race predictions. The static analyzer
//! never sees the run — so the one property that makes it trustworthy is
//! **containment**: every dynamic `(site, class, pair)` verdict must be
//! covered by some static candidate of the same program. [`check_prog`]
//! checks exactly that for one program (run markers map racing events
//! back onto model atoms), [`sweep_family`] sweeps a whole conform seed
//! family and hard-collects misses, and [`static_gated_sweep`] is the
//! payoff: programs the analyzer proves race-free skip the differential
//! harness entirely, with a tripwire re-running every Nth skipped
//! program to catch an analyzer gone quietly wrong.

use std::rc::Rc;

use nodefz::Mode;
use nodefz_conform::{differential, generate_family, run_logged, DiffConfig, Prog};
use nodefz_hb::races_with_cuts;
use nodefz_rt::{EventLog, LoopPool, Termination};

use crate::metrics::SaMetrics;
use crate::mhp::MhpIndex;
use crate::prog_model::{model_of_prog, ProgModel};
use crate::races::{candidates, Candidate};

/// Stride between conform corpus seed families (matching the
/// differential acceptance sweep and the CI smoke batch).
pub const FAMILY_STRIDE: u64 = 0x6C62_272E_07BB_0142;

/// The `i`-th seed of conform corpus family `family`.
pub fn family_seed(family: u64, i: u64) -> u64 {
    family.wrapping_mul(FAMILY_STRIDE) ^ i
}

/// The soundness verdict for one program.
pub struct ProgCheck {
    /// Dynamic races predicted by happens-before analysis of the run.
    pub dynamic: usize,
    /// Static candidates the analyzer emitted.
    pub candidates: Vec<Candidate>,
    /// Whether the analyzer declared the program race-free (no
    /// candidates at all).
    pub race_free: bool,
    /// Dynamic predictions no static candidate covers. Any entry is a
    /// soundness violation.
    pub missing: Vec<String>,
    /// Precision counters for this program.
    pub metrics: SaMetrics,
}

/// The atom a dynamic event folds to, via its `run:<id>` marker access.
fn atom_of_event(log: &EventLog, pm: &ProgModel, event: u32) -> Option<u32> {
    log.accesses.iter().find_map(|acc| {
        if acc.event.0 != event {
            return None;
        }
        let name = log.sites.get(acc.site as usize)?;
        let id: usize = name.strip_prefix("run:")?.parse().ok()?;
        pm.atom_of_node.get(id).copied()
    })
}

/// Statically analyzes `prog`, runs it once under the vanilla scheduler,
/// and checks that every dynamic race prediction is covered by a static
/// candidate with the exact `(site, atom pair, class)`.
///
/// `sabotage` drops the first static candidate before checking — the CI
/// canary that proves the gate actually trips on a broken analyzer.
///
/// # Errors
///
/// Returns a message if the vanilla run itself fails (non-quiescent
/// termination or runtime errors) — soundness cannot be judged from a
/// broken run.
pub fn check_prog(
    prog: &Rc<Prog>,
    env_seed: u64,
    pool: &Option<LoopPool>,
    sabotage: bool,
) -> Result<ProgCheck, String> {
    let pm = model_of_prog(prog, "prog");
    let idx = MhpIndex::build(&pm.model);
    let mut cands = candidates(&pm.model, &idx);
    if sabotage && !cands.is_empty() {
        cands.remove(0);
    }

    let (report, log) = run_logged(prog, env_seed, Mode::Vanilla, pool);
    if !matches!(report.termination, Termination::Quiescent) || !report.errors.is_empty() {
        return Err(format!(
            "vanilla run failed: termination {:?}, errors {:?}",
            report.termination, report.errors
        ));
    }

    let dynamic = races_with_cuts(&log);
    let mut missing = Vec::new();
    let mut confirmed_class = vec![None; cands.len()];
    for race in &dynamic {
        let Some(aa) = atom_of_event(&log, &pm, race.a.event) else {
            missing.push(format!(
                "dynamic {} race on {} at event {} has no run marker",
                race.class.label(),
                race.site,
                race.a.event
            ));
            continue;
        };
        let Some(ab) = atom_of_event(&log, &pm, race.b.event) else {
            missing.push(format!(
                "dynamic {} race on {} at event {} has no run marker",
                race.class.label(),
                race.site,
                race.b.event
            ));
            continue;
        };
        let (x, y) = (aa.min(ab), aa.max(ab));
        match cands
            .iter()
            .position(|c| c.site == race.site && c.a == x && c.b == y && c.covers(race.class))
        {
            Some(i) => {
                confirmed_class[i].get_or_insert(race.class);
            }
            None => missing.push(format!(
                "dynamic {} race on {} between atoms {x} ({}) and {y} ({}) \
                 has no covering static candidate",
                race.class.label(),
                race.site,
                pm.model.atoms[x as usize].label,
                pm.model.atoms[y as usize].label
            )),
        }
    }

    let mut metrics = SaMetrics {
        models: 1,
        candidates: cands.len() as u64,
        ..SaMetrics::default()
    };
    for c in &cands {
        metrics.av += u64::from(c.covers(nodefz_hb::RaceClass::Av));
        metrics.ov += u64::from(c.covers(nodefz_hb::RaceClass::Ov));
        metrics.cov += u64::from(c.covers(nodefz_hb::RaceClass::Cov));
    }
    for class in confirmed_class.iter().flatten() {
        metrics.confirmed += 1;
        match class {
            nodefz_hb::RaceClass::Av => metrics.confirmed_av += 1,
            nodefz_hb::RaceClass::Ov => metrics.confirmed_ov += 1,
            nodefz_hb::RaceClass::Cov => metrics.confirmed_cov += 1,
        }
    }

    Ok(ProgCheck {
        dynamic: dynamic.len(),
        race_free: cands.is_empty(),
        candidates: cands,
        missing,
        metrics,
    })
}

/// Aggregate soundness/precision stats over one seed family.
#[derive(Default)]
pub struct SweepStats {
    /// Programs swept.
    pub programs: u64,
    /// Programs the analyzer declared race-free.
    pub race_free: u64,
    /// Dynamic races predicted across the sweep.
    pub dynamic: u64,
    /// Accumulated precision counters.
    pub metrics: SaMetrics,
    /// All soundness misses, each prefixed with the offending seed.
    /// Non-empty means the analyzer is broken.
    pub missing: Vec<String>,
}

/// Sweeps `count` programs of conform seed family `family` through
/// [`check_prog`].
///
/// # Errors
///
/// Propagates the first run failure (see [`check_prog`]).
pub fn sweep_family(
    family: u64,
    count: u64,
    pool: &Option<LoopPool>,
) -> Result<SweepStats, String> {
    let mut stats = SweepStats::default();
    for i in 0..count {
        let seed = family_seed(family, i);
        let prog = Rc::new(generate_family(family, seed));
        let check =
            check_prog(&prog, seed, pool, false).map_err(|e| format!("seed {seed}: {e}"))?;
        stats.programs += 1;
        stats.race_free += u64::from(check.race_free);
        stats.dynamic += check.dynamic as u64;
        stats.metrics.merge(&check.metrics);
        stats.missing.extend(
            check
                .missing
                .into_iter()
                .map(|m| format!("seed {seed}: {m}")),
        );
    }
    Ok(stats)
}

/// Stats of one static-first gated sweep.
#[derive(Default)]
pub struct GatedStats {
    /// Programs considered.
    pub programs: u64,
    /// Programs the analyzer proved race-free.
    pub race_free: u64,
    /// Race-free programs whose differential run was skipped.
    pub skipped: u64,
    /// Race-free programs re-run anyway as tripwires.
    pub tripwires: u64,
    /// Full differential runs executed.
    pub differentials: u64,
}

/// Sweeps a seed family with the differential harness, *skipping* the
/// harness for programs the analyzer proves race-free. Every
/// `tripwire_every`-th skipped program still runs the differential and
/// must report zero dynamic races — a statically-race-free program with
/// a dynamically predicted race means the skip was unsound, and the
/// sweep fails loudly.
///
/// # Errors
///
/// Returns the first differential failure, tripwire violation, or
/// analyzer run failure.
pub fn static_gated_sweep(
    family: u64,
    count: u64,
    tripwire_every: u64,
    cfg: &DiffConfig,
) -> Result<GatedStats, String> {
    let mut stats = GatedStats::default();
    for i in 0..count {
        let seed = family_seed(family, i);
        let prog = Rc::new(generate_family(family, seed));
        let pm = model_of_prog(&prog, "prog");
        let idx = MhpIndex::build(&pm.model);
        let race_free = candidates(&pm.model, &idx).is_empty();
        stats.programs += 1;
        if race_free {
            stats.race_free += 1;
            let tripwire = tripwire_every > 0 && stats.race_free % tripwire_every == 0;
            if !tripwire {
                stats.skipped += 1;
                continue;
            }
            stats.tripwires += 1;
            let report = differential(&prog, seed, cfg).map_err(|e| format!("seed {seed}: {e}"))?;
            if report.races > 0 {
                return Err(format!(
                    "seed {seed}: analyzer claimed race-free but the \
                     differential predicted {} dynamic race(s) — unsound skip",
                    report.races
                ));
            }
        } else {
            stats.differentials += 1;
            differential(&prog, seed, cfg).map_err(|e| format!("seed {seed}: {e}"))?;
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_seeds_match_the_differential_sweep() {
        assert_eq!(family_seed(0, 7), 7);
        assert_eq!(family_seed(2, 0), 2u64.wrapping_mul(FAMILY_STRIDE));
    }

    #[test]
    fn a_small_family_prefix_is_sound() {
        let stats = sweep_family(0, 40, &Some(LoopPool::new())).expect("runs clean");
        assert_eq!(stats.programs, 40);
        assert!(stats.missing.is_empty(), "misses: {:#?}", stats.missing);
        // The prefix must exercise the gate: some dynamic races exist and
        // every one of them was covered.
        assert!(stats.dynamic > 0, "sweep too weak to test soundness");
        assert_eq!(stats.metrics.models, 40);
        assert!(stats.metrics.candidates >= stats.metrics.confirmed);
    }

    #[test]
    fn an_api_family_prefix_is_sound() {
        // The API-graph family routes through the graph-traversal
        // generator; the gate must hold over combinator and client
        // bodies exactly as it does over the original op mix.
        let api = nodefz_conform::API_FAMILY;
        let stats = sweep_family(api, 40, &Some(LoopPool::new())).expect("runs clean");
        assert_eq!(stats.programs, 40);
        assert!(stats.missing.is_empty(), "misses: {:#?}", stats.missing);
        assert!(stats.dynamic > 0, "sweep too weak to test soundness");
    }

    #[test]
    fn gated_sweep_skips_race_free_programs_and_tripwires_hold() {
        let cfg = DiffConfig {
            pool: Some(LoopPool::new()),
            ..DiffConfig::default()
        };
        let stats = static_gated_sweep(0, 40, 3, &cfg).expect("sweep clean");
        assert_eq!(stats.programs, 40);
        assert_eq!(stats.race_free, stats.skipped + stats.tripwires);
        assert!(stats.skipped > 0, "gate never saved a differential run");
        assert!(stats.tripwires > 0, "tripwire never fired");
        assert!(stats.differentials > 0);
    }
}
