//! Precision accounting for the static analyzer.
//!
//! Soundness is enforced elsewhere (the [`crate::soundness`] harness
//! hard-fails on any dynamically predicted race the analyzer missed);
//! this module only *counts* — how many static candidates were emitted
//! per class and how many were dynamically confirmed — so campaigns can
//! publish static precision alongside their other metrics.

/// Campaign-level static-analysis counters, rendered into the
/// `nodefz-metrics-v1` snapshot as an additive `sa` block.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SaMetrics {
    /// Static models analyzed.
    pub models: u64,
    /// Candidate race pairs emitted.
    pub candidates: u64,
    /// Candidates whose class set includes AV.
    pub av: u64,
    /// Candidates whose class set includes OV.
    pub ov: u64,
    /// Candidates whose class set includes COV.
    pub cov: u64,
    /// Candidates confirmed by a dynamic (happens-before) race on the
    /// same site with a matching class.
    pub confirmed: u64,
    /// Confirmed candidates matched as AV.
    pub confirmed_av: u64,
    /// Confirmed candidates matched as OV.
    pub confirmed_ov: u64,
    /// Confirmed candidates matched as COV.
    pub confirmed_cov: u64,
}

impl SaMetrics {
    /// Folds another counter block into this one.
    pub fn merge(&mut self, other: &SaMetrics) {
        self.models += other.models;
        self.candidates += other.candidates;
        self.av += other.av;
        self.ov += other.ov;
        self.cov += other.cov;
        self.confirmed += other.confirmed;
        self.confirmed_av += other.confirmed_av;
        self.confirmed_ov += other.confirmed_ov;
        self.confirmed_cov += other.confirmed_cov;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_fieldwise_addition() {
        let mut a = SaMetrics {
            models: 1,
            candidates: 2,
            av: 1,
            ov: 1,
            cov: 0,
            confirmed: 1,
            confirmed_av: 1,
            confirmed_ov: 0,
            confirmed_cov: 0,
        };
        let b = SaMetrics {
            models: 2,
            candidates: 3,
            cov: 3,
            confirmed: 2,
            confirmed_cov: 2,
            ..SaMetrics::default()
        };
        a.merge(&b);
        assert_eq!(a.models, 3);
        assert_eq!(a.candidates, 5);
        assert_eq!(a.cov, 3);
        assert_eq!(a.confirmed, 3);
        assert_eq!(a.confirmed_cov, 2);
    }
}
