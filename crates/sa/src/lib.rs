//! # nodefz-sa — static race prediction for the event-driven architecture
//!
//! Every other race predictor in this workspace needs at least one
//! execution: `nodefz-hb` analyzes a recorded trace, conform's oracle
//! judges logs after the fact. This crate predicts with **zero**
//! executions. The paper's §3.2 race classes (AV / OV / COV) are
//! properties of the *registration structure* — which callbacks may
//! interleave and which shared sites they touch — and that structure is
//! statically available, both in the `nodefz-prog v1` DSL
//! ([`model_of_prog`]) and in each fig6 app's declarative
//! [`nodefz_apps::statics::StaticModel`].
//!
//! ## Layer 1 — may-happen-in-parallel race prediction
//!
//! [`MhpIndex`] computes the must-happen-before relation a model
//! guarantees in *every* schedule (registration ancestry, explicit
//! ordering edges, and the timer total order) and derives
//! may-happen-in-parallel from its complement. [`candidates`] then pairs
//! MHP atoms sharing an instrumented site and classifies each pair with
//! the *set* of §3.2 classes it can manifest as: a commutative pair is
//! exactly `COV`; a pair with a crossable atomicity region may surface
//! as `AV` or `OV` depending on which way a given run's timer chain
//! points, so both are emitted. This set semantics is what makes the
//! prediction a sound over-approximation of `nodefz-hb`'s per-run
//! verdicts — checked, hard-failing, by the [`soundness`] harness over
//! the conform corpus.
//!
//! ## Layer 2 — schedule-sensitivity lints
//!
//! [`lint_model`] flags race-prone *patterns* with stable rule ids:
//! check-then-act across an async hop, unordered multi-writer commits,
//! close callbacks racing pending reads, and orderings that hold under
//! the vanilla schedule's phase ranks but are not happens-before-forced.
//!
//! Results render as a `nodefz-sa-v1` JSON document ([`sa_report`]) with
//! an interned site table and stable finding ids.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lint;
pub mod metrics;
pub mod mhp;
pub mod prog_model;
pub mod races;
pub mod report;
pub mod soundness;

pub use lint::{lint_model, Lint, RULES};
pub use metrics::SaMetrics;
pub use mhp::MhpIndex;
pub use prog_model::{model_of_prog, ProgModel};
pub use races::{candidates, Candidate};
pub use report::{analyze_model, sa_report, ModelAnalysis, SA_SCHEMA};
pub use soundness::{
    check_prog, family_seed, static_gated_sweep, sweep_family, GatedStats, ProgCheck, SweepStats,
    FAMILY_STRIDE,
};
