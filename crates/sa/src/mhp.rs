//! The may-happen-in-parallel relation over a static model.
//!
//! Soundness contract: [`MhpIndex::must_leq`] may answer `true` only for
//! orderings that hold in **every** legal schedule. The edges that
//! qualify are registration parentage and explicit `ordered_after`
//! edges — both present as happens-before (`cause` / `cause2`) links in
//! every recorded run — plus the pairwise total order of timer atoms
//! (the runtime chains all timer dispatches). Everything else *may*
//! happen in parallel; over-approximating concurrency costs precision,
//! never soundness.

use nodefz_apps::statics::StaticModel;

/// Precomputed reachability over a model's must-happen-before DAG.
pub struct MhpIndex {
    timer: Vec<bool>,
    /// `reach[a][b]`: atom `a` must complete before (or is) `b` in every
    /// schedule, by registration ancestry or explicit ordering edges.
    reach: Vec<Vec<bool>>,
}

impl MhpIndex {
    /// Builds the index for `model`. All edges point to strictly smaller
    /// ids (validated by the model), so one forward pass settles the
    /// transitive closure.
    pub fn build(model: &StaticModel) -> MhpIndex {
        let n = model.atoms.len();
        let mut reach = vec![vec![false; n]; n];
        let mut timer = vec![false; n];
        for (i, atom) in model.atoms.iter().enumerate() {
            timer[i] = atom.kind.is_timer();
            reach[i][i] = true;
            let mut preds: Vec<u32> = atom.ordered_after.clone();
            if let Some(p) = atom.parent {
                preds.push(p);
            }
            for p in preds {
                // Everything that must precede a predecessor must precede
                // this atom too; predecessors have smaller ids, so their
                // rows are final.
                for row in reach.iter_mut() {
                    if row[p as usize] {
                        row[i] = true;
                    }
                }
            }
        }
        MhpIndex { timer, reach }
    }

    /// Number of atoms indexed.
    pub fn len(&self) -> usize {
        self.reach.len()
    }

    /// Whether the index is empty (a model always has a setup atom, so
    /// this is only true for a manually emptied model).
    pub fn is_empty(&self) -> bool {
        self.reach.is_empty()
    }

    /// `a` completes before (or is) `b` in **every** schedule.
    pub fn must_leq(&self, a: u32, b: u32) -> bool {
        self.reach[a as usize][b as usize]
    }

    /// `a` dispatches before `b` in **some** schedule (i.e. `b` is not a
    /// strict must-predecessor of `a`). Two timer atoms are ordered in
    /// every run, but the *direction* varies per run, so both
    /// `may_leq(t1, t2)` and `may_leq(t2, t1)` hold.
    pub fn may_leq(&self, a: u32, b: u32) -> bool {
        a == b || !self.must_leq(b, a)
    }

    /// The pair may dispatch concurrently: neither must-precedes the
    /// other and the pair is not two timers (which every run totally
    /// orders through the happens-before timer chain).
    pub fn mhp(&self, a: u32, b: u32) -> bool {
        let both_timers = self.timer[a as usize] && self.timer[b as usize];
        a != b && !self.must_leq(a, b) && !self.must_leq(b, a) && !both_timers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodefz_apps::common::Variant;
    use nodefz_apps::statics::{AtomKind, ModelBuilder};

    fn chain_model() -> StaticModel {
        let mut m = ModelBuilder::new("T", Variant::Buggy);
        let a = m.atom("a", AtomKind::Net, 0); // 1
        let b = m.atom("b", AtomKind::Kv, a); // 2
        let c = m.atom("c", AtomKind::Net, 0); // 3
        let t1 = m.atom("t1", AtomKind::Timer, 0); // 4
        let t2 = m.atom("t2", AtomKind::Timer, c); // 5
        let d = m.atom("d", AtomKind::Kv, 0); // 6
        m.after(d, b);
        let _ = (t1, t2);
        m.build()
    }

    #[test]
    fn ancestry_is_must_order() {
        let idx = MhpIndex::build(&chain_model());
        assert!(idx.must_leq(0, 1));
        assert!(idx.must_leq(1, 2));
        assert!(idx.must_leq(0, 2)); // transitive
        assert!(!idx.must_leq(2, 1));
        assert!(!idx.must_leq(1, 3)); // siblings unordered
        assert!(idx.mhp(1, 3));
        assert!(!idx.mhp(1, 2));
    }

    #[test]
    fn ordered_after_extends_the_dag() {
        let idx = MhpIndex::build(&chain_model());
        assert!(idx.must_leq(2, 6));
        assert!(idx.must_leq(1, 6)); // through b's ancestry
        assert!(!idx.mhp(2, 6));
    }

    #[test]
    fn timer_pairs_are_never_mhp_but_may_order_both_ways() {
        let idx = MhpIndex::build(&chain_model());
        assert!(!idx.mhp(4, 5));
        assert!(idx.may_leq(4, 5));
        assert!(idx.may_leq(5, 4));
        // A timer and a non-timer still race.
        assert!(idx.mhp(4, 1));
    }
}
