//! Lowering a `nodefz-prog v1` literal into a [`StaticModel`].
//!
//! The lowering mirrors the runtime's dispatch semantics exactly:
//!
//! * `nexttick` nodes are microtasks **absorbed into their parent's
//!   event**, so they are folded into the nearest non-nexttick ancestor:
//!   their touches merge into that atom and their children re-parent to
//!   it.
//! * Every other node becomes one atom; its parent is the atom whose
//!   callback registered it, which is a `cause`/`cause2` happens-before
//!   edge in every recorded run.
//! * A `pool` node's body runs in the *done* callback, an `fdchain`
//!   node's body inside the last watcher dispatch — both dispatched with
//!   the registering callback as happens-before ancestor, so plain
//!   parentage models them faithfully.

use nodefz_apps::statics::{Access, Atom, AtomKind, StaticModel};
use nodefz_conform::{Op, Prog};

/// A lowered program: the model plus the node→atom fold table the
/// soundness harness uses to map dynamic run markers back onto atoms.
pub struct ProgModel {
    /// The static model (atom 0 is the program root / setup).
    pub model: StaticModel,
    /// For each program node id, the atom its body folds into.
    pub atom_of_node: Vec<u32>,
}

fn kind_of(op: Op) -> AtomKind {
    match op {
        Op::Root => AtomKind::Setup,
        Op::Timer { .. } => AtomKind::Timer,
        Op::NextTick => unreachable!("nexttick nodes are folded"),
        Op::Immediate => AtomKind::Immediate,
        Op::Pending => AtomKind::Pending,
        Op::Close => AtomKind::Close,
        Op::Pool { .. } => AtomKind::Pool,
        Op::FdChain { .. } => AtomKind::Fd,
        // Interval, barrier, and series bodies all run inside a timer
        // dispatch (last tick / last arrival / last step hop), and the
        // runtime chains every timer dispatch into a per-run total
        // order, so Timer is the faithful — and MHP-precise — kind.
        Op::Interval { .. } | Op::Barrier { .. } | Op::Series { .. } => AtomKind::Timer,
        // An emitter body runs in the `setImmediate` that emits.
        Op::Emitter { .. } => AtomKind::Immediate,
        Op::Kv => AtomKind::Kv,
        Op::Fs => AtomKind::Fs,
    }
}

fn op_label(id: usize, op: Op) -> String {
    let name = match op {
        Op::Root => "root",
        Op::Timer { .. } => "timer",
        Op::NextTick => "nexttick",
        Op::Immediate => "immediate",
        Op::Pending => "pending",
        Op::Close => "close",
        Op::Pool { .. } => "pool",
        Op::FdChain { .. } => "fdchain",
        Op::Interval { .. } => "interval",
        Op::Barrier { .. } => "barrier",
        Op::Series { .. } => "series",
        Op::Emitter { .. } => "emitter",
        Op::Kv => "kv",
        Op::Fs => "fs",
    };
    format!("n{id}:{name}")
}

/// Lowers `prog` (assumed validated) to a static model named `name`.
pub fn model_of_prog(prog: &Prog, name: &str) -> ProgModel {
    let n = prog.nodes.len();
    // Parent node of each node in the registration tree.
    let mut node_parent = vec![0u32; n];
    for (id, node) in prog.nodes.iter().enumerate() {
        for &c in &node.children {
            node_parent[c as usize] = id as u32;
        }
    }
    let mut atoms: Vec<Atom> = Vec::new();
    let mut atom_of_node = vec![0u32; n];
    for (id, node) in prog.nodes.iter().enumerate() {
        let atom = if node.op == Op::NextTick {
            // Absorbed into the parent's event: same atom. Parents have
            // smaller ids, so the fold is already settled.
            atom_of_node[node_parent[id] as usize]
        } else {
            let atom = atoms.len() as u32;
            let parent = (id > 0).then(|| atom_of_node[node_parent[id] as usize]);
            atoms.push(Atom {
                label: op_label(id, node.op),
                kind: kind_of(node.op),
                parent,
                ordered_after: Vec::new(),
                accesses: Vec::new(),
            });
            atom
        };
        atom_of_node[id] = atom;
        let accesses = &mut atoms[atom as usize].accesses;
        for touch in &node.touches {
            accesses.push(Access {
                site: format!("s{}", touch.site),
                kind: touch.kind,
            });
        }
    }
    ProgModel {
        model: StaticModel {
            name: name.to_string(),
            variant: "v1".into(),
            atoms,
        },
        atom_of_node,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Prog {
        Prog::parse(text).expect("literal parses")
    }

    #[test]
    fn nexttick_folds_into_parent_atom() {
        let prog = parse(
            "nodefz-prog v1\n\
             0 root children=1 touches=\n\
             1 timer delay_us=100 children=2 touches=r0\n\
             2 nexttick children=3 touches=w1\n\
             3 close children= touches=u2\n\
             end\n",
        );
        let pm = model_of_prog(&prog, "p");
        // root, timer, close — the nexttick disappears.
        assert_eq!(pm.model.atoms.len(), 3);
        assert_eq!(pm.atom_of_node, vec![0, 1, 1, 2]);
        let timer = &pm.model.atoms[1];
        assert_eq!(timer.kind, AtomKind::Timer);
        // The nexttick's write merged into the timer atom.
        assert_eq!(timer.accesses.len(), 2);
        assert_eq!(timer.accesses[1].site, "s1");
        // The close node re-parented through the fold onto the timer.
        let close = &pm.model.atoms[2];
        assert_eq!(close.parent, Some(1));
        assert!(pm.model.validate().is_ok());
    }

    #[test]
    fn models_of_generated_programs_validate() {
        for seed in 0..50 {
            for family in [0, nodefz_conform::API_FAMILY] {
                let prog = nodefz_conform::generate_family(family, seed);
                let pm = model_of_prog(&prog, "gen");
                pm.model
                    .validate()
                    .unwrap_or_else(|e| panic!("family {family} seed {seed}: {e}"));
                assert_eq!(pm.atom_of_node.len(), prog.nodes.len());
            }
        }
    }
}
