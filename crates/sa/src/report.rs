//! The `nodefz-sa-v1` JSON report.
//!
//! Layout:
//!
//! ```json
//! {
//!   "schema": "nodefz-sa-v1",
//!   "sites": ["gho:user-row", "..."],
//!   "models": [
//!     {
//!       "name": "GHO", "variant": "buggy", "atoms": 7,
//!       "candidates": [
//!         {
//!           "id": "sa-9f2c40d1e8a3b576", "site": 0,
//!           "a": 2, "a_label": "kv.get:r1", "a_kind": "kv",
//!           "b": 4, "b_label": "kv.set:r2", "b_kind": "kv",
//!           "classes": ["AV", "OV"]
//!         }
//!       ],
//!       "lints": [
//!         {
//!           "id": "sa-1d0b7a44c2f9e830", "rule": "SA-CHECK-THEN-ACT",
//!           "site": 0, "atoms": [2, 3, 5], "detail": "..."
//!         }
//!       ]
//!     }
//!   ]
//! }
//! ```
//!
//! Site names are interned once report-wide through the trace crate's
//! [`SiteInterner`] (matching `nodefz-races-v1`); findings refer to
//! sites by table index. Finding ids are FNV-1a hashes of the finding's
//! *identity* — model name, variant, site, atom labels, classification —
//! so they stay stable across reorderings and unrelated model edits.

use nodefz_apps::statics::StaticModel;
use nodefz_obs::JsonWriter;
use nodefz_trace::{SiteId, SiteInterner};

use crate::lint::{lint_model, Lint};
use crate::mhp::MhpIndex;
use crate::races::{candidates, Candidate};

/// Schema tag of the static-analysis report.
pub const SA_SCHEMA: &str = "nodefz-sa-v1";

/// The full static analysis of one model: its predicted race pairs and
/// its lint findings.
pub struct ModelAnalysis {
    /// The analyzed model.
    pub model: StaticModel,
    /// Predicted race pairs, deterministically ordered.
    pub candidates: Vec<Candidate>,
    /// Lint findings, grouped by rule.
    pub lints: Vec<Lint>,
}

/// Runs both analysis layers over `model`.
pub fn analyze_model(model: StaticModel) -> ModelAnalysis {
    let idx = MhpIndex::build(&model);
    let candidates = candidates(&model, &idx);
    let lints = lint_model(&model, &idx);
    ModelAnalysis {
        model,
        candidates,
        lints,
    }
}

/// 64-bit FNV-1a over `bytes`.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn finding_id(parts: &[&str]) -> String {
    format!("sa-{:016x}", fnv1a64(parts.join("|").as_bytes()))
}

fn candidate_id(model: &StaticModel, c: &Candidate) -> String {
    let classes: Vec<&str> = c.classes.iter().map(|cl| cl.label()).collect();
    finding_id(&[
        &model.name,
        &model.variant,
        &c.site,
        &model.atoms[c.a as usize].label,
        &model.atoms[c.b as usize].label,
        &classes.join("+"),
    ])
}

fn lint_id(model: &StaticModel, l: &Lint) -> String {
    let labels: Vec<&str> = l
        .atoms
        .iter()
        .map(|&a| model.atoms[a as usize].label.as_str())
        .collect();
    finding_id(&[
        &model.name,
        &model.variant,
        l.rule,
        &l.site,
        &labels.join("+"),
    ])
}

/// Renders analyses of one or more models as a `nodefz-sa-v1` document.
pub fn sa_report(analyses: &[ModelAnalysis]) -> String {
    let mut sites = SiteInterner::new();
    for analysis in analyses {
        for c in &analysis.candidates {
            sites.intern(&c.site);
        }
        for l in &analysis.lints {
            sites.intern(&l.site);
        }
    }
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("schema", SA_SCHEMA);
    w.key("sites");
    w.begin_array();
    for i in 0..sites.len() {
        w.str(sites.resolve(SiteId(i as u32)));
    }
    w.end_array();
    w.key("models");
    w.begin_array();
    for analysis in analyses {
        let model = &analysis.model;
        w.begin_object();
        w.field_str("name", &model.name);
        w.field_str("variant", &model.variant);
        w.field_u64("atoms", model.atoms.len() as u64);
        w.key("candidates");
        w.begin_array();
        for c in &analysis.candidates {
            let site = sites.lookup(&c.site).expect("interned above");
            let (a, b) = (&model.atoms[c.a as usize], &model.atoms[c.b as usize]);
            w.begin_object();
            w.field_str("id", &candidate_id(model, c));
            w.field_u64("site", u64::from(site.0));
            w.field_u64("a", u64::from(c.a));
            w.field_str("a_label", &a.label);
            w.field_str("a_kind", a.kind.label());
            w.field_u64("b", u64::from(c.b));
            w.field_str("b_label", &b.label);
            w.field_str("b_kind", b.kind.label());
            w.key("classes");
            w.begin_array();
            for class in &c.classes {
                w.str(class.label());
            }
            w.end_array();
            w.end_object();
        }
        w.end_array();
        w.key("lints");
        w.begin_array();
        for l in &analysis.lints {
            let site = sites.lookup(&l.site).expect("interned above");
            w.begin_object();
            w.field_str("id", &lint_id(model, l));
            w.field_str("rule", l.rule);
            w.field_u64("site", u64::from(site.0));
            w.key("atoms");
            w.begin_array();
            for &a in &l.atoms {
                w.u64(u64::from(a));
            }
            w.end_array();
            w.field_str("detail", &l.detail);
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodefz_apps::common::Variant;
    use nodefz_apps::statics::{AtomKind, ModelBuilder};

    fn sample() -> StaticModel {
        let mut m = ModelBuilder::new("T", Variant::Buggy);
        let a = m.atom("writer-a", AtomKind::Net, 0);
        let b = m.atom("writer-b", AtomKind::Kv, 0);
        m.write(a, "t:slot");
        m.write(b, "t:slot");
        m.build()
    }

    #[test]
    fn report_has_schema_site_table_and_findings() {
        let doc = sa_report(&[analyze_model(sample())]);
        assert!(doc.contains("\"schema\": \"nodefz-sa-v1\""));
        assert!(doc.contains("\"sites\": [\"t:slot\"]"));
        assert!(doc.contains("\"classes\": [\"OV\"]"));
        assert!(doc.contains("\"rule\": \"SA-MULTI-WRITER-COMMIT\""));
        assert_eq!(doc.matches("\"t:slot\"").count(), 1, "site interned once");
    }

    #[test]
    fn empty_report_is_well_formed() {
        let doc = sa_report(&[]);
        assert_eq!(
            doc,
            "{\"schema\": \"nodefz-sa-v1\", \"sites\": [], \"models\": []}"
        );
    }

    #[test]
    fn finding_ids_are_stable_against_reordering() {
        let one = analyze_model(sample());
        let id_alone = candidate_id(&one.model, &one.candidates[0]);
        // Same finding inside a bigger report keeps its id.
        let mut m = ModelBuilder::new("other", Variant::Buggy);
        let x = m.atom("x", AtomKind::Timer, 0);
        m.write(x, "o:site");
        let doc = sa_report(&[analyze_model(m.build()), analyze_model(sample())]);
        assert!(doc.contains(&id_alone));
    }
}
