//! Schedule-sensitivity lints.
//!
//! Where [`crate::races`] predicts *that* two callbacks may race, the
//! lints name the *pattern* that made the race possible — the shapes
//! §2.3 of the paper catalogues as the recurring sources of
//! event-driven races. Each finding cites a stable rule id so reports
//! and CI can key on it.

use nodefz_apps::statics::{AtomKind, StaticModel};
use nodefz_rt::AccessKind;

use crate::mhp::MhpIndex;

/// Check-then-act across an async hop: a callback reads a site, a
/// descendant acts on the stale value by writing it back, and an
/// unordered third writer may land in the gap.
pub const RULE_CHECK_THEN_ACT: &str = "SA-CHECK-THEN-ACT";
/// Two unordered callbacks both commit (plain write, not a commutative
/// update) to the same site — last writer wins nondeterministically.
pub const RULE_MULTI_WRITER_COMMIT: &str = "SA-MULTI-WRITER-COMMIT";
/// A close callback tears down a site an unordered reader may still
/// observe mid-teardown.
pub const RULE_CLOSE_PENDING_READ: &str = "SA-CLOSE-PENDING-READ";
/// Siblings whose vanilla dispatch order comes only from phase ranks:
/// the default schedule always runs them one way, but no happens-before
/// edge forces it, so a fuzzed schedule may flip them.
pub const RULE_VANILLA_ORDER: &str = "SA-VANILLA-ORDER";

/// All lint rule ids, in emission order.
pub const RULES: [&str; 4] = [
    RULE_CHECK_THEN_ACT,
    RULE_MULTI_WRITER_COMMIT,
    RULE_CLOSE_PENDING_READ,
    RULE_VANILLA_ORDER,
];

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Lint {
    /// Stable rule id (one of [`RULES`]).
    pub rule: &'static str,
    /// Shared-site name the finding is about.
    pub site: String,
    /// Atom ids involved, in the role order the rule defines.
    pub atoms: Vec<u32>,
    /// Human-readable explanation.
    pub detail: String,
}

#[derive(Clone, Copy, Default)]
struct SiteUse {
    reads: bool,
    commits: bool,
    writeish: bool,
}

/// Per-site access summaries: sites in first-appearance order, atoms
/// ascending within each site.
fn site_table(model: &StaticModel) -> Vec<(String, Vec<(u32, SiteUse)>)> {
    let mut sites: Vec<(String, Vec<(u32, SiteUse)>)> = Vec::new();
    for (id, atom) in model.atoms.iter().enumerate() {
        for access in &atom.accesses {
            let entry = match sites.iter_mut().find(|(s, _)| *s == access.site) {
                Some((_, atoms)) => atoms,
                None => {
                    sites.push((access.site.clone(), Vec::new()));
                    &mut sites.last_mut().expect("just pushed").1
                }
            };
            let slot = match entry.iter_mut().find(|(a, _)| *a == id as u32) {
                Some((_, slot)) => slot,
                None => {
                    entry.push((id as u32, SiteUse::default()));
                    &mut entry.last_mut().expect("just pushed").1
                }
            };
            match access.kind {
                AccessKind::Read => slot.reads = true,
                AccessKind::Write => {
                    slot.commits = true;
                    slot.writeish = true;
                }
                AccessKind::Update => slot.writeish = true,
            }
        }
    }
    sites
}

fn label(model: &StaticModel, atom: u32) -> &str {
    &model.atoms[atom as usize].label
}

fn kind(model: &StaticModel, atom: u32) -> AtomKind {
    model.atoms[atom as usize].kind
}

/// Runs every lint rule over `model`, returning findings grouped by
/// rule (in [`RULES`] order), then by site first-appearance order, then
/// by ascending atom ids — fully deterministic.
pub fn lint_model(model: &StaticModel, idx: &MhpIndex) -> Vec<Lint> {
    let sites = site_table(model);
    let mut out = Vec::new();

    // SA-CHECK-THEN-ACT: reader A, strict must-descendant writer B, and
    // a writeish C not pinned outside the A→B window. One finding per
    // (A, B), citing the first such C.
    for (site, atoms) in &sites {
        for &(a, ua) in atoms {
            if !ua.reads {
                continue;
            }
            for &(b, ub) in atoms {
                if b == a || !ub.writeish || !idx.must_leq(a, b) {
                    continue;
                }
                let intruder = atoms.iter().find(|&&(c, uc)| {
                    c != a && c != b && uc.writeish && !idx.must_leq(c, a) && !idx.must_leq(b, c)
                });
                if let Some(&(c, _)) = intruder {
                    out.push(Lint {
                        rule: RULE_CHECK_THEN_ACT,
                        site: site.clone(),
                        atoms: vec![a, b, c],
                        detail: format!(
                            "{} checks {site} and {} acts on the stale value \
                             after an async hop; {} may write in between",
                            label(model, a),
                            label(model, b),
                            label(model, c)
                        ),
                    });
                }
            }
        }
    }

    // SA-MULTI-WRITER-COMMIT: unordered plain-write committers.
    for (site, atoms) in &sites {
        for (i, &(a, ua)) in atoms.iter().enumerate() {
            for &(b, ub) in &atoms[i + 1..] {
                if ua.commits && ub.commits && idx.mhp(a, b) {
                    out.push(Lint {
                        rule: RULE_MULTI_WRITER_COMMIT,
                        site: site.clone(),
                        atoms: vec![a, b],
                        detail: format!(
                            "{} and {} both commit {site} with no ordering \
                             between them; last writer wins",
                            label(model, a),
                            label(model, b)
                        ),
                    });
                }
            }
        }
    }

    // SA-CLOSE-PENDING-READ: a close-kind teardown racing a reader.
    for (site, atoms) in &sites {
        for &(closer, uc) in atoms {
            if kind(model, closer) != AtomKind::Close || !uc.writeish {
                continue;
            }
            for &(reader, ur) in atoms {
                if ur.reads && idx.mhp(closer, reader) {
                    out.push(Lint {
                        rule: RULE_CLOSE_PENDING_READ,
                        site: site.clone(),
                        atoms: vec![closer, reader],
                        detail: format!(
                            "close callback {} tears down {site} while \
                             {} may still read it",
                            label(model, closer),
                            label(model, reader)
                        ),
                    });
                }
            }
        }
    }

    // SA-VANILLA-ORDER: same-parent siblings ordered only by phase rank.
    for (site, atoms) in &sites {
        for (i, &(a, ua)) in atoms.iter().enumerate() {
            for &(b, ub) in &atoms[i + 1..] {
                let (ka, kb) = (kind(model, a), kind(model, b));
                if model.atoms[a as usize].parent == model.atoms[b as usize].parent
                    && idx.mhp(a, b)
                    && (ua.writeish || ub.writeish)
                    && ka.rank() != kb.rank()
                {
                    out.push(Lint {
                        rule: RULE_VANILLA_ORDER,
                        site: site.clone(),
                        atoms: vec![a, b],
                        detail: format!(
                            "{} ({} phase, rank {}) runs before {} ({} phase, \
                             rank {}) under the vanilla schedule, but nothing \
                             forces that order on {site}",
                            label(model, a),
                            ka.label(),
                            ka.rank(),
                            label(model, b),
                            kb.label(),
                            kb.rank()
                        ),
                    });
                }
            }
        }
    }

    out.sort_by_key(|l| {
        RULES
            .iter()
            .position(|r| *r == l.rule)
            .unwrap_or(RULES.len())
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodefz_apps::common::Variant;
    use nodefz_apps::statics::ModelBuilder;

    fn lints(model: &StaticModel) -> Vec<Lint> {
        lint_model(model, &MhpIndex::build(model))
    }

    #[test]
    fn check_then_act_fires_on_the_gho_shape() {
        let mut m = ModelBuilder::new("T", Variant::Buggy);
        let get1 = m.atom("get1", AtomKind::Kv, 0);
        let set1 = m.atom("set1", AtomKind::Kv, get1);
        let get2 = m.atom("get2", AtomKind::Kv, 0);
        let set2 = m.atom("set2", AtomKind::Kv, get2);
        for (g, s) in [(get1, set1), (get2, set2)] {
            m.read(g, "row");
            m.write(s, "row");
        }
        let got = lints(&m.build());
        let cta: Vec<_> = got
            .iter()
            .filter(|l| l.rule == RULE_CHECK_THEN_ACT)
            .collect();
        assert_eq!(cta.len(), 2, "one finding per check-then-act chain");
        assert_eq!(cta[0].atoms, vec![get1, set1, set2]);
    }

    #[test]
    fn ordered_writers_do_not_trip_multi_writer_commit() {
        let mut m = ModelBuilder::new("T", Variant::Buggy);
        let a = m.atom("a", AtomKind::Net, 0);
        let b = m.atom("b", AtomKind::Kv, a);
        m.write(a, "s");
        m.write(b, "s");
        assert!(lints(&m.build()).is_empty());
    }

    #[test]
    fn close_racing_reader_fires() {
        let mut m = ModelBuilder::new("T", Variant::Buggy);
        let fin = m.atom("fin", AtomKind::Close, 0);
        let rd = m.atom("rd", AtomKind::Net, 0);
        m.write(fin, "sock");
        m.read(rd, "sock");
        let got = lints(&m.build());
        assert!(got
            .iter()
            .any(|l| l.rule == RULE_CLOSE_PENDING_READ && l.atoms == vec![fin, rd]));
    }

    #[test]
    fn vanilla_order_fires_only_across_ranks() {
        let mut m = ModelBuilder::new("T", Variant::Buggy);
        let t = m.atom("t", AtomKind::Timer, 0);
        let c = m.atom("c", AtomKind::Immediate, 0);
        m.write(t, "s");
        m.read(c, "s");
        let got = lints(&m.build());
        assert!(got.iter().any(|l| l.rule == RULE_VANILLA_ORDER));

        let mut m2 = ModelBuilder::new("T", Variant::Buggy);
        let n1 = m2.atom("n1", AtomKind::Net, 0);
        let n2 = m2.atom("n2", AtomKind::Net, 0);
        m2.write(n1, "s");
        m2.read(n2, "s");
        let got2 = lints(&m2.build());
        assert!(!got2.iter().any(|l| l.rule == RULE_VANILLA_ORDER));
    }
}
