//! Pins the static-ranked directed-confirmation comparison: ranking
//! predicted races by static-candidate priority must never cost *more*
//! directed executions than the plain happens-before order, and must
//! confirm the same races. Everything derives from the fixed default
//! env seed, so the exec counts are deterministic.

use nodefz_campaign::{analyze_campaign, AnalyzeConfig};

fn run(app: &str, ranked: bool) -> (u64, Vec<String>, nodefz_sa::SaMetrics) {
    let report = analyze_campaign(&AnalyzeConfig {
        apps: vec![app.into()],
        ranked,
        ..AnalyzeConfig::default()
    })
    .expect("analysis runs");
    assert!(report.failed.is_empty(), "{app}: {:?}", report.failed);
    let mut sites: Vec<String> = report.confirmed.iter().map(|c| c.site.clone()).collect();
    sites.sort();
    (report.directed_execs, sites, report.sa)
}

#[test]
fn ranked_confirmation_needs_no_more_execs_than_unranked() {
    // More than the two fig6 apps the acceptance bar asks for, including
    // multi-race analyses (MGS predicts 6 pairs, SIO 7) where ordering
    // could actually bite.
    for app in ["GHO", "NES", "MGS", "SIO"] {
        let (ranked, ranked_sites, sa) = run(app, true);
        let (unranked, unranked_sites, _) = run(app, false);
        assert!(
            ranked <= unranked,
            "{app}: ranked confirmation spent {ranked} directed exec(s) \
             vs {unranked} unranked"
        );
        assert_eq!(
            ranked_sites, unranked_sites,
            "{app}: ranking changed the confirmed race set"
        );
        assert!(ranked >= 1, "{app}: no directed execs spent at all");
        // The precision counters ride along whenever the app has a
        // static model (all four of these do).
        assert_eq!(sa.models, 1, "{app}: static model not consulted");
        assert!(sa.candidates >= 1, "{app}: no static candidates");
        assert!(
            sa.confirmed >= 1,
            "{app}: a confirmed race matched no static candidate"
        );
    }
}
