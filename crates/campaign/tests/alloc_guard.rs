//! Hot-path allocation budget guard.
//!
//! Throughput is executions per second, and the silent way to lose it is
//! heap traffic creeping back into the per-event hot path. This test
//! installs [`nodefz_check::CountingAlloc`] as the global allocator, runs
//! the campaign hot path ([`nodefz_campaign::RunContext::fuzz_once`]) on
//! the smallest app, and asserts the steady-state allocation cost per
//! dispatched callback stays under a fixed budget — so a regression fails
//! CI instead of eroding the throughput trajectory.

use nodefz_campaign::RunContext;
use nodefz_check::CountingAlloc;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

/// Maximum steady-state allocations per dispatched callback.
///
/// Every dispatched callback is a boxed closure (`Job = Box<dyn FnOnce>`),
/// so ~1 allocation per event is inherent to the runtime's design; the
/// budget adds headroom for per-run bookkeeping (trace snapshot, report)
/// amortized over the run's events. Measured steady state after the
/// zero-allocation overhaul is ~2.6 allocs/event; 3 is the tripwire.
const ALLOCS_PER_EVENT_BUDGET: f64 = 3.0;

#[test]
fn fuzzed_run_stays_within_allocation_budget() {
    let mut ctx = RunContext::new();
    // Warm up: let every pooled buffer reach steady-state capacity.
    let mut warm_events = 0u64;
    for seed in 0..20 {
        warm_events += ctx.fuzz_once("GHO", 0, seed).dispatched;
    }
    assert!(warm_events > 0, "warmup dispatched nothing");

    let before = ALLOC.stats();
    let mut events = 0u64;
    const RUNS: u64 = 50;
    for seed in 100..100 + RUNS {
        events += ctx.fuzz_once("GHO", 0, seed).dispatched;
    }
    let during = ALLOC.stats().since(&before);

    assert!(events > 0, "measured runs dispatched nothing");
    let per_event = during.allocs as f64 / events as f64;
    assert!(
        per_event <= ALLOCS_PER_EVENT_BUDGET,
        "hot path allocates too much: {:.2} allocs/event over {RUNS} runs \
         ({} allocs, {} events, {} bytes) — budget is {ALLOCS_PER_EVENT_BUDGET}",
        per_event,
        during.allocs,
        events,
        during.bytes,
    );
}
