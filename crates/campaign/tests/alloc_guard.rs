//! Hot-path allocation budget guard.
//!
//! Throughput is executions per second, and the silent way to lose it is
//! heap traffic creeping back into the per-event hot path. This test
//! installs [`nodefz_check::CountingAlloc`] as the global allocator, runs
//! the campaign hot path ([`nodefz_campaign::RunContext::fuzz_once`]) on
//! the smallest app, and asserts the steady-state allocation cost per
//! dispatched callback stays under a fixed budget — so a regression fails
//! CI instead of eroding the throughput trajectory.

use nodefz_campaign::RunContext;
use nodefz_check::CountingAlloc;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

/// Serializes the measuring tests: the counting allocator is global, so a
/// concurrently running test would bleed its allocations into the
/// measured window.
static MEASURE: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Maximum steady-state allocations per dispatched callback.
///
/// Every dispatched callback is a boxed closure (`Job = Box<dyn FnOnce>`),
/// so ~1 allocation per event is inherent to the runtime's design; the
/// budget adds headroom for per-run bookkeeping (trace snapshot, report)
/// amortized over the run's events. Measured steady state after the
/// zero-allocation overhaul is ~2.6 allocs/event; 3 is the tripwire.
const ALLOCS_PER_EVENT_BUDGET: f64 = 3.0;

#[test]
fn fuzzed_run_stays_within_allocation_budget() {
    let _guard = MEASURE.lock().unwrap();
    let mut ctx = RunContext::new();
    // Warm up: let every pooled buffer reach steady-state capacity.
    let mut warm_events = 0u64;
    for seed in 0..20 {
        warm_events += ctx.fuzz_once("GHO", 0, seed).dispatched;
    }
    assert!(warm_events > 0, "warmup dispatched nothing");

    let before = ALLOC.stats();
    let mut events = 0u64;
    const RUNS: u64 = 50;
    for seed in 100..100 + RUNS {
        events += ctx.fuzz_once("GHO", 0, seed).dispatched;
    }
    let during = ALLOC.stats().since(&before);

    assert!(events > 0, "measured runs dispatched nothing");
    let per_event = during.allocs as f64 / events as f64;
    assert!(
        per_event <= ALLOCS_PER_EVENT_BUDGET,
        "hot path allocates too much: {:.2} allocs/event over {RUNS} runs \
         ({} allocs, {} events, {} bytes) — budget is {ALLOCS_PER_EVENT_BUDGET}",
        per_event,
        during.allocs,
        events,
        during.bytes,
    );
}

/// Maximum steady-state allocations per snapshot fork (restore +
/// scheduler replacement + resumed run + canonicalization).
///
/// The replacement scheduler is a box plus its PRNG state, interval
/// re-arms box a fresh timer job each tick of the resumed suffix, and the
/// restore/rewind/canon machinery reuses pooled buffers at steady state.
/// Measured ~18 allocs/fork; 30 is the tripwire.
const ALLOCS_PER_FORK_BUDGET: f64 = 30.0;

#[test]
fn snapshot_fork_cycle_stays_within_allocation_budget() {
    use nodefz_rt::{EventLogHandle, EventLoop, LoopConfig, VDur, VTime};

    let _guard = MEASURE.lock().unwrap();
    let params = nodefz_campaign::preset_params(0);
    let cfg = LoopConfig {
        max_vtime: VTime::ZERO + VDur::millis(40),
        ..LoopConfig::seeded(7)
    };
    let mut el =
        EventLoop::with_scheduler(cfg, Box::new(nodefz::FuzzScheduler::new(params.clone(), 7)));
    let log = EventLogHandle::fresh();
    el.set_event_log(&log);
    el.enter(|cx| {
        cx.set_interval(VDur::millis(3), |cx| {
            cx.touch_write("guard:a");
        });
        cx.set_interval(VDur::millis(5), |cx| {
            cx.touch_read("guard:a");
        });
    });
    assert!(el.run_bounded(4).is_none(), "prefix outlasts 4 iterations");
    let snap = el.snapshot().expect("timer-only loop is admissible");

    let mut canon = nodefz_hb::CanonBuilder::new();
    let mut scratch = Vec::new();
    let mut fork = |el: &mut EventLoop, seed: u64| {
        assert!(el.restore(&snap), "one-shot-free snapshot never stales");
        el.replace_scheduler(Box::new(nodefz::FuzzScheduler::new(params.clone(), seed)));
        el.run();
        log.with(|l| canon.build(l, &mut scratch))
    };

    // Warm up: pooled buffers (log, canon scratch, ready queues) reach
    // steady-state capacity.
    for seed in 0..20 {
        fork(&mut el, seed);
    }

    let before = ALLOC.stats();
    const FORKS: u64 = 50;
    for seed in 100..100 + FORKS {
        fork(&mut el, seed);
    }
    let during = ALLOC.stats().since(&before);

    let per_fork = during.allocs as f64 / FORKS as f64;
    assert!(
        per_fork <= ALLOCS_PER_FORK_BUDGET,
        "fork path allocates too much: {:.2} allocs/fork over {FORKS} forks \
         ({} allocs, {} bytes) — budget is {ALLOCS_PER_FORK_BUDGET}",
        per_fork,
        during.allocs,
        during.bytes,
    );
}
