//! Soundness invariance of schedule-space pruning: a pruned campaign
//! must find the *byte-identical* deduplicated bug set an unpruned
//! campaign finds at the same seed. Pruning classifies runs into
//! happens-before equivalence classes on the side; it must never change
//! which seeds are dispatched, which schedules execute, or which repros
//! are persisted.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use nodefz_campaign::{run, CampaignConfig};
use nodefz_obs::JsonValue;

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("nodefz-prunesound-{tag}-{}", std::process::id()))
}

/// Reads every file in a corpus directory into (name, bytes) pairs.
fn corpus_files(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut files = BTreeMap::new();
    for entry in std::fs::read_dir(dir).expect("corpus dir exists") {
        let entry = entry.unwrap();
        if entry.file_type().unwrap().is_file() {
            files.insert(
                entry.file_name().to_string_lossy().into_owned(),
                std::fs::read(entry.path()).unwrap(),
            );
        }
    }
    files
}

fn campaign(prune: bool, tag: &str) -> (BTreeMap<String, Vec<u8>>, PathBuf) {
    let corpus_dir = temp_dir(tag);
    let metrics_path = corpus_dir.with_extension("metrics.json");
    let _ = std::fs::remove_dir_all(&corpus_dir);
    let _ = std::fs::remove_file(&metrics_path);
    let cfg = CampaignConfig {
        apps: vec!["GHO".into(), "AKA".into(), "KUE".into()],
        budget: 120,
        // One worker thread: with more, the bandit's dispatch stream (and
        // so per-bug hit counts) depends on completion timing, which
        // would make the byte-for-byte diff flaky for reasons unrelated
        // to pruning.
        threads: 1,
        base_seed: 7,
        shrink: true,
        corpus_dir: Some(corpus_dir.clone()),
        metrics_out: Some(metrics_path.clone()),
        prune,
        ..CampaignConfig::default()
    };
    let report = run(&cfg).expect("campaign runs");
    assert_eq!(report.runs, 120);
    let files = corpus_files(&corpus_dir);
    std::fs::remove_dir_all(&corpus_dir).unwrap();
    (files, metrics_path)
}

#[test]
fn pruned_and_unpruned_campaigns_persist_byte_identical_corpora() {
    let (plain, plain_metrics) = campaign(false, "off");
    let (pruned, pruned_metrics) = campaign(true, "on");

    assert!(
        !pruned.is_empty(),
        "the fixed-seed campaign must find at least one bug for the diff to mean anything"
    );
    let plain_names: Vec<&String> = plain.keys().collect();
    let pruned_names: Vec<&String> = pruned.keys().collect();
    assert_eq!(
        plain_names, pruned_names,
        "pruning changed which repros were persisted"
    );
    for (name, bytes) in &plain {
        assert_eq!(
            Some(bytes),
            pruned.get(name),
            "repro {name} differs between pruned and unpruned campaigns"
        );
    }

    // The unpruned campaign's metrics carry no pruning block; the pruned
    // one's does, and its online soundness tripwire never fired.
    let plain_doc = JsonValue::parse(&std::fs::read_to_string(&plain_metrics).unwrap()).unwrap();
    assert!(plain_doc.get("pruning").is_none());
    let pruned_doc = JsonValue::parse(&std::fs::read_to_string(&pruned_metrics).unwrap()).unwrap();
    let block = pruned_doc.get("pruning").expect("pruned metrics block");
    assert_eq!(block.get("runs").and_then(|v| v.as_u64()), Some(120));
    assert_eq!(
        block.get("mismatches").and_then(|v| v.as_u64()),
        Some(0),
        "an HB class manifested differently across equivalent schedules"
    );
    let distinct = block.get("distinct").and_then(|v| v.as_u64()).unwrap();
    let redundant = block.get("redundant").and_then(|v| v.as_u64()).unwrap();
    assert_eq!(distinct + redundant, 120, "every run must be classified");
    assert!(distinct > 0, "at least one class must be fresh");

    std::fs::remove_file(&plain_metrics).unwrap();
    std::fs::remove_file(&pruned_metrics).unwrap();
}
