//! Property tests for the campaign pipeline: whatever manifesting run the
//! fuzzer stumbles on, the shrinker's output must replay to the *same* bug
//! signature — and never grow the trace.

use nodefz_check::forall;

use nodefz::{Mode, ReplayStatusHandle, TraceHandle};
use nodefz_apps::common::{RunCfg, Variant};
use nodefz_campaign::shrink;
use nodefz_trace::BugSignature;

/// Apps with a healthy manifestation rate, so random seeds find bugs fast.
const APPS: [&str; 3] = ["GHO", "MKD", "KUE"];

fn record_manifesting_run(
    app: &str,
    env_seed: u64,
) -> Option<(BugSignature, nodefz::DecisionTrace)> {
    let case = nodefz_apps::by_abbr(app).expect("known app");
    let handle = TraceHandle::fresh();
    let mode = Mode::Record(nodefz::FuzzParams::standard(), handle.clone());
    let out = case.run(&RunCfg::new(mode, env_seed), Variant::Buggy);
    if !out.manifested {
        return None;
    }
    Some((
        BugSignature::new(app, &out.detail, &out.report.schedule),
        handle.snapshot(),
    ))
}

fn replays_to(
    app: &str,
    env_seed: u64,
    trace: &nodefz::DecisionTrace,
    expected: &BugSignature,
) -> bool {
    let case = nodefz_apps::by_abbr(app).expect("known app");
    let mode = Mode::Replay(trace.clone(), ReplayStatusHandle::fresh());
    let out = case.run(&RunCfg::new(mode, env_seed), Variant::Buggy);
    out.manifested && &BugSignature::new(app, &out.detail, &out.report.schedule) == expected
}

#[test]
fn shrunk_traces_replay_to_the_same_signature() {
    forall("shrunk_traces_replay_to_the_same_signature", 24, |g| {
        let app = *g.pick(&APPS);
        let env_seed = g.below(1 << 20);
        let Some((signature, trace)) = record_manifesting_run(app, env_seed) else {
            // This seed didn't manifest; the property is about those that do.
            return;
        };
        // The recorded trace replays to its own signature (baseline).
        assert!(
            replays_to(app, env_seed, &trace, &signature),
            "{app} seed {env_seed}: recorded trace must replay to its signature"
        );
        let result = shrink(&trace, |t| replays_to(app, env_seed, t, &signature));
        assert!(
            result.trace.decisions.len() <= trace.decisions.len(),
            "{app} seed {env_seed}: shrink grew the trace"
        );
        assert!(
            replays_to(app, env_seed, &result.trace, &signature),
            "{app} seed {env_seed}: shrunk trace lost the bug ({} -> {} decisions)",
            trace.decisions.len(),
            result.trace.decisions.len()
        );
    });
}

#[test]
fn shrinking_is_idempotent() {
    forall("shrinking_is_idempotent", 8, |g| {
        let app = *g.pick(&APPS);
        let env_seed = g.below(1 << 20);
        let Some((signature, trace)) = record_manifesting_run(app, env_seed) else {
            return;
        };
        let oracle = |t: &nodefz::DecisionTrace| replays_to(app, env_seed, t, &signature);
        let once = shrink(&trace, oracle);
        let twice = shrink(&once.trace, oracle);
        assert!(
            twice.trace.decisions.len() <= once.trace.decisions.len(),
            "{app} seed {env_seed}: re-shrinking grew the trace"
        );
    });
}
