//! Persisted-format compatibility: `nodefz-trace v1` and `nodefz-repro v1`
//! documents written by earlier builds (before site interning and the
//! id-based hot path) must still parse, re-encode byte-identically, and
//! replay to the same schedule. The literals below are frozen copies of
//! the pre-interning on-disk format — do not regenerate them from code.

use nodefz::{decode_trace, encode_trace, Mode, ReplayStatusHandle, TraceHandle};
use nodefz_campaign::CorpusEntry;
use nodefz_rt::{EventLoop, LoopConfig, PoolMode, VDur};

/// A `nodefz-trace v1` document exactly as the seed build wrote it.
const LEGACY_TRACE: &str = "nodefz-trace v1\n\
pool serialized inf 100000\n\
demux 1\n\
t run\n\
t defer 5000000\n\
s 2 0 1\n\
s\n\
s 1 0 3 2 4 5 6 7 8 9 10 11\n\
r 1\n\
r 0\n\
c 0\n\
p 3\n\
end\n";

/// A `nodefz-repro v1` corpus entry exactly as the seed build wrote it.
const LEGACY_REPRO: &str = "nodefz-repro v1\n\
app KUE\n\
env_seed 12345\n\
site lost # of # jobs\n\
kinds 1042\n\
hits 17\n\
replays_ok 10\n\
--- trace\n\
nodefz-trace v1\n\
pool concurrent 4\n\
demux 0\n\
t run\n\
s 1 0\n\
p 0\n\
end\n";

#[test]
fn legacy_trace_document_round_trips_byte_identically() {
    let trace = decode_trace(LEGACY_TRACE).expect("pre-interning trace parses");
    assert_eq!(trace.decisions.len(), 9);
    assert_eq!(
        trace.pool_mode,
        PoolMode::Serialized {
            lookahead: usize::MAX,
            max_delay: VDur::micros(100),
        }
    );
    assert!(trace.demux_done);
    assert_eq!(encode_trace(&trace), LEGACY_TRACE);
}

#[test]
fn legacy_repro_document_round_trips_byte_identically() {
    let entry = CorpusEntry::decode(LEGACY_REPRO).expect("pre-interning repro parses");
    assert_eq!(entry.app, "KUE");
    assert_eq!(entry.env_seed, 12345);
    assert_eq!(entry.site, "lost # of # jobs");
    assert_eq!(entry.kinds, 1042);
    assert_eq!(entry.hits, 17);
    assert_eq!(entry.replays_ok, 10);
    assert_eq!(entry.trace.decisions.len(), 3);
    assert_eq!(entry.encode(), LEGACY_REPRO);
}

/// A trace recorded by the current build, serialized, decoded, and
/// replayed must reproduce the recorded run exactly — the full disk
/// round trip a corpus entry takes between campaigns.
#[test]
fn recorded_trace_survives_the_disk_format_and_replays_identically() {
    fn program(el: &mut EventLoop) {
        el.enter(|cx| {
            for i in 1..6u64 {
                cx.set_timeout(VDur::micros(i * 211), move |cx| {
                    cx.submit_work(VDur::micros(70), |_| (), |_, ()| {})
                        .unwrap();
                });
            }
        });
    }
    let handle = TraceHandle::fresh();
    let params = nodefz::FuzzParams::standard();
    let mut el = Mode::Record(params, handle.clone()).build_loop(LoopConfig::seeded(11), 31);
    program(&mut el);
    let original = el.run();

    let text = encode_trace(&handle.snapshot());
    let decoded = decode_trace(&text).expect("self-encoded trace decodes");
    let status = ReplayStatusHandle::fresh();
    let mut el = Mode::Replay(decoded, status.clone()).build_loop(LoopConfig::seeded(11), 0);
    program(&mut el);
    let replayed = el.run();

    assert_eq!(original.schedule, replayed.schedule);
    assert_eq!(original.end_time, replayed.end_time);
    status
        .verdict()
        .expect("faithful replay after disk round trip");
}

/// A `nodefz-throughput-v1` bench document exactly as the pre-pruning
/// build wrote it (abridged to two arms) — frozen, do not regenerate.
const LEGACY_BENCH: &str = r#"{
  "schema": "nodefz-throughput-v1",
  "warmup_ms": 100,
  "window_ms": 400,
  "base_seed": 1,
  "arms": [
    {"app": "GHO", "preset": "standard", "runs": 14506, "events": 1077523, "elapsed_ms": 400.009, "execs_per_sec": 36264.2, "events_per_sec": 2693748.5},
    {"app": "CLF", "preset": "aggressive", "runs": 36273, "events": 831506, "elapsed_ms": 400.007, "execs_per_sec": 90681.0, "events_per_sec": 2078730.4}
  ],
  "total": {"runs": 50779, "elapsed_ms": 800.016, "execs_per_sec": 63472.5, "events_per_sec": 2386213.1}
}
"#;

#[test]
fn legacy_bench_document_reads_back_without_pruning_columns() {
    let summary = nodefz_campaign::read_summary(LEGACY_BENCH).expect("v1 bench parses");
    assert_eq!(summary.schema, "nodefz-throughput-v1");
    assert_eq!(summary.total_execs_per_sec, 63472.5);
    assert_eq!(
        summary.total_distinct_per_sec, None,
        "v1 documents predate canonicalization"
    );
    assert_eq!(summary.total_effective_per_sec, None);
    assert_eq!(summary.arms.len(), 2);
    let gho = &summary.arms[0];
    assert_eq!((gho.app.as_str(), gho.preset.as_str()), ("GHO", "standard"));
    assert_eq!(gho.execs_per_sec, 36264.2);
    assert_eq!(gho.distinct_per_sec, None);
    assert_eq!(gho.redundancy_ratio, None);
}
