//! Deterministic smoke tests for race-directed scheduling: the
//! predict-then-confirm pipeline must beat an undirected fuzzing baseline
//! on executions-to-first-manifestation, at the same environment seed.

use nodefz::{FuzzParams, Mode, TraceHandle};
use nodefz_apps::common::{RunCfg, Variant};
use nodefz_campaign::{analyze_campaign, run, AnalyzeConfig, CampaignConfig};

/// Executions a plain seeded fuzzing sweep needs before `app`'s bug first
/// manifests at `env_seed` — the §5-style baseline the directed mode is
/// measured against.
fn undirected_execs(app: &str, env_seed: u64, max: u64) -> Option<u64> {
    let case = nodefz_apps::by_abbr(app).expect("known app");
    for s in 0..max {
        let mut cfg = RunCfg::new(
            Mode::Record(FuzzParams::standard(), TraceHandle::fresh()),
            env_seed,
        );
        cfg.sched_seed = s;
        if case.run(&cfg, Variant::Buggy).manifested {
            return Some(s + 1);
        }
    }
    None
}

fn directed_execs(app: &str, env_seed: u64) -> u64 {
    let cfg = AnalyzeConfig {
        apps: vec![app.into()],
        env_seed,
        ..AnalyzeConfig::default()
    };
    let report = analyze_campaign(&cfg).expect("pipeline runs");
    assert!(report.failed.is_empty(), "{:?}", report.failed);
    let confirmed = report
        .confirmed
        .iter()
        .find(|c| c.app == app)
        .unwrap_or_else(|| panic!("{app}: no confirmed race"));
    confirmed.execs
}

#[test]
fn directed_beats_undirected_on_aka() {
    let directed = directed_execs("AKA", 11);
    let undirected = undirected_execs("AKA", 11, 400).expect("baseline manifests");
    assert!(
        directed < undirected,
        "directed {directed} execs vs undirected {undirected}"
    );
}

#[test]
fn directed_beats_undirected_on_gho() {
    let directed = directed_execs("GHO", 11);
    let undirected = undirected_execs("GHO", 11, 400).expect("baseline manifests");
    assert!(
        directed < undirected,
        "directed {directed} execs vs undirected {undirected}"
    );
}

#[test]
fn directed_campaign_arm_runs_end_to_end() {
    let cfg = CampaignConfig {
        apps: vec!["GHO".into()],
        budget: 24,
        threads: 2,
        base_seed: 11,
        directed: true,
        shrink: false,
        ..CampaignConfig::default()
    };
    let report = run(&cfg).expect("campaign runs");
    assert_eq!(report.runs, 24);
    assert!(
        report
            .arms
            .iter()
            .any(|(_, preset, _, _)| *preset == "directed"),
        "arms: {:?}",
        report.arms
    );
}
