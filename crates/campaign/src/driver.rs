//! The parallel campaign driver.
//!
//! The event-loop simulator is single-threaded by design (`Rc` handles,
//! deterministic virtual time), so a campaign parallelizes across *runs*:
//! worker OS threads pull jobs from a work-stealing queue, instantiate the
//! bug case locally (via [`resolve_case`] — `Box<dyn BugCase>` is not
//! `Send`), and report results back over a channel. The controller
//! thread owns the bandit, the deduplicator, and the corpus:
//!
//! ```text
//! controller ── bandit picks (app, preset) ──► seed queue ──► workers
//!      ▲                                                        │
//!      └──── findings / shrink results ◄───── channel ◄─────────┘
//! ```
//!
//! A new signature triggers a shrink job (delta debugging + acceptance
//! replays) routed back through the same queue; the shrunk repro is then
//! persisted. The campaign drains gracefully when the run budget is spent
//! or the wall-clock deadline passes.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use nodefz::{DecisionTrace, DirectedSpec, Mode, ReplayStatusHandle, TraceHandle};
use nodefz_apps::common::{RunCfg, Variant};
use nodefz_hb::{CanonBuilder, CanonKey};
use nodefz_rt::{EventLogHandle, TypeSchedule};
use nodefz_trace::BugSignature;

use crate::analyze::directed_specs;
use crate::bandit::{Arm, Bandit};
use crate::config::{preset_name, preset_params, CampaignConfig, DIRECTED_PRESET};
use crate::corpus::{Corpus, CorpusEntry};
use crate::dedup::{BugRecord, Deduper, Finding};
use crate::metrics::{self, Discovery, WorkerTelemetry};
use crate::prune::{ClassVerdict, Pruner, SEEN_CAP};
use crate::shrink::shrink;
use nodefz_obs::{Journal, JournalEvent, PruneOutcome, JOURNAL_CAP};

/// How many early runs of each arm have their type schedule sampled for
/// the per-arm diversity summary in `--metrics-out` snapshots. Pairwise
/// Levenshtein is quadratic in samples, so the curve stays cheap.
const SCHEDULE_SAMPLES: u64 = 8;

/// How often the controller rewrites the `--metrics-out` snapshot while
/// the campaign runs (a final snapshot is always written at the end).
const METRICS_INTERVAL: Duration = Duration::from_millis(500);

/// Resolves a campaign app abbreviation to its bug case. Beyond the
/// studied application bugs ([`nodefz_apps::by_abbr`]), campaigns can run
/// the conformance arms — generated programs judged against the
/// runtime's ordering oracle — under the `CONFORM` (independent
/// sampling) and `CONFORM-API` (API-graph traversal) abbreviations.
pub fn resolve_case(app: &str) -> Option<Box<dyn nodefz_apps::common::BugCase>> {
    if app.eq_ignore_ascii_case(nodefz_conform::ABBR) {
        return Some(nodefz_conform::bug_case());
    }
    if app.eq_ignore_ascii_case(nodefz_conform::API_ABBR) {
        return Some(nodefz_conform::api_bug_case());
    }
    nodefz_apps::by_abbr(app)
}

/// One unit of worker work.
enum Job {
    /// Run the app once under a recording fuzz scheduler — or, when a
    /// directed spec is attached, under a race-directed scheduler that
    /// replays the spec's prefix and forces the predicted flip.
    Fuzz {
        app: String,
        preset: usize,
        env_seed: u64,
        directed: Option<DirectedSpec>,
        /// Whether to ship the run's type schedule back for the per-arm
        /// diversity summary (the first few runs of each arm).
        want_schedule: bool,
    },
    /// Minimize a manifesting trace, then acceptance-replay it.
    Shrink {
        app: String,
        env_seed: u64,
        trace: DecisionTrace,
        signature: BugSignature,
        do_shrink: bool,
        replay_checks: u32,
    },
}

/// Worker → controller messages.
enum Msg {
    FuzzDone {
        app: String,
        preset: usize,
        finding: Option<Finding>,
        /// The run's type schedule, when the job asked for it.
        schedule: Option<TypeSchedule>,
        /// The run's HB canonical key plus its environment scope (see
        /// [`crate::prune::env_scope`]), when pruning is on.
        canon: Option<(CanonKey, u64)>,
    },
    ShrinkDone {
        signature: BugSignature,
        shrunk: DecisionTrace,
        original_len: usize,
        replays_ok: u32,
    },
}

/// Per-worker deques with stealing: a worker pops its own queue front and,
/// when empty, steals the back half of the first non-empty peer queue.
struct SeedQueue {
    queues: Vec<Mutex<VecDeque<Job>>>,
}

impl SeedQueue {
    fn new(workers: usize) -> SeedQueue {
        SeedQueue {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
        }
    }

    fn push(&self, slot: usize, job: Job) {
        self.queues[slot % self.queues.len()]
            .lock()
            .expect("queue lock")
            .push_back(job);
    }

    fn pop(&self, me: usize) -> Option<Job> {
        if let Some(job) = self.queues[me].lock().expect("queue lock").pop_front() {
            return Some(job);
        }
        let n = self.queues.len();
        for offset in 1..n {
            let victim = (me + offset) % n;
            let mut stolen = {
                let mut v = self.queues[victim].lock().expect("queue lock");
                let len = v.len();
                if len == 0 {
                    continue;
                }
                v.split_off(len - len.div_ceil(2))
            };
            let job = stolen.pop_front();
            if !stolen.is_empty() {
                self.queues[me].lock().expect("queue lock").extend(stolen);
            }
            return job;
        }
        None
    }
}

/// Progress events, for live reporting.
#[derive(Clone, Debug)]
pub enum Event {
    /// A fuzz run finished.
    Run {
        /// Runs completed so far.
        completed: u64,
        /// Total run budget.
        budget: u64,
    },
    /// A previously unseen bug signature manifested.
    NewBug {
        /// The new bug's dedup key.
        signature: BugSignature,
        /// Environment seed of the manifesting run.
        env_seed: u64,
    },
    /// A bug's trace finished shrinking.
    Shrunk {
        /// Which bug.
        signature: BugSignature,
        /// Decisions before shrinking.
        from: usize,
        /// Decisions after shrinking.
        to: usize,
        /// Acceptance replays that re-manifested it.
        replays_ok: u32,
    },
    /// The wall-clock deadline passed; the campaign is draining.
    DeadlineHit,
}

/// Summary of one deduplicated bug, for the final report.
#[derive(Clone, Debug)]
pub struct BugSummary {
    /// Bug abbreviation.
    pub app: String,
    /// Normalized failure site.
    pub site: String,
    /// Manifestations observed.
    pub hits: u64,
    /// Environment seed of the first manifestation.
    pub first_seed: u64,
    /// Decisions in the first manifesting trace.
    pub original_len: usize,
    /// Decisions after shrinking (== `original_len` when shrinking is off).
    pub shrunk_len: usize,
    /// Acceptance replays that re-manifested the bug.
    pub replays_ok: u32,
}

/// What a finished campaign reports.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// Fuzz runs completed.
    pub runs: u64,
    /// Wall-clock time spent.
    pub elapsed: Duration,
    /// One summary per deduplicated bug, in stable signature order.
    pub bugs: Vec<BugSummary>,
    /// (app, preset name, pulls, recent-yield EMA) per bandit arm.
    pub arms: Vec<(String, &'static str, u64, f64)>,
    /// Whether the deadline cut the campaign short.
    pub hit_deadline: bool,
}

impl CampaignReport {
    /// Number of distinct bugs found.
    pub fn unique_bugs(&self) -> usize {
        self.bugs.len()
    }
}

/// The observable result of one fuzzed execution.
pub struct FuzzExec {
    /// The finding, when the bug manifested.
    pub finding: Option<Finding>,
    /// Callbacks dispatched during the run.
    pub dispatched: u64,
    /// The run's type schedule, when sampling was requested.
    pub schedule: Option<TypeSchedule>,
    /// The run's HB-equivalence canonical key plus its environment scope
    /// ([`crate::prune::env_scope`]), when the context prunes
    /// ([`RunContext::enable_prune`]).
    pub canon: Option<(CanonKey, u64)>,
}

/// Per-worker reusable execution state: the campaign/bench hot path.
///
/// One `RunContext` lives for a worker's whole lifetime and executes
/// thousands of runs, so anything that can be reset-and-reused across runs
/// instead of rebuilt belongs here: the [`LoopPool`] recycles the event
/// loop's heap buffers (timer wheel, poll set, pool queues, scratch
/// vectors), and the [`TraceHandle`] recycles the decision buffer — its
/// contents are only snapshotted when a run actually manifests a bug.
///
/// [`LoopPool`]: nodefz_rt::LoopPool
pub struct RunContext {
    pool: nodefz_rt::LoopPool,
    handle: TraceHandle,
    /// HB-canonicalization kit attached when pruning is on: the event-log
    /// handle every run records into plus the reusable canon builder and
    /// its scratch buffer — allocation-free at steady state, and purely
    /// observational (recording never changes seeds or schedules, so the
    /// executed run stream is identical with pruning on or off).
    prune: Option<PruneKit>,
    /// Loop-observability handle attached to every fuzz run (profiling
    /// only — it never changes seeds, decisions, or schedules).
    #[cfg(feature = "obs")]
    obs: Option<nodefz_rt::ObsHandle>,
}

/// The per-worker state [`RunContext::enable_prune`] attaches.
struct PruneKit {
    events: EventLogHandle,
    canon: CanonBuilder,
    scratch: Vec<u64>,
}

impl Default for RunContext {
    fn default() -> RunContext {
        RunContext::new()
    }
}

impl RunContext {
    /// Creates a fresh context.
    pub fn new() -> RunContext {
        RunContext {
            pool: nodefz_rt::LoopPool::new(),
            handle: TraceHandle::fresh(),
            prune: None,
            #[cfg(feature = "obs")]
            obs: None,
        }
    }

    /// Attaches the pruning kit: every subsequent fuzz run records an
    /// event log and reports its HB canonical key in
    /// [`FuzzExec::canon`].
    pub fn enable_prune(&mut self) {
        self.prune = Some(PruneKit {
            events: EventLogHandle::fresh(),
            canon: CanonBuilder::new(),
            scratch: Vec::new(),
        });
    }

    /// Attaches a loop-observability handle to every subsequent fuzz run.
    #[cfg(feature = "obs")]
    pub fn set_obs(&mut self, obs: nodefz_rt::ObsHandle) {
        self.obs = Some(obs);
    }

    /// Runs one fuzz job: the buggy variant under a recording fuzz
    /// scheduler. Unknown apps count as a non-manifesting run.
    pub fn fuzz_once(&mut self, app: &str, preset: usize, env_seed: u64) -> FuzzExec {
        self.fuzz_once_sampled(app, preset, env_seed, false)
    }

    /// Runs one race-directed job: the buggy variant under a
    /// [`DirectedSpec`]'s replay-then-flip scheduler, recorded so a
    /// confirming run is immediately a replayable repro. The env seed
    /// must match the spec's recorded run — the prefix replays against
    /// the same modelled environment.
    pub fn fuzz_directed(&mut self, app: &str, spec: DirectedSpec, env_seed: u64) -> FuzzExec {
        self.exec(app, DIRECTED_PRESET, env_seed, Some(spec), false)
    }

    /// Like [`RunContext::fuzz_once`], optionally cloning the run's type
    /// schedule out for diversity telemetry.
    pub fn fuzz_once_sampled(
        &mut self,
        app: &str,
        preset: usize,
        env_seed: u64,
        want_schedule: bool,
    ) -> FuzzExec {
        self.exec(app, preset, env_seed, None, want_schedule)
    }

    fn exec(
        &mut self,
        app: &str,
        preset: usize,
        env_seed: u64,
        directed: Option<DirectedSpec>,
        want_schedule: bool,
    ) -> FuzzExec {
        let Some(case) = resolve_case(app) else {
            return FuzzExec {
                finding: None,
                dispatched: 0,
                schedule: None,
                canon: None,
            };
        };
        // The recording scheduler resets the shared handle in place, so
        // reusing it across runs keeps the decision buffer's capacity.
        let mode = match directed {
            Some(spec) => Mode::Directed(spec, self.handle.clone()),
            None => Mode::Record(preset_params(preset), self.handle.clone()),
        };
        #[allow(unused_mut)]
        let mut run_cfg = RunCfg::new(mode, env_seed).pooled(&self.pool);
        if let Some(kit) = &self.prune {
            run_cfg = run_cfg.events(&kit.events);
        }
        #[cfg(feature = "obs")]
        if let Some(obs) = &self.obs {
            run_cfg = run_cfg.observed(obs);
        }
        let out = case.run(&run_cfg, Variant::Buggy);
        let dispatched = out.report.dispatched;
        let schedule = want_schedule.then(|| out.report.schedule.clone());
        let finding = out.manifested.then(|| Finding {
            app: app.to_string(),
            preset,
            env_seed,
            signature: BugSignature::new(app, &out.detail, &out.report.schedule),
            detail: out.detail,
            trace: self.handle.snapshot(),
        });
        let canon = self.prune.as_mut().map(|kit| {
            let key = kit
                .events
                .with(|log| kit.canon.build(log, &mut kit.scratch));
            (key, crate::prune::env_scope(app, env_seed))
        });
        FuzzExec {
            finding,
            dispatched,
            schedule,
            canon,
        }
    }
}

/// Replays `trace` against `app` under `env_seed`; returns whether the run
/// manifested with signature `expected`.
pub(crate) fn replays_to(
    app: &str,
    env_seed: u64,
    trace: &DecisionTrace,
    expected: &BugSignature,
) -> bool {
    let case = match resolve_case(app) {
        Some(c) => c,
        None => return false,
    };
    let mode = Mode::Replay(trace.clone(), ReplayStatusHandle::fresh());
    let out = case.run(&RunCfg::new(mode, env_seed), Variant::Buggy);
    out.manifested && &BugSignature::new(app, &out.detail, &out.report.schedule) == expected
}

/// Replays a corpus entry and checks it still manifests its recorded bug.
///
/// This is the regression path: a corpus saved by one campaign can be
/// verified by any later build.
///
/// # Errors
///
/// Describes the mismatch (no manifestation, or a different signature).
pub fn verify_entry(entry: &CorpusEntry) -> Result<(), String> {
    let expected = entry.signature();
    if replays_to(&entry.app, entry.env_seed, &entry.trace, &expected) {
        Ok(())
    } else {
        Err(format!(
            "corpus entry {} did not re-manifest {expected}",
            entry.file_name()
        ))
    }
}

fn worker_loop(
    queue: Arc<SeedQueue>,
    me: usize,
    stop: Arc<AtomicBool>,
    tx: mpsc::Sender<Msg>,
    telemetry: WorkerTelemetry,
    prune: bool,
) {
    let mut ctx = RunContext::new();
    if prune {
        ctx.enable_prune();
    }
    // In instrumented builds above `off`, every fuzz run on this worker is
    // profiled through a thread-local handle (`Rc`-based, so it is created
    // here, not shipped across the spawn) and flushed into the shard.
    #[cfg(feature = "obs")]
    if let Some(obs) = telemetry.obs() {
        ctx.set_obs(obs.clone());
    }
    loop {
        match queue.pop(me) {
            Some(Job::Fuzz {
                app,
                preset,
                env_seed,
                directed,
                want_schedule,
            }) => {
                let exec = match directed {
                    Some(spec) => ctx.fuzz_directed(&app, spec, env_seed),
                    None => ctx.fuzz_once_sampled(&app, preset, env_seed, want_schedule),
                };
                telemetry.record_exec(exec.dispatched, exec.finding.is_some());
                if tx
                    .send(Msg::FuzzDone {
                        app,
                        preset,
                        finding: exec.finding,
                        schedule: exec.schedule,
                        canon: exec.canon,
                    })
                    .is_err()
                {
                    return;
                }
            }
            Some(Job::Shrink {
                app,
                env_seed,
                trace,
                signature,
                do_shrink,
                replay_checks,
            }) => {
                let original_len = trace.decisions.len();
                let shrunk = if do_shrink {
                    shrink(&trace, |t| replays_to(&app, env_seed, t, &signature)).trace
                } else {
                    trace
                };
                let replays_ok = (0..replay_checks)
                    .filter(|_| replays_to(&app, env_seed, &shrunk, &signature))
                    .count() as u32;
                if tx
                    .send(Msg::ShrinkDone {
                        signature,
                        shrunk,
                        original_len,
                        replays_ok,
                    })
                    .is_err()
                {
                    return;
                }
            }
            None => {
                if stop.load(Ordering::Acquire) {
                    return;
                }
                std::thread::sleep(Duration::from_micros(100));
            }
        }
    }
}

/// Derives the i-th environment seed of a campaign (splitmix64 step).
pub(crate) fn derive_seed(base: u64, i: u64) -> u64 {
    let mut z = base
        .wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Folds an arm into the campaign base seed so each arm probes its own
/// deterministic seed sequence. Worker completion order then only decides
/// *how many* seeds of each arm's sequence get probed, not which ones —
/// same-seed campaigns reproduce the same findings.
fn arm_base(base: u64, arm: &Arm) -> u64 {
    arm_seed(base, &arm.app, arm.preset)
}

/// The (app, preset)-folded base seed, shared with the throughput bench so
/// its seed stream matches a campaign's.
pub(crate) fn arm_seed(base: u64, app: &str, preset: usize) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in app.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    base ^ h ^ ((preset as u64) << 56)
}

/// Runs a campaign, invoking `on_event` for live progress.
///
/// # Errors
///
/// Fails on an invalid configuration or a corpus I/O error.
pub fn run_with_progress(
    cfg: &CampaignConfig,
    mut on_event: impl FnMut(&Event),
) -> Result<CampaignReport, String> {
    cfg.validate()?;
    let corpus = match &cfg.corpus_dir {
        Some(dir) => Some(Corpus::open(dir).map_err(|e| format!("corpus: {e}"))?),
        None => None,
    };

    // When the directed arm is on, analyze one recorded vanilla-posture
    // run per app up front (controller-side; two runs per app) and keep
    // the predicted flips. Apps with no predictions get no directed arm.
    let specs: std::collections::HashMap<String, (u64, Vec<DirectedSpec>)> = if cfg.directed {
        cfg.apps
            .iter()
            .map(|app| {
                let analysis_seed = derive_seed(arm_seed(cfg.base_seed, app, DIRECTED_PRESET), 0);
                (
                    app.clone(),
                    (analysis_seed, directed_specs(app, analysis_seed)),
                )
            })
            .collect()
    } else {
        Default::default()
    };
    let arms: Vec<Arm> = cfg
        .apps
        .iter()
        .flat_map(|app| {
            let directed = specs.get(app).is_some_and(|(_, s)| !s.is_empty());
            cfg.presets
                .iter()
                .copied()
                .chain(directed.then_some(DIRECTED_PRESET))
                .map(move |preset| Arm {
                    app: app.clone(),
                    preset,
                })
        })
        .collect();
    if arms.is_empty() {
        // Only reachable in a directed-only campaign (empty preset list)
        // where no targeted app's analysis predicted a race.
        return Err(format!(
            "no arms: directed analysis predicted no races for {}",
            cfg.apps.join(", ")
        ));
    }
    let mut bandit = Bandit::new(arms);
    let mut deduper = Deduper::new();
    // Controller-side pruning: classify every run's canonical key and
    // cross-check class outcomes. Accounting only — the dispatched run
    // stream is identical with pruning on or off (corpora match bytewise).
    let mut pruner = cfg.prune.then(|| Pruner::new(SEEN_CAP));
    // Flight recorder: a bounded ring of structured decisions (arm pulls
    // with the bandit state that made them, prune verdicts, discoveries),
    // persisted atomically at drain. Owned by the controller thread only.
    let mut journal = cfg.journal_out.as_ref().map(|_| Journal::new(JOURNAL_CAP));

    // One registry shard per worker: fuzz executions record into their
    // own shard with relaxed atomic adds; snapshots fold them here.
    let (registry, metric_ids) = metrics::build_registry(cfg.threads);
    let telemetry_on = cfg.metrics_out.is_some();

    let queue = Arc::new(SeedQueue::new(cfg.threads));
    let stop = Arc::new(AtomicBool::new(false));
    let (tx, rx) = mpsc::channel::<Msg>();
    let workers: Vec<_> = (0..cfg.threads)
        .map(|me| {
            let queue = queue.clone();
            let stop = stop.clone();
            let tx = tx.clone();
            let shard = registry.shard(me);
            let ids = metric_ids.clone();
            let level = cfg.obs_level;
            let prune = cfg.prune;
            std::thread::Builder::new()
                .name(format!("campaign-{me}"))
                .spawn(move || {
                    let telemetry = WorkerTelemetry::new(shard, ids, level);
                    worker_loop(queue, me, stop, tx, telemetry, prune)
                })
                .expect("spawn worker")
        })
        .collect();
    drop(tx);

    let start = Instant::now();
    let mut hit_deadline = false;
    let mut dispatched = 0u64;
    let mut completed = 0u64;
    let mut shrinks_pending = 0u64;
    let mut next_slot = 0usize;
    // (original trace length, for the final summary) keyed by signature.
    let mut originals: Vec<(BugSignature, usize)> = Vec::new();
    // Telemetry series the controller owns: the discovery curve and the
    // per-arm schedule samples feeding the diversity summary.
    let mut discovery: Vec<Discovery> = Vec::new();
    let mut arm_schedules: std::collections::HashMap<(String, usize), Vec<TypeSchedule>> =
        std::collections::HashMap::new();
    let mut last_metrics = Instant::now();

    // Deep enough that sub-millisecond runs never starve a worker while a
    // completion round-trips through the controller; shallow enough that
    // the bandit still steers most of the budget.
    let max_inflight = (cfg.threads as u64) * 8;
    let mut arm_pulls: std::collections::HashMap<(String, usize), u64> =
        std::collections::HashMap::new();
    let mut dispatch = |bandit: &mut Bandit,
                        dispatched: &mut u64,
                        next_slot: &mut usize,
                        journal: &mut Option<Journal>,
                        exec: u64| {
        // Snapshot *before* the pick so the journal records the posterior
        // state the decision was actually made from.
        let decision_state = journal.is_some().then(|| bandit.snapshot());
        let arm = bandit.pick();
        if let (Some(j), Some(snap)) = (journal.as_mut(), decision_state) {
            let s = snap.iter().find(|s| s.arm == arm);
            j.push(JournalEvent::ArmPull {
                exec,
                arm: format!("{}/{}", arm.app, preset_name(arm.preset)),
                pulls: s.map_or(0, |s| s.pulls) + 1,
                mean_reward: s.map_or(1.0, |s| s.mean_reward),
                ucb: s.and_then(|s| s.ucb_bound),
                successes: None,
                failures: None,
            });
        }
        let pull = arm_pulls.entry((arm.app.clone(), arm.preset)).or_insert(0);
        // The directed arm cycles predicted flips and bumps the retry
        // attempt each full cycle; its env seed is pinned to the analyzed
        // run's, because the replayed prefix only makes sense against the
        // same modelled environment. Ordinary arms scan derived seeds.
        let (env_seed, directed) = if arm.preset == DIRECTED_PRESET {
            let (analysis_seed, app_specs) =
                specs.get(&arm.app).expect("directed arm implies specs");
            let spec = app_specs[(*pull as usize) % app_specs.len()].clone();
            let attempt = *pull / app_specs.len() as u64;
            (*analysis_seed, Some(spec.with_attempt(attempt)))
        } else {
            (derive_seed(arm_base(cfg.base_seed, &arm), *pull), None)
        };
        // Sample the first few runs of each arm for diversity. Decided by
        // pull index, so sampling is as deterministic as the seed stream.
        let want_schedule = telemetry_on && *pull < SCHEDULE_SAMPLES;
        *pull += 1;
        queue.push(
            *next_slot,
            Job::Fuzz {
                app: arm.app,
                preset: arm.preset,
                env_seed,
                directed,
                want_schedule,
            },
        );
        *next_slot += 1;
        *dispatched += 1;
    };

    while dispatched < cfg.budget.min(max_inflight) {
        dispatch(
            &mut bandit,
            &mut dispatched,
            &mut next_slot,
            &mut journal,
            0,
        );
    }

    loop {
        let deadline_passed = cfg.deadline.is_some_and(|d| start.elapsed() >= d);
        if deadline_passed && !hit_deadline {
            hit_deadline = true;
            on_event(&Event::DeadlineHit);
        }
        if completed >= dispatched
            && shrinks_pending == 0
            && (completed >= cfg.budget || hit_deadline)
        {
            break;
        }
        let msg = match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(msg) => msg,
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        };
        match msg {
            Msg::FuzzDone {
                app,
                preset,
                finding,
                schedule,
                canon,
            } => {
                completed += 1;
                let arm = Arm { app, preset };
                if let (Some(pruner), Some((key, scope))) = (pruner.as_mut(), canon) {
                    let verdict =
                        pruner.observe(key, scope, finding.as_ref().map(|f| &f.signature));
                    if let Some(j) = journal.as_mut() {
                        j.push(JournalEvent::Prune {
                            exec: completed,
                            verdict: match verdict {
                                ClassVerdict::Fresh => PruneOutcome::Distinct,
                                ClassVerdict::Redundant => PruneOutcome::Redundant,
                                ClassVerdict::Mismatch => PruneOutcome::Mismatch,
                            },
                        });
                    }
                }
                if let Some(schedule) = schedule {
                    arm_schedules
                        .entry((arm.app.clone(), arm.preset))
                        .or_default()
                        .push(schedule);
                }
                let mut new_bugs = 0;
                if let Some(finding) = finding {
                    let env_seed = finding.env_seed;
                    let signature = finding.signature.clone();
                    let trace = finding.trace.clone();
                    if deduper.insert(finding) {
                        new_bugs = 1;
                        on_event(&Event::NewBug {
                            signature: signature.clone(),
                            env_seed,
                        });
                        if let Some(j) = journal.as_mut() {
                            j.push(JournalEvent::Discovery {
                                exec: completed,
                                app: arm.app.clone(),
                                site: signature.site.clone(),
                            });
                        }
                        discovery.push(Discovery {
                            signature: signature.to_string(),
                            app: arm.app.clone(),
                            site: signature.site.clone(),
                            // `completed` only moves forward and at most
                            // one signature is new per run, so the curve
                            // is monotone by construction.
                            first_exec: completed,
                            first_ms: start.elapsed().as_millis() as u64,
                        });
                        originals.push((signature.clone(), trace.decisions.len()));
                        queue.push(
                            next_slot,
                            Job::Shrink {
                                app: arm.app.clone(),
                                env_seed,
                                trace,
                                signature,
                                do_shrink: cfg.shrink,
                                replay_checks: cfg.replay_checks,
                            },
                        );
                        next_slot += 1;
                        shrinks_pending += 1;
                    }
                }
                bandit.reward(&arm, new_bugs);
                on_event(&Event::Run {
                    completed,
                    budget: cfg.budget,
                });
                if !hit_deadline && dispatched < cfg.budget {
                    dispatch(
                        &mut bandit,
                        &mut dispatched,
                        &mut next_slot,
                        &mut journal,
                        completed,
                    );
                }
            }
            Msg::ShrinkDone {
                signature,
                shrunk,
                original_len,
                replays_ok,
            } => {
                shrinks_pending -= 1;
                on_event(&Event::Shrunk {
                    signature: signature.clone(),
                    from: original_len,
                    to: shrunk.decisions.len(),
                    replays_ok,
                });
                deduper.attach_shrunk(&signature, shrunk, replays_ok);
                // Persist the repro the moment it is ready instead of only
                // at drain: if this process dies mid-campaign (a worker
                // shard reaped by the orchestrator), the corpus on disk is
                // a valid partial result. The drain-time pass below
                // re-saves every record with final hit counts.
                if let Some(corpus) = &corpus {
                    if let Some(record) = deduper.record_for(&signature) {
                        corpus
                            .save(&record_to_entry(record))
                            .map_err(|e| format!("corpus: {e}"))?;
                    }
                }
            }
        }
        if let Some(path) = &cfg.metrics_out {
            if last_metrics.elapsed() >= METRICS_INTERVAL {
                last_metrics = Instant::now();
                write_metrics(
                    path,
                    cfg,
                    start,
                    false,
                    &bandit,
                    &arm_schedules,
                    &discovery,
                    &registry,
                    deduper.records().len() as u64,
                    pruner.as_ref(),
                )?;
            }
        }
    }

    stop.store(true, Ordering::Release);
    for w in workers {
        let _ = w.join();
    }

    // Workers are quiescent: the final snapshot is exact, not sampled.
    if let Some(path) = &cfg.metrics_out {
        write_metrics(
            path,
            cfg,
            start,
            true,
            &bandit,
            &arm_schedules,
            &discovery,
            &registry,
            deduper.records().len() as u64,
            pruner.as_ref(),
        )?;
    }
    if let (Some(path), Some(j)) = (&cfg.journal_out, journal.as_ref()) {
        j.write(path)
            .map_err(|e| format!("journal: cannot write {}: {e}", path.display()))?;
    }
    #[cfg(feature = "obs")]
    if let Some(path) = &cfg.trace_out {
        write_trace(path, cfg)?;
    }

    if let Some(corpus) = &corpus {
        for record in deduper.records() {
            let entry = record_to_entry(record);
            corpus.save(&entry).map_err(|e| format!("corpus: {e}"))?;
        }
    }

    let bugs = deduper
        .records()
        .into_iter()
        .map(|record| {
            let original_len = originals
                .iter()
                .find(|(sig, _)| sig == &record.first.signature)
                .map_or(record.first.trace.decisions.len(), |(_, len)| *len);
            BugSummary {
                app: record.first.app.clone(),
                site: record.first.signature.site.clone(),
                hits: record.hits,
                first_seed: record.first.env_seed,
                original_len,
                shrunk_len: record
                    .shrunk
                    .as_ref()
                    .map_or(original_len, |t| t.decisions.len()),
                replays_ok: record.replays_ok,
            }
        })
        .collect();
    let arms = bandit
        .summary()
        .into_iter()
        .map(|(arm, pulls, ema)| (arm.app, preset_name(arm.preset), pulls, ema))
        .collect();
    Ok(CampaignReport {
        runs: completed,
        elapsed: start.elapsed(),
        bugs,
        arms,
        hit_deadline,
    })
}

/// Runs a campaign without progress reporting.
///
/// # Errors
///
/// Fails on an invalid configuration or a corpus I/O error.
pub fn run(cfg: &CampaignConfig) -> Result<CampaignReport, String> {
    run_with_progress(cfg, |_| {})
}

/// Scrapes the registry and writes one `nodefz-metrics-v1` document.
#[allow(clippy::too_many_arguments)]
fn write_metrics(
    path: &std::path::Path,
    cfg: &CampaignConfig,
    start: Instant,
    finished: bool,
    bandit: &Bandit,
    arm_schedules: &std::collections::HashMap<(String, usize), Vec<TypeSchedule>>,
    discovery: &[Discovery],
    registry: &nodefz_obs::Registry,
    unique_bugs: u64,
    pruner: Option<&Pruner>,
) -> Result<(), String> {
    let mut snapshot = metrics::collect(
        start.elapsed(),
        cfg.budget,
        unique_bugs,
        finished,
        &bandit.snapshot(),
        |app, preset| {
            arm_schedules
                .get(&(app.to_string(), preset))
                .cloned()
                .unwrap_or_default()
        },
        discovery,
        &registry.snapshot(),
        pruner.map(Pruner::counters),
        pruner.map(Pruner::health),
    );
    if finished {
        snapshot.apicov = conform_apicov(cfg, bandit);
    }
    // Atomic (temp file + rename): an orchestrator polls these snapshots
    // from another process while the campaign runs, and must never read a
    // torn document.
    nodefz_obs::write_atomic(path, &snapshot.to_json())
        .map_err(|e| format!("metrics: cannot write {}: {e}", path.display()))
}

/// How many pulls per `CONFORM-API` arm the final apicov accounting
/// replays. Coverage saturates well within 100 programs (the frozen
/// golden batch covers the full enumerated surface), so the cap bounds
/// the controller-side replay without losing information.
const APICOV_REPLAY_CAP: u64 = 500;

/// API-surface coverage of the campaign's `CONFORM-API` pulls, or `None`
/// when no such arm was pulled.
///
/// The conform case regenerates its program purely from the run's
/// environment seed, so replaying the head of each arm's deterministic
/// seed stream (`derive_seed(arm_base(..), pull)` — exactly the sequence
/// the workers consumed) under vanilla scheduling reconstructs the very
/// programs the campaign exercised and folds them into one
/// `nodefz-apicov-v1` snapshot. Runs on the controller at the final
/// metrics write only.
fn conform_apicov(cfg: &CampaignConfig, bandit: &Bandit) -> Option<nodefz_conform::ApiCovSnapshot> {
    use nodefz_conform::{ApiCoverage, OracleCtx};
    let mut cov = ApiCoverage::default();
    let mut pulled = false;
    for arm in bandit.snapshot() {
        if !arm.arm.app.eq_ignore_ascii_case(nodefz_conform::API_ABBR) || arm.pulls == 0 {
            continue;
        }
        pulled = true;
        let base = arm_base(cfg.base_seed, &arm.arm);
        for pull in 0..arm.pulls.min(APICOV_REPLAY_CAP) {
            let seed = derive_seed(base, pull);
            let prog = std::rc::Rc::new(nodefz_conform::generate_api(seed));
            let (report, log) = nodefz_conform::run_logged(&prog, seed, Mode::Vanilla, &None);
            let completed = matches!(report.termination, nodefz_rt::Termination::Quiescent);
            cov.record(
                &prog,
                &log,
                &OracleCtx {
                    demux: false,
                    completed,
                },
            );
        }
    }
    pulled.then(|| cov.snapshot())
}

/// Runs one dedicated instrumented execution after the campaign drains and
/// writes its loop-phase/callback timeline as a chrome://tracing document
/// (loadable in Perfetto). Workers never collect per-event traces — one
/// representative run is cheap and its schedule is deterministic: the
/// first app, the first preset, the arm's first derived seed.
#[cfg(feature = "obs")]
fn write_trace(path: &std::path::Path, cfg: &CampaignConfig) -> Result<(), String> {
    use std::cell::RefCell;
    use std::rc::Rc;

    let app = cfg.apps.first().expect("validated: at least one app");
    let sink = Rc::new(RefCell::new(nodefz_obs::ChromeTrace::new()));
    let mut ctx = RunContext::new();
    ctx.set_obs(nodefz_rt::ObsHandle::with_sink(sink.clone()));
    let env_seed = derive_seed(arm_seed(cfg.base_seed, app, 0), 0);
    ctx.fuzz_once(app, 0, env_seed);
    let json = sink.borrow().to_json();
    std::fs::write(path, json).map_err(|e| format!("trace: cannot write {}: {e}", path.display()))
}

pub(crate) fn record_to_entry(record: &BugRecord) -> CorpusEntry {
    CorpusEntry {
        app: record.first.app.clone(),
        env_seed: record.first.env_seed,
        site: record.first.signature.site.clone(),
        kinds: record.first.signature.kinds,
        hits: record.hits,
        replays_ok: record.replays_ok,
        trace: record
            .shrunk
            .clone()
            .unwrap_or_else(|| record.first.trace.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_seeds_are_distinct_and_deterministic() {
        let seeds: Vec<u64> = (0..100).map(|i| derive_seed(1, i)).collect();
        let unique: std::collections::HashSet<_> = seeds.iter().collect();
        assert_eq!(unique.len(), seeds.len());
        assert_eq!(derive_seed(1, 5), derive_seed(1, 5));
        assert_ne!(derive_seed(1, 5), derive_seed(2, 5));
    }

    #[test]
    fn seed_queue_pops_own_work_first_then_steals() {
        let q = SeedQueue::new(2);
        for i in 0..4 {
            q.push(
                0,
                Job::Fuzz {
                    app: "KUE".into(),
                    preset: 0,
                    env_seed: i,
                    directed: None,
                    want_schedule: false,
                },
            );
        }
        // Worker 1 has nothing: it steals from worker 0.
        let stolen = q.pop(1).expect("steals from the loaded peer");
        match stolen {
            Job::Fuzz { env_seed, .. } => assert_eq!(env_seed, 2, "steals the back half"),
            Job::Shrink { .. } => panic!("unexpected job kind"),
        }
        // Worker 0 still pops its own front.
        match q.pop(0).expect("own work remains") {
            Job::Fuzz { env_seed, .. } => assert_eq!(env_seed, 0),
            Job::Shrink { .. } => panic!("unexpected job kind"),
        }
    }

    #[test]
    fn empty_queues_pop_none() {
        let q = SeedQueue::new(3);
        assert!(q.pop(0).is_none());
        assert!(q.pop(2).is_none());
    }
}
