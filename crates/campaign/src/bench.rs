//! Schedule-space throughput measurement (`nodefz-throughput-v2`).
//!
//! Node.fz's value proposition is schedule bugs manifested *per unit of
//! testing time* (<1.1x overhead, Table 5 of the paper). Raw executions
//! per second was this bench's v1 currency — but raw throughput
//! overstates value: two happens-before-equivalent schedules manifest
//! exactly the same races, so the true currency is *distinct schedule
//! classes per second*. The v2 bench measures three windows per
//! (app, preset) arm:
//!
//! 1. **raw** — the v1 measurement, unchanged for trajectory
//!    comparability: record-mode executions back-to-back, counted through
//!    the campaign's metrics registry ([`RunContext::fuzz_once`]).
//! 2. **canon** — the same loop with the pruning kit attached
//!    ([`RunContext::enable_prune`]): every run's event log folds into an
//!    HB canonical key, a seen-set splits runs into distinct vs
//!    redundant. `distinct_per_sec` is the honest throughput;
//!    `redundancy_ratio` is what raw counting was overstating.
//! 3. **pruned** — the [`ForkExplorer`] engine: record one run, memoize
//!    its decision prefix, then fork — replay the prefix, steer the first
//!    fresh decision away from already-explored classes, count draws
//!    rejected at the divergence as *skipped* (schedules dispositioned
//!    without executing their suffix). `effective_per_sec` counts
//!    distinct + skipped per second — classes dispositioned per second.
//!
//! A separate **snapshot-fork microbench** measures the other pruning
//! primitive: one admissible loop is snapshotted once and resumed many
//! times, each resume under a differently-seeded suffix scheduler
//! (`restore` + `replace_scheduler`), with each resumed run's canonical
//! key deduped. Fig6 app arms cannot use loop snapshots (their custom
//! environments are snapshot-inadmissible), so this primitive is measured
//! on a synthetic timer workload and reported once, not per arm.
//!
//! The report serializes to `BENCH_throughput.json` at the repo root;
//! [`read_summary`] reads both v1 and v2 documents so the perf trajectory
//! spans the schema change.

use std::time::{Duration, Instant};

use nodefz_obs::{JsonValue, JsonWriter, ObsLevel};

use crate::config::PRESETS;
use crate::driver::{arm_seed, derive_seed, RunContext};
use crate::metrics::{build_registry, WorkerTelemetry};
use crate::prune::{ForkExplorer, PruneCounters, SEEN_CAP};

/// Configuration of one throughput measurement.
#[derive(Clone, Debug)]
pub struct BenchConfig {
    /// Bug abbreviations to measure (each app × every preset is one arm).
    pub apps: Vec<String>,
    /// Wall-clock warmup per arm, excluded from the measurement.
    pub warmup: Duration,
    /// Wall-clock measurement window (per arm *and* per window kind).
    pub window: Duration,
    /// Base environment seed; per-run seeds derive like the campaign's.
    pub base_seed: u64,
}

impl Default for BenchConfig {
    fn default() -> BenchConfig {
        BenchConfig {
            apps: Vec::new(),
            warmup: Duration::from_millis(100),
            window: Duration::from_millis(400),
            base_seed: 1,
        }
    }
}

/// The canon window: raw execution with online HB-class dedup.
#[derive(Clone, Debug)]
pub struct CanonWindow {
    /// Executions completed inside the window.
    pub runs: u64,
    /// Executions that opened a new HB-equivalence class.
    pub distinct: u64,
    /// Executions whose class was already seen.
    pub redundant: u64,
    /// Actual measured wall-clock time (>= the configured window).
    pub elapsed: Duration,
}

impl CanonWindow {
    /// Distinct HB classes per second — the honest throughput.
    pub fn distinct_per_sec(&self) -> f64 {
        self.distinct as f64 / self.elapsed.as_secs_f64().max(f64::EPSILON)
    }

    /// Fraction of executions that were HB-redundant.
    pub fn redundancy_ratio(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.redundant as f64 / self.runs as f64
        }
    }
}

/// The pruned window: [`ForkExplorer`] counters over one wall-clock
/// window.
#[derive(Clone, Debug)]
pub struct PrunedWindow {
    /// The explorer's counters at window end.
    pub counters: PruneCounters,
    /// Actual measured wall-clock time (>= the configured window).
    pub elapsed: Duration,
}

impl PrunedWindow {
    /// Distinct HB classes per second under pruned exploration.
    pub fn distinct_per_sec(&self) -> f64 {
        self.counters.distinct as f64 / self.elapsed.as_secs_f64().max(f64::EPSILON)
    }

    /// Schedule classes dispositioned per second: executed-and-distinct
    /// plus skipped-without-executing.
    pub fn effective_per_sec(&self) -> f64 {
        self.counters.effective() as f64 / self.elapsed.as_secs_f64().max(f64::EPSILON)
    }
}

/// Measured throughput of one (app, preset) arm.
#[derive(Clone, Debug)]
pub struct ArmThroughput {
    /// Bug abbreviation.
    pub app: String,
    /// Preset name ("standard", "aggressive", "guided").
    pub preset: &'static str,
    /// Fuzzed executions completed inside the raw window.
    pub runs: u64,
    /// Callbacks dispatched across those executions.
    pub events: u64,
    /// Actual measured raw-window wall-clock time.
    pub elapsed: Duration,
    /// The canon window's measurement.
    pub canon: CanonWindow,
    /// The pruned window's measurement.
    pub pruned: PrunedWindow,
}

impl ArmThroughput {
    /// Raw executions per second.
    pub fn execs_per_sec(&self) -> f64 {
        self.runs as f64 / self.elapsed.as_secs_f64().max(f64::EPSILON)
    }

    /// Dispatched callbacks per second.
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.elapsed.as_secs_f64().max(f64::EPSILON)
    }
}

/// The snapshot-fork microbench: one admissible loop snapshotted once,
/// resumed many times under distinct suffix schedulers.
#[derive(Clone, Debug)]
pub struct SnapshotBench {
    /// Resumes performed (each one `restore` + `replace_scheduler` + run).
    pub forks: u64,
    /// Resumed runs that opened a new HB class.
    pub distinct: u64,
    /// Actual measured wall-clock time.
    pub elapsed: Duration,
}

impl SnapshotBench {
    /// Snapshot resumes per second.
    pub fn forks_per_sec(&self) -> f64 {
        self.forks as f64 / self.elapsed.as_secs_f64().max(f64::EPSILON)
    }

    /// Distinct HB classes per second across resumed runs.
    pub fn distinct_per_sec(&self) -> f64 {
        self.distinct as f64 / self.elapsed.as_secs_f64().max(f64::EPSILON)
    }
}

/// A full throughput report: one entry per (app, preset) arm plus the
/// snapshot-fork microbench.
#[derive(Clone, Debug)]
pub struct ThroughputReport {
    /// Per-arm measurements, in (app, preset) order.
    pub arms: Vec<ArmThroughput>,
    /// The snapshot-fork microbench result.
    pub snapshot_fork: SnapshotBench,
    /// The configuration that produced the report.
    pub config: BenchConfig,
}

impl ThroughputReport {
    /// Total raw executions across all arms.
    pub fn total_runs(&self) -> u64 {
        self.arms.iter().map(|a| a.runs).sum()
    }

    /// Total raw-window wall-clock time across all arms.
    pub fn total_elapsed(&self) -> Duration {
        self.arms.iter().map(|a| a.elapsed).sum()
    }

    /// Aggregate raw executions per second (total runs / total elapsed).
    pub fn total_execs_per_sec(&self) -> f64 {
        self.total_runs() as f64 / self.total_elapsed().as_secs_f64().max(f64::EPSILON)
    }

    /// Aggregate distinct HB classes per second across canon windows.
    pub fn total_distinct_per_sec(&self) -> f64 {
        let distinct: u64 = self.arms.iter().map(|a| a.canon.distinct).sum();
        let elapsed: Duration = self.arms.iter().map(|a| a.canon.elapsed).sum();
        distinct as f64 / elapsed.as_secs_f64().max(f64::EPSILON)
    }

    /// Aggregate classes dispositioned per second across pruned windows.
    pub fn total_effective_per_sec(&self) -> f64 {
        let effective: u64 = self
            .arms
            .iter()
            .map(|a| a.pruned.counters.effective())
            .sum();
        let elapsed: Duration = self.arms.iter().map(|a| a.pruned.elapsed).sum();
        effective as f64 / elapsed.as_secs_f64().max(f64::EPSILON)
    }

    /// Aggregate canon-window redundancy.
    pub fn total_redundancy_ratio(&self) -> f64 {
        let runs: u64 = self.arms.iter().map(|a| a.canon.runs).sum();
        let redundant: u64 = self.arms.iter().map(|a| a.canon.redundant).sum();
        if runs == 0 {
            0.0
        } else {
            redundant as f64 / runs as f64
        }
    }

    /// Serializes the report as the `nodefz-throughput-v2` JSON document.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("schema", "nodefz-throughput-v2");
        w.field_u64("warmup_ms", self.config.warmup.as_millis() as u64);
        w.field_u64("window_ms", self.config.window.as_millis() as u64);
        w.field_u64("base_seed", self.config.base_seed);
        w.key("arms");
        w.begin_array();
        for arm in &self.arms {
            w.begin_object();
            w.field_str("app", &arm.app);
            w.field_str("preset", arm.preset);
            w.field_u64("runs", arm.runs);
            w.field_u64("events", arm.events);
            w.field_f64("elapsed_ms", arm.elapsed.as_secs_f64() * 1e3, 3);
            w.field_f64("execs_per_sec", arm.execs_per_sec(), 1);
            w.field_f64("events_per_sec", arm.events_per_sec(), 1);
            w.key("canon");
            w.begin_object();
            w.field_u64("runs", arm.canon.runs);
            w.field_u64("distinct", arm.canon.distinct);
            w.field_u64("redundant", arm.canon.redundant);
            w.field_f64("elapsed_ms", arm.canon.elapsed.as_secs_f64() * 1e3, 3);
            w.field_f64("distinct_per_sec", arm.canon.distinct_per_sec(), 1);
            w.field_f64("redundancy_ratio", arm.canon.redundancy_ratio(), 6);
            w.end_object();
            w.key("pruned");
            w.begin_object();
            let c = &arm.pruned.counters;
            w.field_u64("runs", c.runs);
            w.field_u64("distinct", c.distinct);
            w.field_u64("redundant", c.redundant);
            w.field_u64("skipped", c.skipped);
            w.field_u64("forked", c.forked);
            w.field_u64("prefix_hits", c.prefix_hits);
            w.field_u64("snapshot_forks", c.snapshot_forks);
            w.field_f64("elapsed_ms", arm.pruned.elapsed.as_secs_f64() * 1e3, 3);
            w.field_f64("distinct_per_sec", arm.pruned.distinct_per_sec(), 1);
            w.field_f64("effective_per_sec", arm.pruned.effective_per_sec(), 1);
            w.field_f64("prefix_hit_rate", c.prefix_hit_rate(), 6);
            w.end_object();
            w.end_object();
        }
        w.end_array();
        w.key("snapshot_fork");
        w.begin_object();
        w.field_u64("forks", self.snapshot_fork.forks);
        w.field_u64("distinct", self.snapshot_fork.distinct);
        w.field_f64(
            "elapsed_ms",
            self.snapshot_fork.elapsed.as_secs_f64() * 1e3,
            3,
        );
        w.field_f64("forks_per_sec", self.snapshot_fork.forks_per_sec(), 1);
        w.field_f64("distinct_per_sec", self.snapshot_fork.distinct_per_sec(), 1);
        w.end_object();
        w.key("total");
        w.begin_object();
        w.field_u64("runs", self.total_runs());
        w.field_f64("elapsed_ms", self.total_elapsed().as_secs_f64() * 1e3, 3);
        w.field_f64("execs_per_sec", self.total_execs_per_sec(), 1);
        w.field_f64("distinct_per_sec", self.total_distinct_per_sec(), 1);
        w.field_f64("effective_per_sec", self.total_effective_per_sec(), 1);
        w.field_f64("redundancy_ratio", self.total_redundancy_ratio(), 6);
        w.end_object();
        w.end_object();
        let mut out = w.finish();
        out.push('\n');
        out
    }
}

/// Measures throughput for every (app, preset) arm of `cfg`.
///
/// # Errors
///
/// Fails when no app is given or an abbreviation is unknown.
pub fn measure(cfg: &BenchConfig) -> Result<ThroughputReport, String> {
    if cfg.apps.is_empty() {
        return Err("bench: at least one app must be targeted".into());
    }
    for app in &cfg.apps {
        if nodefz_apps::by_abbr(app).is_none() {
            return Err(format!(
                "bench: unknown app '{app}' (known: {})",
                nodefz_apps::abbrs().join(", ")
            ));
        }
    }
    let mut ctx = RunContext::new();
    // Counting rides the campaign's own metrics registry (one shard, same
    // layout and recording path as a campaign worker), so per-arm numbers
    // are counter deltas across the measurement window.
    let (registry, ids) = build_registry(1);
    let telemetry = WorkerTelemetry::new(registry.shard(0), ids, ObsLevel::Off);
    let scrape = |registry: &nodefz_obs::Registry| {
        let snap = registry.snapshot();
        (
            snap.counter("campaign.runs").unwrap_or(0),
            snap.counter("campaign.dispatched").unwrap_or(0),
        )
    };
    let mut arms = Vec::with_capacity(cfg.apps.len() * PRESETS.len());
    for app in &cfg.apps {
        for (preset, preset_name) in PRESETS.iter().enumerate() {
            let base = arm_seed(cfg.base_seed, app, preset);
            let mut seed_no = 0u64;
            let warmup_start = Instant::now();
            while warmup_start.elapsed() < cfg.warmup {
                let _ = ctx.fuzz_once(app, preset, derive_seed(base, seed_no));
                seed_no += 1;
            }

            // Raw window: the v1 measurement, byte-for-byte comparable
            // with the pre-v2 trajectory.
            let (runs_before, events_before) = scrape(&registry);
            let start = Instant::now();
            let elapsed = loop {
                let exec = ctx.fuzz_once(app, preset, derive_seed(base, seed_no));
                seed_no += 1;
                telemetry.record_exec(exec.dispatched, exec.finding.is_some());
                let elapsed = start.elapsed();
                if elapsed >= cfg.window {
                    break elapsed;
                }
            };
            let (runs_after, events_after) = scrape(&registry);

            arms.push(ArmThroughput {
                app: app.clone(),
                preset: preset_name,
                runs: runs_after - runs_before,
                events: events_after - events_before,
                elapsed,
                canon: canon_window(app, preset, base, seed_no, cfg.window),
                pruned: pruned_window(app, preset, cfg.base_seed, cfg.window),
            });
        }
    }
    Ok(ThroughputReport {
        arms,
        snapshot_fork: snapshot_fork_bench(cfg.base_seed, cfg.window),
        config: cfg.clone(),
    })
}

/// The canon window: continue the arm's seed stream with the pruning kit
/// attached, deduping canonical keys online.
fn canon_window(
    app: &str,
    preset: usize,
    base: u64,
    mut seed_no: u64,
    window: Duration,
) -> CanonWindow {
    let mut ctx = RunContext::new();
    ctx.enable_prune();
    let mut seen = nodefz_hb::SeenSet::new(SEEN_CAP);
    let mut out = CanonWindow {
        runs: 0,
        distinct: 0,
        redundant: 0,
        elapsed: Duration::ZERO,
    };
    let start = Instant::now();
    loop {
        let exec = ctx.fuzz_once(app, preset, derive_seed(base, seed_no));
        seed_no += 1;
        out.runs += 1;
        let (key, _scope) = exec.canon.expect("pruning context yields keys");
        if seen.insert(key) {
            out.distinct += 1;
        } else {
            out.redundant += 1;
        }
        out.elapsed = start.elapsed();
        if out.elapsed >= window {
            return out;
        }
    }
}

/// The pruned window: the fork explorer's step loop.
fn pruned_window(app: &str, preset: usize, base_seed: u64, window: Duration) -> PrunedWindow {
    let mut explorer =
        ForkExplorer::new(app, preset, base_seed).expect("apps validated before measuring");
    let start = Instant::now();
    loop {
        explorer.step();
        let elapsed = start.elapsed();
        if elapsed >= window {
            return PrunedWindow {
                counters: *explorer.counters(),
                elapsed,
            };
        }
    }
}

/// The snapshot-fork microbench (module docs): a one-shot-free timer
/// program under a fork-capable fuzz scheduler, snapshotted at an
/// iteration boundary, then resumed in a loop — each resume restoring the
/// prefix state (no prefix re-execution) and swapping in a fresh-seeded
/// suffix scheduler.
fn snapshot_fork_bench(base_seed: u64, window: Duration) -> SnapshotBench {
    use nodefz_rt::{EventLogHandle, EventLoop, LoopConfig, VDur, VTime};

    let params = crate::config::preset_params(0);
    let cfg = LoopConfig {
        max_vtime: VTime::ZERO + VDur::millis(40),
        ..LoopConfig::seeded(base_seed)
    };
    let mut el = EventLoop::with_scheduler(
        cfg,
        Box::new(nodefz::FuzzScheduler::new(params.clone(), base_seed)),
    );
    let log = EventLogHandle::fresh();
    el.set_event_log(&log);
    el.enter(|cx| {
        cx.set_interval(VDur::millis(3), |cx| {
            cx.touch_write("bench:a");
        });
        cx.set_interval(VDur::millis(5), |cx| {
            cx.touch_read("bench:a");
            cx.touch_update("bench:b");
        });
        cx.set_interval(VDur::millis(7), |cx| {
            cx.touch_write("bench:b");
        });
    });
    assert!(
        el.run_bounded(4).is_none(),
        "bench prefix outlasts 4 iterations"
    );
    let snap = el.snapshot().expect("timer-only loop is admissible");

    let mut canon = nodefz_hb::CanonBuilder::new();
    let mut scratch = Vec::new();
    let mut seen = nodefz_hb::SeenSet::new(SEEN_CAP);
    let mut out = SnapshotBench {
        forks: 0,
        distinct: 0,
        elapsed: Duration::ZERO,
    };
    let start = Instant::now();
    loop {
        assert!(el.restore(&snap), "one-shot-free snapshot never stales");
        let sched_seed = derive_seed(base_seed ^ 0x736e_6170, out.forks);
        el.replace_scheduler(Box::new(nodefz::FuzzScheduler::new(
            params.clone(),
            sched_seed,
        )));
        el.run();
        out.forks += 1;
        let key = log.with(|l| canon.build(l, &mut scratch));
        if seen.insert(key) {
            out.distinct += 1;
        }
        out.elapsed = start.elapsed();
        if out.elapsed >= window {
            return out;
        }
    }
}

/// One arm row of a normalized bench summary ([`read_summary`]).
#[derive(Clone, Debug)]
pub struct BenchArmSummary {
    /// Bug abbreviation.
    pub app: String,
    /// Preset name.
    pub preset: String,
    /// Raw executions per second.
    pub execs_per_sec: f64,
    /// Distinct HB classes per second (`None` in v1 documents).
    pub distinct_per_sec: Option<f64>,
    /// Canon-window redundancy (`None` in v1 documents).
    pub redundancy_ratio: Option<f64>,
}

/// A normalized view over a persisted bench document, any schema version.
#[derive(Clone, Debug)]
pub struct BenchSummary {
    /// The document's schema tag.
    pub schema: String,
    /// Per-arm rows, in document order.
    pub arms: Vec<BenchArmSummary>,
    /// Aggregate raw executions per second.
    pub total_execs_per_sec: f64,
    /// Aggregate distinct HB classes per second (`None` in v1 documents).
    pub total_distinct_per_sec: Option<f64>,
    /// Aggregate classes dispositioned per second (`None` in v1).
    pub total_effective_per_sec: Option<f64>,
}

/// Reads a persisted bench document — `nodefz-throughput-v1` or `-v2` —
/// into a normalized summary, so trajectory tooling spans the schema
/// change (v1 documents simply have no pruning columns).
///
/// # Errors
///
/// Fails on malformed JSON, an unknown schema tag, or missing fields.
pub fn read_summary(json: &str) -> Result<BenchSummary, String> {
    let doc = JsonValue::parse(json).map_err(|e| format!("bench document: {e}"))?;
    let schema =
        nodefz_obs::expect_schema_any(&doc, &["nodefz-throughput-v1", "nodefz-throughput-v2"])
            .map_err(|e| format!("bench document: {e}"))?
            .to_string();
    let arms = doc
        .get("arms")
        .and_then(|a| a.as_array())
        .ok_or("bench document: missing arms")?
        .iter()
        .map(|arm| {
            Ok(BenchArmSummary {
                app: arm
                    .get("app")
                    .and_then(|v| v.as_str())
                    .ok_or("arm: missing app")?
                    .to_string(),
                preset: arm
                    .get("preset")
                    .and_then(|v| v.as_str())
                    .ok_or("arm: missing preset")?
                    .to_string(),
                execs_per_sec: arm
                    .get("execs_per_sec")
                    .and_then(|v| v.as_f64())
                    .ok_or("arm: missing execs_per_sec")?,
                distinct_per_sec: arm
                    .get("canon")
                    .and_then(|c| c.get("distinct_per_sec"))
                    .and_then(|v| v.as_f64()),
                redundancy_ratio: arm
                    .get("canon")
                    .and_then(|c| c.get("redundancy_ratio"))
                    .and_then(|v| v.as_f64()),
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let total = doc.get("total").ok_or("bench document: missing total")?;
    Ok(BenchSummary {
        schema,
        arms,
        total_execs_per_sec: total
            .get("execs_per_sec")
            .and_then(|v| v.as_f64())
            .ok_or("total: missing execs_per_sec")?,
        total_distinct_per_sec: total.get("distinct_per_sec").and_then(|v| v.as_f64()),
        total_effective_per_sec: total.get("effective_per_sec").and_then(|v| v.as_f64()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> BenchConfig {
        BenchConfig {
            apps: vec!["GHO".into()],
            warmup: Duration::from_millis(5),
            window: Duration::from_millis(20),
            base_seed: 1,
        }
    }

    #[test]
    fn measures_nonzero_throughput() {
        let report = measure(&tiny()).unwrap();
        assert_eq!(report.arms.len(), PRESETS.len());
        for arm in &report.arms {
            assert!(arm.runs > 0, "no executions in window for {}", arm.app);
            assert!(arm.events > 0);
            assert!(arm.execs_per_sec() > 0.0);
            assert!(arm.canon.runs > 0);
            assert_eq!(arm.canon.distinct + arm.canon.redundant, arm.canon.runs);
            assert!(arm.canon.distinct_per_sec() > 0.0);
            let c = &arm.pruned.counters;
            assert!(c.runs > 0);
            assert_eq!(c.distinct + c.redundant, c.runs);
            assert!(c.forked > 0, "pruned window must fork: {c:?}");
        }
        assert!(report.total_execs_per_sec() > 0.0);
        assert!(report.total_distinct_per_sec() > 0.0);
        assert!(report.total_effective_per_sec() > 0.0);
        assert!(report.snapshot_fork.forks > 0);
        assert!(report.snapshot_fork.distinct > 0);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let report = measure(&tiny()).unwrap();
        let json = report.to_json();
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"schema\": \"nodefz-throughput-v2\""));
        assert!(json.contains("\"distinct_per_sec\""));
        assert!(json.contains("\"redundancy_ratio\""));
        assert!(json.contains("\"snapshot_fork\""));
        assert_eq!(
            json.matches("\"app\"").count(),
            PRESETS.len(),
            "one arm object per preset"
        );
    }

    #[test]
    fn summary_reads_back_the_v2_document() {
        let report = measure(&tiny()).unwrap();
        let summary = read_summary(&report.to_json()).unwrap();
        assert_eq!(summary.schema, "nodefz-throughput-v2");
        assert_eq!(summary.arms.len(), report.arms.len());
        for (row, arm) in summary.arms.iter().zip(&report.arms) {
            assert_eq!(row.app, arm.app);
            assert!(row.distinct_per_sec.is_some());
            assert!(row.redundancy_ratio.is_some());
        }
        assert!(summary.total_distinct_per_sec.is_some());
        assert!(summary.total_effective_per_sec.is_some());
    }

    #[test]
    fn summary_rejects_garbage() {
        assert!(read_summary("not json").is_err());
        assert!(read_summary("{\"schema\": \"nodefz-throughput-v9\"}").is_err());
        assert!(read_summary("{}").is_err());
    }

    #[test]
    fn unknown_or_missing_apps_are_rejected() {
        let mut cfg = tiny();
        cfg.apps = vec![];
        assert!(measure(&cfg).is_err());
        cfg.apps = vec!["NOPE".into()];
        let err = measure(&cfg).unwrap_err();
        assert!(err.contains("NOPE"), "{err}");
    }
}
