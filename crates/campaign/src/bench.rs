//! Executions-per-second throughput measurement.
//!
//! Node.fz's value proposition is schedule bugs manifested *per unit of
//! testing time* (<1.1x overhead, Table 5 of the paper), and the campaign
//! driver turns that into bugs per execution budget — so raw record-mode
//! executions per second is the system's throughput currency. This module
//! measures it: for each (app, preset) arm it runs fuzzed executions
//! back-to-back inside a wall-clock window (after a warmup) and reports
//! execs/sec and dispatched-callbacks/sec. The report serializes to a small
//! hand-rolled JSON document (`BENCH_throughput.json` at the repo root) so
//! successive PRs accumulate a perf trajectory to regress against.
//!
//! The measurement loop is exactly the campaign worker's hot path
//! ([`RunContext::fuzz_once`]): a record-mode run of the buggy variant with
//! the decision trace captured, signature-checked on manifestation.
//! Single-threaded on purpose — the campaign scales across threads, but
//! throughput per worker is what this trajectory tracks (the CI container
//! exposes one CPU).

use std::time::{Duration, Instant};

use crate::config::PRESETS;
use crate::driver::{arm_seed, derive_seed, RunContext};

/// Configuration of one throughput measurement.
#[derive(Clone, Debug)]
pub struct BenchConfig {
    /// Bug abbreviations to measure (each app × every preset is one arm).
    pub apps: Vec<String>,
    /// Wall-clock warmup per arm, excluded from the measurement.
    pub warmup: Duration,
    /// Wall-clock measurement window per arm.
    pub window: Duration,
    /// Base environment seed; per-run seeds derive like the campaign's.
    pub base_seed: u64,
}

impl Default for BenchConfig {
    fn default() -> BenchConfig {
        BenchConfig {
            apps: Vec::new(),
            warmup: Duration::from_millis(100),
            window: Duration::from_millis(400),
            base_seed: 1,
        }
    }
}

/// Measured throughput of one (app, preset) arm.
#[derive(Clone, Debug)]
pub struct ArmThroughput {
    /// Bug abbreviation.
    pub app: String,
    /// Preset name ("standard", "aggressive", "guided").
    pub preset: &'static str,
    /// Fuzzed executions completed inside the window.
    pub runs: u64,
    /// Callbacks dispatched across those executions.
    pub events: u64,
    /// Actual measured wall-clock time (>= the configured window).
    pub elapsed: Duration,
}

impl ArmThroughput {
    /// Executions per second.
    pub fn execs_per_sec(&self) -> f64 {
        self.runs as f64 / self.elapsed.as_secs_f64().max(f64::EPSILON)
    }

    /// Dispatched callbacks per second.
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.elapsed.as_secs_f64().max(f64::EPSILON)
    }
}

/// A full throughput report: one entry per (app, preset) arm.
#[derive(Clone, Debug)]
pub struct ThroughputReport {
    /// Per-arm measurements, in (app, preset) order.
    pub arms: Vec<ArmThroughput>,
    /// The configuration that produced the report.
    pub config: BenchConfig,
}

impl ThroughputReport {
    /// Total executions across all arms.
    pub fn total_runs(&self) -> u64 {
        self.arms.iter().map(|a| a.runs).sum()
    }

    /// Total measured wall-clock time across all arms.
    pub fn total_elapsed(&self) -> Duration {
        self.arms.iter().map(|a| a.elapsed).sum()
    }

    /// Aggregate executions per second (total runs / total elapsed).
    pub fn total_execs_per_sec(&self) -> f64 {
        self.total_runs() as f64 / self.total_elapsed().as_secs_f64().max(f64::EPSILON)
    }

    /// Serializes the report as the `nodefz-throughput-v1` JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.arms.len() * 160);
        out.push_str("{\n");
        out.push_str("  \"schema\": \"nodefz-throughput-v1\",\n");
        out.push_str(&format!(
            "  \"warmup_ms\": {},\n",
            self.config.warmup.as_millis()
        ));
        out.push_str(&format!(
            "  \"window_ms\": {},\n",
            self.config.window.as_millis()
        ));
        out.push_str(&format!("  \"base_seed\": {},\n", self.config.base_seed));
        out.push_str("  \"arms\": [\n");
        for (i, arm) in self.arms.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"app\": \"{}\", \"preset\": \"{}\", \"runs\": {}, \"events\": {}, \
                 \"elapsed_ms\": {:.3}, \"execs_per_sec\": {:.1}, \"events_per_sec\": {:.1}}}{}\n",
                json_escape(&arm.app),
                arm.preset,
                arm.runs,
                arm.events,
                arm.elapsed.as_secs_f64() * 1e3,
                arm.execs_per_sec(),
                arm.events_per_sec(),
                if i + 1 < self.arms.len() { "," } else { "" },
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"total\": {{\"runs\": {}, \"elapsed_ms\": {:.3}, \"execs_per_sec\": {:.1}}}\n",
            self.total_runs(),
            self.total_elapsed().as_secs_f64() * 1e3,
            self.total_execs_per_sec(),
        ));
        out.push_str("}\n");
        out
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Measures throughput for every (app, preset) arm of `cfg`.
///
/// # Errors
///
/// Fails when no app is given or an abbreviation is unknown.
pub fn measure(cfg: &BenchConfig) -> Result<ThroughputReport, String> {
    if cfg.apps.is_empty() {
        return Err("bench: at least one app must be targeted".into());
    }
    for app in &cfg.apps {
        if nodefz_apps::by_abbr(app).is_none() {
            return Err(format!(
                "bench: unknown app '{app}' (known: {})",
                nodefz_apps::abbrs().join(", ")
            ));
        }
    }
    let mut ctx = RunContext::new();
    let mut arms = Vec::with_capacity(cfg.apps.len() * PRESETS.len());
    for app in &cfg.apps {
        for (preset, preset_name) in PRESETS.iter().enumerate() {
            let base = arm_seed(cfg.base_seed, app, preset);
            let mut seed_no = 0u64;
            let warmup_start = Instant::now();
            while warmup_start.elapsed() < cfg.warmup {
                let _ = ctx.fuzz_once(app, preset, derive_seed(base, seed_no));
                seed_no += 1;
            }
            let mut runs = 0u64;
            let mut events = 0u64;
            let start = Instant::now();
            let elapsed = loop {
                let exec = ctx.fuzz_once(app, preset, derive_seed(base, seed_no));
                seed_no += 1;
                runs += 1;
                events += exec.dispatched;
                let elapsed = start.elapsed();
                if elapsed >= cfg.window {
                    break elapsed;
                }
            };
            arms.push(ArmThroughput {
                app: app.clone(),
                preset: preset_name,
                runs,
                events,
                elapsed,
            });
        }
    }
    Ok(ThroughputReport {
        arms,
        config: cfg.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> BenchConfig {
        BenchConfig {
            apps: vec!["GHO".into()],
            warmup: Duration::from_millis(5),
            window: Duration::from_millis(20),
            base_seed: 1,
        }
    }

    #[test]
    fn measures_nonzero_throughput() {
        let report = measure(&tiny()).unwrap();
        assert_eq!(report.arms.len(), PRESETS.len());
        for arm in &report.arms {
            assert!(arm.runs > 0, "no executions in window for {}", arm.app);
            assert!(arm.events > 0);
            assert!(arm.execs_per_sec() > 0.0);
        }
        assert!(report.total_execs_per_sec() > 0.0);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let report = measure(&tiny()).unwrap();
        let json = report.to_json();
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"schema\": \"nodefz-throughput-v1\""));
        assert!(json.contains("\"execs_per_sec\""));
        assert_eq!(
            json.matches("\"app\"").count(),
            PRESETS.len(),
            "one arm object per preset"
        );
    }

    #[test]
    fn unknown_or_missing_apps_are_rejected() {
        let mut cfg = tiny();
        cfg.apps = vec![];
        assert!(measure(&cfg).is_err());
        cfg.apps = vec!["NOPE".into()];
        let err = measure(&cfg).unwrap_err();
        assert!(err.contains("NOPE"), "{err}");
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(json_escape("x\ny"), "x\\u000ay");
    }
}
