//! Executions-per-second throughput measurement.
//!
//! Node.fz's value proposition is schedule bugs manifested *per unit of
//! testing time* (<1.1x overhead, Table 5 of the paper), and the campaign
//! driver turns that into bugs per execution budget — so raw record-mode
//! executions per second is the system's throughput currency. This module
//! measures it: for each (app, preset) arm it runs fuzzed executions
//! back-to-back inside a wall-clock window (after a warmup) and reports
//! execs/sec and dispatched-callbacks/sec. The report serializes to a small
//! hand-rolled JSON document (`BENCH_throughput.json` at the repo root) so
//! successive PRs accumulate a perf trajectory to regress against.
//!
//! The measurement loop is exactly the campaign worker's hot path
//! ([`RunContext::fuzz_once`]): a record-mode run of the buggy variant with
//! the decision trace captured, signature-checked on manifestation — and
//! the counting goes through the same [`metrics`](crate::metrics) registry
//! layout the campaign workers record into, so the bench exercises the
//! telemetry path it reports on. Single-threaded on purpose — the campaign
//! scales across threads, but throughput per worker is what this
//! trajectory tracks (the CI container exposes one CPU).

use std::time::{Duration, Instant};

use nodefz_obs::{JsonWriter, ObsLevel};

use crate::config::PRESETS;
use crate::driver::{arm_seed, derive_seed, RunContext};
use crate::metrics::{build_registry, WorkerTelemetry};

/// Configuration of one throughput measurement.
#[derive(Clone, Debug)]
pub struct BenchConfig {
    /// Bug abbreviations to measure (each app × every preset is one arm).
    pub apps: Vec<String>,
    /// Wall-clock warmup per arm, excluded from the measurement.
    pub warmup: Duration,
    /// Wall-clock measurement window per arm.
    pub window: Duration,
    /// Base environment seed; per-run seeds derive like the campaign's.
    pub base_seed: u64,
}

impl Default for BenchConfig {
    fn default() -> BenchConfig {
        BenchConfig {
            apps: Vec::new(),
            warmup: Duration::from_millis(100),
            window: Duration::from_millis(400),
            base_seed: 1,
        }
    }
}

/// Measured throughput of one (app, preset) arm.
#[derive(Clone, Debug)]
pub struct ArmThroughput {
    /// Bug abbreviation.
    pub app: String,
    /// Preset name ("standard", "aggressive", "guided").
    pub preset: &'static str,
    /// Fuzzed executions completed inside the window.
    pub runs: u64,
    /// Callbacks dispatched across those executions.
    pub events: u64,
    /// Actual measured wall-clock time (>= the configured window).
    pub elapsed: Duration,
}

impl ArmThroughput {
    /// Executions per second.
    pub fn execs_per_sec(&self) -> f64 {
        self.runs as f64 / self.elapsed.as_secs_f64().max(f64::EPSILON)
    }

    /// Dispatched callbacks per second.
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.elapsed.as_secs_f64().max(f64::EPSILON)
    }
}

/// A full throughput report: one entry per (app, preset) arm.
#[derive(Clone, Debug)]
pub struct ThroughputReport {
    /// Per-arm measurements, in (app, preset) order.
    pub arms: Vec<ArmThroughput>,
    /// The configuration that produced the report.
    pub config: BenchConfig,
}

impl ThroughputReport {
    /// Total executions across all arms.
    pub fn total_runs(&self) -> u64 {
        self.arms.iter().map(|a| a.runs).sum()
    }

    /// Total measured wall-clock time across all arms.
    pub fn total_elapsed(&self) -> Duration {
        self.arms.iter().map(|a| a.elapsed).sum()
    }

    /// Aggregate executions per second (total runs / total elapsed).
    pub fn total_execs_per_sec(&self) -> f64 {
        self.total_runs() as f64 / self.total_elapsed().as_secs_f64().max(f64::EPSILON)
    }

    /// Serializes the report as the `nodefz-throughput-v1` JSON document.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("schema", "nodefz-throughput-v1");
        w.field_u64("warmup_ms", self.config.warmup.as_millis() as u64);
        w.field_u64("window_ms", self.config.window.as_millis() as u64);
        w.field_u64("base_seed", self.config.base_seed);
        w.key("arms");
        w.begin_array();
        for arm in &self.arms {
            w.begin_object();
            w.field_str("app", &arm.app);
            w.field_str("preset", arm.preset);
            w.field_u64("runs", arm.runs);
            w.field_u64("events", arm.events);
            w.field_f64("elapsed_ms", arm.elapsed.as_secs_f64() * 1e3, 3);
            w.field_f64("execs_per_sec", arm.execs_per_sec(), 1);
            w.field_f64("events_per_sec", arm.events_per_sec(), 1);
            w.end_object();
        }
        w.end_array();
        w.key("total");
        w.begin_object();
        w.field_u64("runs", self.total_runs());
        w.field_f64("elapsed_ms", self.total_elapsed().as_secs_f64() * 1e3, 3);
        w.field_f64("execs_per_sec", self.total_execs_per_sec(), 1);
        w.end_object();
        w.end_object();
        let mut out = w.finish();
        out.push('\n');
        out
    }
}

/// Measures throughput for every (app, preset) arm of `cfg`.
///
/// # Errors
///
/// Fails when no app is given or an abbreviation is unknown.
pub fn measure(cfg: &BenchConfig) -> Result<ThroughputReport, String> {
    if cfg.apps.is_empty() {
        return Err("bench: at least one app must be targeted".into());
    }
    for app in &cfg.apps {
        if nodefz_apps::by_abbr(app).is_none() {
            return Err(format!(
                "bench: unknown app '{app}' (known: {})",
                nodefz_apps::abbrs().join(", ")
            ));
        }
    }
    let mut ctx = RunContext::new();
    // Counting rides the campaign's own metrics registry (one shard, same
    // layout and recording path as a campaign worker), so per-arm numbers
    // are counter deltas across the measurement window.
    let (registry, ids) = build_registry(1);
    let telemetry = WorkerTelemetry::new(registry.shard(0), ids, ObsLevel::Off);
    let scrape = |registry: &nodefz_obs::Registry| {
        let snap = registry.snapshot();
        (
            snap.counter("campaign.runs").unwrap_or(0),
            snap.counter("campaign.dispatched").unwrap_or(0),
        )
    };
    let mut arms = Vec::with_capacity(cfg.apps.len() * PRESETS.len());
    for app in &cfg.apps {
        for (preset, preset_name) in PRESETS.iter().enumerate() {
            let base = arm_seed(cfg.base_seed, app, preset);
            let mut seed_no = 0u64;
            let warmup_start = Instant::now();
            while warmup_start.elapsed() < cfg.warmup {
                let _ = ctx.fuzz_once(app, preset, derive_seed(base, seed_no));
                seed_no += 1;
            }
            let (runs_before, events_before) = scrape(&registry);
            let start = Instant::now();
            let elapsed = loop {
                let exec = ctx.fuzz_once(app, preset, derive_seed(base, seed_no));
                seed_no += 1;
                telemetry.record_exec(exec.dispatched, exec.finding.is_some());
                let elapsed = start.elapsed();
                if elapsed >= cfg.window {
                    break elapsed;
                }
            };
            let (runs_after, events_after) = scrape(&registry);
            arms.push(ArmThroughput {
                app: app.clone(),
                preset: preset_name,
                runs: runs_after - runs_before,
                events: events_after - events_before,
                elapsed,
            });
        }
    }
    Ok(ThroughputReport {
        arms,
        config: cfg.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> BenchConfig {
        BenchConfig {
            apps: vec!["GHO".into()],
            warmup: Duration::from_millis(5),
            window: Duration::from_millis(20),
            base_seed: 1,
        }
    }

    #[test]
    fn measures_nonzero_throughput() {
        let report = measure(&tiny()).unwrap();
        assert_eq!(report.arms.len(), PRESETS.len());
        for arm in &report.arms {
            assert!(arm.runs > 0, "no executions in window for {}", arm.app);
            assert!(arm.events > 0);
            assert!(arm.execs_per_sec() > 0.0);
        }
        assert!(report.total_execs_per_sec() > 0.0);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let report = measure(&tiny()).unwrap();
        let json = report.to_json();
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"schema\": \"nodefz-throughput-v1\""));
        assert!(json.contains("\"execs_per_sec\""));
        assert_eq!(
            json.matches("\"app\"").count(),
            PRESETS.len(),
            "one arm object per preset"
        );
    }

    #[test]
    fn unknown_or_missing_apps_are_rejected() {
        let mut cfg = tiny();
        cfg.apps = vec![];
        assert!(measure(&cfg).is_err());
        cfg.apps = vec!["NOPE".into()];
        let err = measure(&cfg).unwrap_err();
        assert!(err.contains("NOPE"), "{err}");
    }
}
