//! Command-line front end for fuzzing campaigns.
//!
//! ```text
//! campaign [--threads N] [--budget N] [--apps KUE,MKD,...] [--corpus DIR]
//!          [--deadline-secs S] [--no-shrink] [--replay-checks N]
//!          [--seed N] [--verify DIR] [--list] [--directed] [--conform]
//!          [--analyze] [--races-out PATH] [--attempts N]
//!          [--metrics-out PATH] [--trace-out PATH] [--obs-level LEVEL]
//!          [--bench-execs] [--bench-window-ms N] [--bench-warmup-ms N]
//!          [--bench-out PATH]
//! ```
//!
//! Plain `std::env::args` parsing — no argument-parsing dependency.

use std::process::ExitCode;

use nodefz_campaign::{report, run_with_progress, BenchConfig, CampaignConfig, Corpus, Event};

const USAGE: &str = "usage: campaign [options]
  --threads N        worker threads (default 4)
  --budget N         total fuzz runs (default 400)
  --apps A,B,C       bug abbreviations to target (default: the fig6 set)
  --corpus DIR       persist minimized repros into DIR
  --deadline-secs S  wall-clock budget; drain gracefully when exceeded
  --no-shrink        skip delta-debugging of new findings
  --replay-checks N  acceptance replays per repro (default 10)
  --seed N           base environment seed (default 1)
  --verify DIR       replay every corpus entry in DIR and exit
  --list             list known bug abbreviations and exit
  --directed         add a race-directed bandit arm per app, fed by
                     happens-before analysis of one recorded run
  --conform          add the CONFORM arm: generated event-driven programs
                     judged against the runtime's ordering oracle
  --analyze          predict races from one recorded run per app, confirm
                     them with race-directed runs, and exit
  --races-out PATH   where --analyze writes the nodefz-races-v1 report
                     (default RACES_report.json)
  --attempts N       directed confirmation attempts per predicted flip
                     under --analyze (default 24; 0 = predict only)
  --metrics-out PATH write nodefz-metrics-v1 telemetry snapshots to PATH,
                     refreshed every ~500ms and finalized at drain
  --trace-out PATH   after the campaign, record one instrumented run as a
                     chrome://tracing timeline (needs an obs-feature build)
  --obs-level LEVEL  worker loop profiling: off | counters | full
                     (default off; above off needs an obs-feature build)
  --bench-execs      measure execs/sec per (app, preset) and exit
  --bench-window-ms N  measurement window per arm (default 400)
  --bench-warmup-ms N  warmup per arm, excluded from measurement (default 100)
  --bench-out PATH   where to write the JSON report
                     (default BENCH_throughput.json)";

/// What to run instead of a campaign, if anything.
struct AltMode {
    verify: Option<String>,
    list: bool,
    bench: Option<BenchOpts>,
    analyze: Option<AnalyzeOpts>,
    /// Append the CONFORM arm to the targeted apps (after the default
    /// set is filled in, so `--conform` alone fuzzes fig6 + CONFORM).
    conform: bool,
}

struct AnalyzeOpts {
    races_out: String,
    attempts: u64,
}

impl Default for AnalyzeOpts {
    fn default() -> AnalyzeOpts {
        AnalyzeOpts {
            races_out: "RACES_report.json".into(),
            attempts: 24,
        }
    }
}

struct BenchOpts {
    window_ms: u64,
    warmup_ms: u64,
    out: String,
}

impl Default for BenchOpts {
    fn default() -> BenchOpts {
        BenchOpts {
            window_ms: 400,
            warmup_ms: 100,
            out: "BENCH_throughput.json".into(),
        }
    }
}

fn parse_args(args: &[String]) -> Result<(CampaignConfig, AltMode), String> {
    let mut cfg = CampaignConfig::default();
    let mut alt = AltMode {
        verify: None,
        list: false,
        bench: None,
        analyze: None,
        conform: false,
    };
    let mut bench_opts = BenchOpts::default();
    let mut bench = false;
    let mut analyze_opts = AnalyzeOpts::default();
    let mut analyze = false;
    let mut conform = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--threads" => {
                cfg.threads = value("--threads")?
                    .parse()
                    .map_err(|_| "--threads: not a number".to_string())?;
            }
            "--budget" => {
                cfg.budget = value("--budget")?
                    .parse()
                    .map_err(|_| "--budget: not a number".to_string())?;
            }
            "--apps" => {
                cfg.apps = value("--apps")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
            }
            "--corpus" => cfg.corpus_dir = Some(value("--corpus")?.into()),
            "--deadline-secs" => {
                let secs: u64 = value("--deadline-secs")?
                    .parse()
                    .map_err(|_| "--deadline-secs: not a number".to_string())?;
                cfg.deadline = Some(std::time::Duration::from_secs(secs));
            }
            "--no-shrink" => cfg.shrink = false,
            "--replay-checks" => {
                cfg.replay_checks = value("--replay-checks")?
                    .parse()
                    .map_err(|_| "--replay-checks: not a number".to_string())?;
            }
            "--seed" => {
                cfg.base_seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed: not a number".to_string())?;
            }
            "--verify" => alt.verify = Some(value("--verify")?),
            "--list" => alt.list = true,
            "--directed" => cfg.directed = true,
            "--conform" => conform = true,
            "--analyze" => analyze = true,
            "--races-out" => analyze_opts.races_out = value("--races-out")?,
            "--attempts" => {
                analyze_opts.attempts = value("--attempts")?
                    .parse()
                    .map_err(|_| "--attempts: not a number".to_string())?;
            }
            "--metrics-out" => cfg.metrics_out = Some(value("--metrics-out")?.into()),
            "--trace-out" => cfg.trace_out = Some(value("--trace-out")?.into()),
            "--obs-level" => {
                let spelled = value("--obs-level")?;
                cfg.obs_level = nodefz_obs::ObsLevel::parse(&spelled)
                    .ok_or_else(|| format!("--obs-level: unknown level '{spelled}'"))?;
            }
            "--bench-execs" => bench = true,
            "--bench-window-ms" => {
                bench_opts.window_ms = value("--bench-window-ms")?
                    .parse()
                    .map_err(|_| "--bench-window-ms: not a number".to_string())?;
            }
            "--bench-warmup-ms" => {
                bench_opts.warmup_ms = value("--bench-warmup-ms")?
                    .parse()
                    .map_err(|_| "--bench-warmup-ms: not a number".to_string())?;
            }
            "--bench-out" => bench_opts.out = value("--bench-out")?,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
        }
    }
    if bench {
        alt.bench = Some(bench_opts);
    }
    if analyze {
        alt.analyze = Some(analyze_opts);
    }
    if conform {
        alt.conform = true;
    }
    Ok((cfg, alt))
}

/// The fig6 experiment set: every reproduced bug the paper fuzzes.
fn default_apps() -> Vec<String> {
    nodefz_apps::registry()
        .iter()
        .map(|c| c.info())
        .filter(|i| i.in_fig6)
        .map(|i| i.abbr.to_string())
        .collect()
}

fn verify_corpus(dir: &str) -> ExitCode {
    // Opening would create a missing directory, and an empty corpus
    // verifies vacuously — so a typo'd path must not look like a pass.
    if !std::path::Path::new(dir).is_dir() {
        eprintln!("campaign: corpus {dir} does not exist");
        return ExitCode::FAILURE;
    }
    let corpus = match Corpus::open(std::path::Path::new(dir)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("campaign: cannot open corpus {dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let entries = match corpus.load_all() {
        Ok(entries) => entries,
        Err(e) => {
            eprintln!("campaign: cannot load corpus {dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut failures = 0;
    for entry in &entries {
        match nodefz_campaign::verify_entry(entry) {
            Ok(()) => println!("ok   {}", entry.file_name()),
            Err(e) => {
                failures += 1;
                println!("FAIL {e}");
            }
        }
    }
    println!(
        "verified {}/{} entries",
        entries.len() - failures,
        entries.len()
    );
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run_bench(cfg: &CampaignConfig, opts: &BenchOpts) -> ExitCode {
    let bench_cfg = BenchConfig {
        apps: cfg.apps.clone(),
        warmup: std::time::Duration::from_millis(opts.warmup_ms),
        window: std::time::Duration::from_millis(opts.window_ms),
        base_seed: cfg.base_seed,
    };
    println!(
        "bench: {} apps x {} presets, {}ms warmup + {}ms window per arm",
        bench_cfg.apps.len(),
        nodefz_campaign::PRESETS.len(),
        opts.warmup_ms,
        opts.window_ms,
    );
    let report = match nodefz_campaign::measure(&bench_cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("campaign: {e}");
            return ExitCode::FAILURE;
        }
    };
    for arm in &report.arms {
        println!(
            "  {:<4} {:<10} {:>8} runs  {:>10.1} execs/s  {:>12.1} events/s",
            arm.app,
            arm.preset,
            arm.runs,
            arm.execs_per_sec(),
            arm.events_per_sec(),
        );
    }
    println!(
        "  total: {} runs, {:.1} execs/s",
        report.total_runs(),
        report.total_execs_per_sec()
    );
    if let Err(e) = std::fs::write(&opts.out, report.to_json()) {
        eprintln!("campaign: cannot write {}: {e}", opts.out);
        return ExitCode::FAILURE;
    }
    println!("  wrote {}", opts.out);
    ExitCode::SUCCESS
}

fn run_analyze(cfg: &CampaignConfig, opts: &AnalyzeOpts) -> ExitCode {
    let analyze_cfg = nodefz_campaign::AnalyzeConfig {
        apps: cfg.apps.clone(),
        env_seed: cfg.base_seed,
        attempts: opts.attempts,
        races_out: Some(opts.races_out.clone().into()),
        corpus_dir: cfg.corpus_dir.clone(),
        replay_checks: cfg.replay_checks,
    };
    println!(
        "analyze: {} apps at env seed {}, {} directed attempts per flip",
        analyze_cfg.apps.len(),
        analyze_cfg.env_seed,
        analyze_cfg.attempts,
    );
    let report = match nodefz_campaign::analyze_campaign(&analyze_cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("campaign: {e}");
            return ExitCode::FAILURE;
        }
    };
    for analysis in &report.analyses {
        println!(
            "  {:<4} {} events, {} accesses, {} predicted pair(s)",
            analysis.app,
            analysis.events,
            analysis.accesses,
            analysis.races.len(),
        );
        for race in &analysis.races {
            println!(
                "       {:<3} {:<20} {} x {} (cut {}, chain {})",
                race.class.label(),
                race.site,
                race.a.kind,
                race.b.kind,
                race.cut,
                race.chain_cut,
            );
        }
    }
    for c in &report.confirmed {
        println!(
            "  confirmed {:<4} {:<3} {:<20} in {} directed exec(s)",
            c.app, c.class, c.site, c.execs,
        );
    }
    for (app, error) in &report.failed {
        println!("  FAILED {app}: {error}");
    }
    println!(
        "analyze: {} predicted, {} confirmed, {} failed; wrote {}",
        report.analyses.iter().map(|a| a.races.len()).sum::<usize>(),
        report.confirmed.len(),
        report.failed.len(),
        opts.races_out,
    );
    if report.failed.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (mut cfg, alt) = match parse_args(&args) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    if alt.list {
        for case in nodefz_apps::registry() {
            let info = case.info();
            println!("{:<4} {:<16} {}", info.abbr, info.name, info.bug_ref);
        }
        let conform = nodefz_conform::bug_case().info();
        println!(
            "{:<4} {:<16} {}",
            conform.abbr, "conformance arm", conform.bug_ref
        );
        return ExitCode::SUCCESS;
    }
    if let Some(dir) = alt.verify {
        return verify_corpus(&dir);
    }
    if cfg.apps.is_empty() {
        cfg.apps = default_apps();
    }
    if alt.conform && !cfg.apps.iter().any(|a| a.eq_ignore_ascii_case("CONFORM")) {
        cfg.apps.push("CONFORM".into());
    }
    if let Some(opts) = &alt.bench {
        return run_bench(&cfg, opts);
    }
    if let Some(opts) = &alt.analyze {
        return run_analyze(&cfg, opts);
    }

    println!(
        "campaign: {} runs over {} apps on {} threads{}",
        cfg.budget,
        cfg.apps.len(),
        cfg.threads,
        cfg.corpus_dir
            .as_ref()
            .map(|d| format!(", corpus {}", d.display()))
            .unwrap_or_default(),
    );
    let outcome = run_with_progress(&cfg, |event| {
        if let Event::Run { completed, budget } = event {
            // Sample run ticks so a large budget does not flood the console.
            let step = (budget / 20).max(1);
            if completed % step == 0 || completed == budget {
                println!("  {completed}/{budget} runs");
            }
            return;
        }
        if let Some(line) = report::render_event(event) {
            println!("{line}");
        }
    });
    match outcome {
        Ok(report_data) => {
            print!("{}", report::render_summary(&report_data));
            if let Some(path) = &cfg.metrics_out {
                println!("wrote metrics {}", path.display());
            }
            if let Some(path) = &cfg.trace_out {
                println!("wrote trace {}", path.display());
            }
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("campaign: {message}");
            ExitCode::FAILURE
        }
    }
}
