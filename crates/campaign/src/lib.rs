//! # nodefz-campaign — parallel fuzzing-campaign orchestration
//!
//! The paper runs each bug's test case hundreds of times under `nodeFZ`
//! and counts manifestations (§5.1). This crate turns that loop into a
//! campaign: worker threads fan seeds across (app, parameterization) arms,
//! a bandit shifts budget toward the arms that keep yielding new bugs,
//! manifestations are deduplicated by failure signature, each new bug's
//! decision trace is minimized by delta debugging, and the minimized repro
//! is persisted to a text corpus whose entries replay deterministically.
//!
//! ```text
//! seeds ──► driver (N threads) ──► dedup ──► shrink ──► corpus
//!              ▲                                           │
//!              └───── bandit budget reallocation ◄─────────┘
//! ```
//!
//! See [`run`] / [`run_with_progress`] for the entry points and the
//! `campaign` binary for the command-line front end.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod arms;
pub mod bandit;
pub mod bench;
pub mod config;
pub mod corpus;
pub mod dedup;
pub mod metrics;
pub mod prune;
pub mod report;
pub mod shrink;

mod driver;

pub use analyze::{analyze_campaign, AnalyzeConfig, AnalyzeReport, ConfirmedRace};
pub use arms::{arm_space, arms_from_json, arms_to_json, ArmMode, ArmSpec};
pub use bench::{
    measure, read_summary, ArmThroughput, BenchArmSummary, BenchConfig, BenchSummary, CanonWindow,
    PrunedWindow, SnapshotBench, ThroughputReport,
};
pub use config::{
    preset_index, preset_name, preset_params, CampaignConfig, DIRECTED_PRESET, PRESETS,
};
pub use corpus::{Corpus, CorpusDecodeError, CorpusEntry};
pub use dedup::{BugRecord, Deduper, Finding};
pub use driver::{
    resolve_case, run, run_with_progress, verify_entry, BugSummary, CampaignReport, Event,
    FuzzExec, RunContext,
};
pub use metrics::{ArmMetrics, Discovery, MetricsSnapshot, PhaseMetrics};
pub use prune::{
    env_scope, ClassVerdict, ForkExplorer, PruneCounters, PruneHealth, Pruner, ScheduleTrie,
};
pub use shrink::{shrink, ShrinkResult};
