//! Campaign telemetry: registry layout, worker-side recording, and the
//! `nodefz-metrics-v1` snapshot document.
//!
//! The controller owns a [`nodefz_obs::Registry`] with one shard per
//! worker thread. Workers record into their private shard after every
//! fuzz execution (a handful of relaxed atomic adds — no locks, no
//! allocation), and the controller folds the shards into a point-in-time
//! [`MetricsSnapshot`] whenever it writes `--metrics-out`. Controller-side
//! series — the bandit's per-arm state, per-arm schedule diversity, and
//! the bug-discovery curve — ride along in the same document, so a single
//! JSON file answers the paper's evaluation questions (Fig. 6's discovery
//! behavior, Fig. 7's diversity, §5.4's where-does-the-time-go) for a live
//! campaign.
//!
//! Loop-phase timings and per-kind dispatch counts only exist in builds
//! with the `obs` feature; without it the registry still carries the
//! campaign-level counters and the document's `phases`/`callbacks` arrays
//! are empty.

use std::sync::Arc;
use std::time::Duration;

use nodefz_obs::{
    CounterId, HistogramId, HistogramSnapshot, JsonWriter, ObsLevel, Registry, RegistryBuilder,
    RegistrySnapshot, ShardHandle,
};
use nodefz_trace::{DiversitySummary, PAPER_TRUNCATION};

use crate::bandit::ArmSnapshot;
use crate::prune::{PruneCounters, PruneHealth};

/// Upper bounds for the per-run dispatched-callback histogram. Bug runs
/// dispatch hundreds to a few thousand callbacks; the overflow bucket
/// catches pathological schedules.
const DISPATCH_BOUNDS: [u64; 8] = [64, 128, 256, 512, 1024, 2048, 4096, 8192];

/// Identifiers of every metric the campaign registers, shared by the
/// controller and all worker shards.
pub(crate) struct MetricIds {
    /// Fuzz executions completed.
    runs: CounterId,
    /// Executions whose oracle tripped (pre-dedup manifestations).
    manifested: CounterId,
    /// Callbacks dispatched across all executions.
    dispatched: CounterId,
    /// Per-run dispatched-callback distribution.
    run_dispatched: HistogramId,
    /// Per-phase (entries, vtime_ns, wall_ns) counters, by `Phase::index()`.
    #[cfg(feature = "obs")]
    phases: Vec<[CounterId; 3]>,
    /// Per-kind dispatch counters, by `CbKind::index()`.
    #[cfg(feature = "obs")]
    kinds: Vec<CounterId>,
}

/// Builds the campaign's frozen metric layout with `shards` worker shards.
pub(crate) fn build_registry(shards: usize) -> (Registry, Arc<MetricIds>) {
    let mut b = RegistryBuilder::new();
    let ids = MetricIds {
        runs: b.counter("campaign.runs"),
        manifested: b.counter("campaign.manifested"),
        dispatched: b.counter("campaign.dispatched"),
        run_dispatched: b.histogram("run.dispatched", &DISPATCH_BOUNDS),
        #[cfg(feature = "obs")]
        phases: nodefz_rt::Phase::all()
            .iter()
            .map(|p| {
                [
                    b.counter(&format!("phase.{}.entries", p.label())),
                    b.counter(&format!("phase.{}.vtime_ns", p.label())),
                    b.counter(&format!("phase.{}.wall_ns", p.label())),
                ]
            })
            .collect(),
        #[cfg(feature = "obs")]
        kinds: nodefz_rt::CbKind::all()
            .iter()
            .map(|k| b.counter(&format!("callback.{}", k.label())))
            .collect(),
    };
    (b.build(shards), Arc::new(ids))
}

/// A worker's telemetry kit: its registry shard plus, in instrumented
/// builds above [`ObsLevel::Off`], a loop-observability handle the worker
/// attaches to every run and flushes into the shard afterwards.
///
/// Constructed *on* the worker thread — the loop handle is `Rc`-based and
/// must not cross threads; only the shard handle and ids travel.
pub(crate) struct WorkerTelemetry {
    shard: ShardHandle,
    ids: Arc<MetricIds>,
    #[cfg(feature = "obs")]
    obs: Option<nodefz_rt::ObsHandle>,
}

impl WorkerTelemetry {
    pub(crate) fn new(shard: ShardHandle, ids: Arc<MetricIds>, level: ObsLevel) -> WorkerTelemetry {
        #[cfg(not(feature = "obs"))]
        let _ = level;
        WorkerTelemetry {
            shard,
            ids,
            #[cfg(feature = "obs")]
            obs: (!level.is_off()).then(nodefz_rt::ObsHandle::new),
        }
    }

    /// The loop handle to attach to runs, when profiling is on.
    #[cfg(feature = "obs")]
    pub(crate) fn obs(&self) -> Option<&nodefz_rt::ObsHandle> {
        self.obs.as_ref()
    }

    /// Records one finished fuzz execution, folding any loop profile the
    /// run accumulated into the shard and resetting it for the next run.
    pub(crate) fn record_exec(&self, dispatched: u64, manifested: bool) {
        self.shard.inc(self.ids.runs);
        self.shard.add(self.ids.dispatched, dispatched);
        self.shard.observe(self.ids.run_dispatched, dispatched);
        if manifested {
            self.shard.inc(self.ids.manifested);
        }
        #[cfg(feature = "obs")]
        if let Some(obs) = &self.obs {
            for (profile, ids) in obs.phase_profiles().iter().zip(&self.ids.phases) {
                self.shard.add(ids[0], profile.entries);
                self.shard.add(ids[1], profile.vtime.as_nanos());
                self.shard.add(ids[2], profile.wall_ns);
            }
            for ((_, count), id) in obs.kind_counts().into_iter().zip(&self.ids.kinds) {
                self.shard.add(*id, count);
            }
            obs.reset();
        }
    }
}

/// One bandit arm's telemetry row.
#[derive(Clone, Debug)]
pub struct ArmMetrics {
    /// Bug abbreviation.
    pub app: String,
    /// Preset name.
    pub preset: &'static str,
    /// Runs spent on the arm.
    pub pulls: u64,
    /// Recent-yield EMA.
    pub mean_reward: f64,
    /// The allocator's current UCB score (`None` while unpulled).
    pub ucb_bound: Option<f64>,
    /// Schedule diversity over this arm's sampled runs, truncated at the
    /// paper's 20 K-callback mark (`None` until a schedule is sampled).
    pub diversity: Option<DiversitySummary>,
}

/// One point on the bug-discovery curve: when a signature was first seen.
#[derive(Clone, Debug)]
pub struct Discovery {
    /// The deduplicated signature, rendered.
    pub signature: String,
    /// Bug abbreviation.
    pub app: String,
    /// Normalized failure site.
    pub site: String,
    /// Completed-execution index at first sighting (strictly increasing
    /// across the curve: at most one signature is discovered per run).
    pub first_exec: u64,
    /// Wall-clock milliseconds from campaign start at first sighting.
    pub first_ms: u64,
}

/// Aggregated loop-phase timing, one row per phase.
#[derive(Clone, Debug)]
pub struct PhaseMetrics {
    /// Phase label (`timers`, `poll`, `demux`, …).
    pub phase: &'static str,
    /// Times the phase ran.
    pub entries: u64,
    /// Virtual time spent in the phase, nanoseconds.
    pub vtime_ns: u64,
    /// Wall-clock time spent in the phase, nanoseconds.
    pub wall_ns: u64,
}

/// A point-in-time campaign telemetry snapshot; serializes to the
/// `nodefz-metrics-v1` JSON document.
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    /// Wall-clock time since campaign start.
    pub elapsed: Duration,
    /// Total run budget.
    pub budget: u64,
    /// Fuzz executions completed.
    pub runs: u64,
    /// Callbacks dispatched across all executions.
    pub dispatched: u64,
    /// Executions whose oracle tripped (before dedup).
    pub manifested: u64,
    /// Distinct bug signatures found so far.
    pub unique_bugs: u64,
    /// Whether this is the campaign's final snapshot.
    pub finished: bool,
    /// Per-arm bandit state and diversity.
    pub arms: Vec<ArmMetrics>,
    /// The bug-discovery curve, in first-seen order.
    pub discovery: Vec<Discovery>,
    /// Loop-phase timings (empty without the `obs` build or above-`off`
    /// level).
    pub phases: Vec<PhaseMetrics>,
    /// Per-kind dispatch counts (same availability as `phases`).
    pub callbacks: Vec<(&'static str, u64)>,
    /// Per-run dispatched-callback distribution.
    pub run_dispatched: Option<HistogramSnapshot>,
    /// Schedule-space pruning counters (`None` unless the campaign ran
    /// with pruning on). Additive to the `nodefz-metrics-v1` schema:
    /// existing readers that ignore unknown fields keep working.
    pub pruning: Option<PruneCounters>,
    /// Seen-set LRU health riding along with the counters (same
    /// availability; additive fields inside the `pruning` block).
    pub prune_health: Option<PruneHealth>,
    /// Static-analysis precision counters (`None` unless the campaign
    /// ran the static analyzer). Additive, like `pruning`.
    pub sa: Option<nodefz_sa::SaMetrics>,
    /// API-surface coverage of the conform-api arms (`None` unless the
    /// campaign pulled a `CONFORM-API` arm). The full `nodefz-apicov-v1`
    /// document embeds under the `apicov` key — additive, like `sa`.
    pub apicov: Option<nodefz_conform::ApiCovSnapshot>,
}

impl MetricsSnapshot {
    /// Executions per second so far.
    pub fn execs_per_sec(&self) -> f64 {
        self.runs as f64 / self.elapsed.as_secs_f64().max(f64::EPSILON)
    }

    /// Serializes the snapshot as the `nodefz-metrics-v1` document.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("schema", "nodefz-metrics-v1");
        w.field_u64("elapsed_ms", self.elapsed.as_millis() as u64);
        w.field_u64("budget", self.budget);
        w.field_u64("runs", self.runs);
        w.field_u64("dispatched", self.dispatched);
        w.field_u64("manifested", self.manifested);
        w.field_u64("unique_bugs", self.unique_bugs);
        w.field_f64("execs_per_sec", self.execs_per_sec(), 1);
        w.field_bool("finished", self.finished);

        w.key("arms");
        w.begin_array();
        for arm in &self.arms {
            w.begin_object();
            w.field_str("app", &arm.app);
            w.field_str("preset", arm.preset);
            w.field_u64("pulls", arm.pulls);
            w.field_f64("mean_reward", arm.mean_reward, 6);
            w.key("ucb_bound");
            match arm.ucb_bound {
                Some(b) => w.f64(b, 6),
                None => w.null(),
            }
            w.key("diversity");
            match &arm.diversity {
                Some(d) => {
                    w.begin_object();
                    w.field_u64("runs", d.runs as u64);
                    w.field_f64("mean_pairwise_ld", d.mean_pairwise_ld, 6);
                    w.field_f64("min_pairwise_ld", d.min_pairwise_ld, 6);
                    w.field_f64("max_pairwise_ld", d.max_pairwise_ld, 6);
                    w.field_u64("distinct", d.distinct as u64);
                    w.field_f64("mean_len", d.mean_len, 1);
                    w.field_f64("kind_entropy", d.kind_entropy, 6);
                    w.field_u64("truncation", PAPER_TRUNCATION as u64);
                    w.end_object();
                }
                None => w.null(),
            }
            w.end_object();
        }
        w.end_array();

        w.key("discovery");
        w.begin_array();
        for d in &self.discovery {
            w.begin_object();
            w.field_str("signature", &d.signature);
            w.field_str("app", &d.app);
            w.field_str("site", &d.site);
            w.field_u64("first_exec", d.first_exec);
            w.field_u64("first_ms", d.first_ms);
            w.end_object();
        }
        w.end_array();

        w.key("phases");
        w.begin_array();
        for p in &self.phases {
            w.begin_object();
            w.field_str("phase", p.phase);
            w.field_u64("entries", p.entries);
            w.field_u64("vtime_ns", p.vtime_ns);
            w.field_u64("wall_ns", p.wall_ns);
            w.end_object();
        }
        w.end_array();

        w.key("callbacks");
        w.begin_array();
        for (kind, count) in &self.callbacks {
            w.begin_object();
            w.field_str("kind", kind);
            w.field_u64("count", *count);
            w.end_object();
        }
        w.end_array();

        w.key("run_dispatched");
        match &self.run_dispatched {
            Some(h) => {
                w.begin_object();
                w.key("bounds");
                w.begin_array();
                for b in &h.bounds {
                    w.u64(*b);
                }
                w.end_array();
                w.key("buckets");
                w.begin_array();
                for b in &h.buckets {
                    w.u64(*b);
                }
                w.end_array();
                w.field_u64("count", h.count);
                w.field_u64("sum", h.sum);
                w.field_f64("mean", h.mean(), 1);
                w.end_object();
            }
            None => w.null(),
        }

        if let Some(p) = &self.pruning {
            w.key("pruning");
            w.begin_object();
            w.field_u64("runs", p.runs);
            w.field_u64("distinct", p.distinct);
            w.field_u64("redundant", p.redundant);
            w.field_u64("skipped", p.skipped);
            w.field_u64("forked", p.forked);
            w.field_u64("prefix_hits", p.prefix_hits);
            w.field_u64("snapshot_forks", p.snapshot_forks);
            w.field_u64("mismatches", p.mismatches);
            if let Some(h) = &self.prune_health {
                w.field_u64("seen_occupancy", h.seen_occupancy);
                w.field_u64("seen_evictions", h.seen_evictions);
                w.field_u64("seen_hits", h.seen_hits);
            }
            w.field_f64("redundancy_ratio", p.redundancy_ratio(), 6);
            w.end_object();
        }

        if let Some(sa) = &self.sa {
            w.key("sa");
            w.begin_object();
            w.field_u64("models", sa.models);
            w.field_u64("candidates", sa.candidates);
            w.field_u64("av", sa.av);
            w.field_u64("ov", sa.ov);
            w.field_u64("cov", sa.cov);
            w.field_u64("confirmed", sa.confirmed);
            w.field_u64("confirmed_av", sa.confirmed_av);
            w.field_u64("confirmed_ov", sa.confirmed_ov);
            w.field_u64("confirmed_cov", sa.confirmed_cov);
            w.end_object();
        }

        if let Some(cov) = &self.apicov {
            w.key("apicov");
            w.raw(&cov.to_json());
        }
        w.end_object();
        let mut out = w.finish();
        out.push('\n');
        out
    }
}

/// Assembles a [`MetricsSnapshot`] from the controller's state and a
/// registry scrape. `schedules_of` supplies the sampled [`TypeSchedule`]s
/// of one arm for the diversity summary (empty slice = not sampled yet).
///
/// [`TypeSchedule`]: nodefz_rt::TypeSchedule
#[allow(clippy::too_many_arguments)]
pub(crate) fn collect(
    elapsed: Duration,
    budget: u64,
    unique_bugs: u64,
    finished: bool,
    arms: &[ArmSnapshot],
    schedules_of: impl Fn(&str, usize) -> Vec<nodefz_rt::TypeSchedule>,
    discovery: &[Discovery],
    registry: &RegistrySnapshot,
    pruning: Option<&PruneCounters>,
    prune_health: Option<PruneHealth>,
) -> MetricsSnapshot {
    let arms = arms
        .iter()
        .map(|a| {
            let samples = schedules_of(&a.arm.app, a.arm.preset);
            ArmMetrics {
                app: a.arm.app.clone(),
                preset: crate::config::preset_name(a.arm.preset),
                pulls: a.pulls,
                mean_reward: a.mean_reward,
                ucb_bound: a.ucb_bound,
                diversity: (!samples.is_empty())
                    .then(|| DiversitySummary::compute(&samples, PAPER_TRUNCATION)),
            }
        })
        .collect();
    MetricsSnapshot {
        elapsed,
        budget,
        runs: registry.counter("campaign.runs").unwrap_or(0),
        dispatched: registry.counter("campaign.dispatched").unwrap_or(0),
        manifested: registry.counter("campaign.manifested").unwrap_or(0),
        unique_bugs,
        finished,
        arms,
        discovery: discovery.to_vec(),
        phases: collect_phases(registry),
        callbacks: collect_callbacks(registry),
        run_dispatched: registry.histogram("run.dispatched").cloned(),
        pruning: pruning.copied(),
        prune_health,
        sa: None,
        apicov: None,
    }
}

#[cfg(feature = "obs")]
fn collect_phases(registry: &RegistrySnapshot) -> Vec<PhaseMetrics> {
    nodefz_rt::Phase::all()
        .iter()
        .map(|p| PhaseMetrics {
            phase: p.label(),
            entries: registry
                .counter(&format!("phase.{}.entries", p.label()))
                .unwrap_or(0),
            vtime_ns: registry
                .counter(&format!("phase.{}.vtime_ns", p.label()))
                .unwrap_or(0),
            wall_ns: registry
                .counter(&format!("phase.{}.wall_ns", p.label()))
                .unwrap_or(0),
        })
        .collect()
}

#[cfg(not(feature = "obs"))]
fn collect_phases(_registry: &RegistrySnapshot) -> Vec<PhaseMetrics> {
    Vec::new()
}

#[cfg(feature = "obs")]
fn collect_callbacks(registry: &RegistrySnapshot) -> Vec<(&'static str, u64)> {
    nodefz_rt::CbKind::all()
        .iter()
        .map(|k| {
            (
                k.label(),
                registry
                    .counter(&format!("callback.{}", k.label()))
                    .unwrap_or(0),
            )
        })
        .collect()
}

#[cfg(not(feature = "obs"))]
fn collect_callbacks(_registry: &RegistrySnapshot) -> Vec<(&'static str, u64)> {
    Vec::new()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bandit::Arm;

    fn arm_snap(app: &str, pulls: u64) -> ArmSnapshot {
        ArmSnapshot {
            arm: Arm {
                app: app.into(),
                preset: 0,
            },
            pulls,
            mean_reward: 0.25,
            ucb_bound: (pulls > 0).then_some(0.75),
        }
    }

    fn schedule(kinds: &[nodefz_rt::CbKind]) -> nodefz_rt::TypeSchedule {
        let mut s = nodefz_rt::TypeSchedule::new();
        for &k in kinds {
            s.push(k);
        }
        s
    }

    #[test]
    fn diversity_uses_the_papers_truncation_mark() {
        // Fig. 7's metric truncates schedules at the first 20 K callbacks;
        // the snapshot must pin that constant, not invent its own.
        assert_eq!(PAPER_TRUNCATION, 20_000);
        let (reg, _) = build_registry(1);
        let snap = collect(
            Duration::from_millis(100),
            10,
            0,
            false,
            &[arm_snap("KUE", 2)],
            |_, _| {
                vec![
                    schedule(&[nodefz_rt::CbKind::Timer, nodefz_rt::CbKind::Check]),
                    schedule(&[nodefz_rt::CbKind::Check, nodefz_rt::CbKind::Timer]),
                ]
            },
            &[],
            &reg.snapshot(),
            None,
            None,
        );
        let div = snap.arms[0].diversity.as_ref().expect("sampled arm");
        assert_eq!(div.runs, 2);
        assert!(div.mean_pairwise_ld > 0.0);
        let json = snap.to_json();
        assert!(
            json.contains("\"truncation\": 20000"),
            "document must carry the truncation mark: {json}"
        );
    }

    #[test]
    fn unsampled_arms_serialize_null_diversity_and_bounds() {
        let (reg, _) = build_registry(1);
        let snap = collect(
            Duration::from_millis(50),
            10,
            0,
            false,
            &[arm_snap("KUE", 0)],
            |_, _| Vec::new(),
            &[],
            &reg.snapshot(),
            None,
            None,
        );
        assert!(snap.arms[0].diversity.is_none());
        let json = snap.to_json();
        assert!(json.contains("\"diversity\": null"), "{json}");
        assert!(json.contains("\"ucb_bound\": null"), "{json}");
    }

    #[test]
    fn worker_recording_lands_in_the_document() {
        let (reg, ids) = build_registry(2);
        let w0 = WorkerTelemetry::new(reg.shard(0), ids.clone(), ObsLevel::Off);
        let w1 = WorkerTelemetry::new(reg.shard(1), ids, ObsLevel::Off);
        w0.record_exec(100, false);
        w0.record_exec(300, true);
        w1.record_exec(700, false);
        let snap = collect(
            Duration::from_secs(1),
            10,
            1,
            true,
            &[],
            |_, _| Vec::new(),
            &[],
            &reg.snapshot(),
            None,
            None,
        );
        assert_eq!(snap.runs, 3);
        assert_eq!(snap.dispatched, 1100);
        assert_eq!(snap.manifested, 1);
        let hist = snap.run_dispatched.as_ref().expect("histogram registered");
        assert_eq!(hist.count, 3);
        assert_eq!(hist.sum, 1100);
        let json = snap.to_json();
        assert!(json.contains("\"schema\": \"nodefz-metrics-v1\""));
        assert!(json.contains("\"finished\": true"));
    }

    #[test]
    fn discovery_curve_is_monotone_in_the_document_order() {
        let discovery = [
            Discovery {
                signature: "KUE:site-a".into(),
                app: "KUE".into(),
                site: "site-a".into(),
                first_exec: 3,
                first_ms: 12,
            },
            Discovery {
                signature: "MKD:site-b".into(),
                app: "MKD".into(),
                site: "site-b".into(),
                first_exec: 17,
                first_ms: 48,
            },
        ];
        let (reg, _) = build_registry(1);
        let snap = collect(
            Duration::from_secs(1),
            20,
            2,
            true,
            &[],
            |_, _| Vec::new(),
            &discovery,
            &reg.snapshot(),
            None,
            None,
        );
        assert!(
            snap.discovery
                .windows(2)
                .all(|w| { w[0].first_exec < w[1].first_exec && w[0].first_ms <= w[1].first_ms }),
            "discovery curve must be monotone: {:?}",
            snap.discovery
        );
        assert!(snap.to_json().contains("\"first_exec\": 17"));
    }
}
