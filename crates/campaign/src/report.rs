//! Plain-text rendering of campaign progress and results.

use crate::driver::{CampaignReport, Event};

/// Renders a live progress line for an [`Event`], or `None` for events the
/// console should not echo (per-run ticks are sampled by the caller).
pub fn render_event(event: &Event) -> Option<String> {
    match event {
        Event::Run { .. } => None,
        Event::NewBug {
            signature,
            env_seed,
        } => Some(format!(
            "  + new bug {signature} \"{}\" (env seed {env_seed})",
            signature.site
        )),
        Event::Shrunk {
            signature,
            from,
            to,
            replays_ok,
        } => Some(format!(
            "  ~ shrunk {signature}: {from} -> {to} decisions, {replays_ok} replays re-manifest"
        )),
        Event::DeadlineHit => Some("  ! deadline hit, draining".into()),
    }
}

/// Renders the final multi-line summary.
pub fn render_summary(report: &CampaignReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "campaign: {} runs in {:.2}s ({:.1} runs/s){}\n",
        report.runs,
        report.elapsed.as_secs_f64(),
        report.runs as f64 / report.elapsed.as_secs_f64().max(1e-9),
        if report.hit_deadline {
            ", cut by deadline"
        } else {
            ""
        },
    ));
    out.push_str(&format!("unique bugs: {}\n", report.unique_bugs()));
    for bug in &report.bugs {
        out.push_str(&format!(
            "  {:<4} x{:<4} trace {:>4} -> {:<4} replays {:>2}  \"{}\"\n",
            bug.app, bug.hits, bug.original_len, bug.shrunk_len, bug.replays_ok, bug.site
        ));
    }
    out.push_str("arms (pulls, recent yield):\n");
    for (app, preset, pulls, ema) in &report.arms {
        out.push_str(&format!("  {app:<4} {preset:<10} {pulls:>5}  {ema:.3}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::BugSummary;
    use std::time::Duration;

    #[test]
    fn summary_names_every_bug_and_arm() {
        let report = CampaignReport {
            runs: 100,
            elapsed: Duration::from_secs(2),
            bugs: vec![BugSummary {
                app: "KUE".into(),
                site: "lost # jobs".into(),
                hits: 9,
                first_seed: 4,
                original_len: 120,
                shrunk_len: 3,
                replays_ok: 10,
            }],
            arms: vec![("KUE".into(), "standard", 60, 0.4)],
            hit_deadline: false,
        };
        let text = render_summary(&report);
        assert!(text.contains("unique bugs: 1"));
        assert!(text.contains("KUE"));
        assert!(text.contains("120"));
        assert!(text.contains("lost # jobs"));
        assert!(text.contains("standard"));
    }

    #[test]
    fn run_ticks_are_not_echoed() {
        assert!(render_event(&Event::Run {
            completed: 1,
            budget: 10
        })
        .is_none());
        assert!(render_event(&Event::DeadlineHit).is_some());
    }
}
