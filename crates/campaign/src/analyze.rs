//! The `campaign --analyze` pipeline: predict, then confirm.
//!
//! Where a fuzzing campaign spends hundreds of runs per app waiting for
//! an oracle to trip, this pipeline spends *one* recorded vanilla-posture
//! run per app on the `nodefz-hb` happens-before analysis, then a handful
//! of race-directed runs confirming each predicted pair:
//!
//! ```text
//! per app: record (nodeNFZ posture) ─► hb analysis ─► predicted races
//!              │                                          │
//!              └────────── prefix + cut ──► DirectedSpec ─┘
//!                                               │
//!                       directed attempts ─► confirmed BugSignature
//!                                               │
//!                nodefz-races-v1 report    deduped corpus repros
//! ```
//!
//! A confirming directed run was recorded, so its decision trace replays
//! like any fuzz-found repro — confirmed races land in the same corpus
//! format, deduplicated by the same [`BugSignature`]s.

use std::path::PathBuf;

use nodefz::DirectedSpec;
use nodefz_apps::common::Variant;
use nodefz_hb::{analyze_app, AppAnalysis, RaceClass, RaceInfo};
use nodefz_sa::{Candidate, MhpIndex, SaMetrics};
use nodefz_trace::BugSignature;

use crate::config::DIRECTED_PRESET;
use crate::corpus::Corpus;
use crate::dedup::{Deduper, Finding};
use crate::driver::{record_to_entry, replays_to, RunContext};

/// How many predicted flips per app the pipelines keep (first pair per
/// distinct (site, class), a few flip points each). Bounds the directed
/// budget on apps whose analysis predicts many overlapping pairs.
const MAX_SPECS_PER_APP: usize = 12;

/// Flip points tried per predicted race, deepest chain ancestor first.
const MAX_FLIPS_PER_RACE: usize = 4;

/// Everything `campaign --analyze` needs.
#[derive(Clone, Debug)]
pub struct AnalyzeConfig {
    /// Bug abbreviations to analyze.
    pub apps: Vec<String>,
    /// Environment seed of the recorded run each analysis consumes.
    pub env_seed: u64,
    /// Directed confirmation attempts per predicted race (0 = predict
    /// only).
    pub attempts: u64,
    /// Where to write the `nodefz-races-v1` report (`None` = in-memory
    /// only).
    pub races_out: Option<PathBuf>,
    /// Directory to persist confirmed repros into (`None` = in-memory
    /// only).
    pub corpus_dir: Option<PathBuf>,
    /// Acceptance replays per confirmed repro.
    pub replay_checks: u32,
    /// Rank predicted races by static-candidate priority before spending
    /// directed executions (apps without a static model keep the
    /// happens-before order). On by default; `--unranked` turns it off
    /// for A/B comparison.
    pub ranked: bool,
}

impl Default for AnalyzeConfig {
    fn default() -> AnalyzeConfig {
        AnalyzeConfig {
            apps: Vec::new(),
            env_seed: 11,
            attempts: 24,
            races_out: None,
            corpus_dir: None,
            replay_checks: 3,
            ranked: true,
        }
    }
}

/// One predicted race that a directed run re-manifested.
#[derive(Clone, Debug)]
pub struct ConfirmedRace {
    /// Bug abbreviation.
    pub app: String,
    /// Predicted shared site.
    pub site: String,
    /// Predicted §3.2 class label ("AV", "OV", "COV").
    pub class: &'static str,
    /// The replay-prefix cut the directed scheduler flipped at.
    pub cut: u64,
    /// Directed executions spent until the race manifested (1-based).
    pub execs: u64,
    /// The manifestation's dedup signature.
    pub signature: BugSignature,
}

/// What [`analyze_campaign`] reports.
#[derive(Debug)]
pub struct AnalyzeReport {
    /// Per-app happens-before analyses, in input order.
    pub analyses: Vec<AppAnalysis>,
    /// Predicted races a directed run confirmed, deduplicated by
    /// signature.
    pub confirmed: Vec<ConfirmedRace>,
    /// The rendered `nodefz-races-v1` document.
    pub races_json: String,
    /// Apps whose analysis failed, with the error rendered (`--analyze`
    /// keeps going; a corrupt recording should not sink the batch).
    pub failed: Vec<(String, String)>,
    /// Directed executions spent across every race chased — the
    /// denominator of the ranked-vs-unranked comparison.
    pub directed_execs: u64,
    /// Static-analysis precision counters over the analyzed apps'
    /// models.
    pub sa: SaMetrics,
}

/// Deduplicates an analysis' races down to the directed work list: the
/// first predicted pair per distinct (site, class), each paired with the
/// [`DirectedSpec`]s chasing it — one flip per schedulable ancestor on
/// the earlier event's causal chain ([`RaceInfo::flip_cuts`]), deepest
/// ancestor first. Deferring the chain's *root* shifts the whole chain
/// in virtual time, which is what actually inverts the order; flipping
/// right at the racing access is usually too late, because its side
/// effects are already in flight through environment hops.
fn spec_worklist(analysis: &AppAnalysis) -> Vec<(RaceInfo, Vec<DirectedSpec>)> {
    let mut seen: Vec<(&str, &'static str)> = Vec::new();
    let mut out: Vec<(RaceInfo, Vec<DirectedSpec>)> = Vec::new();
    let mut total = 0;
    for race in &analysis.races {
        if total >= MAX_SPECS_PER_APP {
            break;
        }
        let key = (race.site.as_str(), race.class.label());
        if seen.contains(&key) {
            continue;
        }
        seen.push(key);
        let cuts = race.ladder(MAX_FLIPS_PER_RACE.min(MAX_SPECS_PER_APP - total));
        total += cuts.len();
        let specs = cuts
            .into_iter()
            .map(|cut| DirectedSpec::new(analysis.trace.clone(), cut))
            .collect();
        out.push((race.clone(), specs));
    }
    out
}

/// The analyzed app's static race candidates (buggy variant): `None`
/// when the app carries no declarative model (CONFORM, non-fig6 cases).
fn static_candidates(app: &str) -> Option<Vec<Candidate>> {
    let case = crate::driver::resolve_case(app)?;
    let model = case.static_model(Variant::Buggy)?;
    let idx = MhpIndex::build(&model);
    Some(nodefz_sa::candidates(&model, &idx))
}

/// Priority weight of one dynamic prediction under the static
/// candidates: sites the analyzer flags as AV-capable come first (an
/// atomicity region to split is the easiest flip to confirm), then
/// plain ordering violations, then commutative ones, then sites the
/// analyzer never predicted at all.
fn static_weight(cands: &[Candidate], race: &RaceInfo) -> u8 {
    cands
        .iter()
        .filter(|c| c.site == race.site)
        .map(|c| {
            if c.covers(RaceClass::Av) {
                0
            } else if c.covers(RaceClass::Ov) {
                1
            } else {
                2
            }
        })
        .min()
        .unwrap_or(3)
}

/// Reorders predicted races by static priority. The sort is stable, so
/// within one weight tier the happens-before prediction order (site,
/// earlier event first) is preserved — ranking only ever *promotes*
/// statically hot sites, it never scrambles ties.
fn rank_races(races: &mut [RaceInfo], cands: &[Candidate]) {
    races.sort_by_key(|r| static_weight(cands, r));
}

/// The directed-arm work list for one app: analysis failures and empty
/// predictions both yield no specs (the campaign driver then skips the
/// arm). Races are statically ranked when the app has a model, matching
/// the default `--analyze` behavior.
pub(crate) fn directed_specs(app: &str, env_seed: u64) -> Vec<DirectedSpec> {
    let Some(case) = crate::driver::resolve_case(app) else {
        return Vec::new();
    };
    match analyze_app(case.as_ref(), env_seed) {
        Ok(mut analysis) => {
            if let Some(cands) = static_candidates(app) {
                rank_races(&mut analysis.races, &cands);
            }
            spec_worklist(&analysis)
                .into_iter()
                .flat_map(|(_, specs)| specs)
                .collect()
        }
        Err(_) => Vec::new(),
    }
}

/// Runs the predict-then-confirm pipeline over `cfg.apps`.
///
/// # Errors
///
/// Fails on an unknown app, an invalid configuration, or a corpus/report
/// I/O error. Per-app *analysis* errors are collected in
/// [`AnalyzeReport::failed`] instead.
pub fn analyze_campaign(cfg: &AnalyzeConfig) -> Result<AnalyzeReport, String> {
    if cfg.apps.is_empty() {
        return Err("at least one app must be analyzed".into());
    }
    for app in &cfg.apps {
        if crate::driver::resolve_case(app).is_none() {
            return Err(format!(
                "unknown app '{app}' (known: {}, plus CONFORM and CONFORM-API)",
                nodefz_apps::abbrs().join(", ")
            ));
        }
    }
    let corpus = match &cfg.corpus_dir {
        Some(dir) => Some(Corpus::open(dir).map_err(|e| format!("corpus: {e}"))?),
        None => None,
    };

    let mut analyses = Vec::new();
    let mut failed = Vec::new();
    let mut deduper = Deduper::new();
    let mut confirmed = Vec::new();
    let mut ctx = RunContext::new();
    let mut directed_execs = 0u64;
    let mut sa = SaMetrics::default();
    for app in &cfg.apps {
        let case = crate::driver::resolve_case(app).expect("validated above");
        let mut analysis = match analyze_app(case.as_ref(), cfg.env_seed) {
            Ok(a) => a,
            Err(e) => {
                failed.push((app.clone(), e.to_string()));
                continue;
            }
        };
        let cands = static_candidates(app);
        if let Some(cands) = &cands {
            sa.models += 1;
            sa.candidates += cands.len() as u64;
            for c in cands {
                sa.av += u64::from(c.covers(RaceClass::Av));
                sa.ov += u64::from(c.covers(RaceClass::Ov));
                sa.cov += u64::from(c.covers(RaceClass::Cov));
            }
            if cfg.ranked {
                rank_races(&mut analysis.races, cands);
            }
        }
        for (race, specs) in spec_worklist(&analysis) {
            let mut execs = 0;
            'race: for spec in specs {
                for attempt in 0..cfg.attempts {
                    execs += 1;
                    directed_execs += 1;
                    let exec =
                        ctx.fuzz_directed(app, spec.clone().with_attempt(attempt), cfg.env_seed);
                    let Some(finding) = exec.finding else {
                        continue;
                    };
                    let signature = finding.signature.clone();
                    if deduper.insert(Finding {
                        preset: DIRECTED_PRESET,
                        ..finding
                    }) {
                        if let Some(cands) = &cands {
                            if cands
                                .iter()
                                .any(|c| c.site == race.site && c.covers(race.class))
                            {
                                sa.confirmed += 1;
                                match race.class {
                                    RaceClass::Av => sa.confirmed_av += 1,
                                    RaceClass::Ov => sa.confirmed_ov += 1,
                                    RaceClass::Cov => sa.confirmed_cov += 1,
                                }
                            }
                        }
                        confirmed.push(ConfirmedRace {
                            app: app.clone(),
                            site: race.site.clone(),
                            class: race.class.label(),
                            cut: spec.cut,
                            execs,
                            signature,
                        });
                    }
                    break 'race;
                }
            }
        }
        analyses.push(analysis);
    }

    if let Some(corpus) = &corpus {
        for record in deduper.records() {
            let mut entry = record_to_entry(record);
            entry.replays_ok = (0..cfg.replay_checks)
                .filter(|_| {
                    replays_to(
                        &entry.app,
                        entry.env_seed,
                        &entry.trace,
                        &record.first.signature,
                    )
                })
                .count() as u32;
            corpus.save(&entry).map_err(|e| format!("corpus: {e}"))?;
        }
    }

    let races_json = nodefz_hb::races_report(&analyses);
    if let Some(path) = &cfg.races_out {
        std::fs::write(path, &races_json)
            .map_err(|e| format!("races: cannot write {}: {e}", path.display()))?;
    }
    Ok(AnalyzeReport {
        analyses,
        confirmed,
        races_json,
        failed,
        directed_execs,
        sa,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicts_and_confirms_a_planted_race() {
        let cfg = AnalyzeConfig {
            apps: vec!["GHO".into()],
            ..AnalyzeConfig::default()
        };
        let report = analyze_campaign(&cfg).expect("pipeline runs");
        assert!(report.failed.is_empty(), "{:?}", report.failed);
        assert_eq!(report.analyses.len(), 1);
        assert!(report.analyses[0]
            .races
            .iter()
            .any(|r| r.site == "gho:user-row"));
        assert!(
            report
                .confirmed
                .iter()
                .any(|c| c.app == "GHO" && c.site == "gho:user-row"),
            "confirmed: {:?}",
            report.confirmed
        );
        assert!(report.races_json.contains("nodefz-races-v1"));
    }

    #[test]
    fn unknown_app_is_rejected_up_front() {
        let cfg = AnalyzeConfig {
            apps: vec!["NOPE".into()],
            ..AnalyzeConfig::default()
        };
        assert!(analyze_campaign(&cfg).unwrap_err().contains("NOPE"));
    }

    #[test]
    fn directed_specs_are_empty_for_unknown_apps() {
        assert!(directed_specs("NOPE", 1).is_empty());
    }

    #[test]
    fn attempts_zero_predicts_without_confirming() {
        let cfg = AnalyzeConfig {
            apps: vec!["MGS".into()],
            attempts: 0,
            ..AnalyzeConfig::default()
        };
        let report = analyze_campaign(&cfg).expect("pipeline runs");
        assert!(!report.analyses[0].races.is_empty());
        assert!(report.confirmed.is_empty());
    }
}
