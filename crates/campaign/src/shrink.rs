//! Trace minimization by delta debugging.
//!
//! A recorded manifesting run carries hundreds of scheduling decisions, of
//! which only a handful actually order the racing callbacks. The shrinker
//! applies ddmin-style delta debugging to the [`DecisionTrace`]: it removes
//! chunks of decisions and re-runs the workload under the replayer, keeping
//! any candidate that still manifests the *same* bug signature. A second
//! pass rewrites each surviving decision to its inert form (run / identity
//! / no-defer / head) where the bug survives that too, so the persisted
//! repro shows exactly which perturbations matter.
//!
//! Removing decisions makes the replay diverge from its recording — the
//! replayer's documented fallback (inert choices past the end or on kind
//! mismatch) is what makes such candidates runnable at all. The oracle
//! judges only "does the same bug still manifest".

use nodefz::{Decision, DecisionTrace};

/// Outcome of a shrink.
#[derive(Clone, Debug)]
pub struct ShrinkResult {
    /// The minimized trace (never longer than the input).
    pub trace: DecisionTrace,
    /// Decisions in the original trace.
    pub original_len: usize,
    /// Oracle invocations spent.
    pub runs: u64,
}

/// Minimizes `trace` with respect to `manifests`: the oracle must return
/// `true` iff replaying the candidate still manifests the original bug
/// (same signature).
///
/// The input trace is assumed to manifest; the result is the shortest
/// manifesting candidate found, with each surviving decision additionally
/// simplified to its inert form where possible.
pub fn shrink<F>(trace: &DecisionTrace, mut manifests: F) -> ShrinkResult
where
    F: FnMut(&DecisionTrace) -> bool,
{
    let original_len = trace.decisions.len();
    let mut runs = 0u64;
    let mut current = trace.clone();

    // Phase 1: ddmin — remove ever-smaller chunks while the bug survives.
    let mut chunk = current.decisions.len().div_ceil(2).max(1);
    while chunk >= 1 && !current.decisions.is_empty() {
        let mut start = 0;
        let mut removed_any = false;
        while start < current.decisions.len() {
            let end = (start + chunk).min(current.decisions.len());
            let mut candidate = current.clone();
            candidate.decisions.drain(start..end);
            runs += 1;
            if manifests(&candidate) {
                current = candidate;
                removed_any = true;
                // Same start now addresses the next chunk.
            } else {
                start = end;
            }
        }
        if chunk == 1 && !removed_any {
            break;
        }
        if !removed_any {
            chunk /= 2;
        }
    }

    // Phase 2: simplify surviving decisions to their inert forms.
    for i in 0..current.decisions.len() {
        let inert = match &current.decisions[i] {
            Decision::Timer(Some(_)) => Some(Decision::Timer(None)),
            Decision::Shuffle(perm) if !is_identity(perm) => {
                Some(Decision::Shuffle((0..perm.len() as u32).collect()))
            }
            Decision::DeferReady(true) => Some(Decision::DeferReady(false)),
            Decision::DeferClose(true) => Some(Decision::DeferClose(false)),
            Decision::PickTask(p) if *p != 0 => Some(Decision::PickTask(0)),
            _ => None,
        };
        if let Some(inert) = inert {
            let mut candidate = current.clone();
            candidate.decisions[i] = inert;
            runs += 1;
            if manifests(&candidate) {
                current = candidate;
            }
        }
    }

    ShrinkResult {
        trace: current,
        original_len,
        runs,
    }
}

fn is_identity(perm: &[u32]) -> bool {
    perm.iter().enumerate().all(|(i, &p)| i as u32 == p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodefz_rt::PoolMode;

    fn trace(decisions: Vec<Decision>) -> DecisionTrace {
        DecisionTrace {
            pool_mode: PoolMode::Concurrent { workers: 4 },
            demux_done: false,
            decisions,
        }
    }

    /// Oracle: manifests iff the trace still defers at least one timer and
    /// still defers a close — two "load-bearing" decisions buried in noise.
    fn needs_defers(t: &DecisionTrace) -> bool {
        t.decisions
            .iter()
            .any(|d| matches!(d, Decision::Timer(Some(_))))
            && t.decisions
                .iter()
                .any(|d| matches!(d, Decision::DeferClose(true)))
    }

    #[test]
    fn noise_is_removed_and_essentials_survive() {
        let mut decisions = vec![Decision::Timer(None); 40];
        decisions.insert(13, Decision::Timer(Some(5_000_000)));
        decisions.insert(29, Decision::DeferClose(true));
        for i in (0..40).step_by(7) {
            decisions.insert(i, Decision::PickTask(2));
        }
        let original = trace(decisions);
        assert!(needs_defers(&original));
        let result = shrink(&original, needs_defers);
        assert!(needs_defers(&result.trace), "shrunk trace still manifests");
        assert_eq!(
            result.trace.decisions.len(),
            2,
            "{:?}",
            result.trace.decisions
        );
        assert_eq!(result.original_len, original.decisions.len());
        assert!(result.runs > 0);
    }

    #[test]
    fn output_is_never_longer_than_input() {
        let original = trace(vec![Decision::DeferClose(true), Decision::Timer(Some(1))]);
        let result = shrink(&original, needs_defers);
        assert!(result.trace.decisions.len() <= original.decisions.len());
    }

    #[test]
    fn simplification_rewrites_irrelevant_decisions_inert() {
        // Oracle only needs the trace non-empty: every decision should be
        // rewritten to (or already be) its inert form, and ddmin will first
        // cut it down to a single decision.
        let original = trace(vec![
            Decision::Shuffle(vec![2, 0, 1].into()),
            Decision::PickTask(3),
            Decision::Timer(Some(9)),
        ]);
        let result = shrink(&original, |t| !t.decisions.is_empty());
        assert_eq!(result.trace.decisions.len(), 1);
        let only = &result.trace.decisions[0];
        let inert = match only {
            Decision::Timer(v) => v.is_none(),
            Decision::Shuffle(p) => is_identity(p),
            Decision::DeferReady(b) | Decision::DeferClose(b) => !b,
            Decision::PickTask(p) => *p == 0,
        };
        assert!(inert, "surviving decision should be inert: {only:?}");
    }

    #[test]
    fn unshrinkable_trace_comes_back_unchanged() {
        let original = trace(vec![Decision::Timer(Some(1)), Decision::DeferClose(true)]);
        let result = shrink(&original, needs_defers);
        assert_eq!(result.trace, original);
    }
}
