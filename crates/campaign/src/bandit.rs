//! Budget allocation across (app, preset) arms.
//!
//! A campaign does not know in advance which application / parameterization
//! pairs will keep yielding bugs, so it treats allocation as a multi-armed
//! bandit: each arm's *recent* yield (new unique bugs per run) is tracked
//! with an exponential moving average, and arms are chosen by an upper
//! confidence bound so unexplored arms still get pulled. Everything is
//! deterministic — ties break by arm order — so a campaign with a fixed
//! seed schedule is reproducible.

/// One (app, preset) pair the campaign can spend runs on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Arm {
    /// Bug abbreviation ("KUE", …).
    pub app: String,
    /// Index into [`crate::config::PRESETS`].
    pub preset: usize,
}

#[derive(Clone, Debug)]
struct ArmState {
    arm: Arm,
    pulls: u64,
    /// EMA of reward (1.0 = new unique bug, 0.0 = nothing new).
    yield_ema: f64,
}

/// Deterministic UCB/EMA budget allocator.
#[derive(Debug)]
pub struct Bandit {
    arms: Vec<ArmState>,
    total_pulls: u64,
    /// EMA decay: weight of the newest observation.
    alpha: f64,
    /// Exploration strength.
    c: f64,
}

impl Bandit {
    /// Creates an allocator over `arms` with standard exploration settings.
    pub fn new(arms: Vec<Arm>) -> Bandit {
        assert!(!arms.is_empty(), "bandit needs at least one arm");
        Bandit {
            arms: arms
                .into_iter()
                .map(|arm| ArmState {
                    arm,
                    pulls: 0,
                    // Optimistic start: every arm looks promising until
                    // evidence says otherwise.
                    yield_ema: 1.0,
                })
                .collect(),
            total_pulls: 0,
            alpha: 0.2,
            c: 0.5,
        }
    }

    /// Number of arms.
    pub fn arm_count(&self) -> usize {
        self.arms.len()
    }

    /// Picks the next arm to spend a run on and counts the pull.
    pub fn pick(&mut self) -> Arm {
        self.total_pulls += 1;
        let t = self.total_pulls as f64;
        let (best, _) = self
            .arms
            .iter()
            .enumerate()
            .map(|(i, a)| {
                let score = if a.pulls == 0 {
                    // Unpulled arms go first, in order.
                    f64::INFINITY
                } else {
                    a.yield_ema + self.c * (t.ln() / a.pulls as f64).sqrt()
                };
                (i, score)
            })
            // max_by on (index, score): later arms win ties only if strictly
            // better, so ties break toward the earlier arm.
            .max_by(|(_, x), (_, y)| x.partial_cmp(y).expect("scores are not NaN"))
            .expect("at least one arm");
        self.arms[best].pulls += 1;
        self.arms[best].arm.clone()
    }

    /// Reports the outcome of a run on `arm`: `new_bugs` is how many
    /// previously unseen signatures that run surfaced.
    pub fn reward(&mut self, arm: &Arm, new_bugs: u64) {
        let observed = if new_bugs > 0 { 1.0 } else { 0.0 };
        if let Some(a) = self.arms.iter_mut().find(|a| &a.arm == arm) {
            a.yield_ema = (1.0 - self.alpha) * a.yield_ema + self.alpha * observed;
        }
    }

    /// (arm, pulls, recent-yield EMA) for every arm, for the final report.
    pub fn summary(&self) -> Vec<(Arm, u64, f64)> {
        self.arms
            .iter()
            .map(|a| (a.arm.clone(), a.pulls, a.yield_ema))
            .collect()
    }

    /// The allocator's full decision state, for telemetry snapshots.
    ///
    /// `ucb_bound` is exactly the score [`Bandit::pick`] would rank the arm
    /// by right now (`None` for a never-pulled arm, whose score is
    /// effectively infinite), so a snapshot explains the allocator's next
    /// choice, not just its history.
    pub fn snapshot(&self) -> Vec<ArmSnapshot> {
        let t = self.total_pulls as f64;
        self.arms
            .iter()
            .map(|a| ArmSnapshot {
                arm: a.arm.clone(),
                pulls: a.pulls,
                mean_reward: a.yield_ema,
                ucb_bound: (a.pulls > 0)
                    .then(|| a.yield_ema + self.c * (t.max(1.0).ln() / a.pulls as f64).sqrt()),
            })
            .collect()
    }
}

/// Point-in-time state of one bandit arm, as exposed by
/// [`Bandit::snapshot`].
#[derive(Clone, Debug)]
pub struct ArmSnapshot {
    /// The (app, preset) pair.
    pub arm: Arm,
    /// Runs spent on this arm so far.
    pub pulls: u64,
    /// Recent-yield EMA (1.0 = every recent run found a new bug).
    pub mean_reward: f64,
    /// The UCB score the next [`Bandit::pick`] would rank this arm by;
    /// `None` while the arm is unpulled (its score is infinite).
    pub ucb_bound: Option<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arms(n: usize) -> Vec<Arm> {
        (0..n)
            .map(|i| Arm {
                app: format!("A{i}"),
                preset: 0,
            })
            .collect()
    }

    #[test]
    fn every_arm_is_tried_before_any_repeats() {
        let mut b = Bandit::new(arms(4));
        let mut seen = std::collections::HashSet::new();
        for _ in 0..4 {
            assert!(seen.insert(b.pick().app));
        }
    }

    #[test]
    fn budget_shifts_toward_the_yielding_arm() {
        let mut b = Bandit::new(arms(3));
        let mut pulls = [0u64; 3];
        for _ in 0..300 {
            let arm = b.pick();
            let i: usize = arm.app[1..].parse().unwrap();
            pulls[i] += 1;
            // Arm A1 keeps yielding; the others never do.
            b.reward(&arm, u64::from(i == 1));
        }
        assert!(
            pulls[1] > pulls[0] + pulls[2],
            "yielding arm should dominate: {pulls:?}"
        );
        assert!(pulls[0] > 0 && pulls[2] > 0, "exploration never stops");
    }

    #[test]
    fn dry_arms_decay_and_recover() {
        let mut b = Bandit::new(arms(1));
        let arm = b.pick();
        for _ in 0..50 {
            b.reward(&arm, 0);
        }
        let dry = b.summary()[0].2;
        assert!(dry < 0.01, "long-dry arm decays, got {dry}");
        b.reward(&arm, 3);
        assert!(b.summary()[0].2 > dry, "a hit recovers the EMA");
    }

    #[test]
    fn snapshot_mirrors_the_pick_scores() {
        let mut b = Bandit::new(arms(2));
        let snap = b.snapshot();
        assert!(
            snap.iter().all(|a| a.pulls == 0 && a.ucb_bound.is_none()),
            "unpulled arms have no finite bound"
        );
        for i in 0..10 {
            let arm = b.pick();
            b.reward(&arm, u64::from(i % 3 == 0));
        }
        let snap = b.snapshot();
        assert_eq!(snap.iter().map(|a| a.pulls).sum::<u64>(), 10);
        for (state, snap) in b.summary().iter().zip(&snap) {
            assert_eq!(state.1, snap.pulls);
            assert_eq!(state.2, snap.mean_reward);
            let bound = snap.ucb_bound.expect("pulled arm has a bound");
            let expected = state.2 + 0.5 * ((10.0f64).ln() / state.1 as f64).sqrt();
            assert!((bound - expected).abs() < 1e-12, "{bound} vs {expected}");
            assert!(bound >= snap.mean_reward, "exploration bonus is additive");
        }
    }

    #[test]
    fn picks_are_deterministic() {
        let run = || {
            let mut b = Bandit::new(arms(3));
            (0..40)
                .map(|i| {
                    let arm = b.pick();
                    b.reward(&arm, u64::from(i % 7 == 0));
                    arm.app
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
