//! The orchestrator-facing arm space: (app, preset, mode) triples.
//!
//! A single campaign process schedules (app, preset) bandit arms
//! internally; the *orchestrator* schedules whole worker processes, and
//! its unit of allocation is one (app, preset, mode) triple:
//!
//! * `fuzz` — one real preset of one studied app,
//! * `directed` — the app's race-directed arm (happens-before analysis
//!   feeding replay-then-flip runs; no fuzz preset),
//! * `conform` — the generative conformance arm under a real preset.
//!
//! `campaign --list --json` prints this enumeration as the
//! `nodefz-arms-v1` document so an orchestrator — possibly driving a
//! different build of the binary — consumes a machine-readable contract
//! instead of scraping human output.

use nodefz_obs::JsonWriter;

use crate::config::PRESETS;

/// How a worker process runs one arm.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArmMode {
    /// Schedule fuzzing of a studied app under one preset.
    Fuzz,
    /// Race-directed runs fed by happens-before analysis.
    Directed,
    /// Generated conformance programs judged by the ordering oracle.
    Conform,
}

impl ArmMode {
    /// The document spelling of the mode.
    pub fn label(&self) -> &'static str {
        match self {
            ArmMode::Fuzz => "fuzz",
            ArmMode::Directed => "directed",
            ArmMode::Conform => "conform",
        }
    }

    /// Parses the document spelling.
    pub fn parse(s: &str) -> Option<ArmMode> {
        match s {
            "fuzz" => Some(ArmMode::Fuzz),
            "directed" => Some(ArmMode::Directed),
            "conform" => Some(ArmMode::Conform),
            _ => None,
        }
    }
}

/// One orchestrator-schedulable arm.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArmSpec {
    /// Bug abbreviation (or `CONFORM`).
    pub app: String,
    /// Preset name, or `directed` for the directed arm.
    pub preset: String,
    /// How a worker runs this arm.
    pub mode: ArmMode,
}

impl ArmSpec {
    /// A stable human-readable arm label (`KUE/standard/fuzz`).
    pub fn label(&self) -> String {
        format!("{}/{}/{}", self.app, self.preset, self.mode.label())
    }
}

/// Enumerates the full arm space over `apps`: every real preset of every
/// app (mode `fuzz`, or `conform` for the CONFORM / CONFORM-API
/// pseudo-apps) plus one `directed` arm per studied app.
pub fn arm_space(apps: &[String]) -> Vec<ArmSpec> {
    let mut arms = Vec::new();
    for app in apps {
        let conform = app.eq_ignore_ascii_case(nodefz_conform::ABBR)
            || app.eq_ignore_ascii_case(nodefz_conform::API_ABBR);
        for preset in PRESETS {
            arms.push(ArmSpec {
                app: app.clone(),
                preset: preset.to_string(),
                mode: if conform {
                    ArmMode::Conform
                } else {
                    ArmMode::Fuzz
                },
            });
        }
        if !conform {
            arms.push(ArmSpec {
                app: app.clone(),
                preset: "directed".to_string(),
                mode: ArmMode::Directed,
            });
        }
    }
    arms
}

/// Serializes an arm enumeration as the `nodefz-arms-v1` document.
pub fn arms_to_json(arms: &[ArmSpec]) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("schema", "nodefz-arms-v1");
    w.key("arms");
    w.begin_array();
    for arm in arms {
        w.begin_object();
        w.field_str("app", &arm.app);
        w.field_str("preset", &arm.preset);
        w.field_str("mode", arm.mode.label());
        w.end_object();
    }
    w.end_array();
    w.end_object();
    let mut out = w.finish();
    out.push('\n');
    out
}

/// Parses a `nodefz-arms-v1` document back into arm specs.
///
/// # Errors
///
/// Describes the first malformed part.
pub fn arms_from_json(text: &str) -> Result<Vec<ArmSpec>, String> {
    let doc = nodefz_obs::JsonValue::parse(text).map_err(|e| format!("arms document: {e}"))?;
    nodefz_obs::expect_schema(&doc, "nodefz-arms-v1").map_err(|e| format!("arms document: {e}"))?;
    let arms = doc
        .get("arms")
        .and_then(|a| a.as_array())
        .ok_or("arms document: missing arms array")?;
    arms.iter()
        .map(|arm| {
            let field = |key: &str| {
                arm.get(key)
                    .and_then(|v| v.as_str())
                    .ok_or_else(|| format!("arms document: arm missing '{key}'"))
            };
            Ok(ArmSpec {
                app: field("app")?.to_string(),
                preset: field("preset")?.to_string(),
                mode: ArmMode::parse(field("mode")?)
                    .ok_or_else(|| format!("arms document: unknown mode in {arm:?}"))?,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arm_space_covers_every_preset_mode_combination() {
        let apps = vec![
            "KUE".to_string(),
            "CONFORM".to_string(),
            "CONFORM-API".to_string(),
        ];
        let arms = arm_space(&apps);
        // KUE: 3 fuzz + 1 directed; CONFORM and CONFORM-API: 3 conform each.
        assert_eq!(arms.len(), PRESETS.len() + 1 + 2 * PRESETS.len());
        let labels: Vec<String> = arms.iter().map(ArmSpec::label).collect();
        assert!(
            labels.contains(&"KUE/standard/fuzz".to_string()),
            "{labels:?}"
        );
        assert!(labels.contains(&"KUE/directed/directed".to_string()));
        assert!(labels.contains(&"CONFORM/guided/conform".to_string()));
        assert!(labels.contains(&"CONFORM-API/guided/conform".to_string()));
        assert!(
            !labels.contains(&"CONFORM/directed/directed".to_string())
                && !labels.contains(&"CONFORM-API/directed/directed".to_string()),
            "the conform pseudo-apps have no directed arm"
        );
    }

    #[test]
    fn json_round_trips() {
        let arms = arm_space(&["GHO".to_string(), "CONFORM".to_string()]);
        let json = arms_to_json(&arms);
        assert!(json.contains("\"schema\": \"nodefz-arms-v1\""));
        assert_eq!(arms_from_json(&json).unwrap(), arms);
    }

    #[test]
    fn malformed_documents_are_named() {
        assert!(arms_from_json("{}").unwrap_err().contains("schema"));
        assert!(arms_from_json("not json")
            .unwrap_err()
            .contains("arms document"));
        let wrong_mode =
            r#"{"schema": "nodefz-arms-v1", "arms": [{"app": "A", "preset": "p", "mode": "x"}]}"#;
        assert!(arms_from_json(wrong_mode).unwrap_err().contains("mode"));
    }

    #[test]
    fn modes_round_trip_their_labels() {
        for mode in [ArmMode::Fuzz, ArmMode::Directed, ArmMode::Conform] {
            assert_eq!(ArmMode::parse(mode.label()), Some(mode));
        }
        assert_eq!(ArmMode::parse("replay"), None);
    }
}
