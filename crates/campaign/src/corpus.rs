//! The persisted repro corpus.
//!
//! Every deduplicated, minimized bug is written to disk as a self-contained
//! text document so the finding survives the campaign process: the header
//! pins the application, variant, and environment seed; the body embeds the
//! minimized decision trace in the `nodefz-trace v1` format. Loading an
//! entry and replaying it under [`nodefz::ReplayScheduler`] re-manifests
//! the bug deterministically — the regression path.
//!
//! ```text
//! nodefz-repro v1
//! app KUE
//! env_seed 12345
//! site lost # of # jobs
//! kinds 1042
//! hits 17
//! replays_ok 10
//! --- trace
//! nodefz-trace v1
//! …
//! end
//! ```
//!
//! Blank lines and `#` comments are allowed anywhere above the trace
//! marker; the trace body follows its own grammar.

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

use nodefz::{decode_trace, encode_trace, DecisionTrace, TraceDecodeError};
use nodefz_trace::BugSignature;

/// One corpus entry: a minimized, replayable repro.
#[derive(Clone, Debug, PartialEq)]
pub struct CorpusEntry {
    /// Bug abbreviation ("KUE", …).
    pub app: String,
    /// Environment seed the trace was recorded under (replay needs it).
    pub env_seed: u64,
    /// Normalized failure site.
    pub site: String,
    /// Callback-kind fingerprint of the manifesting run.
    pub kinds: u32,
    /// Manifestations observed during the campaign.
    pub hits: u64,
    /// Acceptance replays that re-manifested the bug.
    pub replays_ok: u32,
    /// The minimized decision trace.
    pub trace: DecisionTrace,
}

/// Why a corpus document failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CorpusDecodeError {
    /// The document does not start with the `nodefz-repro v1` header.
    MissingHeader,
    /// The header names a repro version this build does not understand.
    UnsupportedVersion(String),
    /// A required header field is missing or malformed.
    BadField(String),
    /// The `--- trace` marker never appeared.
    MissingTrace,
    /// The embedded trace failed to decode.
    BadTrace(TraceDecodeError),
}

impl fmt::Display for CorpusDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusDecodeError::MissingHeader => write!(f, "missing 'nodefz-repro v1' header"),
            CorpusDecodeError::UnsupportedVersion(header) => {
                write!(f, "unsupported repro version '{header}' (expected v1)")
            }
            CorpusDecodeError::BadField(field) => write!(f, "bad or missing field: {field}"),
            CorpusDecodeError::MissingTrace => write!(f, "missing '--- trace' section"),
            CorpusDecodeError::BadTrace(e) => write!(f, "embedded trace: {e}"),
        }
    }
}

impl std::error::Error for CorpusDecodeError {}

impl CorpusEntry {
    /// The signature this entry deduplicates under.
    pub fn signature(&self) -> BugSignature {
        BugSignature {
            app: self.app.clone(),
            site: self.site.clone(),
            kinds: self.kinds,
        }
    }

    /// The file name this entry persists under (stable per signature).
    pub fn file_name(&self) -> String {
        format!(
            "{}-{:016x}.repro",
            self.app.to_ascii_lowercase(),
            self.signature().digest()
        )
    }

    /// Encodes the entry as a `nodefz-repro v1` document.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        out.push_str("nodefz-repro v1\n");
        out.push_str(&format!("app {}\n", self.app));
        out.push_str(&format!("env_seed {}\n", self.env_seed));
        out.push_str(&format!("site {}\n", self.site));
        out.push_str(&format!("kinds {}\n", self.kinds));
        out.push_str(&format!("hits {}\n", self.hits));
        out.push_str(&format!("replays_ok {}\n", self.replays_ok));
        out.push_str("--- trace\n");
        out.push_str(&encode_trace(&self.trace));
        out
    }

    /// Decodes a `nodefz-repro v1` document.
    ///
    /// # Errors
    ///
    /// Returns a [`CorpusDecodeError`] naming the offending part.
    pub fn decode(text: &str) -> Result<CorpusEntry, CorpusDecodeError> {
        let (header, trace_text) = match text.split_once("--- trace") {
            Some(parts) => parts,
            None => return Err(CorpusDecodeError::MissingTrace),
        };
        let mut lines = header
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'));
        match nodefz_obs::expect_header(lines.next().unwrap_or(""), "nodefz-repro v1") {
            Ok(()) => {}
            Err(nodefz_obs::SchemaError::Mismatch { found, .. }) => {
                return Err(CorpusDecodeError::UnsupportedVersion(found));
            }
            Err(nodefz_obs::SchemaError::Missing { .. }) => {
                return Err(CorpusDecodeError::MissingHeader);
            }
        }
        let mut app = None;
        let mut env_seed = None;
        let mut site = None;
        let mut kinds = None;
        let mut hits = 1u64;
        let mut replays_ok = 0u32;
        for line in lines {
            let bad = || CorpusDecodeError::BadField(line.to_string());
            let (key, value) = line.split_once(' ').ok_or_else(bad)?;
            match key {
                "app" => app = Some(value.trim().to_string()),
                "env_seed" => env_seed = Some(value.trim().parse().map_err(|_| bad())?),
                "site" => site = Some(value.trim().to_string()),
                "kinds" => kinds = Some(value.trim().parse().map_err(|_| bad())?),
                "hits" => hits = value.trim().parse().map_err(|_| bad())?,
                "replays_ok" => replays_ok = value.trim().parse().map_err(|_| bad())?,
                _ => return Err(bad()),
            }
        }
        let trace = decode_trace(trace_text).map_err(CorpusDecodeError::BadTrace)?;
        Ok(CorpusEntry {
            app: app.ok_or_else(|| CorpusDecodeError::BadField("app".into()))?,
            env_seed: env_seed.ok_or_else(|| CorpusDecodeError::BadField("env_seed".into()))?,
            site: site.ok_or_else(|| CorpusDecodeError::BadField("site".into()))?,
            kinds: kinds.ok_or_else(|| CorpusDecodeError::BadField("kinds".into()))?,
            hits,
            replays_ok,
            trace,
        })
    }
}

/// A directory of corpus entries.
#[derive(Clone, Debug)]
pub struct Corpus {
    dir: PathBuf,
}

impl Corpus {
    /// Opens (creating if needed) a corpus directory.
    ///
    /// # Errors
    ///
    /// Propagates the directory-creation failure.
    pub fn open(dir: &Path) -> io::Result<Corpus> {
        std::fs::create_dir_all(dir)?;
        Ok(Corpus {
            dir: dir.to_path_buf(),
        })
    }

    /// Persists one entry; returns the path written.
    ///
    /// The write is atomic (temp file + rename), so a corpus directory
    /// never contains a torn entry even if the writing process is killed
    /// mid-save — the orchestrator salvages corpora of reaped workers.
    ///
    /// # Errors
    ///
    /// Propagates the write failure.
    pub fn save(&self, entry: &CorpusEntry) -> io::Result<PathBuf> {
        let path = self.dir.join(entry.file_name());
        nodefz_obs::write_atomic(&path, &entry.encode())?;
        Ok(path)
    }

    /// Loads every `.repro` entry in the directory, sorted by file name.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or the first undecodable entry (named in the
    /// message).
    pub fn load_all(&self) -> io::Result<Vec<CorpusEntry>> {
        let mut paths: Vec<PathBuf> = std::fs::read_dir(&self.dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "repro"))
            .collect();
        paths.sort();
        let mut entries = Vec::with_capacity(paths.len());
        for path in paths {
            let text = std::fs::read_to_string(&path)?;
            let entry = CorpusEntry::decode(&text).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}: {e}", path.display()),
                )
            })?;
            entries.push(entry);
        }
        Ok(entries)
    }

    /// Loads every decodable `.repro` entry, skipping (and naming) the
    /// ones that do not parse — the salvage path for a corpus left behind
    /// by a crashed or reaped worker process.
    ///
    /// Returns the good entries (sorted by file name) and the skipped
    /// file names.
    ///
    /// # Errors
    ///
    /// Fails only on directory-level I/O errors; per-entry problems are
    /// reported in the skip list.
    pub fn load_salvage(&self) -> io::Result<(Vec<CorpusEntry>, Vec<String>)> {
        let mut paths: Vec<PathBuf> = std::fs::read_dir(&self.dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "repro"))
            .collect();
        paths.sort();
        let mut entries = Vec::with_capacity(paths.len());
        let mut skipped = Vec::new();
        for path in paths {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_else(|| path.display().to_string());
            match std::fs::read_to_string(&path) {
                Ok(text) => match CorpusEntry::decode(&text) {
                    Ok(entry) => entries.push(entry),
                    Err(_) => skipped.push(name),
                },
                Err(_) => skipped.push(name),
            }
        }
        Ok((entries, skipped))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodefz::Decision;
    use nodefz_rt::PoolMode;

    fn entry() -> CorpusEntry {
        CorpusEntry {
            app: "KUE".into(),
            env_seed: 42,
            site: "lost # of # jobs".into(),
            kinds: 0b1001,
            hits: 17,
            replays_ok: 10,
            trace: DecisionTrace {
                pool_mode: PoolMode::Concurrent { workers: 4 },
                demux_done: true,
                decisions: vec![Decision::Timer(Some(5)), Decision::DeferClose(true)],
            },
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let e = entry();
        assert_eq!(CorpusEntry::decode(&e.encode()).unwrap(), e);
    }

    #[test]
    fn file_name_is_stable_and_seed_independent() {
        let a = entry();
        let mut b = entry();
        b.env_seed = 9001;
        b.hits = 1;
        assert_eq!(a.file_name(), b.file_name());
        assert!(a.file_name().starts_with("kue-"), "{}", a.file_name());
    }

    #[test]
    fn malformed_documents_are_rejected_with_detail() {
        assert_eq!(
            CorpusEntry::decode("app KUE\n"),
            Err(CorpusDecodeError::MissingTrace)
        );
        assert_eq!(
            CorpusEntry::decode(
                "app KUE\n--- trace\nnodefz-trace v1\npool concurrent 1\ndemux 0\nend\n"
            ),
            Err(CorpusDecodeError::MissingHeader)
        );
        let no_app = "nodefz-repro v1\nenv_seed 1\nsite s\nkinds 0\n--- trace\nnodefz-trace v1\npool concurrent 1\ndemux 0\nend\n";
        assert_eq!(
            CorpusEntry::decode(no_app),
            Err(CorpusDecodeError::BadField("app".into()))
        );
        let bad_trace =
            "nodefz-repro v1\napp K\nenv_seed 1\nsite s\nkinds 0\n--- trace\nnot a trace\n";
        assert!(matches!(
            CorpusEntry::decode(bad_trace),
            Err(CorpusDecodeError::BadTrace(_))
        ));
    }

    #[test]
    fn salvage_skips_torn_entries_and_keeps_good_ones() {
        let dir = std::env::temp_dir().join(format!("nodefz-salvage-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let corpus = Corpus::open(&dir).unwrap();
        let e = entry();
        corpus.save(&e).unwrap();
        // A torn document, as a killed writer without atomic saves would
        // leave behind.
        std::fs::write(dir.join("zz-torn.repro"), "nodefz-repro v1\napp KUE\n").unwrap();
        // Strict loading fails on the torn entry; salvage recovers.
        assert!(corpus.load_all().is_err());
        let (entries, skipped) = corpus.load_salvage().unwrap();
        assert_eq!(entries, vec![e]);
        assert_eq!(skipped, vec!["zz-torn.repro".to_string()]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_and_load_through_a_directory() {
        let dir = std::env::temp_dir().join(format!("nodefz-corpus-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let corpus = Corpus::open(&dir).unwrap();
        let e = entry();
        let path = corpus.save(&e).unwrap();
        assert!(path.exists());
        let loaded = corpus.load_all().unwrap();
        assert_eq!(loaded, vec![e]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
