//! Campaign configuration.

use std::path::PathBuf;
use std::time::Duration;

use nodefz_obs::ObsLevel;

/// The fuzz parameterizations a campaign cycles through, by preset index.
///
/// Each (app, preset) pair is one bandit arm; the allocator shifts budget
/// toward the arms that keep yielding new bugs.
pub const PRESETS: [&str; 3] = ["standard", "aggressive", "guided"];

/// The virtual preset index of the race-directed arm (one past the real
/// presets): its runs replay a recorded prefix and force a predicted
/// race's flipped order instead of fuzzing from scratch.
pub const DIRECTED_PRESET: usize = PRESETS.len();

/// Resolves a preset index — real or the virtual directed one — to the
/// name used in reports.
pub fn preset_name(preset: usize) -> &'static str {
    PRESETS.get(preset).copied().unwrap_or("directed")
}

/// Resolves a preset name (as spelled on the CLI and in reports) to its
/// index in [`PRESETS`].
pub fn preset_index(name: &str) -> Option<usize> {
    PRESETS.iter().position(|p| p.eq_ignore_ascii_case(name))
}

/// Resolves a preset index to its [`nodefz::FuzzParams`].
pub fn preset_params(preset: usize) -> nodefz::FuzzParams {
    match preset % PRESETS.len() {
        0 => nodefz::FuzzParams::standard(),
        1 => nodefz::FuzzParams::aggressive(),
        _ => nodefz::FuzzParams::guided_accurate_timers(),
    }
}

/// Everything a campaign needs to run.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Worker threads running fuzz and shrink jobs.
    pub threads: usize,
    /// Total fuzz runs to spend across all arms.
    pub budget: u64,
    /// Bug abbreviations to target (Table 2 names, e.g. `["KUE", "MKD"]`).
    pub apps: Vec<String>,
    /// Which fuzz presets each app gets an arm for, as indices into
    /// [`PRESETS`] (default: all of them). An orchestrator scheduling
    /// (app, preset, mode) arms across worker processes restricts each
    /// worker to exactly one preset; an empty list is only valid together
    /// with [`CampaignConfig::directed`], yielding a directed-only
    /// campaign.
    pub presets: Vec<usize>,
    /// Wall-clock deadline; the campaign drains gracefully when it passes.
    pub deadline: Option<Duration>,
    /// Whether to delta-debug each new finding's decision trace.
    pub shrink: bool,
    /// How many replays must re-manifest a shrunk repro before it is
    /// accepted into the corpus.
    pub replay_checks: u32,
    /// Directory to persist minimized repros into (`None` = in-memory only).
    pub corpus_dir: Option<PathBuf>,
    /// Base environment seed; per-run seeds are derived deterministically.
    pub base_seed: u64,
    /// Whether to add a race-directed arm per app: a happens-before
    /// analysis of one recorded vanilla-posture run predicts racing
    /// callback pairs, and the arm's runs replay that run's prefix and
    /// force each predicted flip ([`DIRECTED_PRESET`]). Apps whose
    /// analysis predicts nothing get no directed arm.
    pub directed: bool,
    /// Where to write periodic `nodefz-metrics-v1` telemetry snapshots
    /// (`None` = no snapshots). Controller-side telemetry — arms,
    /// discovery curve, per-arm diversity — is collected whenever this is
    /// set; loop-phase timings additionally require the `obs` build and
    /// [`CampaignConfig::obs_level`] above [`ObsLevel::Off`].
    pub metrics_out: Option<PathBuf>,
    /// Where to write a chrome://tracing timeline of one dedicated
    /// instrumented run after the campaign drains (`None` = no trace).
    /// Requires a build with the `obs` feature.
    pub trace_out: Option<PathBuf>,
    /// Where to write the campaign flight-recorder journal
    /// (`nodefz-journal-v1` JSON lines: arm pulls with decision-time
    /// bandit state, prune verdicts, discoveries). `None` = no journal.
    pub journal_out: Option<PathBuf>,
    /// Runtime telemetry dial for worker runs. Above [`ObsLevel::Off`]
    /// the workers profile loop phases and per-kind dispatches into the
    /// metrics registry; requires a build with the `obs` feature.
    pub obs_level: ObsLevel,
    /// Whether to classify every run by its happens-before canonical key
    /// ([`crate::prune`]): the controller counts distinct vs redundant
    /// schedule classes, memoizes each class's outcome as an online
    /// soundness check, and reports the counters in metrics snapshots.
    /// Classification is pure accounting — the dispatched run stream is
    /// byte-for-byte identical with pruning on or off, so corpora match.
    pub prune: bool,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            threads: 4,
            budget: 400,
            apps: Vec::new(),
            presets: (0..PRESETS.len()).collect(),
            deadline: None,
            shrink: true,
            replay_checks: 10,
            corpus_dir: None,
            base_seed: 1,
            directed: false,
            metrics_out: None,
            trace_out: None,
            journal_out: None,
            obs_level: ObsLevel::Off,
            prune: false,
        }
    }
}

impl CampaignConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.threads == 0 {
            return Err("threads must be at least 1".into());
        }
        if self.budget == 0 {
            return Err("budget must be at least 1 run".into());
        }
        if self.apps.is_empty() {
            return Err("at least one app must be targeted".into());
        }
        if self.presets.is_empty() && !self.directed {
            return Err("presets may only be empty in a directed-only campaign".into());
        }
        for &preset in &self.presets {
            if preset >= PRESETS.len() {
                return Err(format!(
                    "preset index {preset} out of range (presets: {})",
                    PRESETS.join(", ")
                ));
            }
        }
        for app in &self.apps {
            if crate::driver::resolve_case(app).is_none() {
                return Err(format!(
                    "unknown app '{app}' (known: {}, plus CONFORM and CONFORM-API)",
                    nodefz_apps::abbrs().join(", ")
                ));
            }
        }
        if cfg!(not(feature = "obs")) {
            if self.trace_out.is_some() {
                return Err(
                    "--trace-out needs loop instrumentation, which this binary was built \
                     without (rebuild with --features nodefz-orchestrate/obs)"
                        .into(),
                );
            }
            if !self.obs_level.is_off() {
                return Err(format!(
                    "--obs-level {} needs loop instrumentation, which this binary was built \
                     without (rebuild with --features nodefz-orchestrate/obs)",
                    self.obs_level.label()
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_invalid_until_apps_are_set() {
        let mut cfg = CampaignConfig::default();
        assert!(cfg.validate().is_err());
        cfg.apps = vec!["KUE".into()];
        cfg.validate().unwrap();
    }

    #[test]
    fn unknown_app_is_named_in_the_error() {
        let cfg = CampaignConfig {
            apps: vec!["NOPE".into()],
            ..CampaignConfig::default()
        };
        let err = cfg.validate().unwrap_err();
        assert!(err.contains("NOPE"), "{err}");
    }

    #[test]
    fn telemetry_needing_instrumentation_is_rejected_in_a_bare_build() {
        let base = CampaignConfig {
            apps: vec!["KUE".into()],
            ..CampaignConfig::default()
        };
        let traced = CampaignConfig {
            trace_out: Some("trace.json".into()),
            ..base.clone()
        };
        let leveled = CampaignConfig {
            obs_level: ObsLevel::Counters,
            ..base.clone()
        };
        // Metrics snapshots never require the instrumented build.
        let metrics = CampaignConfig {
            metrics_out: Some("metrics.json".into()),
            ..base
        };
        metrics.validate().unwrap();
        if cfg!(feature = "obs") {
            traced.validate().unwrap();
            leveled.validate().unwrap();
        } else {
            assert!(traced.validate().unwrap_err().contains("--trace-out"));
            assert!(leveled.validate().unwrap_err().contains("--obs-level"));
        }
    }

    #[test]
    fn presets_resolve() {
        for i in 0..PRESETS.len() {
            preset_params(i).validate().unwrap();
        }
    }

    #[test]
    fn preset_restrictions_validate() {
        let base = CampaignConfig {
            apps: vec!["KUE".into()],
            ..CampaignConfig::default()
        };
        let one = CampaignConfig {
            presets: vec![1],
            ..base.clone()
        };
        one.validate().unwrap();
        let out_of_range = CampaignConfig {
            presets: vec![PRESETS.len()],
            ..base.clone()
        };
        assert!(out_of_range
            .validate()
            .unwrap_err()
            .contains("out of range"));
        let empty = CampaignConfig {
            presets: vec![],
            ..base.clone()
        };
        assert!(empty.validate().unwrap_err().contains("directed-only"));
        let directed_only = CampaignConfig {
            presets: vec![],
            directed: true,
            ..base
        };
        directed_only.validate().unwrap();
    }

    #[test]
    fn preset_names_resolve_to_indices() {
        for (i, name) in PRESETS.iter().enumerate() {
            assert_eq!(preset_index(name), Some(i));
            assert_eq!(preset_index(&name.to_uppercase()), Some(i));
        }
        assert_eq!(preset_index("directed"), None);
        assert_eq!(preset_index("nope"), None);
    }

    #[test]
    fn preset_names_cover_the_directed_arm() {
        assert_eq!(preset_name(0), "standard");
        assert_eq!(preset_name(PRESETS.len() - 1), "guided");
        assert_eq!(preset_name(DIRECTED_PRESET), "directed");
    }
}
