//! Campaign configuration.

use std::path::PathBuf;
use std::time::Duration;

/// The fuzz parameterizations a campaign cycles through, by preset index.
///
/// Each (app, preset) pair is one bandit arm; the allocator shifts budget
/// toward the arms that keep yielding new bugs.
pub const PRESETS: [&str; 3] = ["standard", "aggressive", "guided"];

/// Resolves a preset index to its [`nodefz::FuzzParams`].
pub fn preset_params(preset: usize) -> nodefz::FuzzParams {
    match preset % PRESETS.len() {
        0 => nodefz::FuzzParams::standard(),
        1 => nodefz::FuzzParams::aggressive(),
        _ => nodefz::FuzzParams::guided_accurate_timers(),
    }
}

/// Everything a campaign needs to run.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Worker threads running fuzz and shrink jobs.
    pub threads: usize,
    /// Total fuzz runs to spend across all arms.
    pub budget: u64,
    /// Bug abbreviations to target (Table 2 names, e.g. `["KUE", "MKD"]`).
    pub apps: Vec<String>,
    /// Wall-clock deadline; the campaign drains gracefully when it passes.
    pub deadline: Option<Duration>,
    /// Whether to delta-debug each new finding's decision trace.
    pub shrink: bool,
    /// How many replays must re-manifest a shrunk repro before it is
    /// accepted into the corpus.
    pub replay_checks: u32,
    /// Directory to persist minimized repros into (`None` = in-memory only).
    pub corpus_dir: Option<PathBuf>,
    /// Base environment seed; per-run seeds are derived deterministically.
    pub base_seed: u64,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            threads: 4,
            budget: 400,
            apps: Vec::new(),
            deadline: None,
            shrink: true,
            replay_checks: 10,
            corpus_dir: None,
            base_seed: 1,
        }
    }
}

impl CampaignConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.threads == 0 {
            return Err("threads must be at least 1".into());
        }
        if self.budget == 0 {
            return Err("budget must be at least 1 run".into());
        }
        if self.apps.is_empty() {
            return Err("at least one app must be targeted".into());
        }
        for app in &self.apps {
            if nodefz_apps::by_abbr(app).is_none() {
                return Err(format!(
                    "unknown app '{app}' (known: {})",
                    nodefz_apps::abbrs().join(", ")
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_invalid_until_apps_are_set() {
        let mut cfg = CampaignConfig::default();
        assert!(cfg.validate().is_err());
        cfg.apps = vec!["KUE".into()];
        cfg.validate().unwrap();
    }

    #[test]
    fn unknown_app_is_named_in_the_error() {
        let cfg = CampaignConfig {
            apps: vec!["NOPE".into()],
            ..CampaignConfig::default()
        };
        let err = cfg.validate().unwrap_err();
        assert!(err.contains("NOPE"), "{err}");
    }

    #[test]
    fn presets_resolve() {
        for i in 0..PRESETS.len() {
            preset_params(i).validate().unwrap();
        }
    }
}
