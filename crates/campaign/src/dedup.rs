//! Failure deduplication.
//!
//! A campaign of thousands of runs manifests the same race over and over;
//! the deduplicator collapses manifestations to one report per underlying
//! bug, keyed on [`BugSignature`] (app + normalized failure site + callback
//! kind fingerprint). Internally the table is keyed on the id-based
//! [`SigKey`] — signature strings are interned once per distinct bug, so a
//! repeat manifestation costs two hash lookups and no allocation.
//!
//! [`SigKey`]: nodefz_trace::SigKey

use std::collections::HashMap;

use nodefz::DecisionTrace;
use nodefz_trace::{BugSignature, SigKey, SiteInterner};

/// One manifestation of a failure, as produced by a fuzz run.
#[derive(Clone, Debug)]
pub struct Finding {
    /// The application the failure manifested in.
    pub app: String,
    /// Preset index the run used.
    pub preset: usize,
    /// Environment seed of the manifesting run.
    pub env_seed: u64,
    /// The oracle's raw evidence string.
    pub detail: String,
    /// The dedup key.
    pub signature: BugSignature,
    /// The recorded decision trace of the manifesting run.
    pub trace: DecisionTrace,
}

/// Aggregate record of one deduplicated bug.
#[derive(Clone, Debug)]
pub struct BugRecord {
    /// The first manifestation seen.
    pub first: Finding,
    /// Total manifestations observed (including the first).
    pub hits: u64,
    /// The minimized trace, once shrinking completes.
    pub shrunk: Option<DecisionTrace>,
    /// How many of the acceptance replays re-manifested the bug.
    pub replays_ok: u32,
}

/// Collapses findings to one [`BugRecord`] per signature.
#[derive(Debug, Default)]
pub struct Deduper {
    interner: SiteInterner,
    bugs: HashMap<SigKey, BugRecord>,
}

impl Deduper {
    /// Creates an empty deduplicator.
    pub fn new() -> Deduper {
        Deduper::default()
    }

    /// Records a manifestation; returns `true` when its signature is new.
    pub fn insert(&mut self, finding: Finding) -> bool {
        let key = SigKey::of(&finding.signature, &mut self.interner);
        match self.bugs.get_mut(&key) {
            Some(record) => {
                record.hits += 1;
                false
            }
            None => {
                self.bugs.insert(
                    key,
                    BugRecord {
                        first: finding,
                        hits: 1,
                        shrunk: None,
                        replays_ok: 0,
                    },
                );
                true
            }
        }
    }

    /// Attaches a shrink result to an existing record.
    pub fn attach_shrunk(
        &mut self,
        signature: &BugSignature,
        shrunk: DecisionTrace,
        replays_ok: u32,
    ) {
        let key = SigKey::of(signature, &mut self.interner);
        if let Some(record) = self.bugs.get_mut(&key) {
            record.shrunk = Some(shrunk);
            record.replays_ok = replays_ok;
        }
    }

    /// The record a signature deduplicates into, if any.
    pub fn record_for(&mut self, signature: &BugSignature) -> Option<&BugRecord> {
        let key = SigKey::of(signature, &mut self.interner);
        self.bugs.get(&key)
    }

    /// Number of distinct bugs seen.
    pub fn unique_bugs(&self) -> usize {
        self.bugs.len()
    }

    /// All records, sorted by signature for stable output.
    pub fn records(&self) -> Vec<&BugRecord> {
        let mut out: Vec<_> = self.bugs.values().collect();
        out.sort_by(|a, b| a.first.signature.cmp(&b.first.signature));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodefz_rt::{CbKind, PoolMode, TypeSchedule};

    fn finding(app: &str, site: &str) -> Finding {
        let mut schedule = TypeSchedule::new();
        schedule.push(CbKind::Timer);
        Finding {
            app: app.to_string(),
            preset: 0,
            env_seed: 7,
            detail: site.to_string(),
            signature: BugSignature::new(app, site, &schedule),
            trace: DecisionTrace {
                pool_mode: PoolMode::Concurrent { workers: 4 },
                demux_done: false,
                decisions: vec![],
            },
        }
    }

    #[test]
    fn same_site_different_numbers_dedup_to_one() {
        let mut d = Deduper::new();
        assert!(d.insert(finding("KUE", "lost 3 of 12 jobs")));
        assert!(!d.insert(finding("KUE", "lost 9 of 12 jobs")));
        assert_eq!(d.unique_bugs(), 1);
        assert_eq!(d.records()[0].hits, 2);
    }

    #[test]
    fn different_apps_stay_separate() {
        let mut d = Deduper::new();
        assert!(d.insert(finding("KUE", "lost jobs")));
        assert!(d.insert(finding("MKD", "lost jobs")));
        assert_eq!(d.unique_bugs(), 2);
    }

    #[test]
    fn shrunk_traces_attach_to_their_record() {
        let mut d = Deduper::new();
        let f = finding("KUE", "lost jobs");
        let sig = f.signature.clone();
        d.insert(f);
        let mini = DecisionTrace {
            pool_mode: PoolMode::Concurrent { workers: 4 },
            demux_done: false,
            decisions: vec![],
        };
        d.attach_shrunk(&sig, mini, 10);
        let rec = d.records()[0];
        assert!(rec.shrunk.is_some());
        assert_eq!(rec.replays_ok, 10);
    }
}
