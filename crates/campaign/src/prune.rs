//! Schedule-space pruning: online HB-equivalence dedup plus prefix-forked
//! exploration.
//!
//! Raw throughput (executions per second) overstates a fuzzer's value:
//! two schedules that are happens-before-equivalent manifest exactly the
//! same races (`nodefz-hb`'s canonical-key theorem), so every redundant
//! execution is waste. This module makes the redundancy visible and then
//! removes it:
//!
//! * [`Pruner`] — the campaign controller's side. Every run's event log is
//!   folded into a [`CanonKey`]; an LRU-capped [`SeenSet`] classifies each
//!   run as *distinct* (a new equivalence class) or *redundant*. For
//!   manifesting runs the pruner also memoizes the class's bug signature
//!   and cross-checks repeats — an online soundness check of the
//!   same-key-same-races theorem ([`ClassVerdict::Mismatch`] would mean a
//!   canonicalization bug, never silently absorbed).
//! * [`ScheduleTrie`] — what has been explored *under a given decision
//!   prefix*. Each forked run reports the fingerprint of the decision it
//!   took at its divergence point; the trie accumulates them into the
//!   avoid set (the sleep set) handed to the next fork of that prefix.
//! * [`ForkExplorer`] — the pruned execution engine used by the
//!   throughput bench: it records one run, memoizes its decision prefix,
//!   and then forks — replaying the prefix and steering the first fresh
//!   decision away from the trie's explored set ([`Mode::Forked`]). Draws
//!   rejected at the divergence point count as *skipped* schedules: runs
//!   the campaign did not execute because their first divergent decision
//!   was already covered.
//!
//! Fig6 bug substrates drive their environments through
//! `EnvAction::Custom`, which the loop-snapshot admissibility check
//! (`nodefz_rt::snapshot`) conservatively rejects — so app-arm forking
//! replays decision prefixes rather than restoring [`LoopSnapshot`]s, and
//! per-arm `snapshot_forks` honestly reads 0. The bench measures
//! snapshot-restore forking separately on an admissible workload.
//!
//! [`CanonKey`]: nodefz_hb::CanonKey
//! [`SeenSet`]: nodefz_hb::SeenSet
//! [`LoopSnapshot`]: nodefz_rt::LoopSnapshot

use std::collections::HashMap;

use nodefz::{Decision, DecisionTrace, ForkSpec, Mode, TraceHandle};
use nodefz_apps::common::{RunCfg, Variant};
use nodefz_hb::{CanonBuilder, CanonKey, SeenSet};
use nodefz_rt::{EventLogHandle, LoopPool};
use nodefz_trace::BugSignature;

use crate::config::preset_params;
use crate::driver::{arm_seed, derive_seed, resolve_case};

/// Default capacity of pruning seen-sets: large enough that a campaign's
/// working set never thrashes, small enough to bound memory (~16 bytes a
/// key).
pub const SEEN_CAP: usize = 1 << 20;

/// How many runs share one memoized prefix cut before the explorer
/// rotates to the next cut of the same recorded trace (and eventually,
/// once the cut schedule wraps, records a fresh trace — a fresh
/// environment seed opens a fresh region of the schedule space).
const PREFIX_REFRESH: u64 = 64;

/// Prefix cut points rotated over one recorded trace, as fractions of its
/// decision count. A record run is expensive (a full execution that
/// usually lands in an already-seen class), so when one cut's divergence
/// space exhausts, the explorer moves the divergence point instead of
/// re-recording: each cut keys its own [`ScheduleTrie`] node with a fresh
/// avoid set over a genuinely different decision position.
const PREFIX_CUTS: [(usize, usize); 14] = [
    (8, 16),
    (10, 16),
    (12, 16),
    (14, 16),
    (6, 16),
    (4, 16),
    (2, 16),
    (9, 16),
    (11, 16),
    (13, 16),
    (15, 16),
    (7, 16),
    (5, 16),
    (3, 16),
];

/// Counters describing a pruned exploration, campaign, or bench window.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PruneCounters {
    /// Executions performed.
    pub runs: u64,
    /// Executions whose canonical key was new — distinct HB classes.
    pub distinct: u64,
    /// Executions whose canonical key was already seen.
    pub redundant: u64,
    /// Schedules skipped without executing: draws rejected at fork
    /// divergence points because their class was already covered.
    pub skipped: u64,
    /// Executions launched as prefix forks ([`Mode::Forked`]).
    pub forked: u64,
    /// Forked executions that actually replayed a non-empty prefix.
    pub prefix_hits: u64,
    /// Executions resumed from a restored [`nodefz_rt::LoopSnapshot`]
    /// (0 for fig6 app arms — see the module docs on admissibility).
    pub snapshot_forks: u64,
    /// Same-key runs whose outcome contradicted the memoized class
    /// outcome. Always 0 unless canonicalization is broken.
    pub mismatches: u64,
}

impl PruneCounters {
    /// Fraction of executions that re-visited an already-seen class.
    pub fn redundancy_ratio(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.redundant as f64 / self.runs as f64
        }
    }

    /// Fraction of executions that reused a memoized decision prefix.
    pub fn prefix_hit_rate(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.prefix_hits as f64 / self.runs as f64
        }
    }

    /// Schedules whose class membership is known: executed-and-distinct
    /// plus skipped-without-executing.
    pub fn effective(&self) -> u64 {
        self.distinct + self.skipped
    }
}

/// Chained fingerprint of a decision prefix, keying [`ScheduleTrie`]
/// nodes. Order-sensitive (FNV-folded over per-decision fingerprints), so
/// two different prefixes of the same multiset of decisions key
/// different nodes.
pub fn prefix_key(decisions: &[Decision]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for d in decisions {
        h = (h ^ nodefz::decision_fingerprint(d)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Which first-divergence decisions have been explored under each
/// memoized prefix — the persistent half of the sleep set: forks feed the
/// divergence decision they took back in, later forks of the same prefix
/// get it in their avoid set.
#[derive(Debug, Default)]
pub struct ScheduleTrie {
    nodes: HashMap<u64, Vec<u64>>,
}

impl ScheduleTrie {
    /// Creates an empty trie.
    pub fn new() -> ScheduleTrie {
        ScheduleTrie::default()
    }

    /// Records that `fp` was explored under the prefix keyed `prefix`;
    /// returns whether it was new.
    pub fn note(&mut self, prefix: u64, fp: u64) -> bool {
        let explored = self.nodes.entry(prefix).or_default();
        if explored.contains(&fp) {
            false
        } else {
            explored.push(fp);
            true
        }
    }

    /// The explored first-divergence fingerprints under a prefix.
    pub fn explored(&self, prefix: u64) -> &[u64] {
        self.nodes.get(&prefix).map_or(&[], Vec::as_slice)
    }

    /// Number of prefixes with any explored divergence.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether nothing has been explored.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// Opaque environment scope for [`Pruner::observe`]: FNV of the app name
/// folded with the environment seed. Two runs share a scope exactly when
/// they execute the same callbacks on the same inputs, which is the
/// precondition for "HB-equivalent ⟹ identical manifestation".
pub fn env_scope(app: &str, env_seed: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in app.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ env_seed
}

/// How [`Pruner::observe`] classified one run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClassVerdict {
    /// First run of its HB-equivalence class.
    Fresh,
    /// The class was already explored; the run added no information.
    Redundant,
    /// The run's outcome contradicted the class's memoized outcome —
    /// a canonicalization soundness violation.
    Mismatch,
}

/// Controller-side pruning state for a campaign: classifies every run by
/// canonical key and cross-checks that HB-equivalent runs of the *same
/// environment* produce the same bug (or none).
///
/// The seen-set is global: races are a pure function of the event log,
/// so an already-seen key means the run's race analysis is redundant no
/// matter which (app, env seed) produced it. The outcome memo is scoped
/// per environment, because HB equivalence only promises identical
/// manifestation when the callbacks themselves are identical — two
/// environments can share an event-log shape yet fail differently.
#[derive(Debug)]
pub struct Pruner {
    seen: SeenSet,
    /// Memoized outcome per observed (environment, class) pair, capped at
    /// the seen-set capacity (past the cap the tripwire degrades to
    /// best-effort rather than growing without bound).
    manifested: HashMap<(u64, CanonKey), Option<BugSignature>>,
    memo_cap: usize,
    counters: PruneCounters,
}

impl Pruner {
    /// Creates a pruner whose seen-set holds up to `cap` classes.
    pub fn new(cap: usize) -> Pruner {
        Pruner {
            seen: SeenSet::new(cap),
            manifested: HashMap::new(),
            memo_cap: cap,
            counters: PruneCounters::default(),
        }
    }

    /// Classifies one finished run: its canonical key, an opaque
    /// environment scope (hash of whatever fixes the callbacks — app and
    /// environment seed), plus the signature it manifested (if any).
    pub fn observe(
        &mut self,
        key: CanonKey,
        scope: u64,
        outcome: Option<&BugSignature>,
    ) -> ClassVerdict {
        self.counters.runs += 1;
        let fresh = self.seen.insert(key);
        if fresh {
            self.counters.distinct += 1;
        } else {
            self.counters.redundant += 1;
        }
        // Same environment, same class, same races: a repeat must
        // reproduce the memoized outcome exactly.
        match self.manifested.get(&(scope, key)) {
            Some(cached) => {
                let consistent = match (outcome, cached) {
                    (Some(sig), Some(memo)) => sig == memo,
                    (None, None) => true,
                    _ => false,
                };
                if !consistent {
                    self.counters.mismatches += 1;
                    return ClassVerdict::Mismatch;
                }
            }
            None => {
                if self.manifested.len() < self.memo_cap {
                    self.manifested.insert((scope, key), outcome.cloned());
                }
            }
        }
        if fresh {
            ClassVerdict::Fresh
        } else {
            ClassVerdict::Redundant
        }
    }

    /// The counters accumulated so far.
    pub fn counters(&self) -> &PruneCounters {
        &self.counters
    }

    /// Distinct classes currently tracked.
    pub fn classes(&self) -> usize {
        self.seen.len()
    }

    /// Live health of the pruner's bounded structures — the seen-set LRU
    /// occupancy and churn that the cumulative [`PruneCounters`] cannot
    /// show. Surfaced in `nodefz-metrics-v1` snapshots so an operator can
    /// tell a saturated class set (evictions climbing, redundancy ratio
    /// no longer trustworthy) from a healthy one at a glance.
    pub fn health(&self) -> PruneHealth {
        PruneHealth {
            seen_occupancy: self.seen.len() as u64,
            seen_evictions: self.seen.evicted(),
            seen_hits: self.seen.hits(),
        }
    }
}

/// Point-in-time health of the [`Pruner`]'s seen-class LRU.
///
/// Kept separate from [`PruneCounters`] on purpose: the counters are a
/// cumulative, `Eq`-comparable record of classification verdicts that
/// other processes parse field-for-field, while health is a gauge of the
/// bounded data structure behind them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PruneHealth {
    /// Distinct classes currently resident in the seen-set LRU.
    pub seen_occupancy: u64,
    /// Classes evicted from the LRU since the campaign started. Nonzero
    /// means the redundancy ratio undercounts: an evicted class observed
    /// again is miscounted as fresh.
    pub seen_evictions: u64,
    /// Seen-set re-hits (redundant observations) since the start.
    pub seen_hits: u64,
}

/// Pruned exploration of one (app, preset) arm: record a prefix, then
/// fork — replay the prefix, steer the divergence away from explored
/// decisions, fuzz the suffix, and canon-dedup the result (module docs).
pub struct ForkExplorer {
    preset: usize,
    case: Box<dyn nodefz_apps::common::BugCase>,
    arm_base: u64,
    pool: LoopPool,
    handle: TraceHandle,
    events: EventLogHandle,
    canon: CanonBuilder,
    scratch: Vec<u64>,
    seen: SeenSet,
    trie: ScheduleTrie,
    counters: PruneCounters,
    /// The last recorded trace, source of the rotating prefix cuts
    /// (`None` until the first record run, and again when the cut
    /// schedule wraps).
    full: Option<DecisionTrace>,
    /// Index into [`PREFIX_CUTS`] of the installed cut.
    cut_idx: usize,
    /// The persistent forked run config for the installed cut: its
    /// [`Mode::Forked`] spec carries the prefix, the per-fork avoid set,
    /// and the shared status handle. Kept across forks so the prefix is
    /// cloned once per cut, not once per run.
    fork_cfg: Option<RunCfg>,
    prefix_env: u64,
    prefix_node: u64,
}

impl ForkExplorer {
    /// Creates an explorer for one arm. Returns `None` for an unknown
    /// app abbreviation.
    pub fn new(app: &str, preset: usize, base_seed: u64) -> Option<ForkExplorer> {
        Some(ForkExplorer {
            preset,
            case: resolve_case(app)?,
            arm_base: arm_seed(base_seed, app, preset),
            pool: LoopPool::new(),
            handle: TraceHandle::fresh(),
            events: EventLogHandle::fresh(),
            canon: CanonBuilder::new(),
            scratch: Vec::new(),
            seen: SeenSet::new(SEEN_CAP),
            trie: ScheduleTrie::new(),
            counters: PruneCounters::default(),
            full: None,
            cut_idx: 0,
            fork_cfg: None,
            prefix_env: 0,
            prefix_node: 0,
        })
    }

    /// Executes one pruned step; returns whether it found a distinct
    /// HB class. Deterministic in (app, preset, base_seed, step index).
    pub fn step(&mut self) -> bool {
        let i = self.counters.runs;
        if i > 0 && i.is_multiple_of(PREFIX_REFRESH) {
            self.advance_cut();
        }
        if self.fork_cfg.is_none() {
            self.record_step(i)
        } else {
            self.fork_step(i)
        }
    }

    /// The counters accumulated so far.
    pub fn counters(&self) -> &PruneCounters {
        &self.counters
    }

    /// Records a full run, keeps its trace as the cut source, and
    /// installs the first prefix cut.
    fn record_step(&mut self, i: u64) -> bool {
        let env_seed = derive_seed(self.arm_base, i);
        let mode = Mode::Record(preset_params(self.preset), self.handle.clone());
        let run_cfg = RunCfg::new(mode, env_seed)
            .pooled(&self.pool)
            .events(&self.events);
        self.case.run(&run_cfg, Variant::Buggy);
        self.full = Some(self.handle.snapshot());
        self.prefix_env = env_seed;
        self.cut_idx = 0;
        self.install_cut();
        self.classify()
    }

    /// Builds the persistent forked run config for the current cut of the
    /// recorded trace.
    fn install_cut(&mut self) {
        let full = self.full.as_ref().expect("install_cut implies a trace");
        let (num, den) = PREFIX_CUTS[self.cut_idx];
        let cut = full.decisions.len() * num / den;
        let prefix = DecisionTrace {
            pool_mode: full.pool_mode,
            demux_done: full.demux_done,
            decisions: full.decisions[..cut].to_vec(),
        };
        self.prefix_node = prefix_key(&prefix.decisions);
        let mut cfg = RunCfg::new(
            Mode::Forked(ForkSpec::new(preset_params(self.preset), prefix)),
            self.prefix_env,
        )
        .pooled(&self.pool)
        .events(&self.events);
        cfg.trace = false;
        self.fork_cfg = Some(cfg);
    }

    /// Moves the divergence point: the next cut of the same recorded
    /// trace, or — once the cut schedule wraps — a fresh record run.
    fn advance_cut(&mut self) {
        if self.full.is_none() {
            return;
        }
        self.cut_idx += 1;
        if self.cut_idx < PREFIX_CUTS.len() {
            self.install_cut();
        } else {
            self.full = None;
            self.fork_cfg = None;
        }
    }

    /// Forks from the installed prefix cut, avoiding explored
    /// divergences.
    fn fork_step(&mut self, i: u64) -> bool {
        {
            let cfg = self.fork_cfg.as_mut().expect("fork_step implies a cut");
            let Mode::Forked(spec) = &mut cfg.mode else {
                unreachable!("fork_cfg always carries Mode::Forked");
            };
            spec.avoid.clear();
            spec.avoid
                .extend_from_slice(self.trie.explored(self.prefix_node));
            // Same environment as the recorded prefix, fresh suffix
            // decisions.
            cfg.sched_seed = derive_seed(self.arm_base ^ 0x666f_726b, i);
        }
        let cfg = self.fork_cfg.as_ref().expect("unchanged");
        self.case.run(cfg, Variant::Buggy);

        let Mode::Forked(spec) = &cfg.mode else {
            unreachable!("fork_cfg always carries Mode::Forked");
        };
        let status = &spec.status;
        self.counters.forked += 1;
        if status.replayed() > 0 {
            self.counters.prefix_hits += 1;
        }
        self.counters.skipped += status.skipped();
        let divergence = status.divergence_fingerprint();
        let exhausted = status.retries_exhausted();
        if let Some(fp) = divergence {
            self.trie.note(self.prefix_node, fp);
        }
        if exhausted {
            // Every reachable decision at this divergence point is
            // covered: move the divergence rather than farm skips from a
            // mined-out space.
            self.advance_cut();
        }
        self.classify()
    }

    /// Folds the run's event log into its canonical key and classifies
    /// it against the seen-set. Allocation-free at steady state: the
    /// builder, scratch buffer, and log handle are all reused.
    fn classify(&mut self) -> bool {
        self.counters.runs += 1;
        let ForkExplorer {
            events,
            canon,
            scratch,
            ..
        } = self;
        let key = events.with(|log| canon.build(log, scratch));
        if self.seen.insert(key) {
            self.counters.distinct += 1;
            true
        } else {
            self.counters.redundant += 1;
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodefz_rt::{CbKind, TypeSchedule};

    fn sig(app: &str, detail: &str) -> BugSignature {
        let mut schedule = TypeSchedule::new();
        schedule.push(CbKind::Timer);
        BugSignature::new(app, detail, &schedule)
    }

    #[test]
    fn prefix_keys_are_order_sensitive_and_stable() {
        let a = [Decision::Timer(None), Decision::DeferClose(true)];
        let b = [Decision::DeferClose(true), Decision::Timer(None)];
        assert_eq!(prefix_key(&a), prefix_key(&a));
        assert_ne!(prefix_key(&a), prefix_key(&b));
        assert_ne!(prefix_key(&a), prefix_key(&a[..1]));
        assert_ne!(prefix_key(&a), prefix_key(&[]));
    }

    #[test]
    fn trie_accumulates_distinct_divergences_per_prefix() {
        let mut trie = ScheduleTrie::new();
        assert!(trie.is_empty());
        assert!(trie.note(1, 10));
        assert!(!trie.note(1, 10), "repeat fingerprints are absorbed");
        assert!(trie.note(1, 11));
        assert!(trie.note(2, 10), "prefixes are independent");
        assert_eq!(trie.explored(1), &[10, 11]);
        assert_eq!(trie.explored(3), &[] as &[u64]);
        assert_eq!(trie.len(), 2);
    }

    #[test]
    fn pruner_classifies_fresh_redundant_and_mismatch() {
        let mut p = Pruner::new(16);
        let k1 = CanonKey(1);
        let k2 = CanonKey(2);
        let bug = sig("KUE", "lost job");

        assert_eq!(p.observe(k1, 0, None), ClassVerdict::Fresh);
        assert_eq!(p.observe(k1, 0, None), ClassVerdict::Redundant);
        assert_eq!(p.observe(k2, 0, Some(&bug)), ClassVerdict::Fresh);
        assert_eq!(p.observe(k2, 0, Some(&bug)), ClassVerdict::Redundant);
        // Same environment, same class, different outcome: the soundness
        // tripwire.
        assert_eq!(p.observe(k1, 0, Some(&bug)), ClassVerdict::Mismatch);
        assert_eq!(
            p.observe(k2, 0, Some(&sig("KUE", "other failure"))),
            ClassVerdict::Mismatch
        );
        assert_eq!(p.observe(k2, 0, None), ClassVerdict::Mismatch);

        let c = p.counters();
        assert_eq!(c.runs, 7);
        assert_eq!(c.distinct, 2);
        assert_eq!(c.redundant, 5);
        assert_eq!(c.mismatches, 3);
        assert_eq!(p.classes(), 2);
    }

    #[test]
    fn pruner_scopes_the_outcome_memo_per_environment() {
        let mut p = Pruner::new(16);
        let k = CanonKey(9);
        let bug = sig("GHO", "dropped row");

        assert_eq!(p.observe(k, 1, None), ClassVerdict::Fresh);
        // A different environment may manifest differently under the same
        // event-log shape: redundant for dedup, but no contradiction.
        assert_eq!(p.observe(k, 2, Some(&bug)), ClassVerdict::Redundant);
        assert_eq!(p.counters().mismatches, 0);
        // Within each environment the memo still binds.
        assert_eq!(p.observe(k, 1, Some(&bug)), ClassVerdict::Mismatch);
        assert_eq!(p.observe(k, 2, None), ClassVerdict::Mismatch);
        assert_eq!(p.counters().mismatches, 2);
    }

    #[test]
    fn explorer_forks_reuse_the_prefix_and_counters_balance() {
        let mut ex = ForkExplorer::new("GHO", 0, 7).expect("GHO resolves");
        for _ in 0..24 {
            ex.step();
        }
        let c = *ex.counters();
        assert_eq!(c.runs, 24);
        assert_eq!(c.distinct + c.redundant, c.runs, "every run classified");
        assert!(c.forked > 0, "steps after the first fork: {c:?}");
        assert!(
            c.prefix_hits > 0,
            "forked runs replay the memoized prefix: {c:?}"
        );
        assert_eq!(c.snapshot_forks, 0, "app arms are snapshot-inadmissible");
        assert!(c.distinct >= 1);
    }

    #[test]
    fn explorer_is_deterministic() {
        let run = || {
            let mut ex = ForkExplorer::new("GHO", 0, 11).expect("GHO resolves");
            for _ in 0..16 {
                ex.step();
            }
            *ex.counters()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn unknown_app_yields_no_explorer() {
        assert!(ForkExplorer::new("NOPE", 0, 1).is_none());
    }
}
