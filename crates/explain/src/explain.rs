//! The explanation pipeline: repro in, causal story out.
//!
//! ```text
//! .repro ──replay──► failing log ──hb──► predicted races (ranked)
//!    │                                       │
//!    └──same env seed──► passing samples ────┤ nearest HB class
//!         (vanilla + varied sched seeds)     │ (longest shared prefix)
//!                                            ▼
//!                       flip cut ladder ──--check──► directed replay
//!                                                    re-manifests bug
//! ```
//!
//! Everything runs at the repro's environment seed, so the failing
//! schedule, every passing sample, and every directed check replay
//! against the same modelled environment — the *only* difference between
//! them is scheduling, which is exactly the claim a race report makes.

use nodefz::{DecisionTrace, DirectedSpec, FuzzParams, Mode, ReplayStatusHandle, TraceHandle};
use nodefz_apps::common::{RunCfg, Variant};
use nodefz_campaign::{preset_params, resolve_case, CorpusEntry};
use nodefz_hb::{canon_key, causal_chain, races_with_cuts, EventRef, RaceInfo, SeenSet};
use nodefz_rt::{EventLog, EventLogHandle};
use nodefz_trace::BugSignature;

/// Flip points tried per predicted race during `--check`, deepest chain
/// ancestor first (mirrors the `--analyze` confirm loop).
const MAX_FLIPS_PER_RACE: usize = 4;

/// Predicted races the check loop will chase before giving up.
const MAX_CHECK_RACES: usize = 8;

/// Passing HB classes remembered while sampling (far above what a
/// handful of samples can produce; the cap exists for hygiene).
const SEEN_CAP: usize = 1024;

/// Knobs for [`explain_entry`].
#[derive(Clone, Debug)]
pub struct ExplainConfig {
    /// Directed replays per flip cut when checking, and the ceiling for
    /// the whole check loop per race.
    pub attempts: u64,
    /// Recorded fuzz runs (beyond the vanilla posture) sampled while
    /// hunting passing schedules.
    pub passing_samples: u64,
    /// Whether to causally validate the explanation: replay only the
    /// directed flip and require the bug to re-manifest.
    pub check: bool,
}

impl Default for ExplainConfig {
    fn default() -> ExplainConfig {
        ExplainConfig {
            attempts: 24,
            passing_samples: 12,
            check: false,
        }
    }
}

/// How the failing schedule relates to the nearest passing HB class.
#[derive(Clone, Debug)]
pub struct PassingSummary {
    /// Canonical key of the nearest passing class, 32 hex digits.
    pub key: String,
    /// Schedules sampled while hunting passing runs (vanilla included).
    pub sampled: u64,
    /// Distinct passing HB classes among them.
    pub distinct: u64,
    /// Scheduler decisions the failing and nearest passing schedule
    /// share before diverging.
    pub common_prefix: usize,
    /// Decision count of the failing (repro) schedule.
    pub failing_len: usize,
    /// Decision count of the nearest passing schedule.
    pub passing_len: usize,
    /// The first differing decision, when both schedules still have one
    /// at the divergence index.
    pub divergence: Option<Divergence>,
}

/// The first decision where failing and passing schedules part ways.
#[derive(Clone, Copy, Debug)]
pub struct Divergence {
    /// Index into both decision sequences.
    pub index: usize,
    /// Decision kind the failing schedule took there.
    pub failing: &'static str,
    /// Decision kind the passing schedule took there.
    pub passing: &'static str,
}

/// The directed flip this report proposes (and `--check` replays): cut
/// points into the schedule named by `on_passing_schedule`.
#[derive(Clone, Debug)]
pub struct FlipPlan {
    /// Primary flip cut (the chain's deepest schedulable ancestor).
    pub cut: u64,
    /// The pre-dispatch cut right before the earlier racing event.
    pub prefix_cut: u64,
    /// Full candidate ladder, ascending.
    pub ladder: Vec<u64>,
    /// `true` when the cuts index the nearest *passing* schedule (the
    /// normal case: flipping a passing run into the bug); `false` when
    /// no passing prediction existed and the failing-side ladder is
    /// applied to the passing trace as a fallback.
    pub on_passing_schedule: bool,
}

/// Result of the `--check` directed replay.
#[derive(Clone, Copy, Debug)]
pub struct CheckResult {
    /// Directed executions spent in total.
    pub attempted: u64,
    /// Whether the bug re-manifested with its recorded signature.
    pub manifested: bool,
    /// 1-based execution index of the manifesting replay (0 when none).
    pub execs: u64,
    /// The flip cut that re-manifested it (0 when none).
    pub cut: u64,
}

/// One confirmed bug, explained: the racing pair, both causal chains
/// back to scheduler-visible roots, the flip cut that inverts the order,
/// and how far the failing schedule tracks the nearest passing HB class.
#[derive(Clone, Debug)]
pub struct RaceReport {
    /// Bug abbreviation.
    pub app: String,
    /// Environment seed everything in this report ran under.
    pub env_seed: u64,
    /// The oracle's normalized failure site (the dedup signature's).
    pub failure_site: String,
    /// The signature's callback-kind fingerprint.
    pub kinds: u32,
    /// The explained race: instrumented shared site, §3.2 class, and the
    /// racing access pair with its flip-cut ladder.
    pub race: RaceInfo,
    /// Causal chain of the earlier racing event, the event itself first,
    /// back to its scheduler-visible root.
    pub chain_a: Vec<EventRef>,
    /// Causal chain of the later racing event, likewise.
    pub chain_b: Vec<EventRef>,
    /// Events dispatched in the failing replay.
    pub events: usize,
    /// Instrumented accesses observed in the failing replay.
    pub accesses: usize,
    /// Canonical HB key of the failing schedule, 32 hex digits.
    pub failing_key: String,
    /// The directed flip that turns the nearest passing schedule into
    /// this bug.
    pub flip: FlipPlan,
    /// The nearest passing class and the schedule diff against it.
    pub passing: PassingSummary,
    /// Present when the explanation was causally validated.
    pub check: Option<CheckResult>,
}

/// One sampled passing schedule.
struct PassingSample {
    trace: DecisionTrace,
    log: EventLog,
}

/// First race per distinct (site, class), races at the app's own
/// instrumented sites (`app:`-prefixed, where planted bugs live) ranked
/// ahead of library/infrastructure sites.
fn ranked_races(app: &str, races: &[RaceInfo]) -> Vec<RaceInfo> {
    let prefix = format!("{}:", app.to_ascii_lowercase());
    let mut seen: Vec<(String, &'static str)> = Vec::new();
    let mut own: Vec<RaceInfo> = Vec::new();
    let mut other: Vec<RaceInfo> = Vec::new();
    for race in races {
        let key = (race.site.clone(), race.class.label());
        if seen.contains(&key) {
            continue;
        }
        seen.push(key);
        if race.site.starts_with(&prefix) {
            own.push(race.clone());
        } else {
            other.push(race.clone());
        }
    }
    own.extend(other);
    own
}

/// Shared-prefix length of two decision sequences.
fn common_prefix(a: &DecisionTrace, b: &DecisionTrace) -> usize {
    a.decisions
        .iter()
        .zip(&b.decisions)
        .take_while(|(x, y)| x == y)
        .count()
}

/// The flip-cut ladder actually tried for a race (bounded, with the
/// pre-dispatch fallback when the chain walk found nothing) — the shared
/// [`RaceInfo::ladder`] definition, bounded by this crate's flip budget.
fn flip_ladder(race: &RaceInfo) -> Vec<u64> {
    race.ladder(MAX_FLIPS_PER_RACE)
}

/// Explains one corpus entry.
///
/// # Errors
///
/// When the app is unknown, the repro does not replay to its recorded
/// bug, the failing schedule predicts no races, or no passing schedule
/// exists at the entry's environment seed within the sampling budget.
pub fn explain_entry(entry: &CorpusEntry, cfg: &ExplainConfig) -> Result<RaceReport, String> {
    let case = resolve_case(&entry.app).ok_or_else(|| format!("unknown app '{}'", entry.app))?;
    let expected = entry.signature();

    // 1. Replay the repro with dispatch-provenance recording: the
    //    failing schedule's event log is the ground truth everything
    //    else is explained against.
    entry
        .trace
        .validate()
        .map_err(|e| format!("repro trace invalid: {e}"))?;
    // Minimized repro traces are *prefixes*: past the trace's end the
    // run continues on default decisions, which the replay status counts
    // as divergence. Fidelity here is the signature match below, not a
    // clean verdict — exactly `campaign --verify`'s contract.
    let status = ReplayStatusHandle::fresh();
    let events = EventLogHandle::fresh();
    let run_cfg = RunCfg::new(
        Mode::Replay(entry.trace.clone(), status.clone()),
        entry.env_seed,
    )
    .events(&events);
    let out = case.run(&run_cfg, Variant::Buggy);
    if !out.manifested {
        return Err("repro replayed cleanly but the bug did not manifest".into());
    }
    let replayed = BugSignature::new(&entry.app, &out.detail, &out.report.schedule);
    if replayed != expected {
        return Err(format!(
            "repro replay manifested a different bug: {replayed} (expected {expected})"
        ));
    }
    let log_fail = events.snapshot();
    let failing_key = canon_key(&log_fail).to_hex();
    let failing_races = ranked_races(&entry.app, &races_with_cuts(&log_fail));
    if failing_races.is_empty() {
        return Err("failing schedule predicts no races — nothing to explain".into());
    }

    // 2. Hunt passing schedules at the same environment seed: the
    //    vanilla posture first, then fuzz presets under varied scheduler
    //    seeds, deduplicated by HB class.
    let trace_handle = TraceHandle::fresh();
    let pass_events = EventLogHandle::fresh();
    let mut seen = SeenSet::new(SEEN_CAP);
    let mut passing: Vec<PassingSample> = Vec::new();
    let mut sampled = 0u64;
    for i in 0..=cfg.passing_samples {
        let params = if i == 0 {
            FuzzParams::none()
        } else {
            preset_params((i - 1) as usize % 3)
        };
        let mut sample_cfg =
            RunCfg::new(Mode::Record(params, trace_handle.clone()), entry.env_seed)
                .events(&pass_events);
        sample_cfg.sched_seed = sample_cfg
            .sched_seed
            .wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let out = case.run(&sample_cfg, Variant::Buggy);
        sampled += 1;
        if out.manifested {
            continue;
        }
        let log = pass_events.snapshot();
        if seen.insert(canon_key(&log)) {
            passing.push(PassingSample {
                trace: trace_handle.snapshot(),
                log,
            });
        }
    }
    if passing.is_empty() {
        return Err(format!(
            "no passing schedule in {sampled} samples at env seed {} — cannot anchor the diff",
            entry.env_seed
        ));
    }
    let nearest = passing
        .iter()
        .max_by_key(|p| common_prefix(&entry.trace, &p.trace))
        .expect("non-empty");
    let prefix_len = common_prefix(&entry.trace, &nearest.trace);
    let divergence = match (
        entry.trace.decisions.get(prefix_len),
        nearest.trace.decisions.get(prefix_len),
    ) {
        (Some(f), Some(p)) => Some(Divergence {
            index: prefix_len,
            failing: f.kind(),
            passing: p.kind(),
        }),
        _ => None,
    };
    let passing_summary = PassingSummary {
        key: canon_key(&nearest.log).to_hex(),
        sampled,
        distinct: passing.len() as u64,
        common_prefix: prefix_len,
        failing_len: entry.trace.len(),
        passing_len: nearest.trace.len(),
        divergence,
    };

    // 3. The directed flip plan: races predicted *in the nearest passing
    //    schedule* (so cuts index into the trace they replay), falling
    //    back to the failing prediction's ladder on the passing trace.
    let passing_races = ranked_races(&entry.app, &races_with_cuts(&nearest.log));
    let on_passing_schedule = !passing_races.is_empty();
    let plan = if on_passing_schedule {
        passing_races
    } else {
        failing_races.clone()
    };

    // The explained race: prefer the failing-side prediction matching
    // the plan's front-runner (its chains describe the actual
    // manifestation); --check below can overrule by demonstration.
    let mut chosen = failing_races
        .iter()
        .find(|r| r.site == plan[0].site && r.class == plan[0].class)
        .unwrap_or(&failing_races[0])
        .clone();
    let mut flip_race = plan[0].clone();

    // 4. --check: replay only the directed flip, demand the recorded bug.
    let check = if cfg.check {
        let mut attempted = 0u64;
        let mut result = CheckResult {
            attempted: 0,
            manifested: false,
            execs: 0,
            cut: 0,
        };
        let check_handle = TraceHandle::fresh();
        'plan: for race in plan.iter().take(MAX_CHECK_RACES) {
            for cut in flip_ladder(race) {
                for attempt in 0..cfg.attempts {
                    attempted += 1;
                    let spec = DirectedSpec::new(nearest.trace.clone(), cut).with_attempt(attempt);
                    let out = case.run(
                        &RunCfg::new(Mode::Directed(spec, check_handle.clone()), entry.env_seed),
                        Variant::Buggy,
                    );
                    if out.manifested
                        && BugSignature::new(&entry.app, &out.detail, &out.report.schedule)
                            == expected
                    {
                        result = CheckResult {
                            attempted,
                            manifested: true,
                            execs: attempted,
                            cut,
                        };
                        // The flip that demonstrably re-manifests the bug
                        // names the race this report should explain.
                        flip_race = race.clone();
                        if let Some(confirmed) = failing_races
                            .iter()
                            .find(|r| r.site == race.site && r.class == race.class)
                        {
                            chosen = confirmed.clone();
                        }
                        break 'plan;
                    }
                }
            }
        }
        result.attempted = attempted;
        Some(result)
    } else {
        None
    };

    let ladder = flip_ladder(&flip_race);
    let flip = FlipPlan {
        cut: ladder[0],
        prefix_cut: flip_race.cut,
        ladder,
        on_passing_schedule,
    };
    let chain_a = causal_chain(&log_fail, chosen.a.event);
    let chain_b = causal_chain(&log_fail, chosen.b.event);
    Ok(RaceReport {
        app: entry.app.clone(),
        env_seed: entry.env_seed,
        failure_site: entry.site.clone(),
        kinds: entry.kinds,
        race: chosen,
        chain_a,
        chain_b,
        events: log_fail.events.len(),
        accesses: log_fail.accesses.len(),
        failing_key,
        flip,
        passing: passing_summary,
        check,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodefz_hb::analyze_app;

    #[test]
    fn ranked_races_put_own_sites_first_and_dedup_site_class() {
        let app = nodefz_apps::by_abbr("GHO").expect("registry");
        let analysis = analyze_app(app.as_ref(), 11).expect("analyzable");
        let ranked = ranked_races("GHO", &analysis.races);
        assert!(!ranked.is_empty());
        assert!(
            ranked[0].site.starts_with("gho:"),
            "own sites first: {}",
            ranked[0].site
        );
        let mut keys: Vec<(String, &str)> = ranked
            .iter()
            .map(|r| (r.site.clone(), r.class.label()))
            .collect();
        let before = keys.len();
        keys.dedup();
        assert_eq!(keys.len(), before, "no duplicate (site, class) pairs");
    }

    #[test]
    fn common_prefix_counts_shared_decisions() {
        let app = nodefz_apps::by_abbr("GHO").expect("registry");
        let analysis = analyze_app(app.as_ref(), 11).expect("analyzable");
        let t = analysis.trace;
        assert_eq!(common_prefix(&t, &t), t.len());
        let mut truncated = t.clone();
        truncated.decisions.truncate(3);
        assert_eq!(common_prefix(&t, &truncated), 3.min(t.len()));
    }
}
