//! Three renderings of one [`RaceReport`]: machine (JSON), terminal
//! (ANSI timeline), and shareable (self-contained single-file HTML).
//!
//! All three carry the same facts; none is derived from another. The
//! JSON is the `nodefz-race-report-v1` contract other tools consume, the
//! ANSI rendering is what `campaign explain` prints, and the HTML file
//! embeds its own styling so it can be attached to a bug tracker as-is.

use nodefz_hb::EventRef;
use nodefz_obs::JsonWriter;

use crate::explain::RaceReport;

/// Schema tag of the JSON rendering.
pub const RACE_REPORT_SCHEMA: &str = "nodefz-race-report-v1";

/// Width of the ANSI timeline's decision axis, in columns.
const AXIS: usize = 48;

fn chain_json(w: &mut JsonWriter, key: &str, chain: &[EventRef]) {
    w.key(key);
    w.begin_array();
    for hop in chain {
        w.begin_object();
        w.field_u64("event", u64::from(hop.event));
        w.field_str("kind", &hop.kind);
        w.field_u64("decisions", hop.decisions);
        w.end_object();
    }
    w.end_array();
}

fn event_json(w: &mut JsonWriter, key: &str, ev: &EventRef) {
    w.key(key);
    w.begin_object();
    w.field_u64("event", u64::from(ev.event));
    w.field_str("kind", &ev.kind);
    w.field_u64("decisions", ev.decisions);
    w.end_object();
}

/// Renders the `nodefz-race-report-v1` document.
pub fn to_json(r: &RaceReport) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("schema", RACE_REPORT_SCHEMA);
    w.field_str("app", &r.app);
    w.field_u64("env_seed", r.env_seed);
    w.key("failure");
    w.begin_object();
    w.field_str("site", &r.failure_site);
    w.field_u64("kinds", u64::from(r.kinds));
    w.end_object();
    w.key("race");
    w.begin_object();
    w.field_str("site", &r.race.site);
    w.field_str("class", r.race.class.label());
    event_json(&mut w, "a", &r.race.a);
    event_json(&mut w, "b", &r.race.b);
    w.field_u64("cut", r.race.cut);
    w.field_u64("chain_cut", r.race.chain_cut);
    w.key("flip_cuts");
    w.begin_array();
    for cut in &r.race.flip_cuts {
        w.u64(*cut);
    }
    w.end_array();
    w.end_object();
    w.key("flip");
    w.begin_object();
    w.field_u64("cut", r.flip.cut);
    w.field_u64("prefix_cut", r.flip.prefix_cut);
    w.key("ladder");
    w.begin_array();
    for cut in &r.flip.ladder {
        w.u64(*cut);
    }
    w.end_array();
    w.field_bool("on_passing_schedule", r.flip.on_passing_schedule);
    w.end_object();
    w.key("chains");
    w.begin_object();
    chain_json(&mut w, "a", &r.chain_a);
    chain_json(&mut w, "b", &r.chain_b);
    w.end_object();
    w.key("schedule");
    w.begin_object();
    w.field_u64("events", r.events as u64);
    w.field_u64("accesses", r.accesses as u64);
    w.field_str("failing_key", &r.failing_key);
    w.end_object();
    w.key("passing");
    w.begin_object();
    w.field_str("key", &r.passing.key);
    w.field_u64("sampled", r.passing.sampled);
    w.field_u64("distinct", r.passing.distinct);
    w.field_u64("common_prefix", r.passing.common_prefix as u64);
    w.field_u64("failing_len", r.passing.failing_len as u64);
    w.field_u64("passing_len", r.passing.passing_len as u64);
    w.key("divergence");
    match &r.passing.divergence {
        Some(d) => {
            w.begin_object();
            w.field_u64("index", d.index as u64);
            w.field_str("failing", d.failing);
            w.field_str("passing", d.passing);
            w.end_object();
        }
        None => w.null(),
    }
    w.end_object();
    w.key("check");
    match &r.check {
        Some(c) => {
            w.begin_object();
            w.field_u64("attempted", c.attempted);
            w.field_bool("manifested", c.manifested);
            w.field_u64("execs", c.execs);
            w.field_u64("cut", c.cut);
            w.end_object();
        }
        None => w.null(),
    }
    w.end_object();
    let mut out = w.finish();
    out.push('\n');
    out
}

/// Wraps `s` in an ANSI SGR sequence when `color` is on.
fn paint(code: &str, s: &str, color: bool) -> String {
    if color {
        format!("\x1b[{code}m{s}\x1b[0m")
    } else {
        s.to_string()
    }
}

/// One timeline lane: the hop's marker placed proportionally on the
/// decision axis.
fn lane(label: &str, decisions: u64, max: u64, marker: char) -> String {
    let pos = if max == 0 {
        0
    } else {
        ((decisions as usize) * (AXIS - 1)) / (max as usize)
    };
    let mut axis = String::with_capacity(AXIS);
    for i in 0..AXIS {
        axis.push(if i == pos { marker } else { '\u{2500}' });
    }
    format!("  {label:<22} {axis} dec {decisions}")
}

/// Renders the terminal report: facts up top, then both causal chains on
/// one shared decision axis, the flip cut, and the passing-class diff.
pub fn render_ansi(r: &RaceReport, color: bool) -> String {
    let mut out = String::new();
    let class = r.race.class.label();
    out.push_str(&format!(
        "{}: {} {} at {} (env seed {})\n",
        paint("1", "race report", color),
        r.app,
        paint("1;31", class, color),
        paint("1", &r.race.site, color),
        r.env_seed,
    ));
    out.push_str(&format!(
        "  failure site: {}  [kind fingerprint {:#010x}]\n",
        r.failure_site, r.kinds
    ));
    out.push_str(&format!(
        "  failing schedule: {} events, {} accesses, HB class {}\n",
        r.events, r.accesses, r.failing_key
    ));

    let max_dec = r
        .chain_a
        .iter()
        .chain(&r.chain_b)
        .map(|h| h.decisions)
        .max()
        .unwrap_or(0)
        .max(r.race.cut);
    out.push_str(&format!(
        "\n  causal timeline (decision axis 0..={max_dec}):\n"
    ));
    // Chains print root first: causality reads left-to-right, top-down.
    for (name, chain, code) in [("a", &r.chain_a, "36"), ("b", &r.chain_b, "35")] {
        for (i, hop) in chain.iter().rev().enumerate() {
            let racing = i + 1 == chain.len();
            let marker = if racing { '\u{25cf}' } else { '\u{25cb}' };
            let label = format!("{name} {} #{}", hop.kind, hop.event);
            let mut line = lane(&label, hop.decisions, max_dec, marker);
            if racing {
                line.push_str(&format!("  {}", paint("1;31", "RACE", color)));
            }
            out.push_str(&paint(code, &line, color));
            out.push('\n');
        }
    }
    // The flip cuts index the schedule the directed replay runs over —
    // usually the nearest *passing* schedule, a different decision axis
    // than the failing-chain timeline above, so they get prose, not a lane.
    let schedule = if r.flip.on_passing_schedule {
        "nearest passing"
    } else {
        "failing"
    };
    let flip = format!(
        "  directed flip: defer the racing dispatch at decision {} of the {} schedule",
        r.flip.cut, schedule,
    );
    out.push_str(&paint("33", &flip, color));
    out.push('\n');
    out.push_str(&format!(
        "  flip ladder: {} (prefix cut {})\n",
        r.flip
            .ladder
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(", "),
        r.flip.prefix_cut,
    ));

    out.push_str(&format!(
        "\n  nearest passing HB class {} ({} of {} sampled schedule(s) passed):\n",
        r.passing.key, r.passing.distinct, r.passing.sampled
    ));
    out.push_str(&format!(
        "    shares {} decision(s) with the failing schedule ({} failing / {} passing total)\n",
        r.passing.common_prefix, r.passing.failing_len, r.passing.passing_len
    ));
    match &r.passing.divergence {
        Some(d) => out.push_str(&format!(
            "    diverges at decision {}: failing took {}, passing took {}\n",
            d.index, d.failing, d.passing
        )),
        None => out.push_str("    one schedule is a prefix of the other\n"),
    }

    if let Some(c) = &r.check {
        let line = if c.manifested {
            paint(
                "32",
                &format!(
                    "  check: bug re-manifested on directed replay {} (flip cut {})",
                    c.execs, c.cut
                ),
                color,
            )
        } else {
            paint(
                "31",
                &format!(
                    "  check: bug did NOT re-manifest in {} directed replay(s)",
                    c.attempted
                ),
                color,
            )
        };
        out.push('\n');
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Minimal HTML escaping for text nodes and attribute values.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            _ => out.push(ch),
        }
    }
    out
}

fn html_chain(out: &mut String, name: &str, class: &str, chain: &[EventRef], max: u64) {
    out.push_str(&format!(
        "<h3>chain {}</h3><div class=\"lanes\">",
        esc(name)
    ));
    for (i, hop) in chain.iter().rev().enumerate() {
        let racing = i + 1 == chain.len();
        let pct = if max == 0 {
            0.0
        } else {
            (hop.decisions as f64) * 100.0 / (max as f64)
        };
        out.push_str(&format!(
            "<div class=\"lane\"><span class=\"label\">{} #{} <small>dec {}</small></span>\
             <span class=\"track\"><span class=\"dot {}{}\" style=\"left:{:.1}%\"></span></span></div>",
            esc(&hop.kind),
            hop.event,
            hop.decisions,
            esc(class),
            if racing { " racing" } else { "" },
            pct,
        ));
    }
    out.push_str("</div>");
}

/// Renders the self-contained single-file HTML report.
pub fn render_html(r: &RaceReport) -> String {
    let class = r.race.class.label();
    let max_dec = r
        .chain_a
        .iter()
        .chain(&r.chain_b)
        .map(|h| h.decisions)
        .max()
        .unwrap_or(0)
        .max(r.race.cut);
    let mut out = String::new();
    out.push_str(
        "<!doctype html>\n<html><head><meta charset=\"utf-8\">\
         <title>nodefz race report</title><style>\
         body{font:14px/1.5 ui-monospace,monospace;margin:2em auto;max-width:60em;\
              color:#1a1a1a;background:#fdfdfd}\
         h1{font-size:1.3em} h3{margin:1em 0 .3em} small{color:#777}\
         .badge{display:inline-block;padding:.1em .5em;border-radius:.3em;\
                background:#c62828;color:#fff;font-weight:bold}\
         .ok{background:#2e7d32} .fail{background:#c62828}\
         table{border-collapse:collapse;margin:.5em 0}\
         td,th{border:1px solid #ddd;padding:.2em .6em;text-align:left}\
         .lanes{border-left:1px solid #bbb}\
         .lane{display:flex;align-items:center;margin:.15em 0}\
         .label{width:16em;flex:none}\
         .track{position:relative;flex:1;height:1em;background:#eee;border-radius:.5em}\
         .dot{position:absolute;top:.15em;width:.7em;height:.7em;border-radius:50%}\
         .a{background:#00838f} .b{background:#8e24aa}\
         .racing{outline:2px solid #c62828}\
         </style></head><body>\n",
    );
    out.push_str(&format!(
        "<h1>race report: {} <span class=\"badge\">{}</span> at {}</h1>\n",
        esc(&r.app),
        esc(class),
        esc(&r.race.site),
    ));
    out.push_str(&format!(
        "<table>\
         <tr><th>env seed</th><td>{}</td></tr>\
         <tr><th>failure site</th><td>{}</td></tr>\
         <tr><th>failing HB class</th><td>{}</td></tr>\
         <tr><th>schedule</th><td>{} events, {} accesses</td></tr>\
         <tr><th>racing pair</th><td>{} #{} (dec {}) &#x00d7; {} #{} (dec {})</td></tr>\
         <tr><th>directed flip</th><td>decision {} of the {} schedule \
         (ladder {}; prefix cut {})</td></tr>\
         </table>\n",
        r.env_seed,
        esc(&r.failure_site),
        esc(&r.failing_key),
        r.events,
        r.accesses,
        esc(&r.race.a.kind),
        r.race.a.event,
        r.race.a.decisions,
        esc(&r.race.b.kind),
        r.race.b.event,
        r.race.b.decisions,
        r.flip.cut,
        if r.flip.on_passing_schedule {
            "nearest passing"
        } else {
            "failing"
        },
        r.flip
            .ladder
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(", "),
        r.flip.prefix_cut,
    ));
    out.push_str(&format!(
        "<h2>causal timeline <small>decision axis 0..={max_dec}</small></h2>\n"
    ));
    html_chain(&mut out, "a", "a", &r.chain_a, max_dec);
    html_chain(&mut out, "b", "b", &r.chain_b, max_dec);
    out.push_str(&format!(
        "<h2>nearest passing HB class</h2>\
         <p>class <code>{}</code> — {} of {} sampled schedule(s) passed. \
         Shares {} decision(s) with the failing schedule \
         ({} failing / {} passing total).{}</p>\n",
        esc(&r.passing.key),
        r.passing.distinct,
        r.passing.sampled,
        r.passing.common_prefix,
        r.passing.failing_len,
        r.passing.passing_len,
        match &r.passing.divergence {
            Some(d) => format!(
                " Diverges at decision {}: failing took <b>{}</b>, passing took <b>{}</b>.",
                d.index,
                esc(d.failing),
                esc(d.passing)
            ),
            None => " One schedule is a prefix of the other.".to_string(),
        },
    ));
    if let Some(c) = &r.check {
        out.push_str(&format!(
            "<h2>check</h2><p><span class=\"badge {}\">{}</span> {}</p>\n",
            if c.manifested { "ok" } else { "fail" },
            if c.manifested {
                "re-manifested"
            } else {
                "not reproduced"
            },
            if c.manifested {
                format!(
                    "directed replay {} of the flip at cut {} manifested the recorded bug.",
                    c.execs, c.cut
                )
            } else {
                format!(
                    "{} directed replay(s) of the flip did not manifest the recorded bug.",
                    c.attempted
                )
            },
        ));
    }
    out.push_str("</body></html>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn html_escaping_neutralizes_markup() {
        assert_eq!(esc("a<b>&\"c'"), "a&lt;b&gt;&amp;&quot;c&#39;");
    }

    #[test]
    fn lanes_scale_to_the_axis() {
        let l = lane("x", 0, 100, '\u{25cf}');
        assert!(l.contains('\u{25cf}'));
        let end = lane("x", 100, 100, '\u{25cf}');
        assert!(end.trim_end().ends_with("dec 100"));
    }
}
