//! # nodefz-explain — explainable race reports for confirmed bugs
//!
//! A fuzzing campaign ends with a corpus of minimized repros; this crate
//! turns one repro into a *causal explanation* a human can act on. Where
//! the campaign says "this schedule trips the oracle", the race report
//! says **why**: which two accesses race, the minimal causal slice —
//! each access's chain back to a scheduler-visible root — the flip cut
//! whose deferral inverts their order, and how the failing schedule
//! diverges from the nearest *passing* happens-before class.
//!
//! ```text
//! .repro ──► explain_entry ──► RaceReport ──► to_json      (nodefz-race-report-v1)
//!                                        ├──► render_ansi  (terminal timeline)
//!                                        └──► render_html  (self-contained file)
//! ```
//!
//! The report is falsifiable: [`ExplainConfig::check`] replays *only*
//! the explained flip — a [`nodefz::DirectedSpec`] over the nearest
//! passing schedule — and requires the recorded bug to re-manifest with
//! its exact signature. An explanation that fails its own check is
//! reported as such, never silently kept.
//!
//! The `campaign explain` subcommand is the CLI front end.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod explain;
mod render;

pub use explain::{
    explain_entry, CheckResult, Divergence, ExplainConfig, FlipPlan, PassingSummary, RaceReport,
};
pub use render::{render_ansi, render_html, to_json, RACE_REPORT_SCHEMA};
