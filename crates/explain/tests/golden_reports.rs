//! Golden race reports, one per §3.2 class: the planted fig6 races that
//! `campaign --analyze` confirms (GHO = AV, KUE = OV, MGS = COV) must
//! each explain into a `nodefz-race-report-v1` whose directed `--check`
//! replay re-manifests the recorded bug.

use nodefz_campaign::{analyze_campaign, AnalyzeConfig, Corpus};
use nodefz_explain::{explain_entry, render_ansi, render_html, to_json, ExplainConfig};

fn scratch(name: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("nodefz-explain-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Confirms `app`'s planted race into a corpus repro and explains it.
fn golden(app: &str, class: &str, site: &str) {
    let dir = scratch(app);
    let cfg = AnalyzeConfig {
        apps: vec![app.to_string()],
        corpus_dir: Some(dir.clone()),
        races_out: None,
        ..AnalyzeConfig::default()
    };
    let report = analyze_campaign(&cfg).expect("analyze pipeline runs");
    assert!(report.failed.is_empty(), "{:?}", report.failed);
    assert!(
        report.confirmed.iter().any(|c| c.app == app),
        "planted race must confirm: {:?}",
        report.confirmed
    );
    let entries = Corpus::open(&dir).unwrap().load_all().unwrap();
    assert!(!entries.is_empty(), "confirmation must persist a repro");

    let explained = explain_entry(
        &entries[0],
        &ExplainConfig {
            check: true,
            ..ExplainConfig::default()
        },
    )
    .expect("repro explains");

    assert_eq!(explained.app, app);
    assert_eq!(explained.race.class.label(), class, "{:?}", explained.race);
    assert_eq!(explained.race.site, site, "{:?}", explained.race);
    assert!(!explained.chain_a.is_empty(), "chain a reaches a root");
    assert!(!explained.chain_b.is_empty(), "chain b reaches a root");
    assert_eq!(
        explained.chain_a[0].event, explained.race.a.event,
        "chain a starts at the racing access"
    );
    let check = explained.check.expect("check ran");
    assert!(
        check.manifested,
        "the explained flip must re-manifest the bug ({} attempts)",
        check.attempted
    );
    assert!(
        explained.passing.distinct >= 1,
        "at least the vanilla schedule passes"
    );
    assert!(
        explained.passing.common_prefix <= explained.passing.failing_len,
        "prefix is bounded by the failing trace"
    );

    let json = to_json(&explained);
    assert!(json.starts_with("{\"schema\": \"nodefz-race-report-v1\""));
    assert!(json.contains(&format!("\"class\": \"{class}\"")));
    assert!(json.contains(site));
    let ansi = render_ansi(&explained, false);
    assert!(ansi.contains("race report"));
    assert!(ansi.contains(site));
    assert!(ansi.contains("re-manifested"));
    let plain_has_no_escapes = !ansi.contains('\u{1b}');
    assert!(plain_has_no_escapes, "color off means no SGR sequences");
    assert!(render_ansi(&explained, true).contains('\u{1b}'));
    let html = render_html(&explained);
    assert!(html.starts_with("<!doctype html>"));
    assert!(html.contains(&explained.passing.key));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn gho_atomicity_violation_explains_and_checks() {
    golden("GHO", "AV", "gho:user-row");
}

#[test]
fn kue_order_violation_explains_and_checks() {
    golden("KUE", "OV", "kue:job-state");
}

#[test]
fn mgs_commutative_order_violation_explains_and_checks() {
    golden("MGS", "COV", "mgs:filled");
}
