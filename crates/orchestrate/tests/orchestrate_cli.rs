//! End-to-end tests of the orchestrator through the real binary: child
//! processes, cross-shard merge, crash quarantine, and the
//! machine-readable contracts other processes consume.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn campaign_bin() -> &'static str {
    env!("CARGO_BIN_EXE_campaign")
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nodefz-orch-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run(args: &[&str]) -> Output {
    Command::new(campaign_bin())
        .args(args)
        .output()
        .expect("campaign binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Sorted `.repro` file names of a corpus directory — the signature-
/// stable identity of the found-bug set.
fn corpus_files(dir: &Path) -> Vec<String> {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".repro"))
        .collect();
    names.sort();
    names
}

#[test]
fn list_json_emits_a_parseable_arm_space() {
    let out = run(&["--list", "--json", "--apps", "KUE,GHO", "--conform"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let arms = nodefz_campaign::arms_from_json(&stdout(&out)).unwrap();
    let labels: Vec<String> = arms.iter().map(|a| a.label()).collect();
    // 3 fuzz presets + 1 directed arm per studied app, 3 conform arms
    // for each of the two conform pseudo-apps (--conform adds both).
    assert_eq!(arms.len(), 4 + 4 + 3 + 3, "{labels:?}");
    assert!(labels.contains(&"KUE/standard/fuzz".to_string()));
    assert!(labels.contains(&"GHO/directed/directed".to_string()));
    assert!(labels.contains(&"CONFORM/guided/conform".to_string()));
    assert!(labels.contains(&"CONFORM-API/guided/conform".to_string()));
}

#[test]
fn presets_flag_restricts_a_worker_to_one_arm() {
    let dir = scratch("presets");
    let metrics = dir.join("metrics.json");
    let out = run(&[
        "--apps",
        "KUE",
        "--presets",
        "aggressive",
        "--budget",
        "20",
        "--seed",
        "5",
        "--threads",
        "1",
        "--metrics-out",
        metrics.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Atomic-write regression: the snapshot is complete, strict JSON and
    // leaves no temp sibling behind.
    let doc = nodefz_obs::JsonValue::parse(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
    assert_eq!(
        doc.get("schema").and_then(|s| s.as_str()),
        Some("nodefz-metrics-v1")
    );
    assert!(
        !dir.join(".metrics.json.tmp").exists(),
        "temp file left behind"
    );
    let arms = doc.get("arms").and_then(|a| a.as_array()).unwrap();
    assert_eq!(arms.len(), 1, "one preset means one arm");
    assert_eq!(
        arms[0].get("preset").and_then(|p| p.as_str()),
        Some("aggressive")
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The acceptance-criteria core: the same orchestration at 1, 2, and 4
/// shards finds the identical deduplicated bug set, and the merged
/// corpus passes `--verify`.
#[test]
fn found_bug_set_is_invariant_to_shard_count() {
    let mut sets = Vec::new();
    for shards in ["1", "2", "4"] {
        let dir = scratch(&format!("invariance-{shards}"));
        let workdir = dir.join("work");
        let orch_out = dir.join("orch.json");
        let out = run(&[
            "--orchestrate",
            "--apps",
            "KUE,GHO",
            "--shards",
            shards,
            "--rounds",
            "2",
            "--round-budget",
            "25",
            "--seed",
            "5",
            "--workdir",
            workdir.to_str().unwrap(),
            "--orch-out",
            orch_out.to_str().unwrap(),
        ]);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let merged = workdir.join("corpus");
        let files = corpus_files(&merged);
        assert!(
            !files.is_empty(),
            "planted bugs should manifest at this budget: {}",
            stdout(&out)
        );

        let verify = run(&["--verify", merged.to_str().unwrap()]);
        assert!(
            verify.status.success(),
            "merged corpus must verify: {}",
            stdout(&verify)
        );

        let doc =
            nodefz_obs::JsonValue::parse(&std::fs::read_to_string(&orch_out).unwrap()).unwrap();
        assert_eq!(
            doc.get("schema").and_then(|s| s.as_str()),
            Some("nodefz-orch-v1")
        );
        assert_eq!(
            doc.get("unique_bugs").and_then(|v| v.as_u64()),
            Some(files.len() as u64)
        );
        sets.push((shards, files));
        let _ = std::fs::remove_dir_all(&dir);
    }
    let (_, baseline) = &sets[0];
    for (shards, files) in &sets[1..] {
        assert_eq!(
            files, baseline,
            "bug set at {shards} shards diverged from 1 shard"
        );
    }
}

/// Crash robustness: a worker that dies mid-slice gets its arm
/// quarantined and its partial corpus salvaged; the orchestration still
/// exits zero and the remaining arms keep running.
#[test]
fn induced_worker_crash_quarantines_the_arm_without_failing_the_run() {
    let dir = scratch("crash");
    let workdir = dir.join("work");
    let orch_out = dir.join("orch.json");
    let out = run(&[
        "--orchestrate",
        "--apps",
        "KUE",
        "--shards",
        "2",
        "--rounds",
        "2",
        "--round-budget",
        "20",
        "--seed",
        "5",
        "--induce-crash",
        "0",
        "--workdir",
        workdir.to_str().unwrap(),
        "--orch-out",
        orch_out.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "a crashed worker must not fail the campaign: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = nodefz_obs::JsonValue::parse(&std::fs::read_to_string(&orch_out).unwrap()).unwrap();
    let arms = doc.get("arms").and_then(|a| a.as_array()).unwrap();
    let quarantined: Vec<&nodefz_obs::JsonValue> = arms
        .iter()
        .filter(|a| a.get("quarantined").and_then(|q| q.as_bool()) == Some(true))
        .collect();
    assert_eq!(quarantined.len(), 1, "exactly the sabotaged arm");
    assert_eq!(
        quarantined[0]
            .get("quarantine_reason")
            .and_then(|r| r.as_str()),
        Some("crashed")
    );
    // Work item 0 is the sabotaged one; the round still ran the others.
    let work = doc.get("work").and_then(|w| w.as_array()).unwrap();
    assert_eq!(
        work[0].get("outcome").and_then(|o| o.as_str()),
        Some("crashed")
    );
    let ok_items = work
        .iter()
        .filter(|w| w.get("outcome").and_then(|o| o.as_str()) == Some("ok"))
        .count();
    assert!(ok_items > 0, "healthy arms keep running");
    // Quarantine shrinks the arm pool but the campaign finishes its rounds.
    assert_eq!(doc.get("finished").and_then(|f| f.as_bool()), Some(true));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bench_orchestrate_compares_both_schedulers() {
    let dir = scratch("bench");
    let workdir = dir.join("work");
    let bench_out = dir.join("bench.json");
    let out = run(&[
        "--bench-orchestrate",
        "--apps",
        "KUE",
        "--shards",
        "2",
        "--rounds",
        "2",
        "--round-budget",
        "15",
        "--seed",
        "5",
        "--workdir",
        workdir.to_str().unwrap(),
        "--bench-orch-out",
        bench_out.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = nodefz_obs::JsonValue::parse(&std::fs::read_to_string(&bench_out).unwrap()).unwrap();
    assert_eq!(
        doc.get("schema").and_then(|s| s.as_str()),
        Some("nodefz-orchbench-v1")
    );
    let schedulers = doc.get("schedulers").and_then(|s| s.as_array()).unwrap();
    let labels: Vec<&str> = schedulers
        .iter()
        .filter_map(|s| s.get("scheduler").and_then(|l| l.as_str()))
        .collect();
    assert_eq!(labels, ["thompson", "ucb"]);
    let _ = std::fs::remove_dir_all(&dir);
}
