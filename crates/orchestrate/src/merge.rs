//! Cross-shard corpus merge.
//!
//! Every worker process persists its minimized repros into a private
//! corpus directory; the orchestrator folds those shards into one
//! canonical corpus. Dedup is by [`BugSignature`] via the re-interning
//! [`SigSet`], exactly the key the in-process deduplicator uses — so N
//! shards that each rediscover the same race still merge to one entry.
//! On collision the merge keeps the *shortest* trace (the best shrink any
//! shard achieved), sums manifestation hits, and keeps the best replay
//! acceptance count.
//!
//! [`BugSignature`]: nodefz_trace::BugSignature

use std::path::Path;

use nodefz_campaign::{Corpus, CorpusEntry};
use nodefz_trace::{BugSignature, SigSet};

/// Accumulates shard corpora into one deduplicated set of entries.
#[derive(Default)]
pub struct MergedCorpus {
    seen: SigSet,
    entries: Vec<CorpusEntry>,
}

impl MergedCorpus {
    /// An empty merge.
    pub fn new() -> MergedCorpus {
        MergedCorpus::default()
    }

    /// Folds one entry in; returns the signature when it was new.
    pub fn insert(&mut self, entry: CorpusEntry) -> Option<BugSignature> {
        let signature = entry.signature();
        if self.seen.insert(&signature) {
            self.entries.push(entry);
            return Some(signature);
        }
        let existing = self
            .entries
            .iter_mut()
            .find(|e| e.signature() == signature)
            .expect("seen signatures have a stored entry");
        existing.hits += entry.hits;
        existing.replays_ok = existing.replays_ok.max(entry.replays_ok);
        if entry.trace.decisions.len() < existing.trace.decisions.len() {
            let (hits, replays_ok) = (existing.hits, existing.replays_ok);
            *existing = entry;
            existing.hits = hits;
            existing.replays_ok = replays_ok;
        }
        None
    }

    /// Folds a whole shard corpus in leniently: undecodable entries (a
    /// reaped worker can leave none, thanks to atomic writes, but a
    /// missing directory is normal for a crashed-at-start worker) are
    /// skipped, not fatal. Returns the signatures that were new, in
    /// entry-name order, plus the skipped file names.
    ///
    /// # Errors
    ///
    /// Only on I/O failures opening a directory that exists.
    pub fn fold_shard(&mut self, dir: &Path) -> std::io::Result<(Vec<BugSignature>, Vec<String>)> {
        if !dir.is_dir() {
            return Ok((Vec::new(), Vec::new()));
        }
        let corpus = Corpus::open(dir)?;
        let (entries, skipped) = corpus.load_salvage()?;
        let mut new = Vec::new();
        for entry in entries {
            if let Some(signature) = self.insert(entry) {
                new.push(signature);
            }
        }
        Ok((new, skipped))
    }

    /// Distinct bugs merged so far.
    pub fn unique_bugs(&self) -> usize {
        self.entries.len()
    }

    /// The merged entries, sorted by signature for stable output.
    pub fn entries(&self) -> Vec<&CorpusEntry> {
        let mut out: Vec<&CorpusEntry> = self.entries.iter().collect();
        out.sort_by_key(|e| e.signature());
        out
    }

    /// Writes the merged set into `dir` as a canonical corpus.
    ///
    /// # Errors
    ///
    /// On the first entry that fails to persist.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<Corpus> {
        let corpus = Corpus::open(dir)?;
        for entry in self.entries() {
            corpus.save(entry)?;
        }
        Ok(corpus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodefz_campaign::CorpusEntry;

    fn entry(app: &str, site: &str, kinds: u32, decisions: usize) -> CorpusEntry {
        CorpusEntry {
            app: app.to_string(),
            env_seed: 9,
            site: site.to_string(),
            kinds,
            hits: 1,
            replays_ok: 10,
            trace: nodefz::DecisionTrace {
                pool_mode: nodefz_rt::PoolMode::Concurrent { workers: 4 },
                demux_done: false,
                decisions: vec![nodefz::Decision::DeferReady(false); decisions],
            },
        }
    }

    #[test]
    fn duplicate_signatures_merge_keeping_the_shortest_trace() {
        let mut m = MergedCorpus::new();
        assert!(m.insert(entry("KUE", "lost N jobs", 3, 8)).is_some());
        assert!(m.insert(entry("KUE", "lost N jobs", 3, 5)).is_none());
        assert!(m.insert(entry("KUE", "lost N jobs", 3, 7)).is_none());
        assert_eq!(m.unique_bugs(), 1);
        let merged = m.entries()[0];
        assert_eq!(merged.trace.decisions.len(), 5, "best shrink wins");
        assert_eq!(merged.hits, 3, "hits sum across shards");
    }

    #[test]
    fn distinct_bugs_stay_distinct() {
        let mut m = MergedCorpus::new();
        m.insert(entry("KUE", "lost N jobs", 3, 4));
        m.insert(entry("MKD", "lost N jobs", 3, 4));
        m.insert(entry("KUE", "double callback", 3, 4));
        assert_eq!(m.unique_bugs(), 3);
    }

    #[test]
    fn fold_missing_directory_is_empty_not_fatal() {
        let mut m = MergedCorpus::new();
        let (new, skipped) = m
            .fold_shard(Path::new("/nonexistent/shard/corpus"))
            .unwrap();
        assert!(new.is_empty() && skipped.is_empty());
    }

    #[test]
    fn round_trips_through_disk_shards() {
        let base = std::env::temp_dir().join(format!("nodefz-merge-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let shard_a = Corpus::open(&base.join("a")).unwrap();
        let shard_b = Corpus::open(&base.join("b")).unwrap();
        // Corpus entries carry already-normalized sites, so the same bug
        // found by two shards has byte-identical site text.
        shard_a.save(&entry("KUE", "lost N jobs", 3, 6)).unwrap();
        shard_b.save(&entry("KUE", "lost N jobs", 3, 4)).unwrap();
        shard_b.save(&entry("GHO", "stale read", 5, 4)).unwrap();

        let mut m = MergedCorpus::new();
        let (new_a, _) = m.fold_shard(&base.join("a")).unwrap();
        let (new_b, _) = m.fold_shard(&base.join("b")).unwrap();
        assert_eq!(new_a.len(), 1);
        assert_eq!(new_b.len(), 1, "the KUE dupe dedups across shards");

        let merged = m.write_to(&base.join("merged")).unwrap();
        assert_eq!(merged.load_all().unwrap().len(), 2);
        let _ = std::fs::remove_dir_all(&base);
    }
}
