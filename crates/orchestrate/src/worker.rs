//! Worker process lifecycle: spawn, poll, reap.
//!
//! Each budget slice becomes one child `campaign` process (the same
//! binary re-invoked in single-campaign mode) with a private work
//! directory holding its corpus shard, its `nodefz-metrics-v1` snapshot,
//! and its captured console output. The orchestrator polls children
//! non-blockingly; a child that outlives the worker deadline is killed
//! and reported as stalled, one that dies on a signal as crashed, one
//! that exits nonzero as errored. In every non-ok case the shard corpus
//! is still salvaged — entries are written atomically, so whatever the
//! worker persisted before dying is intact.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use nodefz_campaign::{ArmMode, ArmSpec};

/// One budget slice: a unit of work handed to one child process.
#[derive(Clone, Debug)]
pub struct WorkItem {
    /// Global spawn index, and the deterministic processing order.
    pub index: usize,
    /// Round the slice belongs to.
    pub round: u32,
    /// Scheduler arm index.
    pub arm: usize,
    /// Environment base seed for the child campaign.
    pub seed: u64,
    /// Fuzz runs the child may spend.
    pub budget: u64,
    /// Private work directory (corpus shard, metrics, log).
    pub dir: PathBuf,
    /// Deliberately crash the worker mid-slice (crash-robustness tests).
    pub sabotage: bool,
}

impl WorkItem {
    /// The shard corpus directory.
    pub fn corpus_dir(&self) -> PathBuf {
        self.dir.join("corpus")
    }

    /// The worker's metrics snapshot path.
    pub fn metrics_path(&self) -> PathBuf {
        self.dir.join("metrics.json")
    }

    /// The worker's flight-recorder journal path.
    pub fn journal_path(&self) -> PathBuf {
        self.dir.join("journal.jsonl")
    }

    /// The worker's chrome-trace timeline path (written only by
    /// obs-feature builds).
    pub fn trace_path(&self) -> PathBuf {
        self.dir.join("trace.json")
    }
}

/// How a worker ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Exited zero; full slice results available.
    Ok,
    /// Exited nonzero (config rejection, campaign error).
    Errored(i32),
    /// Died on a signal without exiting.
    Crashed,
    /// Outlived the worker deadline and was killed.
    Stalled,
    /// Never started.
    SpawnFailed(String),
}

impl Outcome {
    /// Whether the slice completed normally.
    pub fn is_ok(&self) -> bool {
        matches!(self, Outcome::Ok)
    }

    /// Report label.
    pub fn label(&self) -> String {
        match self {
            Outcome::Ok => "ok".into(),
            Outcome::Errored(code) => format!("errored({code})"),
            Outcome::Crashed => "crashed".into(),
            Outcome::Stalled => "stalled".into(),
            Outcome::SpawnFailed(_) => "spawn-failed".into(),
        }
    }
}

/// A spawned, not-yet-reaped worker.
pub struct Handle {
    /// The slice the worker runs.
    pub item: WorkItem,
    child: Child,
    started: Instant,
}

/// Builds the child command line for `item` running `arm`.
///
/// The worker is the same `campaign` binary in single-campaign mode,
/// restricted to exactly one (app, preset, mode) arm: `--presets NAME`
/// for fuzz/conform arms, `--presets directed` for a directed-only
/// campaign.
pub fn worker_args(arm: &ArmSpec, item: &WorkItem, replay_checks: u32, prune: bool) -> Vec<String> {
    let preset = match arm.mode {
        ArmMode::Fuzz | ArmMode::Conform => arm.preset.clone(),
        ArmMode::Directed => "directed".to_string(),
    };
    let mut args = vec![
        "--apps".into(),
        arm.app.clone(),
        "--presets".into(),
        preset,
        "--budget".into(),
        item.budget.to_string(),
        "--seed".into(),
        item.seed.to_string(),
        "--threads".into(),
        "1".into(),
        "--replay-checks".into(),
        replay_checks.to_string(),
        "--corpus".into(),
        item.corpus_dir().display().to_string(),
        "--metrics-out".into(),
        item.metrics_path().display().to_string(),
        "--journal-out".into(),
        item.journal_path().display().to_string(),
    ];
    if prune {
        args.push("--prune".into());
    }
    // Same binary, so an obs-built orchestrator spawns obs-built workers:
    // have each record its chrome-trace timeline for the merged report.
    if cfg!(feature = "obs") {
        args.push("--trace-out".into());
        args.push(item.trace_path().display().to_string());
    }
    if item.sabotage {
        args.push("--crash-after-runs".into());
        args.push((item.budget / 2).max(1).to_string());
    }
    args
}

/// Spawns the worker for `item`, console output captured to
/// `{dir}/worker.log`.
///
/// # Errors
///
/// When the work directory or log cannot be created, or the binary
/// cannot start.
pub fn spawn(
    bin: &Path,
    arm: &ArmSpec,
    item: &WorkItem,
    replay_checks: u32,
    prune: bool,
) -> Result<Handle, String> {
    std::fs::create_dir_all(&item.dir)
        .map_err(|e| format!("workdir {}: {e}", item.dir.display()))?;
    let log = std::fs::File::create(item.dir.join("worker.log"))
        .map_err(|e| format!("worker log: {e}"))?;
    let log_err = log.try_clone().map_err(|e| format!("worker log: {e}"))?;
    let child = Command::new(bin)
        .args(worker_args(arm, item, replay_checks, prune))
        .stdin(Stdio::null())
        .stdout(log)
        .stderr(log_err)
        .spawn()
        .map_err(|e| format!("spawn {}: {e}", bin.display()))?;
    Ok(Handle {
        item: item.clone(),
        child,
        started: Instant::now(),
    })
}

impl Handle {
    /// Polls the worker without blocking. `Some(outcome)` once it has
    /// been reaped (killing it first if `deadline` has passed).
    pub fn poll(&mut self, deadline: Duration) -> Option<Outcome> {
        match self.child.try_wait() {
            Ok(Some(status)) => Some(match status.code() {
                Some(0) => Outcome::Ok,
                Some(code) => Outcome::Errored(code),
                // No exit code on Unix means a signal ended it.
                None => Outcome::Crashed,
            }),
            Ok(None) => {
                if self.started.elapsed() > deadline {
                    let _ = self.child.kill();
                    let _ = self.child.wait();
                    Some(Outcome::Stalled)
                } else {
                    None
                }
            }
            Err(_) => Some(Outcome::Crashed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodefz_campaign::ArmMode;

    fn item(sabotage: bool) -> WorkItem {
        WorkItem {
            index: 0,
            round: 0,
            arm: 0,
            seed: 42,
            budget: 30,
            dir: PathBuf::from("/tmp/w"),
            sabotage,
        }
    }

    #[test]
    fn fuzz_arm_args_pin_one_preset() {
        let arm = ArmSpec {
            app: "KUE".into(),
            preset: "aggressive".into(),
            mode: ArmMode::Fuzz,
        };
        let args = worker_args(&arm, &item(false), 5, false);
        let joined = args.join(" ");
        assert!(joined.contains("--apps KUE"), "{joined}");
        assert!(joined.contains("--presets aggressive"), "{joined}");
        assert!(joined.contains("--budget 30"), "{joined}");
        assert!(joined.contains("--seed 42"), "{joined}");
        assert!(
            joined.contains("--journal-out /tmp/w/journal.jsonl"),
            "{joined}"
        );
        assert!(!joined.contains("--crash-after-runs"), "{joined}");
        assert!(!joined.contains("--prune"), "{joined}");
    }

    #[test]
    fn pruning_campaigns_forward_the_flag_to_workers() {
        let arm = ArmSpec {
            app: "KUE".into(),
            preset: "standard".into(),
            mode: ArmMode::Fuzz,
        };
        let joined = worker_args(&arm, &item(false), 5, true).join(" ");
        assert!(joined.contains("--prune"), "{joined}");
    }

    #[test]
    fn directed_arm_args_request_a_directed_only_campaign() {
        let arm = ArmSpec {
            app: "GHO".into(),
            preset: "directed".into(),
            mode: ArmMode::Directed,
        };
        let joined = worker_args(&arm, &item(false), 5, false).join(" ");
        assert!(joined.contains("--presets directed"), "{joined}");
    }

    #[test]
    fn sabotaged_items_carry_the_crash_flag() {
        let arm = ArmSpec {
            app: "KUE".into(),
            preset: "standard".into(),
            mode: ArmMode::Fuzz,
        };
        let joined = worker_args(&arm, &item(true), 5, false).join(" ");
        assert!(joined.contains("--crash-after-runs 15"), "{joined}");
    }
}
