//! `campaign report`: merge an orchestrated campaign's flight recorders
//! into one place a human can actually read.
//!
//! An orchestrated workdir holds one journal per process — the
//! orchestrator's (arm picks, worker lifecycle, merged discoveries) plus
//! one per worker slice (its own arm pulls, prune verdicts, local
//! discoveries) — and, under an obs-feature build, one chrome-trace
//! timeline per worker. This module folds them into two artifacts:
//!
//! * `journal.jsonl` — every retained event from every journal, each
//!   line tagged with its `source` process, orchestrator first. Still a
//!   valid `nodefz-journal-v1` stream per line.
//! * `timeline.json` — one unified Perfetto/chrome-trace document:
//!   `pid 0` is the orchestrator (one `X` span per work item, spawn to
//!   reap, in wall milliseconds), and each worker gets its own pid with
//!   `process_name`/`thread_name` metadata naming it by its arm, its
//!   virtual-time spans re-based onto that pid. Workers without a trace
//!   (default builds) still appear as named processes.

use std::path::{Path, PathBuf};

use nodefz_obs::{Journal, JournalEntry, JournalEvent, JsonValue, JsonWriter, WorkerState};

/// What [`merge_report`] produced.
#[derive(Clone, Debug)]
pub struct ReportSummary {
    /// Worker journals merged (the orchestrator's is extra).
    pub workers: usize,
    /// Journal events in the merged stream.
    pub events: usize,
    /// Spans on the unified timeline (orchestrator + workers).
    pub spans: usize,
    /// Workers that contributed chrome-trace spans.
    pub traced: usize,
    /// The merged journal path.
    pub journal_out: PathBuf,
    /// The unified timeline path.
    pub timeline_out: PathBuf,
}

/// One worker slice's artifacts, located by its work-dir name.
struct WorkerSource {
    index: usize,
    label: String,
    journal: Journal,
    trace: Option<JsonValue>,
}

/// Parses a work-dir name (`r{round}-i{index}-{label}`) into its index
/// and arm label.
fn parse_work_dir(name: &str) -> Option<(usize, String)> {
    let rest = name.strip_prefix('r')?;
    let (round, rest) = rest.split_once("-i")?;
    round.parse::<u32>().ok()?;
    let (index, label) = rest.split_once('-')?;
    Some((index.parse().ok()?, label.to_string()))
}

/// Top-level JSON string literal (for tagging merged lines).
fn json_str(s: &str) -> String {
    let mut w = JsonWriter::new();
    w.str(s);
    w.finish()
}

/// Re-renders a journal entry's line with a `source` tag appended.
fn tagged_line(entry: &JournalEntry, source: &str) -> String {
    let line = nodefz_obs::encode_entry(entry);
    // encode_entry always closes with '}': splice the tag in before it.
    format!(
        "{}, \"source\": {}}}",
        &line[..line.len() - 1],
        json_str(source)
    )
}

/// Merges the workdir's journals and worker traces into `out`.
///
/// # Errors
///
/// When the workdir holds no orchestrator journal (not an orchestrated
/// campaign's workdir, or one from before flight recording) or on I/O
/// failure. A worker that died before writing anything contributes
/// nothing, but a worker journal that exists and fails to decode is an
/// error, not a silent skip.
pub fn merge_report(workdir: &Path, out: &Path) -> Result<ReportSummary, String> {
    let orch_path = workdir.join("journal.jsonl");
    let orch_text = std::fs::read_to_string(&orch_path).map_err(|e| {
        format!(
            "{}: {e} (not an orchestrated workdir? run campaign --orchestrate --workdir {} first)",
            orch_path.display(),
            workdir.display()
        )
    })?;
    let orch = Journal::decode(&orch_text).map_err(|e| format!("{}: {e}", orch_path.display()))?;

    let mut workers: Vec<WorkerSource> = Vec::new();
    let entries = std::fs::read_dir(workdir).map_err(|e| format!("{}: {e}", workdir.display()))?;
    for dir_entry in entries.flatten() {
        let name = dir_entry.file_name().to_string_lossy().to_string();
        let Some((index, label)) = parse_work_dir(&name) else {
            continue;
        };
        let journal_path = dir_entry.path().join("journal.jsonl");
        let Ok(text) = std::fs::read_to_string(&journal_path) else {
            continue;
        };
        // A worker that never wrote a journal is lenient (skipped above);
        // a journal that exists but fails to decode is evidence of
        // corruption or a schema mismatch and must surface.
        let journal =
            Journal::decode(&text).map_err(|e| format!("{}: {e}", journal_path.display()))?;
        let trace = std::fs::read_to_string(dir_entry.path().join("trace.json"))
            .ok()
            .and_then(|t| JsonValue::parse(&t).ok());
        workers.push(WorkerSource {
            index,
            label,
            journal,
            trace,
        });
    }
    workers.sort_by_key(|w| w.index);

    std::fs::create_dir_all(out).map_err(|e| format!("{}: {e}", out.display()))?;
    let journal_out = out.join("journal.jsonl");
    let timeline_out = out.join("timeline.json");

    // Merged journal: header, then orchestrator lines, then each worker's,
    // every line tagged with the process it came from.
    let mut events = 0usize;
    let mut merged = String::new();
    {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("schema", "nodefz-journal-v1");
        w.field_bool("merged", true);
        w.field_u64("sources", workers.len() as u64 + 1);
        w.field_u64(
            "dropped",
            orch.dropped() + workers.iter().map(|s| s.journal.dropped()).sum::<u64>(),
        );
        w.field_u64(
            "events",
            (orch.len() + workers.iter().map(|s| s.journal.len()).sum::<usize>()) as u64,
        );
        w.end_object();
        merged.push_str(&w.finish());
        merged.push('\n');
    }
    for entry in orch.entries() {
        merged.push_str(&tagged_line(entry, "orchestrator"));
        merged.push('\n');
        events += 1;
    }
    for source in &workers {
        let tag = format!("w{}", source.index);
        for entry in source.journal.entries() {
            merged.push_str(&tagged_line(entry, &tag));
            merged.push('\n');
            events += 1;
        }
    }
    nodefz_obs::write_atomic(&journal_out, &merged)
        .map_err(|e| format!("{}: {e}", journal_out.display()))?;

    let (timeline, spans, traced) = render_timeline(&orch, &workers);
    nodefz_obs::write_atomic(&timeline_out, &timeline)
        .map_err(|e| format!("{}: {e}", timeline_out.display()))?;

    Ok(ReportSummary {
        workers: workers.len(),
        events,
        spans,
        traced,
        journal_out,
        timeline_out,
    })
}

/// Emits one `"ph": "M"` process/thread-name metadata event.
fn metadata(w: &mut JsonWriter, kind: &str, pid: u64, name: &str) {
    w.begin_object();
    w.field_str("name", kind);
    w.field_str("ph", "M");
    w.field_u64("pid", pid);
    w.field_u64("tid", 1);
    w.key("args");
    w.begin_object();
    w.field_str("name", name);
    w.end_object();
    w.end_object();
}

/// Renders the unified chrome-trace document; returns (json, spans,
/// workers-with-traces).
fn render_timeline(orch: &Journal, workers: &[WorkerSource]) -> (String, usize, usize) {
    let mut w = JsonWriter::new();
    let mut spans = 0usize;
    let mut traced = 0usize;
    w.begin_object();
    w.field_str("displayTimeUnit", "ms");
    w.key("traceEvents");
    w.begin_array();
    metadata(&mut w, "process_name", 0, "orchestrator");
    metadata(&mut w, "thread_name", 0, "rounds");
    for source in workers {
        let pid = source.index as u64 + 1;
        metadata(
            &mut w,
            "process_name",
            pid,
            &format!("w{}: {}", source.index, source.label),
        );
        metadata(&mut w, "thread_name", pid, "loop");
    }

    // Orchestrator track: one complete span per work item, spawned to
    // reaped, on the orchestrator's wall clock (journal t_ms).
    let entries: Vec<&JournalEntry> = orch.entries().collect();
    for entry in &entries {
        let JournalEvent::Worker {
            index,
            arm,
            state: WorkerState::Spawned,
            ..
        } = &entry.event
        else {
            continue;
        };
        let reap = entries.iter().find_map(|e| match &e.event {
            JournalEvent::Worker {
                index: ri,
                state: WorkerState::Reaped,
                reason,
                ..
            } if ri == index && e.t_ms >= entry.t_ms => Some((e.t_ms, reason.clone())),
            _ => None,
        });
        let (end_ms, outcome) = reap.unwrap_or((entry.t_ms, None));
        w.begin_object();
        w.field_str("name", arm);
        w.field_str("cat", "worker");
        w.field_str("ph", "X");
        w.field_u64("pid", 0);
        w.field_u64("tid", 1);
        w.field_f64("ts", entry.t_ms as f64 * 1_000.0, 3);
        w.field_f64("dur", (end_ms - entry.t_ms).max(1) as f64 * 1_000.0, 3);
        w.key("args");
        w.begin_object();
        w.field_u64("index", *index);
        w.field_str("outcome", outcome.as_deref().unwrap_or("running"));
        w.end_object();
        w.end_object();
        spans += 1;
    }

    // Worker tracks: each trace's complete spans re-based onto the
    // worker's pid (its timestamps stay in its own virtual time).
    for source in workers {
        let Some(trace) = &source.trace else {
            continue;
        };
        let Some(trace_events) = trace.get("traceEvents").and_then(|t| t.as_array()) else {
            continue;
        };
        let pid = source.index as u64 + 1;
        let mut contributed = false;
        for ev in trace_events {
            if ev.get("ph").and_then(|p| p.as_str()) != Some("X") {
                continue;
            }
            let (Some(name), Some(cat), Some(ts), Some(dur)) = (
                ev.get("name").and_then(|v| v.as_str()),
                ev.get("cat").and_then(|v| v.as_str()),
                ev.get("ts").and_then(|v| v.as_f64()),
                ev.get("dur").and_then(|v| v.as_f64()),
            ) else {
                continue;
            };
            w.begin_object();
            w.field_str("name", name);
            w.field_str("cat", cat);
            w.field_str("ph", "X");
            w.field_u64("pid", pid);
            w.field_u64("tid", 1);
            w.field_f64("ts", ts, 3);
            w.field_f64("dur", dur, 3);
            if let Some(wall) = ev
                .get("args")
                .and_then(|a| a.get("wall_ns"))
                .and_then(|v| v.as_u64())
            {
                w.key("args");
                w.begin_object();
                w.field_u64("wall_ns", wall);
                w.end_object();
            }
            w.end_object();
            spans += 1;
            contributed = true;
        }
        if contributed {
            traced += 1;
        }
    }
    w.end_array();
    w.end_object();
    let mut out = w.finish();
    out.push('\n');
    (out, spans, traced)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodefz_obs::PruneOutcome;

    #[test]
    fn work_dir_names_parse_back_to_index_and_label() {
        assert_eq!(
            parse_work_dir("r0-i3-kue-standard-fuzz"),
            Some((3, "kue-standard-fuzz".to_string()))
        );
        assert_eq!(parse_work_dir("corpus"), None);
        assert_eq!(parse_work_dir("bench-thompson"), None);
        assert_eq!(parse_work_dir("r1-ix-bad"), None);
    }

    #[test]
    fn merged_report_tags_sources_and_names_processes() {
        let tmp = std::env::temp_dir().join(format!("nodefz-report-{}", std::process::id()));
        let work = tmp.join("work");
        let out = tmp.join("out");
        let wdir = work.join("r0-i0-kue-standard-fuzz");
        std::fs::create_dir_all(&wdir).unwrap();

        let mut orch = Journal::new(16);
        orch.push_at(
            1,
            JournalEvent::Worker {
                index: 0,
                arm: "KUE/standard/fuzz".into(),
                state: WorkerState::Spawned,
                reason: None,
            },
        );
        orch.push_at(
            9,
            JournalEvent::Worker {
                index: 0,
                arm: "KUE/standard/fuzz".into(),
                state: WorkerState::Reaped,
                reason: Some("ok".into()),
            },
        );
        orch.write(&work.join("journal.jsonl")).unwrap();

        let mut wj = Journal::new(16);
        wj.push_at(
            0,
            JournalEvent::Prune {
                exec: 1,
                verdict: PruneOutcome::Distinct,
            },
        );
        wj.write(&wdir.join("journal.jsonl")).unwrap();

        let summary = merge_report(&work, &out).unwrap();
        assert_eq!(summary.workers, 1);
        assert_eq!(summary.events, 3);
        assert_eq!(summary.spans, 1);
        assert_eq!(summary.traced, 0);

        let merged = std::fs::read_to_string(&summary.journal_out).unwrap();
        let mut lines = merged.lines();
        let header = JsonValue::parse(lines.next().unwrap()).unwrap();
        assert_eq!(
            header.get("schema").and_then(|s| s.as_str()),
            Some("nodefz-journal-v1")
        );
        assert_eq!(header.get("events").and_then(|v| v.as_u64()), Some(3));
        let tags: Vec<String> = lines
            .map(|l| {
                JsonValue::parse(l)
                    .unwrap()
                    .get("source")
                    .and_then(|s| s.as_str())
                    .unwrap()
                    .to_string()
            })
            .collect();
        assert_eq!(tags, vec!["orchestrator", "orchestrator", "w0"]);

        let timeline = std::fs::read_to_string(&summary.timeline_out).unwrap();
        let doc = JsonValue::parse(&timeline).unwrap();
        let evs = doc.get("traceEvents").and_then(|t| t.as_array()).unwrap();
        let names: Vec<&str> = evs
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("M"))
            .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("process_name"))
            .filter_map(|e| {
                e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(|n| n.as_str())
            })
            .collect();
        assert_eq!(names, vec!["orchestrator", "w0: kue-standard-fuzz"]);
        let span = evs
            .iter()
            .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .unwrap();
        assert_eq!(
            span.get("name").and_then(|n| n.as_str()),
            Some("KUE/standard/fuzz")
        );
        assert_eq!(span.get("dur").and_then(|d| d.as_f64()), Some(8_000.0));

        std::fs::remove_dir_all(&tmp).ok();
    }
}
